// Cohort study: several samples from related donor genomes run through
// the GPF pipeline against one shared reference, then merged into a
// multi-sample VCF — the workload family behind the paper's Table 1
// (concurrent samples) and the standard population-genetics workflow.
//
//   ./cohort_study [samples=3] [genome_kb=100] [coverage=12]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/cohort.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"
#include "simdata/variant_gen.hpp"

using namespace gpf;

int main(int argc, char** argv) {
  const int n_samples = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::int64_t genome_kb = argc > 2 ? std::atoll(argv[2]) : 100;
  const double coverage = argc > 3 ? std::atof(argv[3]) : 12.0;

  // Shared reference; each sample is its own donor (private variant set
  // drawn with a different seed) — so the cohort has both shared and
  // private sites.
  const Reference reference = simdata::generate_reference(
      simdata::ReferenceSpec::genome(genome_kb * 1000, 2, 555));
  simdata::VariantSpec common_spec;
  common_spec.snp_rate = 0.0006;
  common_spec.seed = 556;
  const auto common_truth = simdata::spawn_variants(reference, common_spec);

  std::vector<core::SampleInput> samples;
  for (int s = 0; s < n_samples; ++s) {
    // Donor = common variants + a private sprinkle.
    simdata::VariantSpec private_spec;
    private_spec.snp_rate = 0.0002;
    private_spec.indel_rate = 0.0;
    private_spec.seed = 600 + static_cast<std::uint64_t>(s);
    auto truth = common_truth;
    for (auto& v : simdata::spawn_variants(reference, private_spec)) {
      truth.push_back(v);
    }
    std::sort(truth.begin(), truth.end(), vcf_less);
    // Drop overlapping private/common collisions.
    truth.erase(std::unique(truth.begin(), truth.end(),
                            [](const VcfRecord& a, const VcfRecord& b) {
                              return a.contig_id == b.contig_id &&
                                     a.pos == b.pos;
                            }),
                truth.end());
    const simdata::Donor donor(reference, truth);
    simdata::ReadSimSpec read_spec;
    read_spec.coverage = coverage;
    read_spec.seed = 700 + static_cast<std::uint64_t>(s);
    auto sample = simdata::simulate_reads(reference, donor, read_spec);
    std::printf("sample S%d: %zu pairs, %zu donor variants\n", s + 1,
                sample.pairs.size(), truth.size());
    samples.push_back({"S" + std::to_string(s + 1),
                       std::move(sample.pairs)});
  }

  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 25'000;
  const core::CohortResult cohort = core::run_cohort(
      engine, reference, std::move(samples), common_truth, config);

  // Site sharing statistics.
  std::vector<std::size_t> carriers_histogram(
      static_cast<std::size_t>(n_samples) + 1, 0);
  for (const auto& site : cohort.sites) {
    std::size_t carriers = 0;
    for (const auto g : site.genotypes) {
      if (g != Genotype::kHomRef) ++carriers;
    }
    ++carriers_histogram[carriers];
  }
  std::printf("\ncohort: %zu distinct sites across %d samples\n",
              cohort.sites.size(), n_samples);
  for (std::size_t c = 1; c < carriers_histogram.size(); ++c) {
    std::printf("  carried by %zu sample%s: %zu sites\n", c,
                c == 1 ? " " : "s", carriers_histogram[c]);
  }

  VcfHeader header;
  for (const auto& c : reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  std::ofstream out("cohort.vcf");
  out << core::write_cohort_vcf(header, cohort.sample_names, cohort.sites);
  std::printf("wrote cohort.vcf\n");
  return 0;
}
