// Cluster scaling exploration: run the GPF WGS pipeline locally, capture
// its task trace, and replay it on virtual clusters of increasing size —
// the workflow behind the paper's Fig 10.
//
//   ./cluster_scaling [genome_kb=150] [coverage=12]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/timer.hpp"
#include "core/wgs_pipeline.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

int main(int argc, char** argv) {
  const std::int64_t genome_kb = argc > 1 ? std::atoll(argv[1]) : 150;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 12.0;

  simdata::ReadSimSpec read_spec;
  read_spec.coverage = coverage;
  read_spec.hotspot_fraction = 0.02;
  read_spec.hotspot_multiplier = 20.0;  // skewed coverage, like real WGS
  read_spec.seed = 11;
  const simdata::Workload w =
      simdata::make_workload(genome_kb * 1000, 3, read_spec);

  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 10'000;
  config.split_threshold = 1'000;
  std::printf("running WGS pipeline on %zu pairs...\n",
              w.sample.pairs.size());
  const auto result = core::run_wgs_pipeline(engine, w.reference,
                                             w.sample.pairs, w.truth, config);
  std::printf("local run: %zu variants, %zu engine stages\n\n",
              result.variants.size(), engine.metrics().stage_count());

  // Replicate the measured trace so there is enough task parallelism to
  // exercise thousands of cores (preserves the per-task skew).
  sim::SimJob job =
      sim::replicate_tasks(sim::trace_job(engine.metrics()), 64);

  std::printf("%-8s %-8s %12s %12s %10s\n", "cores", "nodes", "makespan",
              "speedup", "efficiency");
  double base = 0.0;
  for (const std::size_t cores : {128, 256, 512, 1024, 2048}) {
    const auto cluster = sim::ClusterConfig::with_cores(cores);
    const auto r = sim::simulate(job, cluster);
    if (base == 0.0) base = r.makespan * 128.0;
    const double speedup = base / 128.0 / r.makespan;
    const double efficiency = base / (r.makespan * cores);
    std::printf("%-8zu %-8zu %12s %11.2fx %9.1f%%\n", cores, cluster.nodes,
                format_duration(r.makespan).c_str(), speedup,
                100.0 * efficiency);
  }

  std::printf("\nper-phase compute share:\n");
  const auto r = sim::simulate(job, sim::ClusterConfig::with_cores(2048));
  double total = 0.0;
  for (const auto& s : r.stages) total += s.compute_seconds;
  std::map<std::string, double> by_phase;
  for (const auto& s : r.stages) by_phase[s.phase] += s.compute_seconds;
  for (const auto& [phase, seconds] : by_phase) {
    std::printf("  %-16s %6.1f%%\n", phase.c_str(), 100.0 * seconds / total);
  }

  // Resilience: replay the same 2048-core run, but lose one node halfway
  // through — its in-flight tasks restart on survivors (lineage recompute)
  // and the makespan stretches.
  std::printf("\nnode-loss replay (2048 cores):\n");
  const auto cluster = sim::ClusterConfig::with_cores(2048);
  std::printf("  %-28s %12s\n", "fault-free",
              format_duration(r.makespan).c_str());
  sim::FaultScenario scenario;
  scenario.events.push_back(sim::NodeEvent::failure(0, r.makespan / 2));
  const auto lost = sim::simulate_with_faults(job, cluster, scenario);
  std::printf("  %-28s %12s  (+%.1f%%, %zu tasks restarted)\n",
              "node 0 dies at t=50%",
              format_duration(lost.makespan).c_str(),
              100.0 * (lost.makespan / r.makespan - 1.0),
              lost.tasks_restarted);
  sim::FaultScenario degraded;
  degraded.events.push_back(sim::NodeEvent::slowdown(0, 0.0, 0.25));
  const auto slow = sim::simulate_with_faults(job, cluster, degraded);
  std::printf("  %-28s %12s  (+%.1f%%)\n", "node 0 at quarter speed",
              format_duration(slow.makespan).c_str(),
              100.0 * (slow.makespan / r.makespan - 1.0));
  return 0;
}
