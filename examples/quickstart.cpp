// Quickstart: build a WGS pipeline with the GPF programming model, the
// C++ equivalent of the paper's Fig 3 user program.
//
// A user instantiates Resources (the Bundles), wires Processes between
// them, and calls Pipeline::run(); the framework handles partitioning,
// shuffling, serialization and the Process-level DAG optimization.
//
//   ./quickstart [--backend {inprocess,spill,distributed}]
//                [--store-budget BYTES] [--workers N]
//
// --backend picks the execution backend the plan is submitted to; the
// program (and its output) is identical on all three.
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "core/processes.hpp"
#include "exec/backend_factory.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

int main(int argc, char** argv) {
  exec::BackendSpec backend_spec;
  backend_spec.worker_binary = GPF_WORKER_BIN;
  try {
    exec::consume_backend_flags(argc, argv, backend_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  // --- synthesize a small sample (stand-in for FASTQ files on disk) ----
  simdata::ReadSimSpec read_spec;
  read_spec.coverage = 10.0;
  read_spec.seed = 42;
  const simdata::Workload workload =
      simdata::make_workload(/*genome_length=*/120'000, /*contigs=*/2,
                             read_spec);
  std::printf("simulated %zu read pairs over a %zu-base genome\n",
              workload.sample.pairs.size(),
              static_cast<std::size_t>(workload.reference.total_length()));

  // --- set up the execution environment (paper: SparkContext) ----------
  const std::unique_ptr<core::ExecutionBackend> backend =
      exec::make_backend(backend_spec);
  std::printf("backend: %s\n", backend->name().c_str());
  core::PipelineConfig config;
  config.partition_length = 20'000;
  core::Pipeline pipeline("myPipeline", *backend, workload.reference, config);

  // --- declare Resources (paper: Bundle.defined / Bundle.undefined) ----
  auto* fastq_pair_bundle = pipeline.add_resource(
      core::FastqPairBundle::make_undefined("fastqPair"));
  auto* dbsnp = pipeline.add_resource(core::VcfBundle::make_undefined("dbsnp"));
  auto* aligned_sam = pipeline.add_resource(
      core::SamBundle::make_undefined("alignedSam"));
  auto* sorted_sam = pipeline.add_resource(
      core::SamBundle::make_undefined("sortedSam"));
  auto* deduped_sam = pipeline.add_resource(
      core::SamBundle::make_undefined("dedupedSam"));
  auto* partition_info = pipeline.add_resource(
      core::PartitionInfoResource::make_undefined("partitionInfo"));
  auto* realigned_sam = pipeline.add_resource(
      core::SamBundle::make_undefined("realignedSam"));
  auto* recaled_sam = pipeline.add_resource(
      core::SamBundle::make_undefined("recaledSam"));
  auto* result_vcf = pipeline.add_resource(
      core::VcfBundle::make_undefined("resultVCF"));
  auto* final_vcf = pipeline.add_resource(
      core::VcfResultResource::make_undefined("finalVCF"));

  // --- add Processes (paper: pipeline.addProcess) -----------------------
  pipeline.add_process(std::make_unique<core::LoadFastqProcess>(
      "LoadFastq", workload.sample.pairs, fastq_pair_bundle));
  pipeline.add_process(std::make_unique<core::LoadKnownSitesProcess>(
      "LoadDbsnp", workload.truth, dbsnp));
  pipeline.add_process(std::make_unique<core::BwaMemProcess>(
      "MyBwaMapping", fastq_pair_bundle, aligned_sam));
  pipeline.add_process(std::make_unique<core::ReadRepartitioner>(
      "MyRepartitioner", aligned_sam, partition_info));
  pipeline.add_process(std::make_unique<core::SortProcess>(
      "MySort", aligned_sam, partition_info, sorted_sam));
  pipeline.add_process(std::make_unique<core::MarkDuplicateProcess>(
      "MyMarkDuplicate", sorted_sam, deduped_sam));
  pipeline.add_process(std::make_unique<core::IndelRealignProcess>(
      "MyIndelRealign", deduped_sam, dbsnp, partition_info, realigned_sam));
  pipeline.add_process(std::make_unique<core::BaseRecalibrationProcess>(
      "MyBaseRecalibration", realigned_sam, dbsnp, partition_info,
      recaled_sam));
  pipeline.add_process(std::make_unique<core::HaplotypeCallerProcess>(
      "MyHaplotypeCaller", recaled_sam, dbsnp, partition_info, result_vcf));
  pipeline.add_process(std::make_unique<core::CollectVcfProcess>(
      "CollectVcf", result_vcf, final_vcf));

  // --- issue and execute (paper: pipeline.run()) ------------------------
  // plan() shows the physical plan run() will submit: waves after the
  // readiness simulation, with wide/fused/bundle annotations.
  std::printf("\nphysical plan: %s\n\n", pipeline.plan().describe().c_str());
  const core::PipelineReport report = pipeline.run();

  std::printf("\npipeline '%s' finished in %.1fs; %zu processes "
              "(%zu fused into bundle chains)\n",
              pipeline.name().c_str(), report.total_wall_seconds,
              report.timings.size(), report.processes_fused);
  for (const auto& t : report.timings) {
    std::printf("  %-22s %8.2fs\n", t.name.c_str(), t.wall_seconds);
  }

  const auto& variants = final_vcf->get();
  std::printf("\ncalled %zu variants; first ten:\n", variants.size());
  for (std::size_t i = 0; i < variants.size() && i < 10; ++i) {
    const auto& v = variants[i];
    std::printf("  %s\t%lld\t%s>%s\tQ%.0f\t%s\n",
                workload.reference.contig(v.contig_id).name.c_str(),
                static_cast<long long>(v.pos + 1), v.ref.c_str(),
                v.alt.c_str(), v.qual,
                v.genotype == Genotype::kHet ? "0/1" : "1/1");
  }
  return 0;
}
