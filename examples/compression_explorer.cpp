// Compression explorer: shows what the GPF genomic codecs do to FASTQ and
// SAM batches compared to generic serializers, and prints the
// quality-score statistics that make the delta+Huffman coder work
// (paper Sec 4.2 and Fig 5).
//
//   ./compression_explorer [reads=20000]
#include <cstdio>
#include <cstdlib>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "common/timer.hpp"
#include "compress/record_codec.hpp"
#include "simdata/quality_model.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

namespace {

void report(const char* what, std::size_t live,
            std::size_t java, std::size_t kryo, std::size_t gpf) {
  std::printf("%-14s %10s %10s %10s %10s %8.2fx\n", what,
              format_bytes(live).c_str(), format_bytes(java).c_str(),
              format_bytes(kryo).c_str(), format_bytes(gpf).c_str(),
              static_cast<double>(kryo) / static_cast<double>(gpf));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reads = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20'000;

  simdata::ReadSimSpec spec;
  spec.coverage =
      static_cast<double>(reads) * 200.0 / 150'000.0;  // pairs -> coverage
  spec.seed = 5;
  const simdata::Workload w = simdata::make_workload(150'000, 2, spec);

  // FASTQ batch.
  std::vector<FastqRecord> fastq;
  for (const auto& p : w.sample.pairs) {
    fastq.push_back(p.first);
    fastq.push_back(p.second);
  }
  std::printf("%zu reads\n\n", fastq.size());
  std::printf("%-14s %10s %10s %10s %10s %8s\n", "batch", "live", "java",
              "kryo", "gpf", "kryo/gpf");
  report("FASTQ", live_batch_size<FastqRecord>(fastq),
         encode_fastq_batch(fastq, Codec::kJavaLike).size(),
         encode_fastq_batch(fastq, Codec::kKryoLike).size(),
         encode_fastq_batch(fastq, Codec::kGpf).size());

  // SAM batch (aligned reads).
  const align::FmIndex index(w.reference);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> sam;
  for (std::size_t i = 0; i < w.sample.pairs.size(); ++i) {
    auto [r1, r2] = aligner.align_pair(w.sample.pairs[i]);
    sam.push_back(std::move(r1));
    sam.push_back(std::move(r2));
  }
  report("SAM", live_batch_size<SamRecord>(sam),
         encode_sam_batch(sam, Codec::kJavaLike).size(),
         encode_sam_batch(sam, Codec::kKryoLike).size(),
         encode_sam_batch(sam, Codec::kGpf).size());

  // Codec speed.
  std::printf("\ncodec speed (FASTQ batch):\n");
  for (const Codec codec :
       {Codec::kJavaLike, Codec::kKryoLike, Codec::kGpf}) {
    Timer t;
    const auto bytes = encode_fastq_batch(fastq, codec);
    const double enc = t.seconds();
    t.reset();
    const auto decoded = decode_fastq_batch(bytes, codec);
    const double dec = t.seconds();
    std::printf("  %-6s encode %8.1f MB/s   decode %8.1f MB/s\n",
                codec_name(codec),
                static_cast<double>(bytes.size()) / 1e6 / enc,
                static_cast<double>(bytes.size()) / 1e6 / dec);
  }

  // Quality-score statistics (the Fig 5 effect).
  std::printf("\nquality-score statistics (SRR622461-like profile):\n");
  const auto dist = simdata::collect_distributions(
      simdata::QualityProfile::srr622461(), 2000, 100, 3);
  std::printf("  mean score %.1f, p5 %lld, p95 %lld\n", dist.scores.mean(),
              static_cast<long long>(dist.scores.percentile(0.05)),
              static_cast<long long>(dist.scores.percentile(0.95)));
  double within10 = 0.0;
  for (int d = -10; d <= 10; ++d) within10 += dist.deltas.fraction(d);
  std::printf("  adjacent deltas within [-10,10]: %.1f%% (delta=0: %.1f%%)\n",
              100.0 * within10, 100.0 * dist.deltas.fraction(0));
  return 0;
}
