// gpf_tool: a command-line toolkit over the library — simulate data,
// align reads, call variants, or run the whole GPF pipeline on real
// files.  The file-facing twin of the in-memory examples.
//
//   gpf_tool simulate <out_prefix> [genome_kb=100] [coverage=15]
//       writes <p>_ref.fa <p>_1.fastq <p>_2.fastq <p>_truth.vcf
//   gpf_tool align <ref.fa> <r1.fastq> <r2.fastq> <out.gbam|out.sam>
//   gpf_tool call <ref.fa> <in.gbam|in.sam> <out.vcf> [--gvcf]
//   gpf_tool pipeline <ref.fa> <r1.fastq> <r2.fastq> <known.vcf> <out.vcf>
//       [--backend {inprocess,spill,distributed}] [--store-budget BYTES]
//       [--workers N]
//       runs on the chosen execution backend and prints a per-Process
//       table of wall time, shuffle traffic and backend residency work
//   gpf_tool trace <ref.fa> <r1.fastq> <r2.fastq> <known.vcf> <out.json>
//       [sim_cores=2048]
//       runs the pipeline with tracing on and writes a Chrome trace_event
//       JSON combining the measured engine timeline (pid 0) with a
//       simulated-cluster replay of the run (pid 1); open the file in
//       chrome://tracing or https://ui.perfetto.dev
//   gpf_tool view <in.gbam>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "caller/gvcf.hpp"
#include "caller/haplotype_caller.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "common/trace.hpp"
#include "compress/gbam.hpp"
#include "core/file_io.hpp"
#include "core/wgs_pipeline.hpp"
#include "exec/backend_factory.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

VcfHeader vcf_header_for(const Reference& reference) {
  VcfHeader header;
  for (const auto& c : reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  return header;
}

SamHeader sam_header_for(const Reference& reference) {
  SamHeader header;
  for (const auto& c : reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  return header;
}

SamFile load_alignments(const std::string& path) {
  return ends_with(path, ".gbam") ? load_gbam_file(path)
                                  : core::load_sam_file(path);
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: gpf_tool simulate <prefix> [kb] [cov]\n");
    return 2;
  }
  const std::string prefix = argv[0];
  const std::int64_t kb = argc > 1 ? std::atoll(argv[1]) : 100;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 15.0;
  simdata::ReadSimSpec spec;
  spec.coverage = coverage;
  spec.seed = 20260705;
  const auto w = simdata::make_workload(kb * 1000, 2, spec);
  core::save_fasta_file(prefix + "_ref.fa", w.reference);
  core::save_fastq_pair_files(prefix + "_1.fastq", prefix + "_2.fastq",
                              w.sample.pairs);
  core::save_vcf_file(prefix + "_truth.vcf", vcf_header_for(w.reference),
                      w.truth);
  std::printf("wrote %s_ref.fa (%zu bases), %zu read pairs, %zu truth "
              "variants\n",
              prefix.c_str(),
              static_cast<std::size_t>(w.reference.total_length()),
              w.sample.pairs.size(), w.truth.size());
  return 0;
}

int cmd_align(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: gpf_tool align <ref.fa> <r1> <r2> <out.gbam>\n");
    return 2;
  }
  const Reference reference = core::load_fasta_file(argv[0]);
  const auto pairs = core::load_fastq_pair_files(argv[1], argv[2]);
  std::printf("aligning %zu pairs against %zu contigs...\n", pairs.size(),
              reference.contig_count());
  const align::FmIndex index(reference);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> records;
  records.reserve(pairs.size() * 2);
  for (const auto& p : pairs) {
    auto [r1, r2] = aligner.align_pair(p);
    records.push_back(std::move(r1));
    records.push_back(std::move(r2));
  }
  cleaner::coordinate_sort(records);
  SamHeader header = sam_header_for(reference);
  header.coordinate_sorted = true;
  const std::string out = argv[3];
  if (ends_with(out, ".gbam")) {
    save_gbam_file(out, header, records);
  } else {
    core::save_sam_file(out, header, records);
  }
  std::size_t mapped = 0;
  for (const auto& r : records) {
    if (!r.is_unmapped()) ++mapped;
  }
  std::printf("wrote %s: %zu records, %.1f%% mapped\n", out.c_str(),
              records.size(),
              100.0 * static_cast<double>(mapped) /
                  static_cast<double>(records.size()));
  return 0;
}

int cmd_call(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: gpf_tool call <ref.fa> <in.gbam> <out.vcf> "
                 "[--gvcf]\n");
    return 2;
  }
  const bool gvcf = argc > 3 && std::strcmp(argv[3], "--gvcf") == 0;
  const Reference reference = core::load_fasta_file(argv[0]);
  SamFile input = load_alignments(argv[1]);
  cleaner::coordinate_sort(input.records);
  const auto dup_stats = cleaner::mark_duplicates(input.records);
  caller::CallStats stats;
  const auto variants =
      caller::call_variants(input.records, reference, {}, &stats);
  std::printf("%zu records (%zu duplicates), %zu active regions, "
              "%zu variants\n",
              input.records.size(), dup_stats.duplicates_marked,
              stats.regions, variants.size());
  VcfHeader header = vcf_header_for(reference);
  if (gvcf) {
    const auto blocks =
        caller::reference_blocks(input.records, variants, reference);
    core::write_file(argv[2],
                     caller::write_gvcf(header, variants, blocks, reference));
    std::printf("wrote gVCF %s (%zu variant rows, %zu ref blocks)\n",
                argv[2], variants.size(), blocks.size());
  } else {
    core::save_vcf_file(argv[2], header, variants);
    std::printf("wrote VCF %s\n", argv[2]);
  }
  return 0;
}

// Per-Process shuffle/backend accounting from the run report, the
// human-readable face of PipelineReport::ProcessTiming.
void print_process_table(const core::PipelineReport& report) {
  std::printf("\nbackend: %s\n", report.backend.c_str());
  std::printf("%-22s %8s %6s %7s %7s %7s %10s %10s %9s %9s %8s %13s\n",
              "process", "wall", "stages", "p50ms", "p95ms", "p99ms",
              "shuffle_w", "shuffle_r", "records", "spilled", "lineage",
              "res h/m/e");
  std::uint64_t shuffle_w = 0, shuffle_r = 0, spilled = 0;
  for (const auto& t : report.timings) {
    shuffle_w += t.shuffle_write_bytes;
    shuffle_r += t.shuffle_read_bytes;
    spilled += t.backend.bytes_spilled;
    std::printf("%-22s %7.2fs %6zu %7.2f %7.2f %7.2f %10llu %10llu %9llu "
                "%9llu %8llu %4llu/%llu/%llu\n",
                t.name.c_str(), t.wall_seconds, t.engine_stages, t.task_p50_ms,
                t.task_p95_ms, t.task_p99_ms,
                static_cast<unsigned long long>(t.shuffle_write_bytes),
                static_cast<unsigned long long>(t.shuffle_read_bytes),
                static_cast<unsigned long long>(t.shuffle_records),
                static_cast<unsigned long long>(t.backend.bytes_spilled),
                static_cast<unsigned long long>(
                    t.backend.lineage_recoveries),
                static_cast<unsigned long long>(t.backend.residency_hits),
                static_cast<unsigned long long>(t.backend.residency_misses),
                static_cast<unsigned long long>(
                    t.backend.residency_evictions));
  }
  std::printf("%-22s %40s %10llu %10llu %19llu\n", "total", "",
              static_cast<unsigned long long>(shuffle_w),
              static_cast<unsigned long long>(shuffle_r),
              static_cast<unsigned long long>(spilled));
}

int cmd_pipeline(int argc, char** argv, const exec::BackendSpec& spec) {
  bool adaptive = false;
  for (int i = 0; i < argc;) {
    if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: gpf_tool pipeline <ref.fa> <r1> <r2> <known.vcf> "
                 "<out.vcf> [--backend B] [--store-budget N] [--workers N] "
                 "[--adaptive]\n");
    return 2;
  }
  const Reference reference = core::load_fasta_file(argv[0]);
  auto pairs = core::load_fastq_pair_files(argv[1], argv[2]);
  auto known = core::load_vcf_file(argv[3]);
  const std::unique_ptr<core::ExecutionBackend> backend =
      exec::make_backend(spec);
  core::PipelineConfig config;
  config.adaptive_scheduling = adaptive;
  config.partition_length =
      std::max<std::int64_t>(10'000, static_cast<std::int64_t>(
                                         reference.total_length() / 16));
  const auto result = core::run_wgs_pipeline(
      *backend, reference, std::move(pairs), std::move(known.records),
      config);
  core::save_vcf_file(argv[4], vcf_header_for(reference), result.variants);
  std::printf("pipeline done: %zu variants -> %s (%zu duplicates marked, "
              "%zu engine stages)\n",
              result.variants.size(), argv[4],
              result.markdup_stats.duplicates_marked,
              backend->engine().metrics().stage_count());
  print_process_table(result.report);
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: gpf_tool trace <ref.fa> <r1> <r2> <known.vcf> "
                 "<out_trace.json> [sim_cores=2048]\n");
    return 2;
  }
  const std::size_t sim_cores =
      argc > 5 ? static_cast<std::size_t>(std::atoll(argv[5])) : 2048;
  const Reference reference = core::load_fasta_file(argv[0]);
  auto pairs = core::load_fastq_pair_files(argv[1], argv[2]);
  auto known = core::load_vcf_file(argv[3]);
  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length =
      std::max<std::int64_t>(10'000, static_cast<std::int64_t>(
                                         reference.total_length() / 16));

  auto& recorder = trace::TraceRecorder::global();
  recorder.clear();
  recorder.enable();
  const auto result = core::run_wgs_pipeline(
      engine, reference, std::move(pairs), std::move(known.records), config);
  recorder.disable();
  std::vector<trace::Span> spans = recorder.drain();

  // Replay the measured trace on a virtual cluster; its virtual-time
  // timeline rides alongside the measured one as pid 1.
  const sim::SimJob job = sim::trace_job(engine.metrics(), {});
  const auto cluster = sim::ClusterConfig::with_cores(sim_cores);
  auto sim_spans = sim::simulate_to_spans(job, cluster);
  spans.insert(spans.end(), std::make_move_iterator(sim_spans.begin()),
               std::make_move_iterator(sim_spans.end()));

  if (!trace::write_chrome_trace_file(argv[4], spans)) {
    std::fprintf(stderr, "failed to write %s\n", argv[4]);
    return 1;
  }
  std::printf("pipeline done: %zu variants, %zu engine stages\n",
              result.variants.size(), engine.metrics().stage_count());
  std::printf("trace written to %s (%zu spans: measured run = pid 0, "
              "%zu-core replay = pid 1) — open in chrome://tracing or "
              "https://ui.perfetto.dev\n",
              argv[4], spans.size(), cluster.total_cores());
  return 0;
}

int cmd_view(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: gpf_tool view <in.gbam>\n");
    return 2;
  }
  const SamFile file = load_alignments(argv[0]);
  std::fputs(write_sam(file.header, file.records).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --backend/--store-budget/--workers anywhere on the line; only
  // the pipeline command acts on them.
  exec::BackendSpec backend_spec;
  backend_spec.worker_binary = GPF_WORKER_BIN;
  try {
    exec::consume_backend_flags(argc, argv, backend_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "gpf_tool — GPF genomic toolkit\n"
                 "commands: simulate align call pipeline trace view\n");
    return 2;
  }
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  if (cmd == "simulate") return cmd_simulate(argc, argv);
  if (cmd == "align") return cmd_align(argc, argv);
  if (cmd == "call") return cmd_call(argc, argv);
  if (cmd == "pipeline") return cmd_pipeline(argc, argv, backend_spec);
  if (cmd == "trace") return cmd_trace(argc, argv);
  if (cmd == "view") return cmd_view(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
