// Variant discovery against a known truth set: simulates a germline
// sample, runs the full GPF WGS pipeline, and scores the calls
// (recall/precision for SNPs and indels), then writes the result VCF.
//
//   ./variant_discovery [genome_kb=200] [coverage=20] [--trace-out=PATH]
//       [--backend {inprocess,spill,distributed}] [--store-budget BYTES]
//       [--workers N]
//
// With --trace-out the run records engine spans (stages, task attempts,
// shuffle ser/deser, DAG nodes) and writes a Chrome trace_event JSON that
// also carries a 2048-core simulated replay of the same run — open it in
// chrome://tracing or https://ui.perfetto.dev.
//
// --backend selects where shuffle blocks physically live (src/exec):
// driver memory, chunk files under a --store-budget residency cap, or a
// fleet of --workers gpf_worker processes.  All three produce the same
// VCF bit for bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "common/trace.hpp"
#include "core/wgs_pipeline.hpp"
#include "exec/backend_factory.hpp"
#include "formats/vcf.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

namespace {

struct Score {
  std::size_t truth = 0;
  std::size_t hits = 0;
  std::size_t calls = 0;
  std::size_t correct_calls = 0;

  double recall() const {
    return truth == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(truth);
  }
  double precision() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(correct_calls) /
                            static_cast<double>(calls);
  }
};

bool matches(const VcfRecord& a, const VcfRecord& b, std::int64_t slack) {
  return a.contig_id == b.contig_id && std::llabs(a.pos - b.pos) <= slack &&
         a.is_snp() == b.is_snp();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the backend flags, then --trace-out, before the positionals.
  exec::BackendSpec backend_spec;
  backend_spec.worker_binary = GPF_WORKER_BIN;
  try {
    exec::consume_backend_flags(argc, argv, backend_spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int consumed = 0;
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-out="));
      consumed = 1;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[i + 1];
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed <= argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      break;
    }
  }
  const std::int64_t genome_kb = argc > 1 ? std::atoll(argv[1]) : 200;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 20.0;

  simdata::ReadSimSpec read_spec;
  read_spec.coverage = coverage;
  read_spec.duplicate_fraction = 0.04;
  read_spec.seed = 7;
  simdata::VariantSpec variant_spec;
  variant_spec.snp_rate = 0.001;
  variant_spec.indel_rate = 0.0001;
  const simdata::Workload w =
      simdata::make_workload(genome_kb * 1000, 3, read_spec, variant_spec);
  std::printf("genome: %lld kb across 3 contigs, %zu truth variants, "
              "%zu read pairs at %.0fx\n",
              static_cast<long long>(genome_kb), w.truth.size(),
              w.sample.pairs.size(), coverage);

  // The known-sites database for BQSR deliberately excludes the sample's
  // private variants: use every other truth variant, mimicking dbsnp's
  // partial coverage of an individual.
  std::vector<VcfRecord> known;
  for (std::size_t i = 0; i < w.truth.size(); i += 2) {
    known.push_back(w.truth[i]);
  }

  auto& recorder = trace::TraceRecorder::global();
  if (!trace_path.empty()) {
    recorder.clear();
    recorder.enable();
  }
  const std::unique_ptr<core::ExecutionBackend> backend =
      exec::make_backend(backend_spec);
  engine::Engine& engine = backend->engine();
  std::printf("backend: %s\n", backend->name().c_str());
  core::PipelineConfig config;
  config.partition_length = 25'000;
  const core::WgsResult result =
      core::run_wgs_pipeline(*backend, w.reference, w.sample.pairs, known,
                             config);
  if (!trace_path.empty()) {
    recorder.disable();
    std::vector<trace::Span> spans = recorder.drain();
    // Replay the measured stage trace on the paper's 2048-core cluster so
    // the virtual timeline (pid 1) sits next to the measured one (pid 0).
    const sim::SimJob job = sim::trace_job(engine.metrics(), {});
    auto sim_spans =
        sim::simulate_to_spans(job, sim::ClusterConfig::with_cores(2048));
    spans.insert(spans.end(), std::make_move_iterator(sim_spans.begin()),
                 std::make_move_iterator(sim_spans.end()));
    if (trace::write_chrome_trace_file(trace_path, spans)) {
      std::printf("trace written to %s (%zu spans) — open in "
                  "chrome://tracing or https://ui.perfetto.dev\n",
                  trace_path.c_str(), spans.size());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
    }
  }

  std::printf("pipeline: %zu variants called, %zu duplicates marked "
              "(%.1f%% of records), %u final partitions\n",
              result.variants.size(),
              result.markdup_stats.duplicates_marked,
              100.0 * result.markdup_stats.duplicate_fraction(),
              static_cast<unsigned>(result.final_partitions));

  // Aggregate the per-Process backend counters: how much shuffle data
  // moved, and how much of it the backend spilled or shipped.
  std::uint64_t shuffle_w = 0, shuffle_r = 0, spilled = 0, shipped = 0;
  for (const auto& t : result.report.timings) {
    shuffle_w += t.shuffle_write_bytes;
    shuffle_r += t.shuffle_read_bytes;
    spilled += t.backend.bytes_spilled;
    shipped += t.backend.bytes_put;
  }
  std::printf("shuffle: %llu B written, %llu B read; backend moved %llu B "
              "(%llu B to disk)\n",
              static_cast<unsigned long long>(shuffle_w),
              static_cast<unsigned long long>(shuffle_r),
              static_cast<unsigned long long>(shipped),
              static_cast<unsigned long long>(spilled));

  // --- score --------------------------------------------------------------
  Score snp, indel;
  for (const auto& t : w.truth) {
    Score& s = t.is_snp() ? snp : indel;
    ++s.truth;
    for (const auto& c : result.variants) {
      if (t.is_snp() ? (c.pos == t.pos && c.contig_id == t.contig_id &&
                        c.ref == t.ref && c.alt == t.alt)
                     : matches(c, t, 16)) {
        ++s.hits;
        break;
      }
    }
  }
  for (const auto& c : result.variants) {
    Score& s = c.is_snp() ? snp : indel;
    ++s.calls;
    for (const auto& t : w.truth) {
      if (c.is_snp() ? (c.pos == t.pos && c.contig_id == t.contig_id &&
                        c.ref == t.ref && c.alt == t.alt)
                     : matches(c, t, 16)) {
        ++s.correct_calls;
        break;
      }
    }
  }
  std::printf("\n%-8s %8s %8s %10s %10s\n", "type", "truth", "called",
              "recall", "precision");
  std::printf("%-8s %8zu %8zu %9.1f%% %9.1f%%\n", "SNP", snp.truth, snp.calls,
              100.0 * snp.recall(), 100.0 * snp.precision());
  std::printf("%-8s %8zu %8zu %9.1f%% %9.1f%%\n", "indel", indel.truth,
              indel.calls, 100.0 * indel.recall(),
              100.0 * indel.precision());

  // --- write the VCF -------------------------------------------------------
  VcfHeader header;
  for (const auto& c : w.reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  header.sample_name = "SIM001";
  std::ofstream out("variant_discovery.vcf");
  out << write_vcf(header, result.variants);
  std::printf("\nwrote variant_discovery.vcf (%zu records)\n",
              result.variants.size());
  return 0;
}
