// Variant discovery against a known truth set: simulates a germline
// sample, runs the full GPF WGS pipeline, and scores the calls
// (recall/precision for SNPs and indels), then writes the result VCF.
//
//   ./variant_discovery [genome_kb=200] [coverage=20]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/wgs_pipeline.hpp"
#include "formats/vcf.hpp"
#include "simdata/read_sim.hpp"

using namespace gpf;

namespace {

struct Score {
  std::size_t truth = 0;
  std::size_t hits = 0;
  std::size_t calls = 0;
  std::size_t correct_calls = 0;

  double recall() const {
    return truth == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(truth);
  }
  double precision() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(correct_calls) /
                            static_cast<double>(calls);
  }
};

bool matches(const VcfRecord& a, const VcfRecord& b, std::int64_t slack) {
  return a.contig_id == b.contig_id && std::llabs(a.pos - b.pos) <= slack &&
         a.is_snp() == b.is_snp();
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t genome_kb = argc > 1 ? std::atoll(argv[1]) : 200;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 20.0;

  simdata::ReadSimSpec read_spec;
  read_spec.coverage = coverage;
  read_spec.duplicate_fraction = 0.04;
  read_spec.seed = 7;
  simdata::VariantSpec variant_spec;
  variant_spec.snp_rate = 0.001;
  variant_spec.indel_rate = 0.0001;
  const simdata::Workload w =
      simdata::make_workload(genome_kb * 1000, 3, read_spec, variant_spec);
  std::printf("genome: %lld kb across 3 contigs, %zu truth variants, "
              "%zu read pairs at %.0fx\n",
              static_cast<long long>(genome_kb), w.truth.size(),
              w.sample.pairs.size(), coverage);

  // The known-sites database for BQSR deliberately excludes the sample's
  // private variants: use every other truth variant, mimicking dbsnp's
  // partial coverage of an individual.
  std::vector<VcfRecord> known;
  for (std::size_t i = 0; i < w.truth.size(); i += 2) {
    known.push_back(w.truth[i]);
  }

  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 25'000;
  const core::WgsResult result =
      core::run_wgs_pipeline(engine, w.reference, w.sample.pairs, known,
                             config);

  std::printf("pipeline: %zu variants called, %zu duplicates marked "
              "(%.1f%% of records), %u final partitions\n",
              result.variants.size(),
              result.markdup_stats.duplicates_marked,
              100.0 * result.markdup_stats.duplicate_fraction(),
              static_cast<unsigned>(result.final_partitions));

  // --- score --------------------------------------------------------------
  Score snp, indel;
  for (const auto& t : w.truth) {
    Score& s = t.is_snp() ? snp : indel;
    ++s.truth;
    for (const auto& c : result.variants) {
      if (t.is_snp() ? (c.pos == t.pos && c.contig_id == t.contig_id &&
                        c.ref == t.ref && c.alt == t.alt)
                     : matches(c, t, 16)) {
        ++s.hits;
        break;
      }
    }
  }
  for (const auto& c : result.variants) {
    Score& s = c.is_snp() ? snp : indel;
    ++s.calls;
    for (const auto& t : w.truth) {
      if (c.is_snp() ? (c.pos == t.pos && c.contig_id == t.contig_id &&
                        c.ref == t.ref && c.alt == t.alt)
                     : matches(c, t, 16)) {
        ++s.correct_calls;
        break;
      }
    }
  }
  std::printf("\n%-8s %8s %8s %10s %10s\n", "type", "truth", "called",
              "recall", "precision");
  std::printf("%-8s %8zu %8zu %9.1f%% %9.1f%%\n", "SNP", snp.truth, snp.calls,
              100.0 * snp.recall(), 100.0 * snp.precision());
  std::printf("%-8s %8zu %8zu %9.1f%% %9.1f%%\n", "indel", indel.truth,
              indel.calls, 100.0 * indel.recall(),
              100.0 * indel.precision());

  // --- write the VCF -------------------------------------------------------
  VcfHeader header;
  for (const auto& c : w.reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  header.sample_name = "SIM001";
  std::ofstream out("variant_discovery.vcf");
  out << write_vcf(header, result.variants);
  std::printf("\nwrote variant_discovery.vcf (%zu records)\n",
              result.variants.size());
  return 0;
}
