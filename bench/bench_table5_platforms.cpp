// Table 5: comparison of genome-analysis platforms — pipeline coverage,
// in-memory computing, maximum evaluated core count, and parallel
// efficiency at that count.
//
// Paper's table:
//   GPF          full      in-memory  2048  >50%
//   Churchill    full      no          768   28%
//   HugeSeq      full      no           48  ~50%
//   GATK-Queue   full      no           48  ~50%
//   ADAM         Cleaner   in-memory  1024  14.8%
//   GATK4        Cln&Call  in-memory  1024  41.6%
//   Persona-BWA  Aln&Cln   no          512  51.1%
//
// We measure GPF / Churchill / ADAM-like / GATK4-like / Persona-like from
// their traces; HugeSeq and GATK-Queue rows reuse the paper's cited
// numbers (their systems are scatter-gather schedulers whose 48-core
// plateau Churchill's own evaluation established).
#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "baselines/adamlike.hpp"
#include "baselines/churchill.hpp"
#include "baselines/personalike.hpp"
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

sim::SimJob scaled(const engine::EngineMetrics& metrics, double scale,
                   std::size_t replication) {
  sim::TraceOptions options;
  options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(metrics, options);
  job = sim::replicate_tasks(job, replication);
  return sim::scale_job(job, scale / static_cast<double>(replication),
                        1.0 / static_cast<double>(replication));
}

double efficiency(const sim::SimJob& job, std::size_t cores,
                  std::size_t base_cores = 128) {
  const double base =
      sim::simulate(job, sim::ClusterConfig::with_cores(base_cores)).makespan;
  const double at =
      sim::simulate(job, sim::ClusterConfig::with_cores(cores)).makespan;
  return base * static_cast<double>(base_cores) /
         (at * static_cast<double>(cores));
}

void print_row(const char* platform, const char* coverage,
               const char* in_memory, std::size_t cores, double eff) {
  std::printf("%-14s %-16s %-10s %6zu %12.1f%%\n", platform, coverage,
              in_memory, cores, 100.0 * eff);
}

}  // namespace

int main() {
  bench::banner("Table 5 — platform comparison (parallel efficiency)",
                "Table 5 (Sec 6)");
  auto preset = bench::WorkloadPreset::wgs();
  preset.coverage = 8.0;
  auto workload = bench::build_workload(preset);
  const double scale = bench::platinum_scale(workload);

  std::printf("measuring GPF...\n");
  engine::Engine gpf_engine;
  core::PipelineConfig config;
  config.partition_length = 5'000;
  config.split_threshold = 500;
  core::run_wgs_pipeline(gpf_engine, workload.reference,
                         workload.sample.pairs, workload.truth, config);
  const auto gpf_job = scaled(gpf_engine.metrics(), scale, 512);

  std::printf("measuring Churchill...\n");
  engine::Engine churchill_engine;
  baselines::run_churchill_pipeline(churchill_engine, workload.reference,
                                    workload.sample.pairs, workload.truth,
                                    {.subregions = 48});
  const auto churchill_job = scaled(churchill_engine.metrics(), scale, 24);

  std::printf("measuring ADAM-like / GATK4-like cleaner stages...\n");
  const align::FmIndex index(workload.reference);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> sam;
  for (const auto& p : workload.sample.pairs) {
    auto [r1, r2] = aligner.align_pair(p);
    sam.push_back(std::move(r1));
    sam.push_back(std::move(r2));
  }
  engine::Engine adam_engine;
  baselines::baseline_mark_duplicates(adam_engine,
                                      adam_engine.parallelize(sam, 4),
                                      baselines::FrameworkProfile::adam());
  baselines::baseline_bqsr(adam_engine, adam_engine.parallelize(sam, 4),
                           workload.reference, workload.truth,
                           baselines::FrameworkProfile::adam());
  // ADAM's coarse, convert-heavy stages: few chunky tasks.
  const auto adam_job = scaled(adam_engine.metrics(), scale, 48);

  engine::Engine gatk_engine;
  baselines::baseline_mark_duplicates(gatk_engine,
                                      gatk_engine.parallelize(sam, 8),
                                      baselines::FrameworkProfile::gatk4());
  baselines::baseline_bqsr(gatk_engine, gatk_engine.parallelize(sam, 8),
                           workload.reference, workload.truth,
                           baselines::FrameworkProfile::gatk4());
  const auto gatk_job = scaled(gatk_engine.metrics(), scale, 128);

  std::printf("measuring Persona-like aligner+cleaner...\n\n");
  engine::Engine persona_engine;
  baselines::persona_align(persona_engine, workload.reference,
                           workload.sample.pairs);
  const auto persona_job = scaled(persona_engine.metrics(), scale, 96);

  std::printf("%-14s %-16s %-10s %6s %13s\n", "Platform", "Pipeline",
              "In-memory", "#Cores", "Efficiency");
  print_row("GPF", "full", "yes", 2048, efficiency(gpf_job, 2048));
  print_row("Churchill", "full", "no", 768, efficiency(churchill_job, 768));
  print_row("HugeSeq", "full", "no", 48, 0.50);        // cited from paper
  print_row("GATK-Queue", "full", "no", 48, 0.50);     // cited from paper
  print_row("ADAM", "Cleaner", "yes", 1024, efficiency(adam_job, 1024));
  print_row("GATK4", "Cleaner&Caller", "yes", 1024,
            efficiency(gatk_job, 1024));
  print_row("Persona-BWA", "Aligner&Cleaner", "no", 512,
            efficiency(persona_job, 512));

  std::printf("\npaper:  GPF >50%% @2048, Churchill 28%% @768, ADAM 14.8%% "
              "@1024, GATK4 41.6%% @1024, Persona 51.1%% @512\n");
  return 0;
}
