// Table 1: I/O vs CPU time fractions of a disk-file WGS pipeline while
// scaling from 1 to 30 concurrent samples on Lustre and NFS.
//
// Paper's measurement:
//   1 sample  /  96 cores, Lustre: 29% I/O   NFS: 25% I/O
//   30 samples / 480 cores, Lustre: 60% I/O   NFS: 74% I/O
//
// Method here: run the Churchill-style (file-based) pipeline on a small
// synthetic sample to measure its per-stage CPU and file-byte profile,
// scale that profile to the paper's 100GB-class inputs, and evaluate the
// shared-filesystem contention model for 1 and 30 concurrent samples.
#include "baselines/churchill.hpp"
#include "bench_common.hpp"
#include "simcluster/sharedfs.hpp"

using namespace gpf;

int main() {
  bench::banner("Table 1 — I/O fraction vs concurrent samples",
                "Table 1 (Sec 1)");

  // Measure the real pipeline profile on a small sample.
  auto workload = bench::build_workload(bench::WorkloadPreset::wgs());
  engine::Engine engine;
  baselines::ChurchillConfig config;
  config.subregions = 16;
  std::printf("profiling file-based pipeline on %zu pairs...\n",
              workload.sample.pairs.size());
  baselines::run_churchill_pipeline(engine, workload.reference,
                                    workload.sample.pairs, workload.truth,
                                    config);

  const double scale = bench::platinum_scale(workload);
  const auto steps =
      baselines::churchill_file_steps(engine.metrics(), scale);
  double cpu = 0.0, bytes = 0.0;
  for (const auto& s : steps) {
    cpu += s.cpu_core_seconds;
    bytes += static_cast<double>(s.read_bytes + s.write_bytes);
  }
  std::printf("scaled profile: %.0f CPU core-hours, %s of stage-file "
              "traffic per sample\n\n",
              cpu / 3600.0, format_bytes(static_cast<std::uint64_t>(bytes))
                                .c_str());

  std::printf("%-32s %-10s %-10s\n", "configuration", "I/O %", "CPU %");
  struct Row {
    std::size_t samples;
    std::size_t cores_per_sample;
    sim::SharedFsConfig fs;
  };
  const Row rows[] = {
      {1, 96, sim::SharedFsConfig::lustre()},
      {1, 96, sim::SharedFsConfig::nfs()},
      {30, 16, sim::SharedFsConfig::lustre()},
      {30, 16, sim::SharedFsConfig::nfs()},
  };
  for (const auto& row : rows) {
    const auto result = sim::run_file_pipeline(
        steps, row.samples, row.cores_per_sample, row.fs);
    char label[64];
    std::snprintf(label, sizeof label, "%zu sample%s %zu cores %s",
                  row.samples, row.samples > 1 ? "s" : " ",
                  row.samples * row.cores_per_sample, row.fs.name.c_str());
    std::printf("%-32s %-10.0f %-10.0f\n", label,
                100.0 * result.io_fraction(), 100.0 * result.cpu_fraction());
  }
  std::printf("\npaper:   1x96 Lustre 29/71, 1x96 NFS 25/75, "
              "30x480 Lustre 60/40, 30x480 NFS 74/26\n");
  return 0;
}
