// Fig 10: end-to-end WGS execution time and speedup, GPF vs Churchill,
// scaling from 128 to 2048 cores on the platinum-genome dataset.
//
// Paper's series (minutes):
//   cores:       128   256   512   1024   2048
//   Churchill:   320   210   150    128     —   (plateaus; ~28% eff.)
//   GPF:         174    96    57     37    24   (>50% efficiency at 2048)
//
// Method: both pipelines run for real on the synthetic sample; their task
// traces are replayed on simulated clusters.  Churchill's parallelism is
// fixed at launch (static subregions + per-stage files); GPF's dynamic
// repartition yields many balanced tasks.
#include "baselines/churchill.hpp"
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

sim::SimJob scale_trace(const engine::EngineMetrics& metrics, double scale,
                        std::size_t replication) {
  sim::TraceOptions options;
  options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(metrics, options);
  job = sim::replicate_tasks(job, replication);
  return sim::scale_job(job, scale / static_cast<double>(replication),
                        1.0 / static_cast<double>(replication));
}

}  // namespace

int main() {
  bench::banner("Fig 10 — cluster scalability: GPF vs Churchill",
                "Fig 10 (Sec 5.2.1)");
  auto preset = bench::WorkloadPreset::wgs();
  // Coverage skew in the paper's regime: hot regions a few-fold above the
  // mean (hotspots make Churchill's static regions imbalanced without
  // reducing it to a one-task straggler).
  preset.hotspot_fraction = 0.05;
  preset.hotspot_multiplier = 4.0;
  auto workload = bench::build_workload(preset);
  const double scale = bench::platinum_scale(workload);

  // --- GPF: dynamic repartition, fused, compressed ----------------------
  std::printf("running GPF pipeline (%zu pairs)...\n",
              workload.sample.pairs.size());
  engine::Engine gpf_engine;
  core::PipelineConfig config;
  config.partition_length = 5'000;
  config.split_threshold = 500;
  core::run_wgs_pipeline(gpf_engine, workload.reference,
                         workload.sample.pairs, workload.truth, config);
  // Enough replicated tasks that 2048 cores stay busy (the real dataset
  // is ~100,000x larger than the sample, so parallelism is never the
  // binding constraint for GPF's fine partitions).
  const sim::SimJob gpf_job = scale_trace(gpf_engine.metrics(), scale, 512);

  // --- Churchill: static subregions, file-based -------------------------
  std::printf("running Churchill pipeline...\n\n");
  engine::Engine churchill_engine;
  baselines::ChurchillConfig churchill_config;
  // Churchill fixes its chromosomal subregions when the analysis starts;
  // the paper ran it with regions sized for about a thousand cores.
  churchill_config.subregions = 64;
  baselines::run_churchill_pipeline(churchill_engine, workload.reference,
                                    workload.sample.pairs, workload.truth,
                                    churchill_config);
  // Its task count is fixed by the subregion choice: replicate only to
  // the equivalent of the bigger dataset's *chunkier* tasks (the region
  // count does not grow with the data — tasks just get heavier).
  const sim::SimJob churchill_job =
      scale_trace(churchill_engine.metrics(), scale, 24);

  std::printf("%-8s %16s %16s %12s %12s\n", "cores", "Churchill",
              "GPF", "Ch.speedup", "GPF speedup");
  double churchill_base = 0.0, gpf_base = 0.0;
  for (const std::size_t cores : {128, 256, 512, 1024, 2048}) {
    const auto cluster = sim::ClusterConfig::with_cores(cores);
    const double churchill_min =
        sim::simulate(churchill_job, cluster).makespan / 60.0;
    const double gpf_min = sim::simulate(gpf_job, cluster).makespan / 60.0;
    if (churchill_base == 0.0) {
      churchill_base = churchill_min;
      gpf_base = gpf_min;
    }
    std::printf("%-8zu %15.0fm %15.0fm %11.2fx %11.2fx\n", cores,
                churchill_min, gpf_min, churchill_base / churchill_min,
                gpf_base / gpf_min);
  }

  const auto eff_cluster = sim::ClusterConfig::with_cores(2048);
  const double gpf_128 =
      sim::simulate(gpf_job, sim::ClusterConfig::with_cores(128)).makespan;
  const double gpf_2048 = sim::simulate(gpf_job, eff_cluster).makespan;
  std::printf("\nGPF parallel efficiency at 2048 cores (vs 128): %.0f%% "
              "(paper: >50%%)\n",
              100.0 * gpf_128 * 128.0 / (gpf_2048 * 2048.0));
  const double ch_1024 =
      sim::simulate(churchill_job, sim::ClusterConfig::with_cores(1024))
          .makespan;
  std::printf("GPF vs Churchill at 1024 cores: %.1fx faster (paper: ~3x)\n",
              ch_1024 / sim::simulate(gpf_job,
                                      sim::ClusterConfig::with_cores(1024))
                            .makespan);
  return 0;
}
