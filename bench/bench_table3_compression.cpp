// Table 3: efficient compression of genomic data — in-memory ("Orgin")
// vs GPF-compressed sizes for the three representative shuffle stages:
//
//   Stage 1   Load FASTQ           20.0GB -> 11.1GB  (best rate)
//   Stage 5   Segment SAM          22.8GB -> 14.4GB  (SAM fields stay raw)
//   Stage 20  Generate Bundle RDD  27.0GB -> 18.7GB  (FASTA+SAM+VCF mix)
//
// We measure the same three stages over the synthetic sample and report
// both absolute bytes (scaled to the paper's dataset size) and ratios.
#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "bench_common.hpp"
#include "compress/record_codec.hpp"
#include "core/partition_info.hpp"
#include "core/processes.hpp"

using namespace gpf;

namespace {

void row(const char* stage_id, const char* what, std::size_t origin,
         std::size_t compressed, double scale) {
  std::printf("%-9s %-22s %10s %12s %8.2fx\n", stage_id, what,
              format_bytes(static_cast<std::uint64_t>(origin * scale))
                  .c_str(),
              format_bytes(static_cast<std::uint64_t>(compressed * scale))
                  .c_str(),
              static_cast<double>(origin) /
                  static_cast<double>(compressed));
}

}  // namespace

int main() {
  bench::banner("Table 3 — genomic data compression per stage",
                "Table 3 (Sec 5.2.4)");
  auto workload = bench::build_workload(bench::WorkloadPreset::wgs());
  const double scale = bench::platinum_scale(workload);

  // Stage 1: Load FASTQ.
  std::vector<FastqRecord> fastq;
  fastq.reserve(workload.sample.pairs.size() * 2);
  for (const auto& p : workload.sample.pairs) {
    fastq.push_back(p.first);
    fastq.push_back(p.second);
  }
  // "Orgin" is the generic serialized form (what Spark would cache and
  // shuffle without the genomic codecs); live C++ object sizes are larger
  // still.
  const std::size_t fastq_origin =
      encode_fastq_batch(fastq, Codec::kKryoLike).size();
  const std::size_t fastq_gpf =
      encode_fastq_batch(fastq, Codec::kGpf).size();

  // Stage 5: Segment SAM (aligned records shuffled by partition).
  std::printf("aligning %zu reads for the SAM stage...\n\n", fastq.size());
  const align::FmIndex index(workload.reference);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> sam;
  sam.reserve(fastq.size());
  for (const auto& p : workload.sample.pairs) {
    auto [r1, r2] = aligner.align_pair(p);
    sam.push_back(std::move(r1));
    sam.push_back(std::move(r2));
  }
  const std::size_t sam_origin =
      encode_sam_batch(sam, Codec::kKryoLike).size();
  const std::size_t sam_gpf = encode_sam_batch(sam, Codec::kGpf).size();

  // Stage 20: Generate Bundle RDD (FASTA + SAM + known VCF per region).
  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 20'000;
  core::PipelineContext ctx(engine, workload.reference, config);
  const core::PartitionInfo info(ctx.contig_infos(),
                                 config.partition_length);
  auto sam_ds =
      engine.parallelize(sam, 8).with_codec(
          core::make_sam_codec(Codec::kGpf));
  auto vcf_ds = engine.parallelize(workload.truth, 2)
                    .with_codec(core::make_vcf_codec(Codec::kGpf));
  auto bundles =
      core::build_region_bundles(ctx, sam_ds, vcf_ds, info, "bench.bundle");
  std::size_t bundle_origin = 0, bundle_gpf = 0;
  for (const auto& part : bundles.partitions()) {
    // Serialize whole partitions, as the engine does.
    bundle_gpf += core::encoded_bundle_bytes(part, Codec::kGpf);
    bundle_origin += core::encoded_bundle_bytes(part, Codec::kKryoLike);
  }

  std::printf("%-9s %-22s %10s %12s %8s\n", "Stage ID", "Description",
              "Orgin", "Compressed", "rate");
  row("1", "Load FASTQ", fastq_origin, fastq_gpf, scale);
  row("5", "Segment SAM", sam_origin, sam_gpf, scale);
  row("20", "Generate Bundle RDD", bundle_origin, bundle_gpf, scale);

  std::printf("\npaper:    Stage 1: 20.0GB->11.1GB (1.80x)   Stage 5: "
              "22.8GB->14.4GB (1.58x)   Stage 20: 27.0GB->18.7GB (1.44x)\n");
  std::printf("expected shape: every stage compresses; FASTQ compresses "
              "best; the bundle mix sits lowest.\n");
  std::printf("\ntotal memory reduction: %.0f%% (paper: ~50%%)\n",
              100.0 * (1.0 - static_cast<double>(fastq_gpf + sam_gpf +
                                                 bundle_gpf) /
                                 static_cast<double>(fastq_origin +
                                                     sam_origin +
                                                     bundle_origin)));
  return 0;
}
