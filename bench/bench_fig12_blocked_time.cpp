// Fig 12: blocked-time analysis — the improvement in job completion time
// if tasks never blocked on disk or network I/O, for three workloads
// (WGS, WES, GenePanel), broken down by pipeline phase.
//
// Paper's finding: eliminating all disk time improves JCT by at most
// ~2.7%, all network time by at most ~1.38% — GPF jobs are CPU-bound, so
// scale-out is feasible (the whole point of Sec 5.3).
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

/// Runs the pipeline for a preset and returns the phase-filtered traces.
struct WorkloadTrace {
  std::string name;
  sim::SimJob whole;
  std::map<std::string, sim::SimJob> by_phase;
};

WorkloadTrace run_workload(const char* name,
                           const bench::WorkloadPreset& preset) {
  auto workload = bench::build_workload(preset);
  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 15'000;
  core::run_wgs_pipeline(engine, workload.reference, workload.sample.pairs,
                         workload.truth, config);

  const double scale = bench::platinum_scale(workload);
  sim::TraceOptions options;
  options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(engine.metrics(), options);
  job = sim::replicate_tasks(job, 128);
  job = sim::scale_job(job, scale / 128.0, 1.0 / 128.0);

  WorkloadTrace trace;
  trace.name = name;
  trace.whole = job;
  for (const auto& stage : job.stages) {
    std::string phase = stage.phase;
    // Group the pipeline's phases the way the paper's Fig 12 does.
    if (phase.find("aligner") != std::string::npos ||
        phase.find("Bwa") != std::string::npos ||
        phase.find("LoadFastq") != std::string::npos) {
      phase = "Aligner";
    } else if (phase.find("caller") != std::string::npos ||
               phase.find("CollectVcf") != std::string::npos) {
      phase = "Caller";
    } else {
      phase = "Cleaner";
    }
    trace.by_phase[phase].stages.push_back(stage);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceSession trace(argc, argv);
  bench::banner("Fig 12 — blocked-time analysis (JCT improvement without "
                "disk / network)",
                "Fig 12 (Sec 5.3.1)");
  const auto cluster = sim::ClusterConfig::with_cores(2048);

  const WorkloadTrace traces[] = {
      run_workload("WGS", bench::WorkloadPreset::wgs()),
      run_workload("WES", bench::WorkloadPreset::wes()),
      run_workload("GenePanel", bench::WorkloadPreset::gene_panel()),
  };

  std::printf("%-12s %16s %16s\n", "workload", "w/o disk", "w/o network");
  for (const auto& t : traces) {
    const auto r = sim::blocked_time_analysis(t.whole, cluster);
    std::printf("%-12s %15.2f%% %15.2f%%\n", t.name.c_str(),
                100.0 * r.disk_improvement(), 100.0 * r.net_improvement());
  }

  std::printf("\nper-phase breakdown (WGS):\n%-12s %16s %16s\n", "phase",
              "w/o disk", "w/o network");
  for (const auto& [phase, job] : traces[0].by_phase) {
    const auto r = sim::blocked_time_analysis(job, cluster);
    std::printf("%-12s %15.2f%% %15.2f%%\n", phase.c_str(),
                100.0 * r.disk_improvement(), 100.0 * r.net_improvement());
  }

  std::printf("\npaper: max improvement w/o disk 2.7%%, w/o network "
              "1.38%% — jobs are CPU-bound.\n");
  if (trace.active()) {
    // Export the WGS replay's virtual timeline next to the measured
    // engine spans (pid 1 vs pid 0 in the same file).
    trace.add_spans(sim::simulate_to_spans(traces[0].whole, cluster));
  }
  return 0;
}
