// Fig 5: quality-score distribution (a) and adjacent-quality-score-delta
// distribution (b) for two samples with different sequencer profiles —
// the statistics that justify the delta+Huffman quality codec.
//
// Paper's observation: raw scores cluster in a narrow high band while
// adjacent deltas concentrate tightly around zero (the vast majority in
// [-10, 10]), so the delta alphabet has far lower entropy.
#include "bench_common.hpp"
#include "simdata/quality_model.hpp"

using namespace gpf;

namespace {

void print_series(const char* name, const Histogram& h, std::int64_t lo,
                  std::int64_t hi, std::int64_t step) {
  std::printf("%s\n", name);
  for (std::int64_t k = lo; k <= hi; k += step) {
    // Aggregate the bucket [k, k+step).
    double pct = 0.0;
    for (std::int64_t j = k; j < k + step; ++j) {
      pct += 100.0 * h.fraction(j);
    }
    std::printf("  %5lld  %6.2f%%  ", static_cast<long long>(k), pct);
    const int bar = static_cast<int>(pct);
    for (int i = 0; i < bar && i < 60; ++i) std::putchar('#');
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  bench::banner("Fig 5 — quality score and adjacent-delta distributions",
                "Fig 5 (Sec 4.2)");

  const struct {
    const char* name;
    simdata::QualityProfile profile;
  } samples[] = {
      {"SRR622461-like", simdata::QualityProfile::srr622461()},
      {"SRR504516-like", simdata::QualityProfile::srr504516()},
      // Extension beyond the paper: modern 8-bin instruments make the
      // delta distribution even sharper.
      {"NovaSeq-binned", simdata::QualityProfile::novaseq_binned()},
  };

  for (const auto& s : samples) {
    const auto dist =
        simdata::collect_distributions(s.profile, 20'000, 100, 13);
    std::printf("--- %s ---\n", s.name);
    print_series("(a) quality score (char value, bucketed by 4):",
                 dist.scores, 33, 89, 4);
    print_series("(b) adjacent quality delta (bucketed by 2):", dist.deltas,
                 -14, 14, 2);
    double within10 = 0.0;
    for (int d = -10; d <= 10; ++d) within10 += dist.deltas.fraction(d);
    std::printf("  deltas within [-10,10]: %.1f%% (paper: 'vast "
                "majority')\n\n",
                100.0 * within10);
  }
  return 0;
}
