// Backend matrix: the same WGS pipeline submitted to every execution
// backend (inprocess / spill / distributed), reporting per-backend wall
// time and shuffle traffic and verifying the VCF outputs are
// bit-identical.  Exit code 2 if any backend disagrees with inprocess.
//
//   bench_backend_matrix [--json[=path]] [--store-budget BYTES]
//       [--workers N]
//
// --json writes a machine-readable report (default
// BENCH_backend_matrix.json) for the CI backend-matrix gate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "exec/backend_factory.hpp"
#include "exec/spilling_backend.hpp"
#include "formats/vcf.hpp"

namespace {

using namespace gpf;

struct BackendRun {
  std::string name;
  double wall_seconds = 0.0;
  std::string vcf;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_spilled = 0;
  std::uint64_t lineage_recoveries = 0;
  std::uint64_t residency_evictions = 0;
  bool matches_inprocess = false;
};

BackendRun run_backend(exec::BackendSpec spec, exec::BackendKind kind,
                       const simdata::Workload& w,
                       const std::vector<VcfRecord>& known,
                       const core::PipelineConfig& config) {
  spec.kind = kind;
  BackendRun run;
  run.name = exec::backend_kind_name(kind);
  const std::unique_ptr<core::ExecutionBackend> backend =
      exec::make_backend(spec);
  Timer timer;
  const core::WgsResult result =
      core::run_wgs_pipeline(*backend, w.reference, w.sample.pairs, known,
                             config);
  run.wall_seconds = timer.seconds();
  for (const auto& t : result.report.timings) {
    run.shuffle_bytes += t.shuffle_write_bytes;
    run.bytes_put += t.backend.bytes_put;
    run.bytes_spilled += t.backend.bytes_spilled;
    run.lineage_recoveries += t.backend.lineage_recoveries;
    run.residency_evictions += t.backend.residency_evictions;
  }
  VcfHeader header;
  for (const auto& c : w.reference.contigs()) {
    header.contigs.push_back(
        {c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  run.vcf = write_vcf(header, result.variants);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  exec::BackendSpec spec;
  spec.worker_binary = GPF_WORKER_BIN;
  try {
    exec::consume_backend_flags(argc, argv, spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_path = "BENCH_backend_matrix.json";
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  bench::banner("Execution backend matrix",
                "plan/backend split: identical plan, three physical homes");

  bench::WorkloadPreset preset = bench::WorkloadPreset::wgs();
  preset.genome_length = 120'000;
  preset.coverage = 10.0;
  const simdata::Workload w = bench::build_workload(preset);
  std::vector<VcfRecord> known;
  for (std::size_t i = 0; i < w.truth.size(); i += 2) {
    known.push_back(w.truth[i]);
  }
  core::PipelineConfig config;
  config.partition_length = 15'000;

  const exec::BackendKind kinds[] = {exec::BackendKind::kInProcess,
                                     exec::BackendKind::kSpill,
                                     exec::BackendKind::kDistributed};
  std::vector<BackendRun> runs;
  for (const exec::BackendKind kind : kinds) {
    runs.push_back(run_backend(spec, kind, w, known, config));
  }

  std::printf("%-12s %8s %14s %12s %12s %10s\n", "backend", "wall",
              "shuffle B", "moved B", "spilled B", "identical");
  bool all_match = true;
  for (BackendRun& run : runs) {
    run.matches_inprocess = run.vcf == runs.front().vcf;
    all_match = all_match && run.matches_inprocess;
    std::printf("%-12s %7.2fs %14llu %12llu %12llu %10s\n", run.name.c_str(),
                run.wall_seconds,
                static_cast<unsigned long long>(run.shuffle_bytes),
                static_cast<unsigned long long>(run.bytes_put),
                static_cast<unsigned long long>(run.bytes_spilled),
                run.matches_inprocess ? "yes" : "MISMATCH");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    char buf[320];
    out << "{\n  \"backends\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const BackendRun& r = runs[i];
      std::snprintf(
          buf, sizeof buf,
          "    {\"name\": \"%s\", \"wall_seconds\": %.3f, "
          "\"shuffle_bytes\": %llu, \"bytes_put\": %llu, "
          "\"bytes_spilled\": %llu, \"lineage_recoveries\": %llu, "
          "\"residency_evictions\": %llu, \"outputs_match\": %s}%s\n",
          r.name.c_str(), r.wall_seconds,
          static_cast<unsigned long long>(r.shuffle_bytes),
          static_cast<unsigned long long>(r.bytes_put),
          static_cast<unsigned long long>(r.bytes_spilled),
          static_cast<unsigned long long>(r.lineage_recoveries),
          static_cast<unsigned long long>(r.residency_evictions),
          r.matches_inprocess ? "true" : "false",
          i + 1 < runs.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_match ? 0 : 2;
}
