// Out-of-core chunk store bench: chunk encode/write and open/decode
// throughput, then the spill/reload pipeline against the all-in-memory
// run at shrinking memory budgets (the residency manager's eviction
// pressure sweep).
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "engine/dataset.hpp"
#include "store/chunk_store.hpp"
#include "store/fastq_chunk.hpp"
#include "store/spill.hpp"

namespace {

using namespace gpf;

std::vector<FastqRecord> synth_reads(std::size_t n, std::uint64_t seed) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  const auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  std::vector<FastqRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FastqRecord rec;
    rec.name = "sim/" + std::to_string(i);
    const std::size_t len = 150;
    rec.sequence.reserve(len);
    rec.quality.reserve(len);
    for (std::size_t b = 0; b < len; ++b) {
      rec.sequence.push_back("ACGT"[next() % 4]);
      // Clustered qualities (small deltas), like real basecallers emit.
      rec.quality.push_back(static_cast<char>(66 + next() % 8));
    }
    out.push_back(std::move(rec));
  }
  return out;
}

std::size_t raw_bytes(const std::vector<FastqRecord>& reads) {
  std::size_t n = 0;
  for (const auto& r : reads) {
    n += r.name.size() + r.sequence.size() + r.quality.size();
  }
  return n;
}

}  // namespace

int main() {
  bench::banner("Out-of-core columnar chunk store",
                "spill/reload vs in-memory (engine + store integration)");

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("gpf_bench_oocore_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const std::size_t kReads = 60'000;
  const std::size_t kParts = 16;
  const std::vector<FastqRecord> reads = synth_reads(kReads, 7);
  const double raw_mb = static_cast<double>(raw_bytes(reads)) / (1 << 20);

  // --- raw chunk write / read throughput -----------------------------------
  {
    store::ChunkStore cs({(dir / "thru").string(), std::size_t{1} << 30});
    const std::span<const FastqRecord> all(reads.data(), reads.size());
    Timer enc;
    const store::ChunkData data = store::encode_fastq_chunk(all);
    const std::vector<std::uint8_t> encoded = store::encode_chunk(data);
    const double enc_s = enc.seconds();
    Timer wr;
    const store::ChunkRef ref = cs.write_encoded("all", encoded, reads.size());
    const double wr_s = wr.seconds();
    Timer rd;
    const auto chunk = cs.open(ref.path);
    store::ChunkColumns cols;
    cols.records = chunk->view().records();
    for (const auto& d : chunk->view().columns()) {
      cols.columns.push_back(
          {d.name, d.encoding, chunk->view().column(d.name)});
    }
    const auto decoded = store::decode_fastq_chunk(cols);
    const double rd_s = rd.seconds();
    const double disk_mb = static_cast<double>(ref.bytes) / (1 << 20);
    std::printf("%-28s %8.1f MB raw -> %6.1f MB disk (%.2fx)\n",
                "chunk encode (1 chunk)", raw_mb, disk_mb, raw_mb / disk_mb);
    std::printf("%-28s %8.1f MB/s\n", "  encode", raw_mb / enc_s);
    std::printf("%-28s %8.1f MB/s (atomic write+fsync)\n", "  write",
                disk_mb / wr_s);
    std::printf("%-28s %8.1f MB/s (%zu records)\n", "  mmap+verify+decode",
                raw_mb / rd_s, decoded.size());
  }

  // --- spill/reload pipeline vs in-memory ----------------------------------
  engine::Engine eng;
  auto ds = eng.parallelize(reads, kParts);
  Timer mem;
  const auto in_memory = ds.collect();
  const double mem_s = mem.seconds();
  std::printf("\n%-14s %10s %10s %10s %10s  %s\n", "budget", "spill s",
              "reload s", "evictions", "resident", "match");

  store::ChunkStore sizing({(dir / "sizing").string(), std::size_t{1} << 30});
  const auto sized = store::SpilledDataset<FastqRecord>::spill(
      ds, store::fastq_chunk_codec(), sizing, "sizing");
  const std::size_t disk = sized.disk_bytes();

  const std::pair<const char*, std::size_t> budgets[] = {
      {"unbounded", std::size_t{1} << 30},
      {"disk/2", disk / 2},
      {"disk/8", disk / 8},
      {"one chunk", disk / kParts},
  };
  int run = 0;
  for (const auto& [label, budget] : budgets) {
    store::ChunkStore cs(
        {(dir / ("run" + std::to_string(run++))).string(), budget});
    Timer spill;
    auto spilled = store::SpilledDataset<FastqRecord>::spill(
        ds, store::fastq_chunk_codec(), cs, "reads");
    const double spill_s = spill.seconds();
    Timer load;
    const auto reloaded = spilled.materialize("reads").collect();
    const double load_s = load.seconds();
    const auto stats = cs.residency().stats();
    std::printf("%-14s %10.3f %10.3f %10llu %10zu  %s\n", label, spill_s,
                load_s, static_cast<unsigned long long>(stats.evictions),
                stats.resident_chunks,
                reloaded == in_memory ? "bit-identical" : "MISMATCH");
  }
  std::printf("%-14s %10.3f %10s %10s %10s  (baseline collect)\n",
              "in-memory", mem_s, "-", "-", "-");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
