// Shared scaffolding for the experiment benches: standard workload
// construction and table printing.  Each bench binary reproduces one table
// or figure of the paper and prints the same rows/series the paper
// reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/wgs_pipeline.hpp"
#include "simdata/read_sim.hpp"

namespace gpf::bench {

/// Standard synthetic sample presets.  Sizes are chosen so a single-core
/// run of each bench completes in tens of seconds; the cluster simulator
/// handles scaling the measured trace to the paper's dataset and core
/// counts.
struct WorkloadPreset {
  std::int64_t genome_length = 150'000;
  int contigs = 3;
  double coverage = 12.0;
  double duplicate_fraction = 0.05;
  double hotspot_fraction = 0.0;
  double hotspot_multiplier = 1.0;
  /// Fraction of the genome under capture targets (0 = WGS).
  double target_fraction = 0.0;
  std::uint64_t seed = 1;

  /// Whole-genome sample with realistic coverage skew.
  static WorkloadPreset wgs();
  /// Exome-like: smaller genome, strong targeting skew.
  static WorkloadPreset wes();
  /// Gene-panel-like: tiny targeted region at very high depth.
  static WorkloadPreset gene_panel();
};

simdata::Workload build_workload(const WorkloadPreset& preset);

/// Prints a bench banner naming the paper artifact being reproduced.
void banner(const std::string& title, const std::string& paper_ref);

/// Scale factor from the bench's synthetic sample to the paper's
/// platinum-genome dataset (146.9 Gbases), used when replaying traces so
/// reported wall-clock times land in the paper's regime.
double platinum_scale(const simdata::Workload& workload);

/// Opt-in tracing for bench binaries.  Construct with (argc, argv): a
/// `--trace-out=PATH` or `--trace-out PATH` argument is consumed (removed
/// from argv so benches that parse positionals are unaffected) and enables
/// the global TraceRecorder.  On destruction the recorder is drained and a
/// Chrome trace_event JSON file is written to PATH; without the flag the
/// session is inert and tracing stays disabled.
class TraceSession {
 public:
  TraceSession(int& argc, char** argv);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends externally-built spans (e.g. a simcluster replay timeline)
  /// to the exported file alongside the recorded engine spans.
  void add_spans(std::vector<trace::Span> spans);

 private:
  std::string path_;
  std::vector<trace::Span> extra_;
};

}  // namespace gpf::bench
