// Micro-benchmarks (google-benchmark) for the compute kernels behind the
// pipeline stages: FM-index search, Smith-Waterman extension, pair-HMM,
// the genomic codecs, and duplicate marking.
#include <benchmark/benchmark.h>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "align/smith_waterman.hpp"
#include "caller/pairhmm.hpp"
#include "cleaner/markdup.hpp"
#include "common/rng.hpp"
#include "compress/record_codec.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

using namespace gpf;

namespace {

const Reference& bench_reference() {
  static Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::genome(200'000, 2, 777));
  return ref;
}

const align::FmIndex& bench_index() {
  static align::FmIndex index(bench_reference());
  return index;
}

std::vector<FastqRecord> bench_reads(std::size_t n) {
  const auto& ref = bench_reference();
  Rng rng(778);
  std::vector<FastqRecord> reads;
  while (reads.size() < n) {
    const auto cid = static_cast<std::int32_t>(rng.below(2));
    const auto& seq = ref.contig(cid).sequence;
    const std::size_t pos = rng.below(seq.size() - 120);
    std::string s = seq.substr(pos, 100);
    if (s.find('N') != std::string::npos) continue;
    reads.push_back({"r" + std::to_string(reads.size()), std::move(s),
                     std::string(100, 'I')});
  }
  return reads;
}

void BM_FmIndexSearch(benchmark::State& state) {
  const auto& index = bench_index();
  const auto reads = bench_reads(256);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = reads[i++ % reads.size()];
    benchmark::DoNotOptimize(
        index.search(std::string_view(r.sequence).substr(0, 19)));
  }
}
BENCHMARK(BM_FmIndexSearch);

void BM_BandedGlobal(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string query(ref.slice(0, 1000, 100));
  const std::string target(ref.slice(0, 995, 110));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_global(query, target, {}, 16));
  }
}
BENCHMARK(BM_BandedGlobal);

void BM_GlocalExtension(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string query(ref.slice(0, 2000, 100));
  const std::string target(ref.slice(0, 1976, 148));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::glocal(query, target, {}, 16));
  }
}
BENCHMARK(BM_GlocalExtension);

void BM_AlignPairedRead(benchmark::State& state) {
  const align::ReadAligner aligner(bench_index());
  const auto& ref = bench_reference();
  const std::string frag(ref.slice(0, 40'000, 350));
  FastqPair pair;
  pair.first = {"p/1", frag.substr(0, 100), std::string(100, 'I')};
  pair.second = {"p/2", simdata::reverse_complement(frag.substr(250, 100)),
                 std::string(100, 'I')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aligner.align_pair(pair));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_AlignPairedRead);

void BM_PairHmm(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string hap(ref.slice(0, 5000, 300));
  const std::string read(ref.slice(0, 5050, 100));
  const std::string qual(100, 'I');
  caller::PairHmm hmm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.log10_likelihood(read, qual, hap));
  }
}
BENCHMARK(BM_PairHmm);

void BM_EncodeFastq(benchmark::State& state) {
  const auto codec = static_cast<Codec>(state.range(0));
  const auto reads = bench_reads(512);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto out = encode_fastq_batch(reads, codec);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
  state.SetLabel(codec_name(codec));
}
BENCHMARK(BM_EncodeFastq)->Arg(0)->Arg(1)->Arg(2);

void BM_DecodeFastq(benchmark::State& state) {
  const auto codec = static_cast<Codec>(state.range(0));
  const auto bytes = encode_fastq_batch(bench_reads(512), codec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_fastq_batch(bytes, codec));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
  state.SetLabel(codec_name(codec));
}
BENCHMARK(BM_DecodeFastq)->Arg(0)->Arg(1)->Arg(2);

void BM_MarkDuplicates(benchmark::State& state) {
  const auto reads = bench_reads(1024);
  Rng rng(779);
  std::vector<SamRecord> records;
  for (const auto& r : reads) {
    SamRecord rec;
    rec.qname = r.name;
    rec.contig_id = 0;
    rec.pos = static_cast<std::int64_t>(rng.below(10'000));  // many dups
    rec.cigar = {{CigarOp::kMatch, 100}};
    rec.sequence = r.sequence;
    rec.quality = r.quality;
    records.push_back(std::move(rec));
  }
  for (auto _ : state) {
    std::vector<SamRecord> work = records;
    benchmark::DoNotOptimize(cleaner::mark_duplicates(work));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * records.size()));
}
BENCHMARK(BM_MarkDuplicates);

}  // namespace
