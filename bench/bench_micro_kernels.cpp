// Micro-benchmarks (google-benchmark) for the compute kernels behind the
// pipeline stages: FM-index search, Smith-Waterman extension, pair-HMM,
// the genomic codecs, and duplicate marking.
//
// Two modes:
//  * default — the usual google-benchmark CLI (filters, repetitions, ...).
//  * --json[=path] — the perf-regression harness: times each hot kernel on
//    its scalar/reference implementation and on the dispatched fast path,
//    checks the two produce identical output, and writes a machine-readable
//    report (default BENCH_kernels.json).  Exit code 2 if any kernel's fast
//    path disagrees with its reference, so CI can use it as a smoke test.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "align/smith_waterman.hpp"
#include "caller/pairhmm.hpp"
#include "cleaner/markdup.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "compress/bitio.hpp"
#include "compress/qual_codec.hpp"
#include "compress/record_codec.hpp"
#include "compress/seq_codec.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/scan.hpp"
#include "formats/vcf.hpp"
#include "simdata/read_sim.hpp"
#include "simdata/reference_gen.hpp"

using namespace gpf;

namespace {

const Reference& bench_reference() {
  static Reference ref = simdata::generate_reference(
      simdata::ReferenceSpec::genome(200'000, 2, 777));
  return ref;
}

const align::FmIndex& bench_index() {
  static align::FmIndex index(bench_reference());
  return index;
}

std::vector<FastqRecord> bench_reads(std::size_t n) {
  const auto& ref = bench_reference();
  Rng rng(778);
  std::vector<FastqRecord> reads;
  while (reads.size() < n) {
    const auto cid = static_cast<std::int32_t>(rng.below(2));
    const auto& seq = ref.contig(cid).sequence;
    const std::size_t pos = rng.below(seq.size() - 120);
    std::string s = seq.substr(pos, 100);
    if (s.find('N') != std::string::npos) continue;
    reads.push_back({"r" + std::to_string(reads.size()), std::move(s),
                     std::string(100, 'I')});
  }
  return reads;
}

void BM_FmIndexSearch(benchmark::State& state) {
  const auto& index = bench_index();
  const auto reads = bench_reads(256);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = reads[i++ % reads.size()];
    benchmark::DoNotOptimize(
        index.search(std::string_view(r.sequence).substr(0, 19)));
  }
}
BENCHMARK(BM_FmIndexSearch);

void BM_BandedGlobal(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string query(ref.slice(0, 1000, 100));
  const std::string target(ref.slice(0, 995, 110));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_global(query, target, {}, 16));
  }
}
BENCHMARK(BM_BandedGlobal);

void BM_GlocalExtension(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string query(ref.slice(0, 2000, 100));
  const std::string target(ref.slice(0, 1976, 148));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::glocal(query, target, {}, 16));
  }
}
BENCHMARK(BM_GlocalExtension);

void BM_AlignPairedRead(benchmark::State& state) {
  const align::ReadAligner aligner(bench_index());
  const auto& ref = bench_reference();
  const std::string frag(ref.slice(0, 40'000, 350));
  FastqPair pair;
  pair.first = {"p/1", frag.substr(0, 100), std::string(100, 'I')};
  pair.second = {"p/2", simdata::reverse_complement(frag.substr(250, 100)),
                 std::string(100, 'I')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aligner.align_pair(pair));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_AlignPairedRead);

void BM_PairHmm(benchmark::State& state) {
  const auto& ref = bench_reference();
  const std::string hap(ref.slice(0, 5000, 300));
  const std::string read(ref.slice(0, 5050, 100));
  const std::string qual(100, 'I');
  caller::PairHmm hmm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.log10_likelihood(read, qual, hap));
  }
}
BENCHMARK(BM_PairHmm);

void BM_EncodeFastq(benchmark::State& state) {
  const auto codec = static_cast<Codec>(state.range(0));
  const auto reads = bench_reads(512);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto out = encode_fastq_batch(reads, codec);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
  state.SetLabel(codec_name(codec));
}
BENCHMARK(BM_EncodeFastq)->Arg(0)->Arg(1)->Arg(2);

void BM_DecodeFastq(benchmark::State& state) {
  const auto codec = static_cast<Codec>(state.range(0));
  const auto bytes = encode_fastq_batch(bench_reads(512), codec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_fastq_batch(bytes, codec));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
  state.SetLabel(codec_name(codec));
}
BENCHMARK(BM_DecodeFastq)->Arg(0)->Arg(1)->Arg(2);

void BM_MarkDuplicates(benchmark::State& state) {
  const auto reads = bench_reads(1024);
  Rng rng(779);
  std::vector<SamRecord> records;
  for (const auto& r : reads) {
    SamRecord rec;
    rec.qname = r.name;
    rec.contig_id = 0;
    rec.pos = static_cast<std::int64_t>(rng.below(10'000));  // many dups
    rec.cigar = {{CigarOp::kMatch, 100}};
    rec.sequence = r.sequence;
    rec.quality = r.quality;
    records.push_back(std::move(rec));
  }
  for (auto _ : state) {
    std::vector<SamRecord> work = records;
    benchmark::DoNotOptimize(cleaner::mark_duplicates(work));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * records.size()));
}
BENCHMARK(BM_MarkDuplicates);

// --- perf-regression harness (--json mode) ---------------------------------

/// Seconds per call of `fn`, min of three repetitions; the iteration count
/// is grown until a repetition lasts at least ~100ms.
template <typename Fn>
double seconds_per_call(Fn&& fn) {
  fn();  // warm-up (touches caches, trains the branch predictors)
  std::size_t iters = 1;
  double best;
  for (;;) {
    Timer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = t.seconds();
    if (s >= 0.1) {
      best = s / static_cast<double>(iters);
      break;
    }
    iters *= 4;
  }
  for (int rep = 0; rep < 2; ++rep) {
    Timer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() / static_cast<double>(iters));
  }
  return best;
}

/// Clean ACGT reads with varied lengths (crossing the 4/8/32-base stride
/// boundaries); with_specials additionally injects N runs, an empty read,
/// and an all-N read to exercise the escape fallback.
std::vector<std::string> harness_sequences(bool with_specials) {
  const auto& ref = bench_reference();
  Rng rng(991);
  std::vector<std::string> seqs;
  while (seqs.size() < 512) {
    const auto& contig =
        ref.contig(static_cast<std::int32_t>(rng.below(2))).sequence;
    const std::size_t len = 120 + rng.below(64);
    const std::size_t pos = rng.below(contig.size() - len - 1);
    std::string s = contig.substr(pos, len);
    for (auto& c : s) {
      if (c != 'A' && c != 'C' && c != 'G' && c != 'T') c = 'A';
    }
    if (with_specials && rng.below(4) == 0) {
      const std::size_t at = rng.below(s.size() - 4);
      const std::size_t run = 1 + rng.below(4);
      for (std::size_t i = at; i < at + run; ++i) s[i] = 'N';
    }
    seqs.push_back(std::move(s));
  }
  if (with_specials) {
    seqs.push_back("");
    seqs.push_back(std::string(31, 'N'));
    seqs.push_back("ACGTN");
  }
  return seqs;
}

/// Correlated quality walks (the delta distribution the codec is built
/// for), one per sequence.
std::vector<std::string> harness_qualities(
    const std::vector<std::string>& seqs) {
  Rng rng(992);
  std::vector<std::string> quals;
  quals.reserve(seqs.size());
  for (const auto& s : seqs) {
    std::string q(s.size(), 'I');
    int cur = 'I';
    for (auto& c : q) {
      cur += static_cast<int>(rng.below(5)) - 2;
      cur = std::clamp(cur, '#' + 0, 'J' + 0);
      c = static_cast<char>(cur);
    }
    quals.push_back(std::move(q));
  }
  return quals;
}

struct SwCase {
  std::string query;
  std::string target;
};

/// Fuzzed query/target pairs: the query is a mutated slice of the target
/// (substitutions plus an occasional 1-base indel).
std::vector<SwCase> harness_sw_cases(std::size_t n, std::size_t qlen,
                                     std::size_t tlen) {
  const auto& ref = bench_reference();
  Rng rng(993);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::vector<SwCase> cases;
  const auto& contig = ref.contig(0).sequence;
  while (cases.size() < n) {
    const std::size_t pos = rng.below(contig.size() - tlen - 1);
    std::string target = contig.substr(pos, tlen);
    if (target.find('N') != std::string::npos) continue;
    std::string query = target.substr((tlen - qlen) / 2, qlen);
    for (int k = 0; k < 5; ++k) {
      query[rng.below(query.size())] = kBases[rng.below(4)];
    }
    if (rng.below(2) == 0) {
      query.erase(rng.below(query.size() - 2), 1);
      query.push_back(kBases[rng.below(4)]);
    }
    cases.push_back({std::move(query), std::move(target)});
  }
  return cases;
}

bool same_alignment(const align::AlignmentResult& a,
                    const align::AlignmentResult& b) {
  return a.score == b.score && a.query_start == b.query_start &&
         a.query_end == b.query_end && a.ref_start == b.ref_start &&
         a.ref_end == b.ref_end && a.mismatches == b.mismatches &&
         cigar_to_string(a.cigar) == cigar_to_string(b.cigar);
}

struct KernelReport {
  std::string name;
  std::string unit;
  double baseline = 0.0;   // reference / scalar implementation
  double optimized = 0.0;  // dispatched fast path
  bool outputs_match = false;
};

KernelReport report_seq_pack(const simd::Level fast) {
  const auto seqs = harness_sequences(/*with_specials=*/false);
  const auto quals = harness_qualities(seqs);
  double bases = 0;
  for (const auto& s : seqs) bases += static_cast<double>(s.size());

  auto pack_all = [&](simd::Level level) {
    // Clean reads leave the quality untouched, so the persistent strings
    // can be passed straight through.
    auto q = quals;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      benchmark::DoNotOptimize(
          gpf::detail::compress_sequence_at(level, seqs[i], q[i]));
    }
  };
  KernelReport r{"seq_pack", "MB/s"};
  const double base_s =
      seconds_per_call([&] { pack_all(simd::Level::kScalar); });
  const double fast_s = seconds_per_call([&] { pack_all(fast); });
  r.baseline = bases / base_s / 1e6;
  r.optimized = bases / fast_s / 1e6;

  // Equivalence over the special-laden set: packed bytes and the rewritten
  // quality must be byte-identical.
  r.outputs_match = true;
  const auto mixed = harness_sequences(/*with_specials=*/true);
  const auto mixed_quals = harness_qualities(mixed);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    std::string qa = mixed_quals[i];
    std::string qb = mixed_quals[i];
    const auto ca =
        gpf::detail::compress_sequence_at(simd::Level::kScalar, mixed[i], qa);
    const auto cb = gpf::detail::compress_sequence_at(fast, mixed[i], qb);
    if (ca.packed != cb.packed || ca.length != cb.length || qa != qb) {
      r.outputs_match = false;
    }
  }
  return r;
}

KernelReport report_seq_unpack(const simd::Level fast) {
  const auto seqs = harness_sequences(/*with_specials=*/false);
  auto quals = harness_qualities(seqs);
  std::vector<CompressedSequence> packed;
  packed.reserve(seqs.size());
  double bases = 0;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    packed.push_back(gpf::detail::compress_sequence_at(simd::Level::kScalar,
                                                       seqs[i], quals[i]));
    bases += static_cast<double>(seqs[i].size());
  }

  auto unpack_all = [&](simd::Level level) {
    for (std::size_t i = 0; i < packed.size(); ++i) {
      benchmark::DoNotOptimize(
          gpf::detail::decompress_sequence_at(level, packed[i], quals[i]));
    }
  };
  KernelReport r{"seq_unpack", "MB/s"};
  const double base_s =
      seconds_per_call([&] { unpack_all(simd::Level::kScalar); });
  const double fast_s = seconds_per_call([&] { unpack_all(fast); });
  r.baseline = bases / base_s / 1e6;
  r.optimized = bases / fast_s / 1e6;

  r.outputs_match = true;
  const auto mixed = harness_sequences(/*with_specials=*/true);
  const auto mixed_quals = harness_qualities(mixed);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    std::string enc_q = mixed_quals[i];
    const auto comp = gpf::detail::compress_sequence_at(simd::Level::kScalar,
                                                        mixed[i], enc_q);
    std::string qa = enc_q;
    std::string qb = enc_q;
    const std::string sa =
        gpf::detail::decompress_sequence_at(simd::Level::kScalar, comp, qa);
    const std::string sb =
        gpf::detail::decompress_sequence_at(fast, comp, qb);
    if (sa != sb || qa != qb) r.outputs_match = false;
  }
  return r;
}

KernelReport report_qual_decode(const simd::Level fast) {
  const auto seqs = harness_sequences(/*with_specials=*/false);
  const auto quals = harness_qualities(seqs);
  const QualityCodec codec = QualityCodec::train(quals);
  BitWriter bw;
  for (const auto& q : quals) codec.encode(q, bw);
  const auto bits = bw.finish();
  double chars = 0;
  for (const auto& q : quals) chars += static_cast<double>(q.size());

  auto decode_all = [&](simd::Level level) {
    BitReader br(std::span(bits.data(), bits.size()));
    for (std::size_t i = 0; i < quals.size(); ++i) {
      benchmark::DoNotOptimize(codec.decode_at(level, br));
    }
  };
  KernelReport r{"qual_decode", "MB/s"};
  const double base_s =
      seconds_per_call([&] { decode_all(simd::Level::kScalar); });
  const double fast_s = seconds_per_call([&] { decode_all(fast); });
  r.baseline = chars / base_s / 1e6;
  r.optimized = chars / fast_s / 1e6;

  r.outputs_match = true;
  BitReader ba(std::span(bits.data(), bits.size()));
  BitReader bb(std::span(bits.data(), bits.size()));
  for (std::size_t i = 0; i < quals.size(); ++i) {
    const std::string da = codec.decode_at(simd::Level::kScalar, ba);
    const std::string db = codec.decode_at(fast, bb);
    if (da != quals[i] || db != quals[i]) r.outputs_match = false;
  }
  return r;
}

KernelReport report_sw(const char* name, bool glocal_mode) {
  const auto cases = glocal_mode ? harness_sw_cases(32, 100, 148)
                                 : harness_sw_cases(32, 100, 110);
  const align::ScoringScheme scoring;
  const int band = 16;

  auto run_fast = [&](const SwCase& c) {
    return glocal_mode ? align::glocal(c.query, c.target, scoring, band)
                       : align::banded_global(c.query, c.target, scoring,
                                              band);
  };
  auto run_ref = [&](const SwCase& c) {
    return glocal_mode
               ? align::detail::glocal_reference(c.query, c.target, scoring,
                                                 band)
               : align::detail::banded_global_reference(c.query, c.target,
                                                        scoring, band);
  };

  KernelReport r{name, "alignments/s"};
  const double base_s = seconds_per_call([&] {
    for (const auto& c : cases) benchmark::DoNotOptimize(run_ref(c));
  });
  const double fast_s = seconds_per_call([&] {
    for (const auto& c : cases) benchmark::DoNotOptimize(run_fast(c));
  });
  r.baseline = static_cast<double>(cases.size()) / base_s;
  r.optimized = static_cast<double>(cases.size()) / fast_s;

  r.outputs_match = true;
  for (const auto& c : cases) {
    if (!same_alignment(run_ref(c), run_fast(c))) r.outputs_match = false;
  }
  return r;
}

// --- text-parsing kernels (block-parallel front-end) -----------------------

/// Synthetic FASTQ with varied read lengths (crossing 64-byte block and
/// chunk boundaries at all phases).
std::string synth_fastq_text(std::size_t target_bytes) {
  Rng rng(995);
  std::string text;
  text.reserve(target_bytes + 512);
  std::size_t i = 0;
  while (text.size() < target_bytes) {
    const std::size_t len = 80 + rng.below(73);
    text += "@read";
    text += std::to_string(i++);
    text += '\n';
    for (std::size_t k = 0; k < len; ++k) {
      text += "ACGT"[rng.below(4)];
    }
    text += "\n+\n";
    for (std::size_t k = 0; k < len; ++k) {
      text += static_cast<char>('!' + rng.below(70));
    }
    text += '\n';
  }
  return text;
}

KernelReport report_fastq_scan(const simd::Level fast) {
  // Validation-only scan over >=64 MB: the parse front-end (line index,
  // record grouping, structural + byte-range checks) without record
  // materialization.  The reference is the deliberately byte-at-a-time
  // parser; the fast path adds mask kernels and, past 1 MiB, the chunked
  // ThreadPool driver.
  const std::string text = synth_fastq_text(std::size_t{64} << 20);
  const double bytes = static_cast<double>(text.size());

  KernelReport r{"fastq_scan", "MB/s"};
  const double base_s = seconds_per_call([&] {
    benchmark::DoNotOptimize(gpf::detail::scan_fastq_reference(text));
  });
  const double fast_s = seconds_per_call([&] {
    benchmark::DoNotOptimize(gpf::detail::scan_fastq_at(fast, text));
  });
  r.baseline = bytes / base_s / 1e6;
  r.optimized = bytes / fast_s / 1e6;

  r.outputs_match =
      gpf::detail::scan_fastq_reference(text) ==
      gpf::detail::scan_fastq_at(fast, text);
  // Error-outcome agreement on malformed variants of the same blob.
  const std::string bad[] = {
      text + "@tail\nACGT\n+\nII\n",          // length mismatch
      text + "@tail\nACGT\n+\n",              // truncated
      text.substr(0, text.size() / 2 + 1),    // random mid-record cut
      "\n" + text,                            // leading blank line
  };
  for (const auto& b : bad) {
    std::string ref_err;
    std::string fast_err;
    try {
      gpf::detail::scan_fastq_reference(b);
    } catch (const std::invalid_argument& e) {
      ref_err = e.what();
    }
    try {
      gpf::detail::scan_fastq_at(fast, b);
    } catch (const std::invalid_argument& e) {
      fast_err = e.what();
    }
    if (ref_err != fast_err) r.outputs_match = false;
  }
  return r;
}

KernelReport report_sam_fields(const simd::Level fast) {
  // Tab-splitting of SAM record lines: separator masks vs the byte-loop
  // reference splitter.
  Rng rng(996);
  std::vector<std::string> lines;
  double bytes = 0;
  for (int i = 0; i < 40'000; ++i) {
    std::string seq;
    std::string qual;
    const std::size_t len = 60 + rng.below(90);
    for (std::size_t k = 0; k < len; ++k) {
      seq += "ACGT"[rng.below(4)];
      qual += static_cast<char>('!' + rng.below(70));
    }
    std::string line = "q" + std::to_string(i) + "\t99\tchr1\t" +
                       std::to_string(1 + rng.below(1'000'000)) + "\t60\t" +
                       std::to_string(len) + "M\t=\t" +
                       std::to_string(1 + rng.below(1'000'000)) + "\t150\t" +
                       seq + "\t" + qual;
    bytes += static_cast<double>(line.size());
    lines.push_back(std::move(line));
  }

  std::vector<std::string_view> fields;
  KernelReport r{"sam_fields", "MB/s"};
  const double base_s = seconds_per_call([&] {
    for (const auto& line : lines) {
      fmt::detail::split_fields_reference(line, '\t', fields);
      benchmark::DoNotOptimize(fields.data());
    }
  });
  const double fast_s = seconds_per_call([&] {
    for (const auto& line : lines) {
      fmt::split_fields(fast, line, '\t', fields);
      benchmark::DoNotOptimize(fields.data());
    }
  });
  r.baseline = bytes / base_s / 1e6;
  r.optimized = bytes / fast_s / 1e6;

  r.outputs_match = true;
  std::vector<std::string_view> ref_fields;
  for (const auto& line : lines) {
    fmt::detail::split_fields_reference(line, '\t', ref_fields);
    fmt::split_fields(fast, line, '\t', fields);
    if (ref_fields != fields) r.outputs_match = false;
  }
  return r;
}

KernelReport report_vcf_records(const simd::Level fast) {
  // Full VCF parse (field split + strict POS/QUAL + record build).
  Rng rng(997);
  std::string text =
      "##fileformat=VCFv4.2\n##contig=<ID=chr1,length=249000000>\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n";
  for (int i = 0; i < 120'000; ++i) {
    text += "chr1\t";
    text += std::to_string(1 + rng.below(200'000'000));
    text += rng.below(2) == 0 ? std::string("\t.\t")
                              : "\trs" + std::to_string(i) + "\t";
    text += "ACGT"[rng.below(4)];
    text += '\t';
    text += "ACGT"[rng.below(4)];
    text += '\t';
    text += std::to_string(rng.below(4000));
    text += "\tPASS\t.\tGT\t0/1\n";
  }
  const double bytes = static_cast<double>(text.size());

  KernelReport r{"vcf_records", "MB/s"};
  const double base_s = seconds_per_call([&] {
    benchmark::DoNotOptimize(gpf::detail::parse_vcf_reference(text));
  });
  const double fast_s = seconds_per_call([&] {
    benchmark::DoNotOptimize(gpf::detail::parse_vcf_at(fast, text));
  });
  r.baseline = bytes / base_s / 1e6;
  r.optimized = bytes / fast_s / 1e6;

  const VcfFile a = gpf::detail::parse_vcf_reference(text);
  const VcfFile b = gpf::detail::parse_vcf_at(fast, text);
  r.outputs_match = a == b;
  return r;
}

int run_json_harness(const std::string& path) {
  const simd::Level fast = simd::active_level();
  std::vector<KernelReport> reports;
  reports.push_back(report_seq_pack(fast));
  reports.push_back(report_seq_unpack(fast));
  reports.push_back(report_qual_decode(fast));
  reports.push_back(report_sw("sw_banded_global", /*glocal_mode=*/false));
  reports.push_back(report_sw("sw_glocal", /*glocal_mode=*/true));
  reports.push_back(report_fastq_scan(fast));
  reports.push_back(report_sam_fields(fast));
  reports.push_back(report_vcf_records(fast));

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[256];
  out << "{\n  \"simd_level\": \"" << simd::level_name(fast)
      << "\",\n  \"threads\": " << ThreadPool::global().size()
      << ",\n  \"kernels\": [\n";
  bool all_match = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const KernelReport& r = reports[i];
    const double speedup = r.baseline > 0 ? r.optimized / r.baseline : 0.0;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"unit\": \"%s\", "
                  "\"baseline\": %.2f, \"optimized\": %.2f, "
                  "\"speedup\": %.2f, \"outputs_match\": %s}%s\n",
                  r.name.c_str(), r.unit.c_str(), r.baseline, r.optimized,
                  speedup, r.outputs_match ? "true" : "false",
                  i + 1 < reports.size() ? "," : "");
    out << buf;
    std::printf("%-18s %10.2f -> %10.2f %-13s %5.2fx  %s\n", r.name.c_str(),
                r.baseline, r.optimized, r.unit.c_str(), speedup,
                r.outputs_match ? "ok" : "MISMATCH");
    all_match = all_match && r.outputs_match;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (simd level: %s)\n", path.c_str(),
              simd::level_name(fast));
  return all_match ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") return run_json_harness("BENCH_kernels.json");
    if (arg.rfind("--json=", 0) == 0) {
      return run_json_harness(std::string(arg.substr(7)));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
