// Fig 11 (d): alignment throughput (gigabases aligned per second) of
// GPF-BWA (paired-end) vs Persona-BWA/SNAP (single-end), with and without
// Persona's AGD format-conversion time.
//
// Paper's argument: Persona's raw aligner throughput looks comparable,
// but FASTQ->AGD import (360 MB/s) and AGD->BAM export (82 MB/s) add a
// conversion time ~200x the alignment time on the platinum dataset, so
// Persona's *real* throughput is about 20x below GPF-BWA.
#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "baselines/personalike.hpp"
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

int main() {
  bench::banner("Fig 11 (d) — aligner throughput vs Persona",
                "Fig 11d (Sec 5.2.3)");
  auto preset = bench::WorkloadPreset::wgs();
  preset.coverage = 6.0;
  auto workload = bench::build_workload(preset);
  const double scale = bench::platinum_scale(workload);
  double bases = 0.0;
  for (const auto& p : workload.sample.pairs) {
    bases += static_cast<double>(p.first.sequence.size() +
                                 p.second.sequence.size());
  }

  // --- GPF-BWA: paired-end, in-memory (no format conversion) -----------
  std::printf("GPF-BWA aligning %zu pairs...\n", workload.sample.pairs.size());
  engine::Engine gpf_engine;
  {
    const align::FmIndex index(workload.reference);
    const align::ReadAligner aligner(index);
    auto ds = gpf_engine.parallelize(workload.sample.pairs, 16);
    ds.flat_map("gpf.bwa", [&aligner](const FastqPair& pair) {
      auto [r1, r2] = aligner.align_pair(pair);
      std::vector<SamRecord> out;
      out.push_back(std::move(r1));
      out.push_back(std::move(r2));
      return out;
    });
  }

  // --- Persona: SNAP single-end + AGD conversion model ------------------
  std::printf("Persona-SNAP aligning %zu single-end reads...\n\n",
              workload.sample.pairs.size() * 2);
  engine::Engine persona_engine;
  const auto persona = baselines::persona_align(
      persona_engine, workload.reference, workload.sample.pairs);

  // Replay both traces; throughput = total bases / makespan.
  auto scaled = [&](const engine::EngineMetrics& metrics) {
    sim::SimJob job = sim::trace_job(metrics);
    job = sim::replicate_tasks(job, 256);
    return sim::scale_job(job, scale / 256.0, scale / 256.0);
  };
  const sim::SimJob gpf_job = scaled(gpf_engine.metrics());
  const sim::SimJob persona_job = scaled(persona_engine.metrics());
  const double total_gbases = bases * scale / 1e9;
  // Conversion is a fixed-rate serial pipe regardless of cores (the
  // paper's measured single-pipe rates).
  const double conversion_seconds = persona.conversion_seconds * scale;

  std::printf("%-8s %14s %14s %18s\n", "cores", "GPF BWA",
              "Persona SNAP", "Persona real");
  std::printf("%-8s %14s %14s %18s\n", "", "(Gbases/s)", "(Gbases/s)",
              "(with conversion)");
  for (const std::size_t cores : {128, 256, 512}) {
    const auto cluster = sim::ClusterConfig::with_cores(cores);
    const double gpf_s = sim::simulate(gpf_job, cluster).makespan;
    const double persona_s = sim::simulate(persona_job, cluster).makespan;
    std::printf("%-8zu %14.3f %14.3f %18.4f\n", cores, total_gbases / gpf_s,
                total_gbases / persona_s,
                total_gbases / (persona_s + conversion_seconds));
  }

  const auto cluster = sim::ClusterConfig::with_cores(512);
  const double gpf_tp =
      total_gbases / sim::simulate(gpf_job, cluster).makespan;
  const double persona_real =
      total_gbases /
      (sim::simulate(persona_job, cluster).makespan + conversion_seconds);
  std::printf("\nGPF-BWA vs Persona real throughput at 512 cores: %.0fx "
              "(paper: ~20x)\n",
              gpf_tp / persona_real);
  std::printf("conversion time at platinum scale: %s (paper: ~3300s, "
              "~200x the alignment time)\n",
              format_duration(conversion_seconds).c_str());
  return 0;
}
