// Fig 13: resource-utilization profile of a full GPF WGS run on the
// 2048-core cluster — aggregated disk throughput (a), network throughput
// (b), and CPU usage (c) over the run, annotated by pipeline phase.
//
// Paper's shape: intensive disk+network at the start (FASTQ -> RDD), high
// sustained CPU through Aligner and Caller, scattered shuffle I/O during
// Cleaner, and a re-partition burst before variant calling.
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

int main(int argc, char** argv) {
  bench::TraceSession trace(argc, argv);
  bench::banner("Fig 13 — cluster resource utilization over a WGS run",
                "Fig 13 (Sec 5.3.2)");
  auto workload = bench::build_workload(bench::WorkloadPreset::wgs());
  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 5'000;
  config.split_threshold = 500;
  std::printf("running WGS pipeline (%zu pairs)...\n\n",
              workload.sample.pairs.size());
  core::run_wgs_pipeline(engine, workload.reference, workload.sample.pairs,
                         workload.truth, config);

  const double scale = bench::platinum_scale(workload);
  sim::TraceOptions options;
  options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(engine.metrics(), options);
  job = sim::replicate_tasks(job, 256);
  job = sim::scale_job(job, scale / 256.0, 1.0 / 256.0);

  const auto cluster = sim::ClusterConfig::with_cores(2048);
  const auto result = sim::simulate(job, cluster);
  const auto samples = sim::utilization_timeline(job, cluster, 40);

  // Phase annotation: which phase dominates each time bucket.
  auto phase_at = [&result](double t) -> const char* {
    for (const auto& s : result.stages) {
      if (t >= s.start && t < s.start + s.duration) {
        if (s.phase.find("aligner") != std::string::npos) return "Align";
        if (s.phase.find("caller") != std::string::npos) return "Caller";
        if (s.phase.find("Load") != std::string::npos) return "Load";
        if (s.phase.find("repart") != std::string::npos) return "Repart";
        return "Clean";
      }
    }
    return "-";
  };

  std::printf("%8s %-7s %6s  %12s %12s  CPU bar\n", "t", "phase", "cpu%",
              "disk", "network");
  for (const auto& s : samples) {
    std::printf("%8s %-7s %5.0f%%  %10s/s %10s/s  ",
                format_duration(s.time).c_str(), phase_at(s.time),
                100.0 * s.cpu_fraction,
                format_bytes(static_cast<std::uint64_t>(s.disk_bytes_per_s))
                    .c_str(),
                format_bytes(static_cast<std::uint64_t>(s.net_bytes_per_s))
                    .c_str());
    const int bar = static_cast<int>(s.cpu_fraction * 40);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }

  std::printf("\nsummary: makespan %s; mean CPU utilization %.0f%%; "
              "total disk %s, network %s\n",
              format_duration(result.makespan).c_str(),
              100.0 * result.total_compute_seconds /
                  (result.makespan *
                   static_cast<double>(cluster.total_cores())),
              format_bytes(job.total_disk_bytes()).c_str(),
              format_bytes(job.total_net_bytes()).c_str());
  std::printf("paper's shape: I/O burst at load, CPU-bound Aligner and "
              "Caller, scattered shuffle writes in Cleaner.\n");
  if (trace.active()) {
    // Export the 2048-core replay timeline (pid 1) next to the measured
    // engine spans (pid 0) captured while the pipeline ran above.
    trace.add_spans(sim::simulate_to_spans(job, cluster));
  }
  return 0;
}
