// Table 4: effect of the Process-level redundancy elimination (Fig 7
// fusion) on the full pipeline, original vs redundant execution:
//
//              paper (256 cores, SRR622461):
//   Running time   21min      vs  18min   (optimized wins)
//   Stage Num      38         vs  22
//   Core Hour      74.95h     vs  63.98h
//   GC Time        7.16h      vs  6.34h
//   Shuffle Time   46.83min   vs  24.29min
//   Shuffle Data   326.1GB    vs  187.0GB
//
// (The paper's column order lists the original pipeline first.)  We run
// the same pipeline twice — fusion off (original) and on (optimized) —
// and report the same six rows, with times from replaying the measured
// traces on a simulated 256-core cluster at platinum-genome scale.
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

struct RunSummary {
  double running_minutes = 0.0;
  std::size_t stages = 0;
  double core_hours = 0.0;
  double gc_hours = 0.0;
  double shuffle_minutes = 0.0;
  double shuffle_gb = 0.0;
};

RunSummary run_once(const simdata::Workload& workload, bool fused,
                    double scale) {
  engine::Engine engine;
  core::PipelineConfig config;
  config.partition_length = 15'000;
  config.split_threshold = 2'000;
  config.eliminate_redundancy = fused;
  core::run_wgs_pipeline(engine, workload.reference, workload.sample.pairs,
                         workload.truth, config);

  // Replay the trace at the paper's dataset scale on 256 cores.
  sim::TraceOptions trace_options;
  trace_options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(engine.metrics(), trace_options);
  // Replicating tasks (rather than inflating per-task time) preserves the
  // task-time distribution while scaling total work.
  const auto replication = static_cast<std::size_t>(scale / 64.0) + 1;
  job = sim::replicate_tasks(job, replication);
  job = sim::scale_job(job, scale / static_cast<double>(replication),
                       1.0 / static_cast<double>(replication));
  // The paper's Table 4 cluster: 256 cores over SATA-disk nodes and a
  // shared fabric — the regime where redundant shuffles actually cost
  // wall-clock time (the faster defaults model page-cache-friendly
  // shuffles and would hide it).
  auto cluster = sim::ClusterConfig::with_cores(256);
  cluster.disk_bw_per_node = 120e6;
  cluster.net_bw_per_node = 300e6;
  const auto result = sim::simulate(job, cluster);

  RunSummary s;
  s.running_minutes = result.makespan / 60.0;
  s.stages = engine.metrics().stage_count();
  s.core_hours = result.core_hours(cluster);
  // GC-proxy: serialization/deserialization and allocation churn scale
  // with the shuffled volume.
  s.gc_hours = engine.metrics().total_serialization_seconds() * scale /
               3600.0;
  double shuffle_seconds = 0.0;
  for (const auto& stage : result.stages) {
    shuffle_seconds += stage.disk_seconds + stage.net_seconds;
  }
  s.shuffle_minutes =
      shuffle_seconds / 60.0 / static_cast<double>(cluster.total_cores());
  s.shuffle_gb = static_cast<double>(
                     engine.metrics().total_shuffle_bytes()) *
                 scale / 1e9;
  return s;
}

}  // namespace

int main() {
  bench::banner("Table 4 — redundant shuffle elimination",
                "Table 4 (Sec 5.2.4)");
  auto preset = bench::WorkloadPreset::wgs();
  preset.coverage = 10.0;
  auto workload = bench::build_workload(preset);
  // SRR622461 is 18.7 Gbases; scale the synthetic sample to match.
  double bases = 0.0;
  for (const auto& p : workload.sample.pairs) {
    bases += static_cast<double>(p.first.sequence.size() +
                                 p.second.sequence.size());
  }
  const double scale = 18.7e9 / bases;

  std::printf("running pipeline with redundant calculations (fusion "
              "off)...\n");
  const RunSummary original = run_once(workload, /*fused=*/false, scale);
  std::printf("running pipeline optimized (fusion on)...\n\n");
  const RunSummary optimized = run_once(workload, /*fused=*/true, scale);

  std::printf("%-16s %14s %14s\n", "Pipeline", "Orignal", "Optimized");
  std::printf("%-16s %12.1fm %12.1fm\n", "Running Time",
              original.running_minutes, optimized.running_minutes);
  std::printf("%-16s %14zu %14zu\n", "Stage Num.", original.stages,
              optimized.stages);
  std::printf("%-16s %13.2fh %13.2fh\n", "Core Hour", original.core_hours,
              optimized.core_hours);
  std::printf("%-16s %13.2fh %13.2fh\n", "GC Time", original.gc_hours,
              optimized.gc_hours);
  std::printf("%-16s %13.2fm %13.2fm\n", "Shuffle Time",
              original.shuffle_minutes, optimized.shuffle_minutes);
  std::printf("%-16s %12.1fGB %12.1fGB\n", "Shuffle Data",
              original.shuffle_gb, optimized.shuffle_gb);

  std::printf("\npaper:            original       optimized\n");
  std::printf("  Running Time        21min           18min\n");
  std::printf("  Stage Num.             38              22\n");
  std::printf("  Core Hour          74.95h          63.98h\n");
  std::printf("  GC Time             7.16h           6.34h\n");
  std::printf("  Shuffle Time     46.83min        24.29min\n");
  std::printf("  Shuffle Data      326.1GB         187.0GB\n");
  std::printf("\nexpected shape: optimization cuts stages by ~40%%, "
              "shuffle data by ~40%%, time/core-hours/GC by 10-20%%.\n");
  return 0;
}
