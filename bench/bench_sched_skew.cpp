// Adaptive-scheduling skew bench: the same element-wise stage over a
// skewed partition layout (one partition ~100x heavier than the rest),
// static one-task-per-partition vs the AdaptiveScheduler's rewritten
// layout.
//
// Methodology (same trace-replay scheme the simulator benches use): the
// stage runs once sequentially to record clean per-task compute times;
// those measured times seed the cost model, and both layouts are
// replayed through the shared LPT scheduler (sched/lpt.hpp) at a fixed
// slot count — so the reported speedup is the makespan ratio of real
// measured work and does not depend on the bench machine's core count.
// The engine then executes both layouts for real (8 workers) to verify
// bit-identical outputs, and a uniform layout bounds the adaptive
// planner's overhead on the path where it must change nothing.
//
//   bench_sched_skew [--json[=path]]
//
// --json writes a machine-readable report (default BENCH_sched.json) and
// exits 2 when any adaptive output differs from its static twin — CI
// gates on the skewed speedup, the uniform overhead, and outputs_match.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "engine/dataset.hpp"
#include "sched/cost_model.hpp"
#include "sched/repartition.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace gpf;

constexpr std::size_t kReplaySlots = 8;

/// Deterministic per-record busywork, heavy enough that a partition's
/// cost is proportional to its record count (like per-read alignment).
std::uint64_t churn(std::uint64_t x) {
  for (int i = 0; i < 600; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x = x * 0x9e3779b97f4a7c15ULL + 1;
  }
  return x;
}

std::vector<std::vector<std::uint64_t>> make_partitions(
    const std::vector<std::size_t>& sizes) {
  std::vector<std::vector<std::uint64_t>> parts(sizes.size());
  std::uint64_t v = 1;
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    parts[p].reserve(sizes[p]);
    for (std::size_t k = 0; k < sizes[p]; ++k) parts[p].push_back(v++);
  }
  return parts;
}

std::vector<std::vector<std::uint64_t>> run_map(
    engine::Engine& engine,
    const std::vector<std::vector<std::uint64_t>>& parts) {
  return engine.make_dataset(parts)
      .map("churn", [](const std::uint64_t& x) { return churn(x); })
      .partitions();
}

/// Minimum wall over `rounds` runs (min-of-N resists scheduler noise).
double min_wall(engine::Engine& engine,
                const std::vector<std::vector<std::uint64_t>>& parts,
                int rounds) {
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    Timer t;
    (void)run_map(engine, parts);
    const double s = t.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_sched.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  bench::banner("Adaptive scheduling under partition skew",
                "skew-aware repartitioning (paper Sec 4.4 regime)");

  // Skewed layout: one partition carries ~100x the records.
  std::vector<std::size_t> skewed(16, 2'000);
  skewed[5] = 200'000;
  const auto skew_parts = make_partitions(skewed);

  // --- 1. Trace: clean sequential per-task times -------------------------
  engine::Engine tracer({.worker_threads = 1});
  (void)run_map(tracer, skew_parts);  // warm-up
  (void)run_map(tracer, skew_parts);
  const auto& traced = tracer.metrics().stages().back();
  std::vector<std::size_t> records(skew_parts.size());
  for (std::size_t p = 0; p < skew_parts.size(); ++p) {
    records[p] = skew_parts[p].size();
  }

  // --- 2. Replay both layouts through the shared LPT scheduler -----------
  sched::CostModel model;
  model.observe_stage("churn", traced.task_seconds, records);
  std::vector<double> costs(records.size());
  for (std::size_t p = 0; p < records.size(); ++p) {
    costs[p] = model.predict_seconds("churn", records[p]);
  }
  sched::RepartitionPolicy policy;
  const sched::StagePlan plan =
      sched::plan_stage(policy, costs, records, kReplaySlots,
                        /*splittable=*/true,
                        model.params().task_overhead_seconds);
  const double speedup = plan.adaptive_makespan > 0
                             ? plan.static_makespan / plan.adaptive_makespan
                             : 0.0;

  std::printf("\nskewed layout (16 partitions, one 100x), measured trace "
              "replayed at %zu slots:\n",
              kReplaySlots);
  std::printf("  %-10s %12s %6s\n", "mode", "makespan", "tasks");
  std::printf("  %-10s %11.3fs %6zu\n", "static", plan.static_makespan,
              records.size());
  std::printf("  %-10s %11.3fs %6zu  (%zu split, %zu merged)\n", "adaptive",
              plan.adaptive_makespan, plan.tasks.size(),
              plan.partitions_split, plan.tasks_merged);
  std::printf("  adopted %s, speedup %.2fx\n", plan.adopted ? "yes" : "NO",
              speedup);

  // --- 3. Real execution: outputs must be bit-identical ------------------
  engine::Engine static_engine({.worker_threads = 8});
  engine::Engine adaptive_engine({.worker_threads = 8});
  adaptive_engine.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  const auto want = run_map(static_engine, skew_parts);
  const auto got = run_map(adaptive_engine, skew_parts);
  const bool skew_match = want == got;
  const auto& astage = adaptive_engine.metrics().stages().back();
  std::printf("  real run: %zu adaptive tasks (%zu split, %zu merged), "
              "outputs %s\n",
              astage.task_count, astage.adaptive_splits,
              astage.adaptive_merges, skew_match ? "match" : "MISMATCH");

  // --- 4. Uniform layout: adaptive must fall back, near-zero overhead ----
  const auto uniform_parts =
      make_partitions(std::vector<std::size_t>(16, 14'000));
  engine::Engine u_static({.worker_threads = 8});
  engine::Engine u_adapt({.worker_threads = 8});
  u_adapt.set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  const bool uniform_match =
      run_map(u_static, uniform_parts) == run_map(u_adapt, uniform_parts);
  const int kRounds = 3;
  const double static_wall = min_wall(u_static, uniform_parts, kRounds);
  const double adapt_wall = min_wall(u_adapt, uniform_parts, kRounds);
  const double overhead_percent =
      static_wall > 0 ? (adapt_wall / static_wall - 1.0) * 100.0 : 0.0;
  const std::size_t u_tasks = u_adapt.metrics().stages().back().task_count;
  std::printf("\nuniform layout (16 equal partitions, min of %d rounds):\n",
              kRounds);
  std::printf("  static %.3fs, adaptive %.3fs (%zu tasks), overhead "
              "%+.1f%%, outputs %s\n",
              static_wall, adapt_wall, u_tasks, overhead_percent,
              uniform_match ? "match" : "MISMATCH");

  const bool outputs_match = skew_match && uniform_match;
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"replay_slots\": %zu,\n"
        "  \"skewed\": {\"static_makespan\": %.4f, "
        "\"adaptive_makespan\": %.4f,\n"
        "    \"speedup\": %.3f, \"adopted\": %s, \"static_tasks\": %zu,\n"
        "    \"adaptive_tasks\": %zu, \"splits\": %zu, \"merges\": %zu},\n"
        "  \"uniform\": {\"static_seconds\": %.4f, \"adaptive_seconds\": "
        "%.4f,\n"
        "    \"overhead_percent\": %.2f, \"adaptive_tasks\": %zu},\n"
        "  \"outputs_match\": %s\n"
        "}\n",
        kReplaySlots, plan.static_makespan, plan.adaptive_makespan, speedup,
        plan.adopted ? "true" : "false", records.size(), plan.tasks.size(),
        plan.partitions_split, plan.tasks_merged, static_wall, adapt_wall,
        overhead_percent, u_tasks, outputs_match ? "true" : "false");
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return outputs_match ? 0 : 2;
}
