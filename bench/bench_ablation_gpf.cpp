// Ablation of GPF's three headline design choices (DESIGN.md "key design
// decisions"): Process-level DAG fusion, dynamic repartition, and genomic
// compression — each toggled independently on the same workload.
//
// Not a paper artifact per se; it decomposes where Fig 10 / Table 4's
// wins come from.
#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

struct Variant {
  const char* name;
  bool fusion;
  bool repartition;
  Codec codec;
};

}  // namespace

int main() {
  bench::banner("Ablation — fusion / dynamic repartition / codec",
                "decomposition of Table 4 and Fig 10 effects");
  auto preset = bench::WorkloadPreset::wgs();
  preset.coverage = 8.0;
  auto workload = bench::build_workload(preset);
  const double scale = bench::platinum_scale(workload);

  const Variant variants[] = {
      {"full GPF", true, true, Codec::kGpf},
      {"no fusion", false, true, Codec::kGpf},
      {"no dyn repart", true, false, Codec::kGpf},
      {"kryo codec", true, true, Codec::kKryoLike},
      {"java codec", true, true, Codec::kJavaLike},
      {"none of them", false, false, Codec::kKryoLike},
  };

  std::printf("%-16s %8s %10s %12s %12s %12s %10s\n", "variant", "stages",
              "shuffleGB", "t@256cores", "t@2048cores", "t@cong.net",
              "partitions");
  double reference_256 = 0.0;
  // "Congested" cluster: the poor-network regime the paper's compression
  // section targets (Sec 4.2) — slow spindles, oversubscribed fabric.
  auto congested = sim::ClusterConfig::with_cores(256);
  congested.disk_bw_per_node = 120e6;
  congested.net_bw_per_node = 250e6;
  for (const auto& v : variants) {
    engine::Engine engine;
    core::PipelineConfig config;
    config.partition_length = 10'000;
    config.split_threshold = 1'000;
    config.eliminate_redundancy = v.fusion;
    config.dynamic_repartition = v.repartition;
    config.codec = v.codec;
    const auto result =
        core::run_wgs_pipeline(engine, workload.reference,
                               workload.sample.pairs, workload.truth, config);

    sim::TraceOptions options;
    options.bytes_scale = scale;
    sim::SimJob job = sim::trace_job(engine.metrics(), options);
    job = sim::replicate_tasks(job, 256);
    job = sim::scale_job(job, scale / 256.0, 1.0 / 256.0);
    const double t256 =
        sim::simulate(job, sim::ClusterConfig::with_cores(256)).makespan;
    const double t2048 =
        sim::simulate(job, sim::ClusterConfig::with_cores(2048)).makespan;
    const double tcong = sim::simulate(job, congested).makespan;
    if (reference_256 == 0.0) reference_256 = t256;
    std::printf("%-16s %8zu %9.1fG %11.0fs %11.0fs %11.0fs %10zu\n", v.name,
                engine.metrics().stage_count(),
                static_cast<double>(engine.metrics().total_shuffle_bytes()) *
                    scale / 1e9,
                t256, t2048, tcong, result.final_partitions);
  }
  std::printf("\nexpected: fusion cuts stages and shuffle volume; "
              "dynamic repartition matters most at 2048 cores; the "
              "genomic codec trades CPU for shuffle volume, so it wins "
              "on the congested-network cluster (the regime paper Sec "
              "4.2 targets) while generic codecs can win when bandwidth "
              "is free.\n");
  return 0;
}
