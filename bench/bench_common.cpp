#include "bench_common.hpp"

namespace gpf::bench {

WorkloadPreset WorkloadPreset::wgs() {
  WorkloadPreset p;
  p.genome_length = 150'000;
  p.contigs = 3;
  p.coverage = 12.0;
  p.hotspot_fraction = 0.02;
  p.hotspot_multiplier = 20.0;
  p.seed = 101;
  return p;
}

WorkloadPreset WorkloadPreset::wes() {
  // Exome: ~10% of the genome under capture targets at elevated depth.
  WorkloadPreset p;
  p.genome_length = 100'000;
  p.contigs = 2;
  p.coverage = 18.0;
  p.target_fraction = 0.10;
  p.seed = 103;
  return p;
}

WorkloadPreset WorkloadPreset::gene_panel() {
  // Panel: a handful of small targets at very high depth.
  WorkloadPreset p;
  p.genome_length = 40'000;
  p.contigs = 1;
  p.coverage = 40.0;
  p.target_fraction = 0.04;
  p.seed = 107;
  return p;
}

simdata::Workload build_workload(const WorkloadPreset& preset) {
  simdata::ReadSimSpec spec;
  spec.coverage = preset.coverage;
  spec.duplicate_fraction = preset.duplicate_fraction;
  spec.hotspot_fraction = preset.hotspot_fraction;
  spec.hotspot_multiplier = preset.hotspot_multiplier;
  spec.seed = preset.seed;
  if (preset.target_fraction > 0.0) {
    // Deterministic capture targets: 2kb exons spread evenly until the
    // requested fraction of the genome is covered.
    const auto target_bases = static_cast<std::int64_t>(
        preset.target_fraction *
        static_cast<double>(preset.genome_length));
    const std::int64_t exon = 2'000;
    const auto n_exons = std::max<std::int64_t>(1, target_bases / exon);
    const std::int64_t stride = preset.genome_length / (n_exons + 1);
    for (std::int64_t e = 0; e < n_exons; ++e) {
      // Targets live on contig 0 for simplicity; contig 0 holds the
      // largest share of the genome.
      spec.targets.push_back({0, (e + 1) * stride % (preset.genome_length / 2),
                              (e + 1) * stride % (preset.genome_length / 2) +
                                  exon,
                              "exon" + std::to_string(e)});
    }
  }
  return simdata::make_workload(preset.genome_length, preset.contigs, spec);
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s (Li et al., PPoPP'18)\n\n", paper_ref.c_str());
}

double platinum_scale(const simdata::Workload& workload) {
  double bases = 0.0;
  for (const auto& p : workload.sample.pairs) {
    bases += static_cast<double>(p.first.sequence.size() +
                                 p.second.sequence.size());
  }
  return 146.9e9 / bases;
}

}  // namespace gpf::bench
