#include "bench_common.hpp"

#include <iterator>

namespace gpf::bench {

WorkloadPreset WorkloadPreset::wgs() {
  WorkloadPreset p;
  p.genome_length = 150'000;
  p.contigs = 3;
  p.coverage = 12.0;
  p.hotspot_fraction = 0.02;
  p.hotspot_multiplier = 20.0;
  p.seed = 101;
  return p;
}

WorkloadPreset WorkloadPreset::wes() {
  // Exome: ~10% of the genome under capture targets at elevated depth.
  WorkloadPreset p;
  p.genome_length = 100'000;
  p.contigs = 2;
  p.coverage = 18.0;
  p.target_fraction = 0.10;
  p.seed = 103;
  return p;
}

WorkloadPreset WorkloadPreset::gene_panel() {
  // Panel: a handful of small targets at very high depth.
  WorkloadPreset p;
  p.genome_length = 40'000;
  p.contigs = 1;
  p.coverage = 40.0;
  p.target_fraction = 0.04;
  p.seed = 107;
  return p;
}

simdata::Workload build_workload(const WorkloadPreset& preset) {
  simdata::ReadSimSpec spec;
  spec.coverage = preset.coverage;
  spec.duplicate_fraction = preset.duplicate_fraction;
  spec.hotspot_fraction = preset.hotspot_fraction;
  spec.hotspot_multiplier = preset.hotspot_multiplier;
  spec.seed = preset.seed;
  if (preset.target_fraction > 0.0) {
    // Deterministic capture targets: 2kb exons spread evenly until the
    // requested fraction of the genome is covered.
    const auto target_bases = static_cast<std::int64_t>(
        preset.target_fraction *
        static_cast<double>(preset.genome_length));
    const std::int64_t exon = 2'000;
    const auto n_exons = std::max<std::int64_t>(1, target_bases / exon);
    const std::int64_t stride = preset.genome_length / (n_exons + 1);
    for (std::int64_t e = 0; e < n_exons; ++e) {
      // Targets live on contig 0 for simplicity; contig 0 holds the
      // largest share of the genome.
      spec.targets.push_back({0, (e + 1) * stride % (preset.genome_length / 2),
                              (e + 1) * stride % (preset.genome_length / 2) +
                                  exon,
                              "exon" + std::to_string(e)});
    }
  }
  return simdata::make_workload(preset.genome_length, preset.contigs, spec);
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s (Li et al., PPoPP'18)\n\n", paper_ref.c_str());
}

TraceSession::TraceSession(int& argc, char** argv) {
  const std::string kFlag = "--trace-out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int consumed = 0;
    if (arg.rfind(kFlag + "=", 0) == 0) {
      path_ = arg.substr(kFlag.size() + 1);
      consumed = 1;
    } else if (arg == kFlag && i + 1 < argc) {
      path_ = argv[i + 1];
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed <= argc; ++j) {
        argv[j] = argv[j + consumed];
      }
      argc -= consumed;
      break;
    }
  }
  if (!path_.empty()) {
    trace::TraceRecorder::global().clear();
    trace::TraceRecorder::global().enable();
  }
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  trace::TraceRecorder::global().disable();
  std::vector<trace::Span> spans = trace::TraceRecorder::global().drain();
  spans.insert(spans.end(), std::make_move_iterator(extra_.begin()),
               std::make_move_iterator(extra_.end()));
  if (trace::write_chrome_trace_file(path_, spans)) {
    std::printf("\ntrace written to %s (%zu spans) — open in "
                "chrome://tracing or https://ui.perfetto.dev\n",
                path_.c_str(), spans.size());
  } else {
    std::fprintf(stderr, "failed to write trace to %s\n", path_.c_str());
  }
}

void TraceSession::add_spans(std::vector<trace::Span> spans) {
  extra_.insert(extra_.end(), std::make_move_iterator(spans.begin()),
                std::make_move_iterator(spans.end()));
}

double platinum_scale(const simdata::Workload& workload) {
  double bases = 0.0;
  for (const auto& p : workload.sample.pairs) {
    bases += static_cast<double>(p.first.sequence.size() +
                                 p.second.sequence.size());
  }
  return 146.9e9 / bases;
}

}  // namespace gpf::bench
