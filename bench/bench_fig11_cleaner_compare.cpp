// Fig 11 (a)-(c): strong-scaling comparison of the Cleaner-stage
// algorithms — GPF vs ADAM vs GATK4 (vs Persona for duplicate marking) —
// on 128..1024 cores.
//
// Paper's headline ratios (NA12878, equivalent implementations):
//   Mark Duplicate:    GPF 7.3x over ADAM, 6.3x over GATK4, ~10x Persona
//   BQSR:              GPF 6.4x over ADAM, 8.4x over GATK4
//   INDEL realignment: GPF 7.6x over ADAM
//
// Every engine here runs the same algorithm kernels; the gaps come from
// the baseline execution patterns (per-stage format conversion, generic
// serialization, re-partitioning, object churn) that GPF eliminates.
#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "baselines/adamlike.hpp"
#include "baselines/personalike.hpp"
#include "bench_common.hpp"
#include "cleaner/bqsr.hpp"
#include "cleaner/indel_realign.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "core/partition_info.hpp"
#include "core/processes.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/trace.hpp"

using namespace gpf;

namespace {

constexpr std::size_t kCores[] = {128, 256, 512, 1024};

sim::SimJob scaled(const engine::EngineMetrics& metrics, double scale) {
  sim::TraceOptions options;
  options.bytes_scale = scale;
  sim::SimJob job = sim::trace_job(metrics, options);
  job = sim::replicate_tasks(job, 256);
  return sim::scale_job(job, scale / 256.0, 1.0 / 256.0);
}

void print_rows(const char* title,
                const std::vector<std::pair<std::string, sim::SimJob>>& jobs) {
  std::printf("%s\n%-8s", title, "cores");
  for (const auto& [name, job] : jobs) std::printf(" %14s", name.c_str());
  std::printf("\n");
  for (const std::size_t cores : kCores) {
    std::printf("%-8zu", cores);
    for (const auto& [name, job] : jobs) {
      const auto cluster = sim::ClusterConfig::with_cores(cores);
      std::printf(" %13.0fs", sim::simulate(job, cluster).makespan);
    }
    std::printf("\n");
  }
  // Speedup of the first column (GPF) over each other at 512 cores.
  const auto cluster = sim::ClusterConfig::with_cores(512);
  const double gpf = sim::simulate(jobs[0].second, cluster).makespan;
  std::printf("GPF speedup at 512 cores:");
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    std::printf("  %.1fx vs %s",
                sim::simulate(jobs[i].second, cluster).makespan / gpf,
                jobs[i].first.c_str());
  }
  std::printf("\n\n");
}

/// GPF's standalone cleaner stages: region bundles built once with GPF
/// codecs, algorithm applied over bundles.
engine::Dataset<core::RegionBundle> gpf_bundles(
    core::PipelineContext& ctx, const std::vector<SamRecord>& sam,
    const std::vector<VcfRecord>& known, const core::PartitionInfo& info) {
  auto sam_ds = ctx.engine()
                    .parallelize(sam, 8)
                    .with_codec(core::make_sam_codec(Codec::kGpf));
  auto vcf_ds = ctx.engine()
                    .parallelize(known, 2)
                    .with_codec(core::make_vcf_codec(Codec::kGpf));
  return core::build_region_bundles(ctx, sam_ds, vcf_ds, info, "gpf");
}

}  // namespace

int main() {
  bench::banner("Fig 11 (a)-(c) — Cleaner-stage comparison vs ADAM / "
                "GATK4 / Persona",
                "Fig 11 (Sec 5.2.2, 5.2.3)");
  auto preset = bench::WorkloadPreset::wgs();
  preset.coverage = 8.0;
  auto workload = bench::build_workload(preset);
  const double scale = bench::platinum_scale(workload);

  std::printf("aligning %zu pairs once (shared input)...\n\n",
              workload.sample.pairs.size());
  const align::FmIndex index(workload.reference);
  const align::ReadAligner aligner(index);
  std::vector<SamRecord> sam;
  for (const auto& p : workload.sample.pairs) {
    auto [r1, r2] = aligner.align_pair(p);
    sam.push_back(std::move(r1));
    sam.push_back(std::move(r2));
  }

  core::PipelineConfig config;
  config.partition_length = 15'000;

  // ---------------- (a) Mark Duplicate ---------------------------------
  std::vector<std::pair<std::string, sim::SimJob>> markdup_jobs;
  {
    engine::Engine e;  // GPF
    auto ds = e.parallelize(sam, 8).with_codec(
        core::make_sam_codec(Codec::kGpf));
    auto shuffled =
        ds.shuffle("gpf.markdup.shuffle", 16, [](const SamRecord& rec) {
          const auto sig = cleaner::fragment_signature(rec);
          return static_cast<std::uint64_t>(sig.contig_id) * 1000003ULL +
                 static_cast<std::uint64_t>(sig.unclipped_start);
        });
    shuffled.map_partitions<SamRecord>(
        "gpf.markdup.mark", [](const std::vector<SamRecord>& part) {
          std::vector<SamRecord> out = part;
          cleaner::mark_duplicates(out);
          return out;
        });
    markdup_jobs.emplace_back("GPF", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // ADAM
    baselines::baseline_mark_duplicates(
        e, e.parallelize(sam, 8), baselines::FrameworkProfile::adam());
    markdup_jobs.emplace_back("ADAM", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // GATK4
    baselines::baseline_mark_duplicates(
        e, e.parallelize(sam, 8), baselines::FrameworkProfile::gatk4());
    markdup_jobs.emplace_back("GATK4", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // Persona
    baselines::persona_mark_duplicates(e, e.parallelize(sam, 8));
    markdup_jobs.emplace_back("Persona", scaled(e.metrics(), scale));
  }
  print_rows("(a) Mark Duplicate time (seconds)", markdup_jobs);

  // ---------------- (b) BQSR -------------------------------------------
  std::vector<std::pair<std::string, sim::SimJob>> bqsr_jobs;
  {
    engine::Engine e;  // GPF
    core::PipelineContext ctx(e, workload.reference, config);
    const core::PartitionInfo info(ctx.contig_infos(),
                                   config.partition_length);
    auto bundles = gpf_bundles(ctx, sam, workload.truth, info);
    auto tables = bundles.map(
        "gpf.bqsr.collect", [&workload](const core::RegionBundle& b) {
          const cleaner::KnownSites known(b.known);
          return collect_covariates(b.sam, workload.reference, known);
        });
    cleaner::RecalTable merged;
    for (const auto& part : tables.partitions()) {
      for (const auto& t : part) merged.merge(t);
    }
    bundles.map("gpf.bqsr.apply", [&merged](const core::RegionBundle& in) {
      core::RegionBundle b = in;
      cleaner::apply_recalibration(b.sam, merged);
      return b;
    });
    bqsr_jobs.emplace_back("GPF", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // ADAM
    baselines::baseline_bqsr(e, e.parallelize(sam, 8), workload.reference,
                             workload.truth,
                             baselines::FrameworkProfile::adam());
    bqsr_jobs.emplace_back("ADAM", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // GATK4
    baselines::baseline_bqsr(e, e.parallelize(sam, 8), workload.reference,
                             workload.truth,
                             baselines::FrameworkProfile::gatk4());
    bqsr_jobs.emplace_back("GATK4", scaled(e.metrics(), scale));
  }
  print_rows("(b) Base Recalibration time (seconds)", bqsr_jobs);

  // ---------------- (c) INDEL realignment -------------------------------
  std::vector<std::pair<std::string, sim::SimJob>> indel_jobs;
  {
    engine::Engine e;  // GPF
    core::PipelineContext ctx(e, workload.reference, config);
    const core::PartitionInfo info(ctx.contig_infos(),
                                   config.partition_length);
    auto bundles = gpf_bundles(ctx, sam, workload.truth, info);
    bundles.map("gpf.indel.realign", [&workload](const core::RegionBundle& in) {
      core::RegionBundle b = in;
      const cleaner::RealignOptions options;
      const auto targets =
          cleaner::find_realign_targets(b.sam, b.known, options);
      cleaner::realign_reads(b.sam, workload.reference, targets, options);
      return b;
    });
    indel_jobs.emplace_back("GPF", scaled(e.metrics(), scale));
  }
  {
    engine::Engine e;  // ADAM
    baselines::baseline_indel_realign(e, e.parallelize(sam, 8),
                                      workload.reference, workload.truth,
                                      baselines::FrameworkProfile::adam());
    indel_jobs.emplace_back("ADAM", scaled(e.metrics(), scale));
  }
  print_rows("(c) INDEL Realignment time (seconds)", indel_jobs);

  std::printf("paper: GPF over ADAM — markdup 7.3x, BQSR 6.4x, indel 7.6x; "
              "over GATK4 — markdup 6.3x, BQSR 8.4x; markdup ~10x over "
              "Persona.\n");
  return 0;
}
