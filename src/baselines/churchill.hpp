// Churchill-like baseline (Kelly et al., Genome Biology 2015): full WGS
// pipeline parallelization with
//   * static genomic subregions with fixed boundaries decided before the
//     analysis starts ("the chromosomal subregion is decided at the
//     beginning of the analysis", paper Sec 5.2.1), and
//   * disk-file intermediates between every stage (workflow-managed tools
//     communicating via SAM/BAM files).
//
// Those two properties are exactly what limit its scalability in the
// paper's Fig 10: static regions inherit the coverage skew (no dynamic
// split), and every stage boundary pays file write+read.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/record_codec.hpp"
#include "engine/dataset.hpp"
#include "formats/fasta.hpp"
#include "formats/fastq.hpp"
#include "formats/vcf.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/sharedfs.hpp"

namespace gpf::baselines {

struct ChurchillConfig {
  /// Number of static genomic subregions (Churchill uses one per core at
  /// launch time; boundaries never change).
  std::size_t subregions = 64;
  /// Serializer used for the intermediate "files".
  Codec codec = Codec::kKryoLike;
};

struct ChurchillResult {
  std::vector<VcfRecord> variants;
  /// Bytes written to + read from intermediate stage files.
  std::uint64_t file_bytes = 0;
  std::size_t duplicates_marked = 0;
};

/// Runs the Churchill-style pipeline on the engine, recording stage
/// metrics (including the file I/O volumes as stage input/output bytes)
/// into the engine's metrics for simulator replay.
ChurchillResult run_churchill_pipeline(engine::Engine& engine,
                                       const Reference& reference,
                                       std::vector<FastqPair> pairs,
                                       std::vector<VcfRecord> known_sites,
                                       const ChurchillConfig& config = {});

/// Derives the Table 1 file-pipeline step list (CPU core-seconds + file
/// bytes per WGS stage) from a measured Churchill run, scaled by
/// `scale` so the motivation experiment can model the paper's 100GB+
/// inputs.
std::vector<sim::FilePipelineStep> churchill_file_steps(
    const engine::EngineMetrics& metrics, double scale);

}  // namespace gpf::baselines
