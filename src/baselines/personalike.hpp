// Persona-like baseline (Byma et al., USENIX ATC'17) for the aligner
// throughput comparison (paper Fig 11 d) and the duplicate-marking
// comparison (Fig 11 a).
//
// Persona's properties the paper leans on:
//   * it integrates SNAP (hash-seed aligner) and aligns single-end reads;
//   * everything must first be imported into its AGD format — the paper
//     measures FASTQ->AGD at 360 MB/s and AGD->BAM at 82 MB/s, a
//     conversion cost that dwarfs alignment on real datasets.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/dataset.hpp"
#include "formats/fasta.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"

namespace gpf::baselines {

struct PersonaConfig {
  /// AGD import/export rates, bytes/second (the paper's measured values).
  double fastq_to_agd_bw = 360e6;
  double agd_to_bam_bw = 82e6;
};

struct PersonaAlignResult {
  std::vector<SamRecord> records;
  /// Bases aligned, and the pure-alignment compute core-seconds.
  std::uint64_t bases = 0;
  double align_core_seconds = 0.0;
  /// Modeled conversion wall seconds for the input/output volumes.
  double conversion_seconds = 0.0;

  double throughput_gbases_per_s(double wall_seconds) const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(bases) / 1e9 / wall_seconds;
  }
};

/// Runs the SNAP-like single-end aligner over both mates of every pair
/// (Persona treats them as independent single-end reads), recording
/// stages into the engine metrics and modeling AGD conversion time.
PersonaAlignResult persona_align(engine::Engine& engine,
                                 const Reference& reference,
                                 const std::vector<FastqPair>& pairs,
                                 const PersonaConfig& config = {});

/// Persona-style duplicate marking: single-end signatures only (no mate
/// information in AGD's flat record stream), hash-partitioned.
engine::Dataset<SamRecord> persona_mark_duplicates(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input);

}  // namespace gpf::baselines
