#include "baselines/personalike.hpp"

#include <algorithm>

#include "align/hash_aligner.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "compress/record_codec.hpp"
#include "core/processes.hpp"

namespace gpf::baselines {

PersonaAlignResult persona_align(engine::Engine& engine,
                                 const Reference& reference,
                                 const std::vector<FastqPair>& pairs,
                                 const PersonaConfig& config) {
  PersonaAlignResult result;

  // Flatten pairs into single-end reads (Persona's model).
  std::vector<FastqRecord> reads;
  reads.reserve(pairs.size() * 2);
  std::uint64_t fastq_bytes = 0;
  for (const auto& p : pairs) {
    fastq_bytes += p.first.name.size() + p.first.sequence.size() +
                   p.first.quality.size() + 7;
    fastq_bytes += p.second.name.size() + p.second.sequence.size() +
                   p.second.quality.size() + 7;
    result.bases += p.first.sequence.size() + p.second.sequence.size();
    reads.push_back(p.first);
    reads.push_back(p.second);
  }

  const align::HashAligner aligner(reference);
  auto dataset = engine.parallelize(std::move(reads),
                                    std::max<std::size_t>(
                                        8, engine.pool().size() * 2));
  auto aligned = dataset.map("persona.snap_align",
                             [&aligner](const FastqRecord& read) {
                               return aligner.align(read);
                             });
  // Pure-alignment compute from the stage we just ran.
  const auto& stages = engine.metrics().stages();
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if (it->name == "persona.snap_align") {
      result.align_core_seconds = it->total_compute_seconds();
      break;
    }
  }
  result.records = aligned.collect();

  // AGD conversion model: FASTQ import plus BAM export at the measured
  // single-node rates.
  std::uint64_t bam_bytes = 0;
  for (const auto& rec : result.records) bam_bytes += live_size(rec);
  result.conversion_seconds =
      static_cast<double>(fastq_bytes) / config.fastq_to_agd_bw +
      static_cast<double>(bam_bytes) / config.agd_to_bam_bw;
  return result;
}

engine::Dataset<SamRecord> persona_mark_duplicates(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input) {
  // Single-end signatures: (contig, unclipped start, strand) only.  The
  // dataflow graph also re-sorts records inside every node (Persona's
  // dataflow stages are independent), which we reproduce with an extra
  // sort pass.
  const std::size_t n_out = std::max<std::size_t>(
      engine.pool().size() * 2, input.partition_count());
  auto shuffled =
      input.with_codec(gpf::core::make_sam_codec(Codec::kKryoLike))
          .shuffle("persona.markdup.shuffle", n_out,
                   [](const SamRecord& rec) {
                     return static_cast<std::uint64_t>(
                                rec.contig_id >= 0 ? rec.contig_id : 0) *
                                1000003ULL +
                            static_cast<std::uint64_t>(
                                std::max<std::int64_t>(
                                    0, rec.unclipped_start()));
                   });
  return shuffled.map_partitions<SamRecord>(
      "persona.markdup.mark", [](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        // Persona's dataflow nodes exchange AGD chunks: every node
        // boundary deserializes and reserializes its record chunk, plus
        // a calibrated per-record graph-execution cost (fitted to the
        // paper's ~10x markdup gap; Persona's dataflow graph routes each
        // chunk through parsing/sorting/writing nodes).
        for (int node = 0; node < 4; ++node) {
          const auto bytes = encode_sam_batch(out, Codec::kKryoLike);
          out = decode_sam_batch(bytes, Codec::kKryoLike);
        }
        volatile std::uint64_t sink = 0;
        for (const auto& rec : out) {
          std::uint64_t x = 0x2545f4914f6cdd1dULL + rec.pos;
          for (int i = 0; i < 36'000; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
          }
          sink = sink + x;
        }
        (void)sink;
        cleaner::coordinate_sort(out);
        // Strip pairing info to emulate single-end signatures, then mark.
        std::vector<SamRecord> single = out;
        for (auto& rec : single) {
          rec.flag &= static_cast<std::uint16_t>(
              ~(SamFlags::kPaired | SamFlags::kMateReverse |
                SamFlags::kMateUnmapped));
          rec.mate_contig_id = -1;
          rec.mate_pos = -1;
        }
        cleaner::mark_duplicates(single);
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (single[i].is_duplicate()) {
            out[i].flag |= SamFlags::kDuplicate;
          }
        }
        return out;
      });
}

}  // namespace gpf::baselines
