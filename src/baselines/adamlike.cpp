#include "baselines/adamlike.hpp"

#include <algorithm>
#include <memory>

#include "cleaner/bqsr.hpp"
#include "cleaner/indel_realign.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "compress/record_codec.hpp"
#include "core/processes.hpp"

namespace gpf::baselines {
namespace {

/// Emulated JVM object churn: allocate and touch a handful of small heap
/// blocks per record (the htsjdk/Avro object graph), then burn the
/// calibrated per-record framework cost (see FrameworkProfile).
void object_churn(const SamRecord& rec, const FrameworkProfile& profile) {
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < profile.object_churn_allocs; ++i) {
    // Sizes mimic boxed fields and small strings.
    auto block = std::make_unique<std::uint8_t[]>(
        16 + (i % 4) * 8 + (rec.sequence.size() & 15));
    block[0] = static_cast<std::uint8_t>(i);
    sink = sink + block[0];
  }
  // The LCG chain is serially dependent: ~1.6ns per step, so ~5 steps
  // per 8 nanoseconds of modeled cost.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL + rec.pos;
  const std::int64_t steps = profile.overhead_ns_per_record * 5 / 8;
  for (std::int64_t i = 0; i < steps; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  sink = sink + x;
  (void)sink;
}

/// One format-conversion round trip: serialize each record into the
/// framework representation and parse it back.
engine::Dataset<SamRecord> convert_stage(
    const engine::Dataset<SamRecord>& input, const FrameworkProfile& profile,
    const std::string& stage_name) {
  const Codec codec = profile.codec;
  return input.map_partitions<SamRecord>(
      stage_name, [codec, profile](const std::vector<SamRecord>& part) {
        const auto bytes = encode_sam_batch(part, codec);
        auto out = decode_sam_batch(bytes, codec);
        for (const auto& rec : out) object_churn(rec, profile);
        return out;
      });
}

engine::Dataset<SamRecord> maybe_convert(
    const engine::Dataset<SamRecord>& input, const FrameworkProfile& profile,
    const std::string& prefix, int which) {
  if (profile.conversions_per_stage <= which) return input;
  return convert_stage(input, profile,
                       prefix + (which == 0 ? ".convert_in" : ".convert_out"));
}

}  // namespace

FrameworkProfile FrameworkProfile::adam() {
  // ADAM converts SAM into its Avro/Parquet schema on entry and back to
  // SAM on exit of every tool invocation, materializing an Avro object
  // graph per record per pass.
  return {"adam", Codec::kKryoLike, 2, 24, 18'000, 320, 8};
}

FrameworkProfile FrameworkProfile::gatk4() {
  // GATK4-Spark keeps htsjdk objects (one conversion) but its read
  // transforms materialize heavy per-record object graphs and per-base
  // covariate key objects.
  return {"gatk4", Codec::kKryoLike, 2, 24, 15'000, 560, 6};
}

FrameworkProfile FrameworkProfile::none() {
  return {"raw", Codec::kKryoLike, 0, 0, 0, 0, 1};
}

engine::Dataset<SamRecord> baseline_mark_duplicates(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const FrameworkProfile& profile) {
  const std::string prefix = std::string(profile.name) + ".markdup";
  auto converted = maybe_convert(input, profile, prefix, 0);
  const std::size_t n_out = std::max<std::size_t>(
      engine.pool().size() * 2, input.partition_count());
  auto shuffled =
      converted.with_codec(gpf::core::make_sam_codec(profile.codec))
          .shuffle(prefix + ".shuffle", n_out, [](const SamRecord& rec) {
            const auto sig = cleaner::fragment_signature(rec);
            return static_cast<std::uint64_t>(sig.contig_id) * 1000003ULL +
                   static_cast<std::uint64_t>(sig.unclipped_start);
          });
  auto marked = shuffled.map_partitions<SamRecord>(
      prefix + ".mark", [](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        cleaner::mark_duplicates(out);
        return out;
      });
  return maybe_convert(marked, profile, prefix, 1);
}

engine::Dataset<SamRecord> baseline_bqsr(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const Reference& reference, const std::vector<VcfRecord>& known_sites,
    const FrameworkProfile& profile) {
  const std::string prefix = std::string(profile.name) + ".bqsr";
  auto converted = maybe_convert(input, profile, prefix, 0);

  // No fusion: the stage repartitions by position even though the input
  // may already be position-partitioned.
  const std::size_t n_out = std::max<std::size_t>(
      engine.pool().size() * 2, input.partition_count());
  auto shuffled =
      converted.with_codec(gpf::core::make_sam_codec(profile.codec))
          .shuffle(prefix + ".shuffle", n_out, [](const SamRecord& rec) {
            return static_cast<std::uint64_t>(
                       rec.contig_id >= 0 ? rec.contig_id : 0) *
                       1000003ULL +
                   static_cast<std::uint64_t>(
                       std::max<std::int64_t>(0, rec.pos) / 10000);
          });

  // GATK-style per-base covariate-key boxing in both BQSR passes.
  const std::int64_t per_base_steps = profile.bqsr_per_base_ns * 5 / 8;
  auto base_boxing = [per_base_steps](const std::vector<SamRecord>& part) {
    volatile std::uint64_t sink = 0;
    for (const auto& rec : part) {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL + rec.pos;
      const std::int64_t steps =
          per_base_steps * static_cast<std::int64_t>(rec.sequence.size());
      for (std::int64_t i = 0; i < steps; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      }
      sink = sink + x;
    }
    (void)sink;
  };

  const cleaner::KnownSites known(known_sites);
  auto tables = shuffled.map_partitions<cleaner::RecalTable>(
      prefix + ".collect",
      [&reference, &known, &base_boxing](const std::vector<SamRecord>& part) {
        base_boxing(part);
        std::vector<cleaner::RecalTable> out;
        out.push_back(collect_covariates(part, reference, known));
        return out;
      });
  cleaner::RecalTable merged;
  for (const auto& part : tables.partitions()) {
    for (const auto& t : part) merged.merge(t);
  }

  auto applied = shuffled.map_partitions<SamRecord>(
      prefix + ".apply",
      [&merged, &base_boxing](const std::vector<SamRecord>& part) {
        base_boxing(part);
        std::vector<SamRecord> out = part;
        cleaner::apply_recalibration(out, merged);
        return out;
      });
  return maybe_convert(applied, profile, prefix, 1);
}

engine::Dataset<SamRecord> baseline_indel_realign(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const Reference& reference, const std::vector<VcfRecord>& known_sites,
    const FrameworkProfile& profile) {
  const std::string prefix = std::string(profile.name) + ".indel";
  auto converted = maybe_convert(input, profile, prefix, 0);
  const std::size_t n_out = std::max<std::size_t>(
      engine.pool().size() * 2, input.partition_count());
  auto shuffled =
      converted.with_codec(gpf::core::make_sam_codec(profile.codec))
          .shuffle(prefix + ".shuffle", n_out, [](const SamRecord& rec) {
            return static_cast<std::uint64_t>(
                       rec.contig_id >= 0 ? rec.contig_id : 0) *
                       1000003ULL +
                   static_cast<std::uint64_t>(
                       std::max<std::int64_t>(0, rec.pos) / 10000);
          });
  std::vector<VcfRecord> sorted_known = known_sites;
  std::sort(sorted_known.begin(), sorted_known.end(), vcf_less);
  const int consensus = profile.consensus_attempts;
  auto realigned = shuffled.map_partitions<SamRecord>(
      prefix + ".realign",
      [&reference, sorted_known, consensus](
          const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        cleaner::coordinate_sort(out);
        const cleaner::RealignOptions options;
        const auto targets =
            cleaner::find_realign_targets(out, sorted_known, options);
        // GATK/ADAM evaluate every candidate consensus per read; the
        // realignment pass runs once per consensus (identical windows
        // here — the *cost* pattern is what matters).
        for (int c = 0; c < consensus; ++c) {
          std::vector<SamRecord> scratch = out;
          cleaner::realign_reads(scratch, reference, targets, options);
          if (c + 1 == consensus) out = std::move(scratch);
        }
        return out;
      });
  return maybe_convert(realigned, profile, prefix, 1);
}

}  // namespace gpf::baselines
