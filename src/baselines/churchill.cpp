#include "baselines/churchill.hpp"

#include <algorithm>
#include <atomic>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "caller/haplotype_caller.hpp"
#include "cleaner/bqsr.hpp"
#include "cleaner/indel_realign.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "common/timer.hpp"
#include "compress/record_codec.hpp"
#include "core/processes.hpp"

namespace gpf::baselines {
namespace {

/// Serialized size of a SAM dataset under `codec` — the volume of the
/// intermediate stage file Churchill writes and the next stage reads.
std::uint64_t encoded_sam_bytes(const engine::Dataset<SamRecord>& dataset,
                                Codec codec, double* seconds) {
  Timer t;
  std::atomic<std::uint64_t> total{0};
  auto& pool = dataset.engine().pool();
  const auto& parts = dataset.partitions();
  pool.parallel_for(parts.size(), [&](std::size_t i) {
    total += encode_sam_batch(parts[i], codec).size();
  });
  if (seconds != nullptr) *seconds = t.seconds();
  return total.load();
}

/// Registers a file write + read pair at a stage boundary.
void record_file_boundary(engine::Engine& engine, const std::string& name,
                          std::uint64_t bytes, double seconds,
                          std::size_t tasks) {
  engine::StageMetrics write;
  write.name = name + ".file_write";
  write.task_count = tasks;
  write.task_seconds.assign(tasks, seconds / (2.0 * tasks));
  write.wall_seconds = seconds / 2.0;
  write.output_bytes = bytes;
  engine.metrics().add_stage(std::move(write));

  engine::StageMetrics read;
  read.name = name + ".file_read";
  read.task_count = tasks;
  read.task_seconds.assign(tasks, seconds / (2.0 * tasks));
  read.wall_seconds = seconds / 2.0;
  read.input_bytes = bytes;
  engine.metrics().add_stage(std::move(read));
}

}  // namespace

ChurchillResult run_churchill_pipeline(engine::Engine& engine,
                                       const Reference& reference,
                                       std::vector<FastqPair> pairs,
                                       std::vector<VcfRecord> known_sites,
                                       const ChurchillConfig& config) {
  ChurchillResult result;
  const std::size_t regions = std::max<std::size_t>(1, config.subregions);

  // FASTQ ingestion from storage.
  std::uint64_t fastq_bytes = 0;
  for (const auto& p : pairs) {
    fastq_bytes += p.first.sequence.size() * 2 + p.second.sequence.size() * 2 +
                   p.first.name.size() * 2 + 14;
  }
  {
    engine::StageMetrics load;
    load.name = "churchill.load_fastq";
    load.task_count = regions;
    load.task_seconds.assign(regions, 0.0);
    load.input_bytes = fastq_bytes;
    engine.metrics().add_stage(std::move(load));
  }

  // Stage 1: alignment (embarrassingly parallel over FASTQ chunks).
  const align::FmIndex index(reference);
  const align::ReadAligner aligner(index);
  auto fastq = engine.parallelize(std::move(pairs), regions);
  auto aligned = fastq.flat_map(
      "churchill.align", [&aligner](const FastqPair& pair) {
        auto [r1, r2] = aligner.align_pair(pair);
        std::vector<SamRecord> out;
        out.push_back(std::move(r1));
        out.push_back(std::move(r2));
        return out;
      });

  // File boundary: raw aligned SAM to disk.
  double enc_seconds = 0.0;
  std::uint64_t bytes = encoded_sam_bytes(aligned, config.codec,
                                          &enc_seconds);
  record_file_boundary(engine, "churchill.align", bytes, enc_seconds,
                       regions);
  result.file_bytes += 2 * bytes;

  // Stage 2: static subregion partitioning with boundaries fixed up-front:
  // equal slices of the concatenated genome, regardless of coverage.
  std::vector<std::uint64_t> contig_offsets;
  std::uint64_t running = 0;
  for (const auto& c : reference.contigs()) {
    contig_offsets.push_back(running);
    running += c.sequence.size();
  }
  const std::uint64_t region_len =
      std::max<std::uint64_t>(1, running / regions);
  auto region_of = [&contig_offsets, region_len,
                    regions](const SamRecord& rec) -> std::uint64_t {
    if (rec.contig_id < 0) return 0;
    const std::uint64_t global =
        contig_offsets[static_cast<std::size_t>(rec.contig_id)] +
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, rec.pos));
    return std::min<std::uint64_t>(global / region_len, regions - 1);
  };
  auto by_region =
      aligned.with_codec(gpf::core::make_sam_codec(config.codec))
          .shuffle("churchill.region_split", regions, region_of);

  // Stages 3-6 run per region, each separated by a stage file.
  auto sorted = by_region.map_partitions<SamRecord>(
      "churchill.sort", [](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        cleaner::coordinate_sort(out);
        return out;
      });
  bytes = encoded_sam_bytes(sorted, config.codec, &enc_seconds);
  record_file_boundary(engine, "churchill.sort", bytes, enc_seconds, regions);
  result.file_bytes += 2 * bytes;

  std::atomic<std::size_t> dup_count{0};
  auto deduped = sorted.map_partitions<SamRecord>(
      "churchill.markdup", [&dup_count](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        const auto stats = cleaner::mark_duplicates(out);
        dup_count += stats.duplicates_marked;
        return out;
      });
  bytes = encoded_sam_bytes(deduped, config.codec, &enc_seconds);
  record_file_boundary(engine, "churchill.markdup", bytes, enc_seconds,
                       regions);
  result.file_bytes += 2 * bytes;
  result.duplicates_marked = dup_count.load();

  std::sort(known_sites.begin(), known_sites.end(), vcf_less);
  auto realigned = deduped.map_partitions<SamRecord>(
      "churchill.indel_realign",
      [&reference, &known_sites](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        const cleaner::RealignOptions options;
        const auto targets =
            cleaner::find_realign_targets(out, known_sites, options);
        cleaner::realign_reads(out, reference, targets, options);
        return out;
      });
  bytes = encoded_sam_bytes(realigned, config.codec, &enc_seconds);
  record_file_boundary(engine, "churchill.indel_realign", bytes, enc_seconds,
                       regions);
  result.file_bytes += 2 * bytes;

  // BQSR: per-region table collection then merge + apply.
  const cleaner::KnownSites known_lookup(known_sites);
  auto tables = realigned.map_partitions<cleaner::RecalTable>(
      "churchill.bqsr_collect",
      [&reference, &known_lookup](const std::vector<SamRecord>& part) {
        std::vector<cleaner::RecalTable> out;
        out.push_back(collect_covariates(part, reference, known_lookup));
        return out;
      });
  cleaner::RecalTable merged;
  for (const auto& part : tables.partitions()) {
    for (const auto& t : part) merged.merge(t);
  }
  auto recaled = realigned.map_partitions<SamRecord>(
      "churchill.bqsr_apply",
      [&merged](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        cleaner::apply_recalibration(out, merged);
        return out;
      });
  bytes = encoded_sam_bytes(recaled, config.codec, &enc_seconds);
  record_file_boundary(engine, "churchill.bqsr", bytes, enc_seconds, regions);
  result.file_bytes += 2 * bytes;

  // Stage 7: per-region variant calling.
  auto called = recaled.map_partitions<VcfRecord>(
      "churchill.haplotype_call",
      [&reference](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> sorted_part = part;
        cleaner::coordinate_sort(sorted_part);
        const caller::CallerOptions options;
        return caller::call_variants(sorted_part, reference, options);
      });

  result.variants = called.collect();
  std::sort(result.variants.begin(), result.variants.end(), vcf_less);
  result.variants.erase(
      std::unique(result.variants.begin(), result.variants.end(),
                  [](const VcfRecord& a, const VcfRecord& b) {
                    return a.contig_id == b.contig_id && a.pos == b.pos &&
                           a.ref == b.ref && a.alt == b.alt;
                  }),
      result.variants.end());

  std::uint64_t vcf_bytes = 0;
  for (const auto& v : result.variants) {
    vcf_bytes += 24 + v.ref.size() + v.alt.size();
  }
  engine::StageMetrics write;
  write.name = "churchill.write_vcf";
  write.task_count = 1;
  write.task_seconds.assign(1, 0.0);
  write.output_bytes = vcf_bytes;
  engine.metrics().add_stage(std::move(write));

  return result;
}

std::vector<sim::FilePipelineStep> churchill_file_steps(
    const engine::EngineMetrics& metrics, double scale) {
  std::vector<sim::FilePipelineStep> steps;
  for (const auto& stage : metrics.stages()) {
    sim::FilePipelineStep step;
    step.name = stage.name;
    step.cpu_core_seconds = stage.total_compute_seconds() * scale;
    step.read_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stage.input_bytes + stage.shuffle_read_bytes) *
        scale);
    step.write_bytes = static_cast<std::uint64_t>(
        static_cast<double>(stage.output_bytes + stage.shuffle_write_bytes) *
        scale);
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace gpf::baselines
