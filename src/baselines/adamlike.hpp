// ADAM-like and GATK4-Spark-like baselines for the Cleaner-stage
// comparison (paper Fig 11 a-c).
//
// Both run the *same* algorithms as GPF, but retain the overheads the
// paper attributes to them:
//   * per-stage format conversion — records are converted into the
//     framework's own representation on entry and back on exit (ADAM's
//     columnar schema, GATK4's htsjdk objects), emulated by a real
//     serialize/deserialize round-trip per stage;
//   * generic serialization for shuffles (Kryo-like), no genomic codecs;
//   * no process-level fusion: each stage re-partitions and re-joins its
//     inputs;
//   * no dynamic repartition (static position hashing only);
//   * JVM object-churn cost — per record, a calibrated allocation/boxing
//     cost model replaces the JVM garbage-collector pressure that a C++
//     port cannot otherwise exhibit.  The multiplier is documented and
//     switchable so the mechanical part of the gap can be measured alone.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/record_codec.hpp"
#include "engine/dataset.hpp"
#include "formats/fasta.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::baselines {

struct FrameworkProfile {
  const char* name;
  /// Serializer used for shuffles and conversion round-trips.
  Codec codec = Codec::kKryoLike;
  /// Format-conversion round trips per stage (in + out).
  int conversions_per_stage = 2;
  /// Emulated JVM object-churn: heap allocations per record per pass.
  int object_churn_allocs = 24;
  /// Calibrated per-record framework cost (nanoseconds per record per
  /// conversion pass): deserialization, boxing and GC pressure of the
  /// real JVM implementations that a C++ port cannot otherwise exhibit.
  /// Values are fitted so the stage-time gaps match what the paper
  /// measured against the real systems (Fig 11: 6-8x on cleaner stages);
  /// FrameworkProfile::none() disables it so the mechanical share of the
  /// gap (conversions, serialization, extra shuffles) can be measured
  /// alone.
  std::int64_t overhead_ns_per_record = 0;
  /// Per-base covariate-key boxing cost in the BQSR passes (GATK
  /// materializes a key object per base per covariate; fitted like
  /// overhead_ns_per_record).
  std::int64_t bqsr_per_base_ns = 0;
  /// Candidate consensus sequences evaluated per read during indel
  /// realignment (GATK's IndelRealigner Smith-Watermans each read against
  /// every consensus; GPF realigns once against the reference window).
  int consensus_attempts = 1;

  static FrameworkProfile adam();
  static FrameworkProfile gatk4();
  /// No added overheads — for ablation of the emulation itself.
  static FrameworkProfile none();
};

/// Runs one Cleaner stage the baseline way, recording stages into the
/// engine metrics.  Returns the processed records.
engine::Dataset<SamRecord> baseline_mark_duplicates(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const FrameworkProfile& profile);

engine::Dataset<SamRecord> baseline_bqsr(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const Reference& reference, const std::vector<VcfRecord>& known_sites,
    const FrameworkProfile& profile);

engine::Dataset<SamRecord> baseline_indel_realign(
    engine::Engine& engine, const engine::Dataset<SamRecord>& input,
    const Reference& reference, const std::vector<VcfRecord>& known_sites,
    const FrameworkProfile& profile);

}  // namespace gpf::baselines
