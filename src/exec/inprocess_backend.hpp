// The default execution backend: an owned Engine, shuffle blocks parked
// in driver memory (null transport).  Behavior-identical to the
// historical Pipeline(name, Engine&) path — it exists so callers can
// select "inprocess" through the same BackendSpec/factory surface as the
// spilling and distributed backends.
#pragma once

#include "core/backend.hpp"
#include "engine/dataset.hpp"

namespace gpf::exec {

class InProcessBackend final : public core::ExecutionBackend {
 public:
  explicit InProcessBackend(engine::EngineConfig config = {})
      : engine_(config) {}

  const std::string& name() const override;
  engine::Engine& engine() override { return engine_; }

 private:
  engine::Engine engine_;
};

}  // namespace gpf::exec
