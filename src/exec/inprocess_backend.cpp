#include "exec/inprocess_backend.hpp"

namespace gpf::exec {

const std::string& InProcessBackend::name() const {
  static const std::string kName = "inprocess";
  return kName;
}

}  // namespace gpf::exec
