#include "exec/distributed_backend.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/bytes.hpp"
#include "runtime/worker.hpp"

namespace gpf::exec {
namespace {

std::string resolve_worker_binary(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("GPF_WORKER_BIN")) return env;
  throw std::invalid_argument(
      "DistributedBackend: no worker binary (set options.worker_binary or "
      "GPF_WORKER_BIN)");
}

}  // namespace

/// The block sink/source over the worker fleet.  Blocks live in worker
/// BlockStores under the namespace "<stage>#<shuffle-id>"; the driver
/// keeps the encoded blocks + metas of every map task as the lineage
/// cache that makes owner death repairable without recomputing the map.
class DistributedShuffleTransport final : public engine::ShuffleTransport {
 public:
  DistributedShuffleTransport(runtime::WorkerPool& pool,
                              engine::Engine& engine,
                              net::ChannelConfig fetch_channel)
      : pool_(pool), engine_(engine), fetch_channel_(fetch_channel) {}

  void set_push_hook(std::function<void(std::size_t, int)> hook) {
    std::lock_guard lock(mu_);
    push_hook_ = std::move(hook);
  }

  const char* name() const override { return "distributed"; }

  std::uint64_t begin_shuffle(const std::string& stage, std::size_t n_map,
                              std::size_t n_reduce) override {
    (void)n_map;
    (void)n_reduce;
    std::lock_guard lock(mu_);
    const std::uint64_t id = next_id_++;
    auto& sh = shuffles_[id];
    // Worker-side block namespace: unique per shuffle so two shuffles of
    // the same stage name (e.g. across pipeline runs) never collide.
    sh.ns = stage + "#" + std::to_string(id);
    ++stats_.shuffles;
    return id;
  }

  void put_map_output(
      std::uint64_t shuffle, std::size_t map_task,
      std::vector<std::vector<std::uint8_t>> blocks,
      const std::vector<engine::ShuffleBlockMeta>& meta) override {
    std::string ns;
    {
      std::lock_guard lock(mu_);
      ns = shuffles_.at(shuffle).ns;
    }
    const int worker = push_blocks(ns, map_task, blocks, meta);

    std::uint64_t block_bytes = 0;
    for (const auto& b : blocks) block_bytes += b.size();
    std::function<void(std::size_t, int)> hook;
    {
      std::lock_guard lock(mu_);
      auto& entry = shuffles_.at(shuffle).maps[map_task];
      entry.owner = worker;
      entry.port = pool_.info(worker).port;
      entry.blocks = std::move(blocks);
      entry.meta = meta;
      stats_.blocks_put += entry.blocks.size();
      stats_.bytes_put += block_bytes;
      hook = push_hook_;
    }
    if (hook) hook(map_task, worker);
  }

  engine::ShuffleBlockHandle fetch_block(std::uint64_t shuffle,
                                         std::size_t map_task,
                                         std::size_t reduce_part) override {
    std::string ns;
    int owner = -1;
    std::uint16_t port = 0;
    {
      std::lock_guard lock(mu_);
      auto& sh = shuffles_.at(shuffle);
      ns = sh.ns;
      const auto it = sh.maps.find(map_task);
      if (it == sh.maps.end()) {
        throw std::runtime_error("distributed transport: no map output " +
                                 std::to_string(map_task) + " in shuffle " +
                                 std::to_string(shuffle));
      }
      owner = it->second.owner;
      port = it->second.port;
    }

    const runtime::BlockId id{ns, map_task, reduce_part};
    if (pool_.alive(owner)) {
      try {
        return wrap(runtime::fetch_block_over_wire(port, id, fetch_channel_),
                    reduce_part);
      } catch (const runtime::MissingBlockError&) {
        // Owner died (or lost the block) between push and fetch: repair
        // from the lineage cache below.
      }
    }

    // Lineage repair: re-push the driver-cached blocks to a live worker
    // and fetch from the new owner.  A copy is pushed (the cache must
    // survive further repairs).
    std::vector<std::vector<std::uint8_t>> blocks;
    std::vector<engine::ShuffleBlockMeta> meta;
    {
      std::lock_guard lock(mu_);
      const auto& entry = shuffles_.at(shuffle).maps.at(map_task);
      blocks = entry.blocks;
      meta = entry.meta;
      ++stats_.lineage_recoveries;
    }
    const int worker = push_blocks(ns, map_task, blocks, meta);
    const std::uint16_t new_port = pool_.info(worker).port;
    {
      std::lock_guard lock(mu_);
      auto& entry = shuffles_.at(shuffle).maps.at(map_task);
      entry.owner = worker;
      entry.port = new_port;
    }
    return wrap(runtime::fetch_block_over_wire(new_port, id, fetch_channel_),
                reduce_part);
  }

  void end_shuffle(std::uint64_t shuffle) noexcept override {
    std::string ns;
    {
      std::lock_guard lock(mu_);
      const auto it = shuffles_.find(shuffle);
      if (it == shuffles_.end()) return;
      ns = it->second.ns;
      shuffles_.erase(it);
    }
    // Best-effort broadcast: dead workers took their blocks with them.
    runtime::TaskRequest release;
    release.kind = "release_blocks";
    release.stage = ns;
    ByteWriter w;
    w.str(ns);
    release.payload = w.take();
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      const int worker = static_cast<int>(i);
      if (!pool_.alive(worker)) continue;
      try {
        pool_.dispatch_to(worker, release, &engine_.buffer_pool());
      } catch (const runtime::WorkerLost&) {
      } catch (const std::runtime_error&) {
      }
    }
  }

  engine::ShuffleTransportStats stats() const override {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  struct MapEntry {
    int owner = -1;
    std::uint16_t port = 0;
    /// Lineage cache: the encoded blocks as pushed (reduce order).
    std::vector<std::vector<std::uint8_t>> blocks;
    std::vector<engine::ShuffleBlockMeta> meta;
  };
  struct Shuffle {
    std::string ns;
    std::unordered_map<std::size_t, MapEntry> maps;
  };

  /// Ships one map task's blocks via the `pipeline_stage` task and
  /// returns the worker that took them.  WorkerLost/RemoteTaskError
  /// propagate: a failed push fails the calling attempt, which the stage
  /// executor retries — the transport-level lineage contract.
  int push_blocks(const std::string& ns, std::size_t map_task,
                  const std::vector<std::vector<std::uint8_t>>& blocks,
                  const std::vector<engine::ShuffleBlockMeta>& meta) {
    runtime::TaskRequest req;
    req.kind = "pipeline_stage";
    req.stage = ns;
    req.task = map_task;
    ByteWriter w(engine_.buffer_pool().acquire());
    w.uvarint(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      w.u64(meta.at(b).checksum);
      w.uvarint(meta.at(b).records);
      w.uvarint(blocks[b].size());
      w.raw(std::span<const std::uint8_t>(blocks[b].data(),
                                          blocks[b].size()));
    }
    req.payload = w.take();
    int worker = -1;
    try {
      pool_.run_task(req, &engine_.buffer_pool(), &worker);
    } catch (...) {
      engine_.buffer_pool().release(std::move(req.payload));
      throw;
    }
    engine_.buffer_pool().release(std::move(req.payload));
    return worker;
  }

  /// Adapts a fetched StoredBlock to a transport handle: the block's
  /// shared bytes are the pin.
  engine::ShuffleBlockHandle wrap(runtime::StoredBlock block,
                                  std::size_t reduce_part) {
    (void)reduce_part;
    engine::ShuffleBlockHandle handle;
    handle.bytes = std::span<const std::uint8_t>(block.bytes->data(),
                                                 block.bytes->size());
    handle.pin = block.bytes;
    std::lock_guard lock(mu_);
    ++stats_.blocks_fetched;
    stats_.bytes_fetched += handle.bytes.size();
    return handle;
  }

  runtime::WorkerPool& pool_;
  engine::Engine& engine_;
  net::ChannelConfig fetch_channel_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Shuffle> shuffles_;
  engine::ShuffleTransportStats stats_;
  std::function<void(std::size_t, int)> push_hook_;
};

namespace {

runtime::WorkerPoolConfig make_pool_config(
    const DistributedBackendOptions& options) {
  runtime::WorkerPoolConfig cfg = options.pool;
  cfg.worker_binary = resolve_worker_binary(options.worker_binary);
  return cfg;
}

}  // namespace

DistributedBackend::DistributedBackend(DistributedBackendOptions options)
    : engine_(options.engine),
      pool_(make_pool_config(options)),
      transport_(std::make_shared<DistributedShuffleTransport>(
          pool_, engine_, options.fetch_channel)) {
  pool_.spawn_local(options.workers);
}

DistributedBackend::~DistributedBackend() = default;

const std::string& DistributedBackend::name() const {
  static const std::string kName = "distributed";
  return kName;
}

engine::ShuffleTransportStats DistributedBackend::transport_stats() const {
  return transport_->stats();
}

void DistributedBackend::set_push_hook(
    std::function<void(std::size_t, int)> hook) {
  transport_->set_push_hook(std::move(hook));
}

void DistributedBackend::begin_plan(const core::PhysicalPlan&) {
  engine_.set_shuffle_transport(transport_);
}

void DistributedBackend::end_plan(const core::PhysicalPlan&) noexcept {
  engine_.set_shuffle_transport(nullptr);
}

core::BackendStageStats DistributedBackend::counters() {
  core::BackendStageStats s = ExecutionBackend::counters();
  const engine::ShuffleTransportStats t = transport_->stats();
  s.blocks_put = t.blocks_put;
  s.blocks_fetched = t.blocks_fetched;
  s.bytes_put = t.bytes_put;
  s.bytes_fetched = t.bytes_fetched;
  s.bytes_spilled = t.bytes_spilled;
  s.lineage_recoveries = t.lineage_recoveries;
  return s;
}

}  // namespace gpf::exec
