// Name-based backend construction: the one place CLI flags, tests and
// benches go from "--backend spill" to a live ExecutionBackend.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "engine/dataset.hpp"

namespace gpf::exec {

enum class BackendKind { kInProcess, kSpill, kDistributed };

struct BackendSpec {
  BackendKind kind = BackendKind::kInProcess;
  engine::EngineConfig engine;
  /// Spill backend: residency byte budget (0 = GPF_STORE_BUDGET env,
  /// else 256 MiB) and chunk directory (empty = fresh temp dir).
  std::size_t store_budget = 0;
  std::string spill_directory;
  /// Distributed backend: fleet size and gpf_worker path (empty =
  /// GPF_WORKER_BIN env).
  int workers = 2;
  std::string worker_binary;
};

/// Parses "inprocess" / "spill" / "distributed" (the --backend flag
/// vocabulary); throws std::invalid_argument for anything else.
BackendKind parse_backend_kind(const std::string& name);

/// The flag name for a kind (round-trips parse_backend_kind).
const std::string& backend_kind_name(BackendKind kind);

/// Builds the backend `spec` describes.  The distributed backend spawns
/// its worker fleet here and throws when the worker binary is missing.
std::unique_ptr<core::ExecutionBackend> make_backend(const BackendSpec& spec);

/// Strips the backend CLI flags from argv into `spec`, leaving all other
/// arguments (and their order) untouched:
///
///   --backend {inprocess,spill,distributed}
///   --store-budget BYTES     (spill residency budget)
///   --workers N              (distributed fleet size)
///
/// Both "--flag=value" and "--flag value" forms are accepted.  Throws
/// std::invalid_argument on an unknown backend name or a non-numeric
/// value.
void consume_backend_flags(int& argc, char** argv, BackendSpec& spec);

}  // namespace gpf::exec
