#include "exec/spilling_backend.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "store/shuffle_chunk.hpp"

namespace gpf::exec {
namespace {

std::string resolve_spill_directory(const std::string& requested) {
  if (!requested.empty()) return requested;
  static std::atomic<std::uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gpf_spill_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  return dir.string();
}

std::size_t resolve_store_budget(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("GPF_STORE_BUDGET")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::size_t{256} << 20;
}

}  // namespace

/// The block sink/source over the chunk store.  put_map_output packs one
/// map task's blocks into a chunk and writes it atomically (outside the
/// lock — map tasks spill concurrently); fetch_block acquires the chunk
/// through the residency cache and hands out a column span pinned by the
/// mapping; end_shuffle drops the shuffle's chunks from cache and disk.
class SpillingShuffleTransport final : public engine::ShuffleTransport {
 public:
  explicit SpillingShuffleTransport(store::ChunkStore& store)
      : store_(store) {}

  const char* name() const override { return "spill"; }

  std::uint64_t begin_shuffle(const std::string& stage, std::size_t n_map,
                              std::size_t n_reduce) override {
    (void)stage;
    (void)n_map;
    (void)n_reduce;
    std::lock_guard lock(mu_);
    const std::uint64_t id = next_id_++;
    shuffles_[id];
    ++stats_.shuffles;
    return id;
  }

  void put_map_output(
      std::uint64_t shuffle, std::size_t map_task,
      std::vector<std::vector<std::uint8_t>> blocks,
      const std::vector<engine::ShuffleBlockMeta>& meta) override {
    const std::size_t n_blocks = blocks.size();
    std::uint64_t block_bytes = 0;
    for (const auto& b : blocks) block_bytes += b.size();

    const store::ChunkData data =
        store::make_shuffle_chunk(std::move(blocks), meta);
    const store::ChunkRef ref =
        store_.write(store::shuffle_chunk_name(shuffle, map_task), data);
    // A retried/speculative attempt rewrites the chunk with bit-identical
    // content; drop any resident mapping of the replaced file.
    store_.residency().drop(ref.path);

    std::lock_guard lock(mu_);
    shuffles_.at(shuffle)[map_task] = ref.path;
    stats_.blocks_put += n_blocks;
    stats_.bytes_put += block_bytes;
    stats_.bytes_spilled += ref.bytes;
  }

  engine::ShuffleBlockHandle fetch_block(std::uint64_t shuffle,
                                         std::size_t map_task,
                                         std::size_t reduce_part) override {
    std::string path;
    {
      std::lock_guard lock(mu_);
      const auto it = shuffles_.find(shuffle);
      if (it == shuffles_.end() || it->second.count(map_task) == 0) {
        throw std::runtime_error(
            "spill transport: no chunk for shuffle " +
            std::to_string(shuffle) + " map task " +
            std::to_string(map_task));
      }
      path = it->second.at(map_task);
    }
    // acquire() pins the mapping for as long as the handle is held; the
    // residency budget decides whether it stays cached afterwards.
    std::shared_ptr<const store::MappedChunk> chunk = store_.open(path);
    // column() re-validates the per-column fingerprint on every fetch:
    // at-rest corruption surfaces here as ChunkCorruptionError, failing
    // the reduce attempt just like an in-memory checksum mismatch would.
    const std::span<const std::uint8_t> bytes =
        chunk->view().column(store::shuffle_block_column(reduce_part));
    {
      std::lock_guard lock(mu_);
      ++stats_.blocks_fetched;
      stats_.bytes_fetched += bytes.size();
    }
    return {bytes, std::move(chunk)};
  }

  void end_shuffle(std::uint64_t shuffle) noexcept override {
    std::map<std::size_t, std::string> paths;
    {
      std::lock_guard lock(mu_);
      const auto it = shuffles_.find(shuffle);
      if (it == shuffles_.end()) return;
      paths = std::move(it->second);
      shuffles_.erase(it);
    }
    for (const auto& [map_task, path] : paths) {
      store_.residency().drop(path);
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }

  engine::ShuffleTransportStats stats() const override {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  store::ChunkStore& store_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  /// shuffle id -> (map task -> chunk path).
  std::unordered_map<std::uint64_t, std::map<std::size_t, std::string>>
      shuffles_;
  engine::ShuffleTransportStats stats_;
};

SpillingBackend::SpillingBackend(SpillingBackendOptions options)
    : directory_(resolve_spill_directory(options.spill_directory)),
      owns_directory_(options.spill_directory.empty()),
      engine_(options.engine),
      store_({directory_, resolve_store_budget(options.store_budget)}),
      transport_(std::make_shared<SpillingShuffleTransport>(store_)) {}

SpillingBackend::~SpillingBackend() {
  if (owns_directory_) {
    std::error_code ec;
    std::filesystem::remove_all(directory_, ec);
  }
}

const std::string& SpillingBackend::name() const {
  static const std::string kName = "spill";
  return kName;
}

engine::ShuffleTransportStats SpillingBackend::transport_stats() const {
  return transport_->stats();
}

void SpillingBackend::begin_plan(const core::PhysicalPlan&) {
  engine_.set_shuffle_transport(transport_);
}

void SpillingBackend::end_plan(const core::PhysicalPlan&) noexcept {
  engine_.set_shuffle_transport(nullptr);
}

core::BackendStageStats SpillingBackend::counters() {
  core::BackendStageStats s = ExecutionBackend::counters();
  const engine::ShuffleTransportStats t = transport_->stats();
  s.blocks_put = t.blocks_put;
  s.blocks_fetched = t.blocks_fetched;
  s.bytes_put = t.bytes_put;
  s.bytes_fetched = t.bytes_fetched;
  s.bytes_spilled = t.bytes_spilled;
  s.lineage_recoveries = t.lineage_recoveries;
  const store::ResidencyStats r = store_.residency().stats();
  s.residency_hits = r.hits;
  s.residency_misses = r.misses;
  s.residency_evictions = r.evictions;
  return s;
}

}  // namespace gpf::exec
