// The out-of-core execution backend: wide boundaries spill through the
// chunk store.
//
// Each map task's shuffle output becomes one chunk file (one column per
// reduce block — see store/shuffle_chunk.hpp), written atomically under
// the store's directory; reduce tasks mmap chunks back through the
// ResidencyManager, whose byte budget bounds how many spilled shuffles
// stay resident at once.  A fetched block's handle pins exactly one
// chunk mapping, so the backend completes under budgets far smaller than
// any single shuffle's working set — the budget throttles residency, it
// never deadlocks a scan (the residency layer's contract).  Block
// checksums are still validated by Dataset::shuffle itself; the chunk
// format's per-column fingerprints add at-rest integrity on top.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "engine/dataset.hpp"
#include "store/chunk_store.hpp"

namespace gpf::exec {

class SpillingShuffleTransport;

struct SpillingBackendOptions {
  engine::EngineConfig engine;
  /// Directory shuffle chunks spill into; empty = a fresh directory under
  /// the system temp dir, removed when the backend is destroyed.
  std::string spill_directory;
  /// Residency byte budget for mapped shuffle chunks; 0 = the
  /// GPF_STORE_BUDGET environment variable, else 256 MiB.
  std::size_t store_budget = 0;
};

class SpillingBackend final : public core::ExecutionBackend {
 public:
  explicit SpillingBackend(SpillingBackendOptions options = {});
  ~SpillingBackend() override;

  const std::string& name() const override;
  engine::Engine& engine() override { return engine_; }

  store::ChunkStore& chunk_store() { return store_; }
  engine::ShuffleTransportStats transport_stats() const;

 protected:
  void begin_plan(const core::PhysicalPlan& plan) override;
  void end_plan(const core::PhysicalPlan& plan) noexcept override;
  core::BackendStageStats counters() override;

 private:
  std::string directory_;
  bool owns_directory_ = false;
  engine::Engine engine_;
  store::ChunkStore store_;
  std::shared_ptr<SpillingShuffleTransport> transport_;
};

}  // namespace gpf::exec
