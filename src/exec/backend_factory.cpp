#include "exec/backend_factory.hpp"

#include <cstring>
#include <stdexcept>

#include "exec/distributed_backend.hpp"
#include "exec/inprocess_backend.hpp"
#include "exec/spilling_backend.hpp"

namespace gpf::exec {
namespace {

unsigned long long parse_number(const std::string& flag,
                                const std::string& value) {
  std::size_t used = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::invalid_argument(flag + ": expected a number, got '" + value +
                                "'");
  }
  return parsed;
}

}  // namespace

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "inprocess") return BackendKind::kInProcess;
  if (name == "spill") return BackendKind::kSpill;
  if (name == "distributed") return BackendKind::kDistributed;
  throw std::invalid_argument(
      "unknown backend '" + name +
      "' (expected inprocess, spill, or distributed)");
}

const std::string& backend_kind_name(BackendKind kind) {
  static const std::string kInProcess = "inprocess";
  static const std::string kSpill = "spill";
  static const std::string kDistributed = "distributed";
  switch (kind) {
    case BackendKind::kSpill:
      return kSpill;
    case BackendKind::kDistributed:
      return kDistributed;
    case BackendKind::kInProcess:
      break;
  }
  return kInProcess;
}

std::unique_ptr<core::ExecutionBackend> make_backend(const BackendSpec& spec) {
  switch (spec.kind) {
    case BackendKind::kSpill: {
      SpillingBackendOptions options;
      options.engine = spec.engine;
      options.spill_directory = spec.spill_directory;
      options.store_budget = spec.store_budget;
      return std::make_unique<SpillingBackend>(std::move(options));
    }
    case BackendKind::kDistributed: {
      DistributedBackendOptions options;
      options.engine = spec.engine;
      options.workers = spec.workers;
      options.worker_binary = spec.worker_binary;
      return std::make_unique<DistributedBackend>(std::move(options));
    }
    case BackendKind::kInProcess:
      break;
  }
  return std::make_unique<InProcessBackend>(spec.engine);
}

void consume_backend_flags(int& argc, char** argv, BackendSpec& spec) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string flag, value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flag = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      flag = arg;
    }
    const bool known = flag == "--backend" || flag == "--store-budget" ||
                       flag == "--workers";
    if (!known) {
      argv[out++] = argv[i];
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + ": missing value");
      }
      value = argv[++i];
    }
    if (flag == "--backend") {
      spec.kind = parse_backend_kind(value);
    } else if (flag == "--store-budget") {
      spec.store_budget = static_cast<std::size_t>(
          parse_number(flag, value));
    } else {
      spec.workers = static_cast<int>(parse_number(flag, value));
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

}  // namespace gpf::exec
