// The distributed execution backend: wide boundaries cross process
// boundaries.
//
// Lowered stages keep executing their narrow work on the driver's
// engine, but every codec shuffle's blocks are pushed to gpf_worker
// processes via the runtime's `pipeline_stage` task and fetched back
// over the kFetchBlock wire path.  The driver keeps a cache of each map
// task's encoded blocks — the lineage copy.  Fault story, both halves
// riding the engine's existing recovery machinery:
//
//  * a push to a dying worker surfaces as WorkerLost, failing the map
//    attempt; the stage executor recomputes it from immutable inputs
//    (classic lineage recompute) and the retry lands on a live worker;
//  * a fetch from a dead owner is repaired in place: the driver re-pushes
//    the cached blocks to a live worker and fetches from there, counting
//    a lineage_recovery in the transport stats.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "engine/dataset.hpp"
#include "runtime/worker_pool.hpp"

namespace gpf::exec {

class DistributedShuffleTransport;

struct DistributedBackendOptions {
  engine::EngineConfig engine;
  /// Local worker processes to spawn.
  int workers = 2;
  /// Path to the gpf_worker binary; empty = the GPF_WORKER_BIN
  /// environment variable.
  std::string worker_binary;
  /// Pool tuning (worker_binary is overridden by the resolved path).
  runtime::WorkerPoolConfig pool;
  /// Channel used for driver-side block fetches from workers.
  net::ChannelConfig fetch_channel{.connect_timeout_ms = 1000,
                                   .call_timeout_ms = 5000,
                                   .retry = {.max_attempts = 2},
                                   .limits = {}};
};

class DistributedBackend final : public core::ExecutionBackend {
 public:
  /// Spawns the worker fleet; throws when the worker binary is missing
  /// or a worker fails its ready handshake.
  explicit DistributedBackend(DistributedBackendOptions options = {});
  ~DistributedBackend() override;

  const std::string& name() const override;
  engine::Engine& engine() override { return engine_; }

  runtime::WorkerPool& worker_pool() { return pool_; }
  engine::ShuffleTransportStats transport_stats() const;

  /// Test hook: invoked after each successful map-output push with
  /// (map_task, worker index) — chaos tests SIGKILL the owner from here.
  void set_push_hook(std::function<void(std::size_t, int)> hook);

 protected:
  void begin_plan(const core::PhysicalPlan& plan) override;
  void end_plan(const core::PhysicalPlan& plan) noexcept override;
  core::BackendStageStats counters() override;

 private:
  engine::Engine engine_;
  runtime::WorkerPool pool_;
  std::shared_ptr<DistributedShuffleTransport> transport_;
};

}  // namespace gpf::exec
