// Deterministic fault injection for the dataflow engine.
//
// The paper's resilience story (Sec 4.4: lost tasks recompute from lineage,
// stragglers are absorbed by load balancing) is only testable if something
// can make tasks fail.  The injector is that something: a seeded rule
// engine the executor consults at every task attempt.  All decisions are
// pure functions of (seed, stage, task, attempt) — a splitmix64 hash chain,
// never a shared mutable RNG — so the injected fault pattern is identical
// across runs and independent of thread scheduling.  That is what makes
// the chaos suite bit-reproducible.
//
// Rule kinds:
//  * fail_task      — task k of stage s throws on its first `attempts`
//                     attempts (retries then succeed; attempts=-1 never
//                     recovers and must exhaust the retry budget).
//  * fail_random    — every matching attempt fails with probability p.
//  * delay_task     — the first attempt of task k is delayed by d ms,
//                     faking a straggler; delays at or above the engine's
//                     speculation threshold trigger a speculative copy.
//  * corrupt_block  — the shuffle block (map_task, reduce_block) is
//                     bit-flipped before decode; the reduce task detects
//                     the damage via the block checksum and fails, which
//                     the executor retries like any lost task.
//  * torn_write     — a chunk-store spill writes only the leading
//                     `fraction` of its bytes (the crash-mid-write torn
//                     file the pre-atomic writers could produce); the
//                     store's post-write validation detects it and the
//                     executor rewrites the chunk from lineage.
//  * truncate_footer— a spill drops the last `trunc_bytes` bytes, eating
//                     (part of) the chunk footer; detected the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpf::engine {

/// Wildcard task / block index for fault rules.
inline constexpr std::size_t kAnyTask = static_cast<std::size_t>(-1);

enum class FaultKind {
  kFailTask,
  kFailRandom,
  kDelayTask,
  kCorruptBlock,
  kTornWrite,
  kTruncateFooter,
};

/// One injection rule.  Stage matching is by exact stage name (empty
/// matches every stage); task indices are stage-global, i.e. a wide
/// stage's map tasks are [0, n_in) and its reduce tasks [n_in, n_in+n_out).
struct FaultRule {
  FaultKind kind = FaultKind::kFailTask;
  std::string stage;
  std::size_t task = kAnyTask;
  /// Inject only on attempt numbers < `attempts` (-1 = every attempt).
  /// Speculative copies run as attempt -1 and are never injected: they
  /// model re-execution on a different, healthy node.
  int attempts = 1;
  double probability = 1.0;  // kFailRandom
  double delay_ms = 0.0;     // kDelayTask
  std::size_t map_task = kAnyTask;  // kCorruptBlock
  std::size_t block = kAnyTask;     // kCorruptBlock
  double fraction = 0.5;            // kTornWrite: bytes kept / total
  std::size_t trunc_bytes = 8;      // kTruncateFooter: bytes dropped

  static FaultRule fail_task(std::string stage, std::size_t task,
                             int attempts = 1);
  static FaultRule fail_random(std::string stage, double probability,
                               int attempts = 1);
  static FaultRule delay_task(std::string stage, std::size_t task,
                              double delay_ms, int attempts = 1);
  static FaultRule corrupt_block(std::string stage, std::size_t map_task,
                                 std::size_t block, int attempts = 1);
  static FaultRule torn_write(std::string stage, std::size_t task,
                              double fraction, int attempts = 1);
  static FaultRule truncate_footer(std::string stage, std::size_t task,
                                   std::size_t trunc_bytes, int attempts = 1);
};

/// Thrown by the injector when a rule fails an attempt.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& stage, std::size_t task, int attempt);
};

/// Thrown by the shuffle reduce side when a block fails its checksum or
/// decodes to the wrong record count; treated as a task failure and
/// retried from the pristine encoded block.
class ShuffleBlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a task exhausts its retry budget: the typed stage-failure
/// surface carrying full context (Spark's "Job aborted due to stage
/// failure: Task X in stage Y failed N times").
class StageFailure : public std::runtime_error {
 public:
  StageFailure(std::string stage, std::size_t task, int attempts,
               const std::string& cause);

  const std::string& stage() const { return stage_; }
  std::size_t task() const { return task_; }
  int attempts() const { return attempts_; }

 private:
  std::string stage_;
  std::size_t task_ = 0;
  int attempts_ = 0;
};

/// Checksum guarding shuffle blocks against (injected or real) corruption
/// and codecs that decode to the wrong record count.  FNV-1a 64.
std::uint64_t shuffle_block_checksum(std::span<const std::uint8_t> bytes);

/// Parses a chaos/fuzz seed from a decimal string.  Strict: the whole
/// string must be one base-10 unsigned 64-bit integer — empty input,
/// non-numeric text, signs, leading/trailing junk, and overflow all throw
/// std::invalid_argument naming the offending value.  (A malformed
/// GPF_CHAOS_SEED that silently parsed as 0 would pin an entire CI chaos
/// sweep to one seed and report it as ten.)
std::uint64_t parse_seed(std::string_view text);

/// parse_seed() applied to environment variable `name`; `fallback` when
/// the variable is unset.  Malformed values still throw — an unset knob is
/// a default, a broken knob is a bug.
std::uint64_t seed_from_env(const char* name, std::uint64_t fallback);

/// The injector itself.  Thread-safe: decision methods are pure hashes of
/// their arguments, counters are atomic.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, std::vector<FaultRule> rules);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

  /// Called once when a stage starts executing; the returned ordinal
  /// decorrelates random draws between same-named stages.  Stages execute
  /// sequentially (the engine is eager), so ordinals are deterministic.
  std::size_t begin_stage(const std::string& name);

  /// Throws InjectedFault if this attempt should fail.  Speculative
  /// attempts (attempt < 0) are never injected.
  void check_attempt(const std::string& stage, std::size_t ordinal,
                     std::size_t task, int attempt);

  /// Straggler delay planned for this attempt, in ms (0 = none).  Pure
  /// query: the executor calls record_injected_delay() when it actually
  /// applies one, so probing for speculation does not skew counters.
  double planned_delay_ms(const std::string& stage, std::size_t ordinal,
                          std::size_t task, int attempt) const;

  /// If a corruption rule matches, returns a bit-flipped copy of `bytes`
  /// (the pristine block is never touched, so a retry can succeed).
  std::optional<std::vector<std::uint8_t>> corrupted_copy(
      const std::string& stage, std::size_t ordinal, std::size_t map_task,
      std::size_t block, int attempt, std::span<const std::uint8_t> bytes);

  /// Bytes a chunk-store write should actually put on disk for this
  /// attempt, when a torn_write or truncate_footer rule matches (the
  /// smallest surviving prefix wins if several match).  std::nullopt means
  /// write everything.  `full_size` is the intended file size.
  std::optional<std::size_t> damaged_write_size(const std::string& stage,
                                                std::size_t ordinal,
                                                std::size_t task, int attempt,
                                                std::size_t full_size);

  void record_injected_delay() { ++delays_; }

  std::size_t injected_failures() const { return failures_.load(); }
  std::size_t injected_delays() const { return delays_.load(); }
  std::size_t injected_corruptions() const { return corruptions_.load(); }
  std::size_t injected_write_faults() const { return write_faults_.load(); }
  std::size_t total_injected() const {
    return injected_failures() + injected_delays() + injected_corruptions() +
           injected_write_faults();
  }

 private:
  /// Deterministic uniform [0,1) draw for (rule, ordinal, task, attempt).
  double draw(std::size_t rule, std::size_t ordinal, std::size_t task,
              int attempt) const;

  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
  std::atomic<std::size_t> next_stage_{0};
  std::atomic<std::size_t> failures_{0};
  std::atomic<std::size_t> delays_{0};
  std::atomic<std::size_t> corruptions_{0};
  std::atomic<std::size_t> write_faults_{0};
};

}  // namespace gpf::engine
