// Engine metrics: everything the paper's evaluation measures about a run —
// stage counts, per-task compute times, shuffle volume, serialization (our
// GC proxy) — is accumulated here and later replayed on the cluster
// simulator.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpf::engine {

/// Metrics for one executed stage.
struct StageMetrics {
  std::string name;
  std::size_t task_count = 0;
  /// Per-task pure-compute seconds, measured on the local thread pool.
  std::vector<double> task_seconds;
  /// Bytes of live input/output records (estimated record footprint).
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Serialized bytes written to / read from the shuffle, if this stage
  /// ends in (or begins from) a wide dependency.
  std::uint64_t shuffle_write_bytes = 0;
  std::uint64_t shuffle_read_bytes = 0;
  /// Records moved through the shuffle (map-side, counted once).
  std::uint64_t shuffle_records = 0;
  /// Time spent in (de)serialization for shuffle blocks.
  double serialization_seconds = 0.0;
  /// Wall time of the stage on the local pool.
  double wall_seconds = 0.0;
  /// True when the stage performed a wide (shuffle) dependency.
  bool wide = false;
  /// For wide stages: how many of the tasks are map-side (the first
  /// `map_task_count` entries of task_seconds); the rest are reduce-side.
  std::size_t map_task_count = 0;
  /// Task attempts that failed and were re-executed.
  std::size_t task_retries = 0;
  /// Task attempts that ended in an exception (injected or real),
  /// including the final attempt of an exhausted task.
  std::size_t failed_attempts = 0;
  /// Speculative copies launched for straggling tasks.
  std::size_t speculative_launches = 0;
  /// Faults the injector introduced into this stage (failures, straggler
  /// delays and corrupted shuffle blocks).
  std::size_t injected_faults = 0;
  /// True when the stage aborted after a task exhausted its retry budget
  /// (the stage is still recorded so chaos runs can audit the wreckage).
  bool failed = false;
  /// Task-time percentiles over task_seconds, filled by
  /// finalize_task_stats() when the stage is recorded.
  double task_p50_ms = 0.0;
  double task_p95_ms = 0.0;
  double task_p99_ms = 0.0;
  /// Adaptive-repartition counters: input partitions the scheduler split
  /// into finer tasks, and micro-partitions it coalesced into one task.
  std::size_t adaptive_splits = 0;
  std::size_t adaptive_merges = 0;

  double total_compute_seconds() const;
  double max_task_seconds() const;
  /// Computes task_p50/p95/p99_ms from task_seconds (10 µs resolution).
  void finalize_task_stats();
};

/// Accumulates stages for one logical job; thread-safe for the per-task
/// updates the executor makes.
class EngineMetrics {
 public:
  /// Appends a finished stage and returns its index.
  std::size_t add_stage(StageMetrics stage);

  const std::vector<StageMetrics>& stages() const { return stages_; }
  std::size_t stage_count() const { return stages_.size(); }

  std::uint64_t total_shuffle_bytes() const;
  std::uint64_t total_shuffle_records() const;
  double total_serialization_seconds() const;
  double total_compute_seconds() const;
  double total_wall_seconds() const;
  std::size_t total_failed_attempts() const;
  std::size_t total_speculative_launches() const;
  std::size_t total_injected_faults() const;

  /// Clears all recorded stages.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<StageMetrics> stages_;
};

}  // namespace gpf::engine
