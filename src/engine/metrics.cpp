#include "engine/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/histogram.hpp"

namespace gpf::engine {

double StageMetrics::total_compute_seconds() const {
  return std::accumulate(task_seconds.begin(), task_seconds.end(), 0.0);
}

double StageMetrics::max_task_seconds() const {
  if (task_seconds.empty()) return 0.0;
  return *std::max_element(task_seconds.begin(), task_seconds.end());
}

void StageMetrics::finalize_task_stats() {
  if (task_seconds.empty()) {
    task_p50_ms = task_p95_ms = task_p99_ms = 0.0;
    return;
  }
  Histogram h;
  for (const double s : task_seconds) h.add(std::llround(s * 1e5));
  task_p50_ms = static_cast<double>(h.percentile(0.50)) / 100.0;
  task_p95_ms = static_cast<double>(h.percentile(0.95)) / 100.0;
  task_p99_ms = static_cast<double>(h.percentile(0.99)) / 100.0;
}

std::size_t EngineMetrics::add_stage(StageMetrics stage) {
  std::lock_guard lock(mu_);
  stages_.push_back(std::move(stage));
  return stages_.size() - 1;
}

std::uint64_t EngineMetrics::total_shuffle_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : stages_) total += s.shuffle_write_bytes;
  return total;
}

std::uint64_t EngineMetrics::total_shuffle_records() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : stages_) total += s.shuffle_records;
  return total;
}

double EngineMetrics::total_serialization_seconds() const {
  std::lock_guard lock(mu_);
  double total = 0.0;
  for (const auto& s : stages_) total += s.serialization_seconds;
  return total;
}

double EngineMetrics::total_compute_seconds() const {
  std::lock_guard lock(mu_);
  double total = 0.0;
  for (const auto& s : stages_) total += s.total_compute_seconds();
  return total;
}

double EngineMetrics::total_wall_seconds() const {
  std::lock_guard lock(mu_);
  double total = 0.0;
  for (const auto& s : stages_) total += s.wall_seconds;
  return total;
}

std::size_t EngineMetrics::total_failed_attempts() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& s : stages_) total += s.failed_attempts;
  return total;
}

std::size_t EngineMetrics::total_speculative_launches() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& s : stages_) total += s.speculative_launches;
  return total;
}

std::size_t EngineMetrics::total_injected_faults() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& s : stages_) total += s.injected_faults;
  return total;
}

void EngineMetrics::reset() {
  std::lock_guard lock(mu_);
  stages_.clear();
}

}  // namespace gpf::engine
