#include "engine/fault_injector.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "common/checksum.hpp"

namespace gpf::engine {
namespace {

/// splitmix64 finalizer: the same mixing the Rng seeds itself with, used
/// here as a stateless hash so fault decisions need no shared state.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool matches_stage(const FaultRule& rule, const std::string& stage) {
  return rule.stage.empty() || rule.stage == stage;
}

bool matches_attempt(const FaultRule& rule, int attempt) {
  if (attempt < 0) return false;  // speculative copies are never injected
  return rule.attempts < 0 || attempt < rule.attempts;
}

bool matches_task(std::size_t rule_task, std::size_t task) {
  return rule_task == kAnyTask || rule_task == task;
}

}  // namespace

FaultRule FaultRule::fail_task(std::string stage, std::size_t task,
                               int attempts) {
  FaultRule r;
  r.kind = FaultKind::kFailTask;
  r.stage = std::move(stage);
  r.task = task;
  r.attempts = attempts;
  return r;
}

FaultRule FaultRule::fail_random(std::string stage, double probability,
                                 int attempts) {
  FaultRule r;
  r.kind = FaultKind::kFailRandom;
  r.stage = std::move(stage);
  r.probability = probability;
  r.attempts = attempts;
  return r;
}

FaultRule FaultRule::delay_task(std::string stage, std::size_t task,
                                double delay_ms, int attempts) {
  FaultRule r;
  r.kind = FaultKind::kDelayTask;
  r.stage = std::move(stage);
  r.task = task;
  r.delay_ms = delay_ms;
  r.attempts = attempts;
  return r;
}

FaultRule FaultRule::corrupt_block(std::string stage, std::size_t map_task,
                                   std::size_t block, int attempts) {
  FaultRule r;
  r.kind = FaultKind::kCorruptBlock;
  r.stage = std::move(stage);
  r.map_task = map_task;
  r.block = block;
  r.attempts = attempts;
  return r;
}

FaultRule FaultRule::torn_write(std::string stage, std::size_t task,
                                double fraction, int attempts) {
  FaultRule r;
  r.kind = FaultKind::kTornWrite;
  r.stage = std::move(stage);
  r.task = task;
  r.fraction = fraction;
  r.attempts = attempts;
  return r;
}

FaultRule FaultRule::truncate_footer(std::string stage, std::size_t task,
                                     std::size_t trunc_bytes, int attempts) {
  FaultRule r;
  r.kind = FaultKind::kTruncateFooter;
  r.stage = std::move(stage);
  r.task = task;
  r.trunc_bytes = trunc_bytes;
  r.attempts = attempts;
  return r;
}

InjectedFault::InjectedFault(const std::string& stage, std::size_t task,
                             int attempt)
    : std::runtime_error("injected fault: stage '" + stage + "' task " +
                         std::to_string(task) + " attempt " +
                         std::to_string(attempt)) {}

StageFailure::StageFailure(std::string stage, std::size_t task, int attempts,
                           const std::string& cause)
    : std::runtime_error("stage '" + stage + "' failed: task " +
                         std::to_string(task) + " failed " +
                         std::to_string(attempts) + " times; last error: " +
                         cause),
      stage_(std::move(stage)),
      task_(task),
      attempts_(attempts) {}

std::uint64_t parse_seed(std::string_view text) {
  const auto bad = [&text](const char* why) {
    return std::invalid_argument("invalid seed \"" + std::string(text) +
                                 "\": " + why);
  };
  if (text.empty()) throw bad("empty");
  std::uint64_t value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec == std::errc::result_out_of_range) {
    throw bad("does not fit in 64 bits");
  }
  // from_chars already rejects signs, whitespace and non-digits at the
  // front; a partial parse means trailing junk ("123abc", "1 2", "1.5").
  if (ec != std::errc() || ptr != last) {
    throw bad("not a base-10 unsigned integer");
  }
  return value;
}

std::uint64_t seed_from_env(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  try {
    return parse_seed(s);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(name) + ": " + e.what());
  }
}

std::uint64_t shuffle_block_checksum(std::span<const std::uint8_t> bytes) {
  return fnv1a64(bytes);
}

FaultInjector::FaultInjector(std::uint64_t seed, std::vector<FaultRule> rules)
    : seed_(seed), rules_(std::move(rules)) {}

std::size_t FaultInjector::begin_stage(const std::string&) {
  return next_stage_.fetch_add(1);
}

double FaultInjector::draw(std::size_t rule, std::size_t ordinal,
                           std::size_t task, int attempt) const {
  std::uint64_t h = mix(seed_ ^ (0xa24baed4963ee407ULL * (rule + 1)));
  h = mix(h ^ (0x9fb21c651e98df25ULL * (ordinal + 1)));
  h = mix(h ^ (0xd6e8feb86659fd93ULL * (task + 1)));
  h = mix(h ^ (0x8bb84b93962eacc9ULL *
               static_cast<std::uint64_t>(attempt + 2)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::check_attempt(const std::string& stage,
                                  std::size_t ordinal, std::size_t task,
                                  int attempt) {
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FaultRule& rule = rules_[r];
    if (!matches_stage(rule, stage) || !matches_attempt(rule, attempt)) {
      continue;
    }
    switch (rule.kind) {
      case FaultKind::kFailTask:
        if (matches_task(rule.task, task)) {
          ++failures_;
          throw InjectedFault(stage, task, attempt);
        }
        break;
      case FaultKind::kFailRandom:
        if (matches_task(rule.task, task) &&
            draw(r, ordinal, task, attempt) < rule.probability) {
          ++failures_;
          throw InjectedFault(stage, task, attempt);
        }
        break;
      default:
        break;
    }
  }
}

double FaultInjector::planned_delay_ms(const std::string& stage,
                                       std::size_t ordinal, std::size_t task,
                                       int attempt) const {
  (void)ordinal;
  double delay = 0.0;
  for (const FaultRule& rule : rules_) {
    if (rule.kind != FaultKind::kDelayTask) continue;
    if (!matches_stage(rule, stage) || !matches_attempt(rule, attempt) ||
        !matches_task(rule.task, task)) {
      continue;
    }
    delay = std::max(delay, rule.delay_ms);
  }
  return delay;
}

std::optional<std::size_t> FaultInjector::damaged_write_size(
    const std::string& stage, std::size_t ordinal, std::size_t task,
    int attempt, std::size_t full_size) {
  (void)ordinal;
  std::optional<std::size_t> size;
  for (const FaultRule& rule : rules_) {
    if (rule.kind != FaultKind::kTornWrite &&
        rule.kind != FaultKind::kTruncateFooter) {
      continue;
    }
    if (!matches_stage(rule, stage) || !matches_attempt(rule, attempt) ||
        !matches_task(rule.task, task)) {
      continue;
    }
    std::size_t kept = full_size;
    if (rule.kind == FaultKind::kTornWrite) {
      kept = static_cast<std::size_t>(
          static_cast<double>(full_size) *
          std::clamp(rule.fraction, 0.0, 1.0));
    } else {
      kept = full_size > rule.trunc_bytes ? full_size - rule.trunc_bytes : 0;
    }
    if (!size || kept < *size) size = kept;
  }
  if (size) ++write_faults_;
  return size;
}

std::optional<std::vector<std::uint8_t>> FaultInjector::corrupted_copy(
    const std::string& stage, std::size_t ordinal, std::size_t map_task,
    std::size_t block, int attempt, std::span<const std::uint8_t> bytes) {
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FaultRule& rule = rules_[r];
    if (rule.kind != FaultKind::kCorruptBlock) continue;
    if (!matches_stage(rule, stage) || !matches_attempt(rule, attempt) ||
        !matches_task(rule.map_task, map_task) ||
        !matches_task(rule.block, block)) {
      continue;
    }
    std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
    if (out.empty()) {
      // An empty block corrupts to spurious bytes the checksum rejects.
      out.push_back(0xa5);
    } else {
      const std::uint64_t h =
          mix(seed_ ^ mix((r + 1) * 0x2545f4914f6cdd1dULL + ordinal) ^
              (map_task << 20) ^ block ^
              static_cast<std::uint64_t>(attempt + 2));
      out[h % out.size()] ^= 0xa5;
      out[0] ^= 0xff;
    }
    ++corruptions_;
    return out;
  }
  return std::nullopt;
}

}  // namespace gpf::engine
