// The in-memory dataflow engine: a typed, partitioned, eagerly-executed
// dataset abstraction equivalent to the Spark RDD layer GPF builds on.
//
// Differences from Spark that matter for the reproduction:
//  * Execution is eager, one stage per transformation; the *Process-level*
//    DAG optimization the paper contributes lives above this layer in
//    src/core (the engine deliberately stays dumb, like Spark's task
//    runner, so that redundancy elimination is attributable to GPF).
//  * Every stage records metrics (per-task compute seconds, shuffle bytes,
//    serialization time) so a run can be replayed on the cluster simulator
//    at any core count.
//  * Shuffles optionally round-trip records through a real serializer
//    (Java-like / Kryo-like / GPF codecs), which is how the compression
//    experiments measure bytes actually moved.
//  * Stages run on a fault-tolerant executor (engine/stage_executor.hpp):
//    failed attempts retry from their immutable inputs, retry exhaustion
//    surfaces as a typed StageFailure, shuffle blocks are checksummed so
//    corruption is detected and retried, and injected stragglers trigger
//    speculative re-execution.  A seeded FaultInjector (optional, attached
//    to the Engine) makes all of this testable deterministically.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "engine/fault_injector.hpp"
#include "engine/metrics.hpp"
#include "engine/shuffle_transport.hpp"
#include "engine/stage_executor.hpp"
#include "sched/scheduler.hpp"
#include "sched/speculation.hpp"

namespace gpf::engine {

/// Serializer hooks used when a shuffle round-trips records through bytes.
template <typename T>
struct ShuffleCodec {
  std::function<std::vector<std::uint8_t>(std::span<const T>)> encode;
  std::function<std::vector<T>(std::span<const std::uint8_t>)> decode;
  /// Optional in-place variant: encode into `out` (cleared first, capacity
  /// reused).  When set, shuffle map tasks encode into buffers recycled
  /// through the engine's BufferPool instead of allocating per block.
  /// Must produce bytes identical to `encode`.
  std::function<void(std::span<const T>, std::vector<std::uint8_t>&)>
      encode_into;

  bool valid() const { return encode != nullptr && decode != nullptr; }
};

/// Engine configuration.
struct EngineConfig {
  /// Local worker threads executing partition tasks (0 = hardware).
  std::size_t worker_threads = 0;
  /// When true, wide dependencies serialize every shuffle block through the
  /// dataset's codec (if one is attached), measuring real byte volumes.
  bool serialize_shuffle = true;
  /// Failed partition tasks are re-executed up to this many times before
  /// the stage fails (Spark re-runs lost tasks from lineage; inputs here
  /// are immutable shared partitions, so a retry is exactly a lineage
  /// recompute).  Feeds StageExecPolicy's shared RetryPolicy as
  /// max_attempts = max_task_retries + 1.
  int max_task_retries = 2;
  /// Speculative execution, shared with the stage executor (see
  /// sched/speculation.hpp): under a FaultInjector the static rule keys
  /// copies on planned delays so counters stay deterministic under a
  /// fixed seed; otherwise the quantile rule (off by default, raised by
  /// Engine::set_scheduler) watches running tasks against the stage's
  /// median.
  sched::SpeculationPolicy speculation = {};
};

template <typename T>
class Dataset;

/// Per-attempt context handed to map_partitions_ctx task functions.
/// Integrity layers (e.g. SerializedDataset::materialize) need the attempt
/// number and stage ordinal to consult the FaultInjector's deterministic
/// per-attempt decisions; plain map functions should ignore it.
struct TaskContext {
  /// Partition index of this task.
  std::size_t index = 0;
  /// 0 on first attempts, > 0 on retries, -1 on speculative copies.
  int attempt = 0;
  /// Stage ordinal from FaultInjector::begin_stage (0 when no injector).
  std::size_t ordinal = 0;
};

/// Execution context: owns the worker pool and metrics, hands out datasets.
class Engine {
 public:
  explicit Engine(EngineConfig config = {})
      : config_(config), pool_(config.worker_threads) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return pool_; }
  /// Recycled encode buffers for shuffle/persist blocks.
  BufferPool& buffer_pool() { return buffer_pool_; }
  EngineMetrics& metrics() { return metrics_; }
  const EngineMetrics& metrics() const { return metrics_; }

  /// Attaches a fault injector consulted by every task attempt (nullptr
  /// detaches).  Injection is fully deterministic given the injector's
  /// seed; see engine/fault_injector.hpp.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  FaultInjector* fault_injector() const { return injector_.get(); }

  /// Attaches the physical block sink/source used by codec shuffles
  /// (nullptr detaches, restoring the in-memory path).  Execution
  /// backends install their transport around a plan run; the engine just
  /// routes blocks through whatever is attached.
  void set_shuffle_transport(std::shared_ptr<ShuffleTransport> transport) {
    transport_ = std::move(transport);
  }
  ShuffleTransport* shuffle_transport() const { return transport_.get(); }

  /// Attaches the adaptive scheduler consulted by element-wise stages
  /// (nullptr detaches).  Scheduling only changes task granularity —
  /// outputs are bit-identical with or without one; see
  /// sched/scheduler.hpp.
  void set_scheduler(std::shared_ptr<sched::AdaptiveScheduler> scheduler) {
    scheduler_ = std::move(scheduler);
  }
  sched::AdaptiveScheduler* scheduler() const { return scheduler_.get(); }

  /// The executor-facing slice of the configuration.
  StageExecPolicy exec_policy() const {
    StageExecPolicy policy{
        RetryPolicy{.max_attempts = config_.max_task_retries + 1,
                    .backoff_initial_ms = 0, .backoff_max_ms = 0},
        config_.speculation};
    // Attaching the adaptive scheduler opts the engine into the
    // observational quantile rule; static engines keep the legacy
    // injected-delay rule only, so their runs stay span-for-span
    // identical.
    if (scheduler_) policy.speculation.quantile = true;
    return policy;
  }

  /// Creates a dataset from pre-partitioned data.
  template <typename T>
  Dataset<T> make_dataset(std::vector<std::vector<T>> partitions);

  /// Creates a dataset by slicing `records` into `num_partitions` evenly.
  template <typename T>
  Dataset<T> parallelize(std::vector<T> records, std::size_t num_partitions);

 private:
  EngineConfig config_;
  ThreadPool pool_;
  EngineMetrics metrics_;
  BufferPool buffer_pool_;
  std::shared_ptr<FaultInjector> injector_;
  std::shared_ptr<ShuffleTransport> transport_;
  std::shared_ptr<sched::AdaptiveScheduler> scheduler_;
};

/// A partitioned in-memory collection.  Cheap to copy (partitions are
/// shared and immutable once produced).
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() = default;
  Dataset(Engine* engine, std::shared_ptr<Partitions> partitions)
      : engine_(engine), partitions_(std::move(partitions)) {}

  Engine& engine() const { return *engine_; }
  std::size_t partition_count() const { return partitions_->size(); }
  const Partitions& partitions() const { return *partitions_; }
  /// The shared, immutable partition storage.  Consumers (e.g.
  /// SerializedDataset) can retain this pointer to share the data without
  /// copying it.
  const std::shared_ptr<Partitions>& shared_partitions() const {
    return partitions_;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& p : *partitions_) n += p.size();
    return n;
  }

  /// Gathers all records into one vector (partition order preserved).
  std::vector<T> collect() const {
    std::vector<T> out;
    out.reserve(count());
    for (const auto& p : *partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// Attaches a serializer used by subsequent shuffles of this dataset.
  Dataset with_codec(ShuffleCodec<T> codec) const {
    Dataset copy = *this;
    copy.codec_ = std::make_shared<ShuffleCodec<T>>(std::move(codec));
    return copy;
  }

  const std::shared_ptr<ShuffleCodec<T>>& codec() const { return codec_; }

  /// Narrow transformation: element-wise map.
  template <typename Fn>
  auto map(const std::string& stage_name, Fn&& fn) const
      -> Dataset<std::decay_t<std::invoke_result_t<Fn, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<Fn, const T&>>;
    return map_record_ranges<U>(
        stage_name, [fn](const std::vector<T>& part, std::size_t lo,
                         std::size_t hi) {
          std::vector<U> out;
          out.reserve(hi - lo);
          for (std::size_t k = lo; k < hi; ++k) out.push_back(fn(part[k]));
          return out;
        });
  }

  /// Narrow transformation: element-wise flat map.
  template <typename Fn>
  auto flat_map(const std::string& stage_name, Fn&& fn) const
      -> Dataset<typename std::decay_t<
          std::invoke_result_t<Fn, const T&>>::value_type> {
    using Vec = std::decay_t<std::invoke_result_t<Fn, const T&>>;
    using U = typename Vec::value_type;
    return map_record_ranges<U>(
        stage_name, [fn](const std::vector<T>& part, std::size_t lo,
                         std::size_t hi) {
          std::vector<U> out;
          for (std::size_t k = lo; k < hi; ++k) {
            Vec ys = fn(part[k]);
            out.insert(out.end(), std::make_move_iterator(ys.begin()),
                       std::make_move_iterator(ys.end()));
          }
          return out;
        });
  }

  /// Narrow transformation: keep elements satisfying `pred`.
  template <typename Pred>
  Dataset filter(const std::string& stage_name, Pred&& pred) const {
    return map_record_ranges<T>(
        stage_name, [pred](const std::vector<T>& part, std::size_t lo,
                           std::size_t hi) {
          std::vector<T> out;
          for (std::size_t k = lo; k < hi; ++k) {
            if (pred(part[k])) out.push_back(part[k]);
          }
          return out;
        });
  }

  /// Narrow element-wise transformation over contiguous record ranges:
  /// `fn(part, lo, hi)` returns the output records for part[lo, hi).
  /// Because element results are independent and reassembly preserves
  /// record order, the engine's AdaptiveScheduler (if attached) may split
  /// a heavy partition's range across several tasks and bundle
  /// micro-partitions into one — output partition p is exactly
  /// fn(part_p, 0, size_p) bit for bit either way.  map/flat_map/filter
  /// route through here; whole-partition functions (map_partitions) never
  /// split and keep their TaskContext semantics.
  template <typename U, typename RangeFn>
  Dataset<U> map_record_ranges(const std::string& stage_name,
                               RangeFn&& fn) const {
    sched::AdaptiveScheduler* scheduler = engine_->scheduler();
    sched::StagePlan plan;
    if (scheduler) {
      plan = scheduler->plan_stage(stage_name, partition_records(),
                                   engine_->pool().size(),
                                   /*splittable=*/true);
    }
    if (!plan.adopted) {
      // Static layout: one task per partition, the historical path.
      return map_partitions_ctx<U>(
          stage_name, [&fn](const TaskContext&, const std::vector<T>& part) {
            return fn(part, std::size_t{0}, part.size());
          });
    }

    const auto& tasks = plan.tasks;
    const std::size_t n_tasks = tasks.size();
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n_tasks;
    stage.task_seconds.assign(n_tasks, 0.0);
    stage.adaptive_splits = plan.partitions_split;
    stage.adaptive_merges = plan.tasks_merged;

    FaultInjector* injector = engine_->fault_injector();
    const std::size_t ordinal =
        injector ? injector->begin_stage(stage_name) : 0;
    Timer wall;
    // One output chunk per span; a partition's chunks are concatenated in
    // span order below, which reproduces the unsplit output exactly.
    using Chunks = std::vector<std::vector<U>>;
    std::vector<Chunks> task_outs;
    try {
      task_outs = execute_stage<Chunks>(
          engine_->pool(), engine_->exec_policy(), injector, stage, ordinal,
          n_tasks, /*task_offset=*/0, [&](std::size_t t, int) {
            Chunks chunks;
            chunks.reserve(tasks[t].spans.size());
            for (const auto& sp : tasks[t].spans) {
              chunks.push_back(
                  fn((*partitions_)[sp.partition], sp.begin, sp.end));
            }
            return chunks;
          });
    } catch (...) {
      record_stage(std::move(stage), wall, /*failed=*/true);
      throw;
    }

    // Reassemble: the planner emits spans in (partition, begin) order, so
    // one in-order pass rebuilds every partition; a partition that was
    // not split moves through untouched.
    auto out = std::make_shared<std::vector<std::vector<U>>>(
        partitions_->size());
    for (std::size_t t = 0; t < n_tasks; ++t) {
      for (std::size_t s = 0; s < tasks[t].spans.size(); ++s) {
        const sched::TaskSpan& sp = tasks[t].spans[s];
        auto& dst = (*out)[sp.partition];
        auto& chunk = task_outs[t][s];
        if (dst.empty()) {
          dst = std::move(chunk);
        } else {
          dst.insert(dst.end(), std::make_move_iterator(chunk.begin()),
                     std::make_move_iterator(chunk.end()));
        }
      }
    }

    std::vector<std::size_t> task_records(n_tasks);
    for (std::size_t t = 0; t < n_tasks; ++t) {
      task_records[t] = tasks[t].records();
    }
    scheduler->observe_stage(stage_name, stage.task_seconds, task_records);
    record_stage(std::move(stage), wall, /*failed=*/false);
    return Dataset<U>(engine_, std::move(out));
  }

  /// Narrow transformation over whole partitions.  `fn` receives the input
  /// partition and returns the output partition; it runs once per
  /// partition, in parallel, and per-task compute time is recorded.
  /// Failed tasks are retried per EngineConfig::max_task_retries — input
  /// partitions are immutable, so a retry is a clean lineage recompute —
  /// and retry exhaustion throws a StageFailure.  `fn` may therefore be
  /// invoked more than once (and concurrently, under speculation) for the
  /// same partition; it must be a pure function of its input.
  template <typename U, typename Fn>
  Dataset<U> map_partitions(const std::string& stage_name, Fn&& fn) const {
    return map_partitions_indexed<U>(
        stage_name,
        [&fn](std::size_t, const std::vector<T>& part) { return fn(part); });
  }

  /// Like map_partitions but `fn` also receives the partition index.
  template <typename U, typename Fn>
  Dataset<U> map_partitions_indexed(const std::string& stage_name,
                                    Fn&& fn) const {
    return map_partitions_ctx<U>(
        stage_name, [&fn](const TaskContext& ctx, const std::vector<T>& part) {
          return fn(ctx.index, part);
        });
  }

  /// Like map_partitions but `fn` receives a TaskContext (partition index,
  /// attempt number, stage ordinal) alongside the partition.  This is the
  /// hook for integrity layers that must consult the engine's FaultInjector
  /// per attempt — the same contract applies: `fn` must be a pure function
  /// of its inputs and may run more than once per partition.
  template <typename U, typename Fn>
  Dataset<U> map_partitions_ctx(const std::string& stage_name,
                                Fn&& fn) const {
    const std::size_t n = partitions_->size();
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n;
    stage.task_seconds.assign(n, 0.0);

    FaultInjector* injector = engine_->fault_injector();
    const std::size_t ordinal =
        injector ? injector->begin_stage(stage_name) : 0;
    Timer wall;
    auto out = std::make_shared<std::vector<std::vector<U>>>();
    try {
      *out = execute_stage<std::vector<U>>(
          engine_->pool(), engine_->exec_policy(), injector, stage, ordinal,
          n, /*task_offset=*/0, [&](std::size_t i, int attempt) {
            return fn(TaskContext{i, attempt, ordinal}, (*partitions_)[i]);
          });
    } catch (...) {
      record_stage(std::move(stage), wall, /*failed=*/true);
      throw;
    }
    observe_scheduler(stage_name, stage, n, partition_records());
    record_stage(std::move(stage), wall, /*failed=*/false);
    return Dataset<U>(engine_, std::move(out));
  }

  /// Wide transformation: redistribute every record to the output
  /// partition chosen by `part_fn(record) % num_out`.  When the dataset
  /// carries a codec and the engine is configured to serialize shuffles,
  /// every block is round-tripped through bytes and the volume recorded.
  /// Blocks carry a checksum and record count; a reduce task that reads a
  /// corrupted block (or whose codec decodes to the wrong length) fails
  /// with ShuffleBlockError and is retried against the pristine bytes.
  template <typename PartFn>
  Dataset shuffle(const std::string& stage_name, std::size_t num_out,
                  PartFn&& part_fn) const {
    if (num_out == 0) throw std::invalid_argument("shuffle: num_out == 0");
    const std::size_t n_in = partitions_->size();
    const bool use_codec =
        codec_ && codec_->valid() && engine_->config().serialize_shuffle;

    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n_in + num_out;
    stage.task_seconds.assign(n_in + num_out, 0.0);
    stage.wide = true;
    stage.map_task_count = n_in;

    FaultInjector* injector = engine_->fault_injector();
    const std::size_t ordinal =
        injector ? injector->begin_stage(stage_name) : 0;
    const StageExecPolicy policy = engine_->exec_policy();

    // When a transport is attached (and blocks are serialized), encoded
    // blocks flow through it instead of parking in driver memory; the
    // algorithm, validation and metrics below are identical either way.
    ShuffleTransport* transport =
        use_codec ? engine_->shuffle_transport() : nullptr;
    const std::uint64_t shuffle_id =
        transport ? transport->begin_shuffle(stage_name, n_in, num_out) : 0;

    // Shared names for the per-block (de)serialization spans, so the
    // per-task recording sites only copy, never concatenate.
    const std::string ser_name = stage_name + ".ser";
    const std::string deser_name = stage_name + ".deser";

    struct MapOut {
      std::vector<std::vector<T>> buckets;             // no-codec path
      std::vector<std::vector<std::uint8_t>> encoded;  // codec path
      /// Integrity metadata recorded per block on the map side; kept
      /// driver-side even under a transport, so validation never trusts
      /// the transport's copy of the metadata.
      std::vector<ShuffleBlockMeta> meta;
      std::uint64_t write_bytes = 0;
      double ser_seconds = 0.0;
    };

    // Map side: bucket each input partition into num_out blocks.
    Timer wall;
    std::vector<MapOut> map_outs;
    try {
      map_outs = execute_stage<MapOut>(
          engine_->pool(), policy, injector, stage, ordinal, n_in,
          /*task_offset=*/0, [&](std::size_t i, int) {
            MapOut out;
            out.buckets.resize(num_out);
            for (const auto& x : (*partitions_)[i]) {
              out.buckets[part_fn(x) % num_out].push_back(x);
            }
            if (use_codec) {
              Timer ser;
              trace::ScopedSpan ser_span(ser_name,
                                         trace::SpanKind::kShuffleSer,
                                         static_cast<std::int64_t>(i));
              out.encoded.resize(num_out);
              out.meta.resize(num_out);
              for (std::size_t b = 0; b < num_out; ++b) {
                const std::span<const T> bucket(out.buckets[b].data(),
                                                out.buckets[b].size());
                if (codec_->encode_into) {
                  // Encode into a recycled buffer: steady-state shuffles
                  // stop allocating one fresh vector per block.
                  std::vector<std::uint8_t> buf =
                      engine_->buffer_pool().acquire();
                  codec_->encode_into(bucket, buf);
                  out.encoded[b] = std::move(buf);
                } else {
                  out.encoded[b] = codec_->encode(bucket);
                }
                out.meta[b] = {shuffle_block_checksum(out.encoded[b]),
                               out.buckets[b].size(), out.encoded[b].size()};
                out.write_bytes += out.encoded[b].size();
                out.buckets[b].clear();
                out.buckets[b].shrink_to_fit();
              }
              out.ser_seconds = ser.seconds();
              if (transport) {
                // Hand the bytes to the physical layer; the meta stays
                // here for reduce-side validation.  A transport failure
                // fails this attempt, and the executor's retry re-encodes
                // from the immutable input partition (lineage recompute).
                transport->put_map_output(shuffle_id, i,
                                          std::move(out.encoded), out.meta);
                out.encoded.clear();
              }
            }
            return out;
          });
    } catch (...) {
      if (transport) transport->end_shuffle(shuffle_id);
      record_stage(std::move(stage), wall, /*failed=*/true);
      throw;
    }

    // Reduce side: gather blocks per output partition.  Attempts only read
    // the shared map output (no moves), so retries and speculative copies
    // always see pristine blocks.
    struct ReduceOut {
      std::vector<T> records;
      std::uint64_t read_bytes = 0;
      double ser_seconds = 0.0;
    };
    std::atomic<std::size_t> corruptions{0};
    std::vector<ReduceOut> reduce_outs;
    try {
      reduce_outs = execute_stage<ReduceOut>(
          engine_->pool(), policy, injector, stage, ordinal, num_out,
          /*task_offset=*/n_in, [&](std::size_t b, int attempt) {
            ReduceOut out;
            if (use_codec) {
              Timer ser;
              trace::ScopedSpan deser_span(
                  deser_name, trace::SpanKind::kShuffleDeser,
                  static_cast<std::int64_t>(n_in + b));
              for (std::size_t i = 0; i < n_in; ++i) {
                const ShuffleBlockMeta& meta = map_outs[i].meta[b];
                ShuffleBlockHandle handle;
                std::span<const std::uint8_t> block;
                if (transport) {
                  handle = transport->fetch_block(shuffle_id, i, b);
                  block = handle.bytes;
                } else {
                  const auto& encoded = map_outs[i].encoded[b];
                  block = std::span<const std::uint8_t>(encoded.data(),
                                                        encoded.size());
                }
                out.read_bytes += block.size();
                std::optional<std::vector<std::uint8_t>> corrupted;
                if (injector) {
                  corrupted = injector->corrupted_copy(stage_name, ordinal,
                                                       i, b, attempt, block);
                  if (corrupted) {
                    corruptions.fetch_add(1);
                    block = std::span<const std::uint8_t>(corrupted->data(),
                                                          corrupted->size());
                  }
                }
                if (shuffle_block_checksum(block) != meta.checksum) {
                  throw ShuffleBlockError(
                      "shuffle block " + std::to_string(i) + "->" +
                      std::to_string(b) + " of stage '" + stage_name +
                      "' failed its checksum");
                }
                auto records = codec_->decode(block);
                if (records.size() != meta.records) {
                  throw ShuffleBlockError(
                      "shuffle block " + std::to_string(i) + "->" +
                      std::to_string(b) + " of stage '" + stage_name +
                      "' decoded to " + std::to_string(records.size()) +
                      " records, expected " + std::to_string(meta.records));
                }
                out.records.insert(out.records.end(),
                                   std::make_move_iterator(records.begin()),
                                   std::make_move_iterator(records.end()));
              }
              out.ser_seconds = ser.seconds();
            } else {
              for (std::size_t i = 0; i < n_in; ++i) {
                const auto& blk = map_outs[i].buckets[b];
                out.records.insert(out.records.end(), blk.begin(), blk.end());
              }
            }
            return out;
          });
    } catch (...) {
      if (transport) transport->end_shuffle(shuffle_id);
      stage.injected_faults += corruptions.load();
      record_stage(std::move(stage), wall, /*failed=*/true);
      throw;
    }
    stage.injected_faults += corruptions.load();

    auto out = std::make_shared<Partitions>(num_out);
    for (std::size_t b = 0; b < num_out; ++b) {
      (*out)[b] = std::move(reduce_outs[b].records);
    }

    for (const auto& m : map_outs) {
      stage.shuffle_write_bytes += m.write_bytes;
      stage.serialization_seconds += m.ser_seconds;
      for (const auto& meta : m.meta) stage.shuffle_records += meta.records;
    }
    for (const auto& r : reduce_outs) {
      stage.shuffle_read_bytes += r.read_bytes;
      stage.serialization_seconds += r.ser_seconds;
    }
    if (use_codec) {
      // All reduce attempts (including speculative copies) are done, so
      // the blocks can be released — to the transport, or (in-memory
      // path) recycled through the buffer pool for the next stage.
      if (transport) {
        transport->end_shuffle(shuffle_id);
      } else {
        for (auto& m : map_outs) {
          for (auto& blk : m.encoded) {
            engine_->buffer_pool().release(std::move(blk));
          }
        }
      }
    }
    if (!use_codec) {
      // Without a codec we still estimate moved volume from record count
      // times a nominal record size so redundancy metrics stay comparable.
      std::uint64_t records_moved = 0;
      for (const auto& m : map_outs) {
        for (const auto& blk : m.buckets) records_moved += blk.size();
      }
      stage.shuffle_write_bytes = records_moved * sizeof(T);
      stage.shuffle_read_bytes = stage.shuffle_write_bytes;
      stage.shuffle_records = records_moved;
    }
    // Map-side tasks scale with input partition size; feed them to the
    // cost model (reduce tasks have their own cost shape and stay out).
    observe_scheduler(stage_name, stage, n_in, partition_records());
    record_stage(std::move(stage), wall, /*failed=*/false);

    Dataset result(engine_, std::move(out));
    result.codec_ = codec_;
    return result;
  }

  /// Wide transformation: groups records by key; each output partition
  /// holds complete groups.
  template <typename KeyFn>
  auto group_by(const std::string& stage_name, std::size_t num_out,
                KeyFn&& key_fn) const
      -> Dataset<std::pair<std::decay_t<std::invoke_result_t<KeyFn, const T&>>,
                           std::vector<T>>> {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    auto shuffled = shuffle(stage_name, num_out, [key_fn](const T& x) {
      return std::hash<K>{}(key_fn(x));
    });
    return shuffled.template map_partitions<std::pair<K, std::vector<T>>>(
        stage_name + ".group", [key_fn](const std::vector<T>& part) {
          std::unordered_map<K, std::vector<T>> groups;
          for (const auto& x : part) groups[key_fn(x)].push_back(x);
          std::vector<std::pair<K, std::vector<T>>> out;
          out.reserve(groups.size());
          for (auto& [k, v] : groups) out.emplace_back(k, std::move(v));
          return out;
        });
  }

  /// Wide transformation: inner hash join with `other` on matching keys.
  /// Both sides co-shuffle to `num_out` partitions by key hash, then each
  /// output partition pairs every left record with every right record
  /// sharing its key (Spark's join semantics, including duplicate keys).
  template <typename U, typename KeyFn, typename OtherKeyFn>
  auto join(const std::string& stage_name, const Dataset<U>& other,
            std::size_t num_out, KeyFn&& key_fn,
            OtherKeyFn&& other_key_fn) const
      -> Dataset<std::pair<std::decay_t<std::invoke_result_t<KeyFn, const T&>>,
                           std::pair<T, U>>> {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    static_assert(
        std::is_same_v<
            K, std::decay_t<std::invoke_result_t<OtherKeyFn, const U&>>>,
        "join: both key extractors must produce the same key type");
    if (num_out == 0) throw std::invalid_argument("join: num_out == 0");
    auto left = shuffle(stage_name + ".left", num_out, [key_fn](const T& x) {
      return std::hash<K>{}(key_fn(x));
    });
    auto right = other.shuffle(stage_name + ".right", num_out,
                               [other_key_fn](const U& y) {
                                 return std::hash<K>{}(other_key_fn(y));
                               });
    const auto right_parts = right.partitions_;
    return left.template map_partitions_indexed<std::pair<K, std::pair<T, U>>>(
        stage_name + ".join",
        [key_fn, other_key_fn, right_parts](std::size_t pid,
                                            const std::vector<T>& lpart) {
          std::unordered_map<K, std::vector<const U*>> index;
          for (const U& y : (*right_parts)[pid]) {
            index[other_key_fn(y)].push_back(&y);
          }
          std::vector<std::pair<K, std::pair<T, U>>> out;
          for (const T& x : lpart) {
            const auto it = index.find(key_fn(x));
            if (it == index.end()) continue;
            for (const U* y : it->second) {
              out.emplace_back(it->first, std::make_pair(x, *y));
            }
          }
          return out;
        });
  }

  /// Wide transformation: global sort by `key_fn`'s value using sampled
  /// range partitioning (Spark's sortBy): sample keys, pick splitters,
  /// route each record to its key range, sort locally.  Output partitions
  /// concatenate to a globally sorted sequence.
  template <typename KeyFn>
  Dataset sort_by(const std::string& stage_name, std::size_t num_out,
                  KeyFn&& key_fn) const {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    if (num_out == 0) throw std::invalid_argument("sort_by: num_out == 0");

    // Sample candidate splitters from every partition.
    std::vector<K> samples;
    for (const auto& part : *partitions_) {
      const std::size_t stride = std::max<std::size_t>(1, part.size() / 32);
      for (std::size_t i = 0; i < part.size(); i += stride) {
        samples.push_back(key_fn(part[i]));
      }
    }
    std::sort(samples.begin(), samples.end());
    std::vector<K> splitters;
    for (std::size_t s = 1; s < num_out && !samples.empty(); ++s) {
      splitters.push_back(samples[s * samples.size() / num_out]);
    }

    auto ranged = shuffle(stage_name, num_out, [key_fn, splitters](const T& x) {
      const auto it = std::upper_bound(splitters.begin(), splitters.end(),
                                       key_fn(x));
      return static_cast<std::uint64_t>(
          std::distance(splitters.begin(), it));
    });
    return ranged.template map_partitions<T>(
        stage_name + ".local_sort", [key_fn](const std::vector<T>& part) {
          std::vector<T> out = part;
          std::stable_sort(out.begin(), out.end(),
                           [&key_fn](const T& a, const T& b) {
                             return key_fn(a) < key_fn(b);
                           });
          return out;
        });
  }

  /// Narrow transformation: merges partitions down to `num_out` without a
  /// shuffle (Spark's coalesce): adjacent input partitions concatenate.
  Dataset coalesce(const std::string& stage_name, std::size_t num_out) const {
    if (num_out == 0) throw std::invalid_argument("coalesce: num_out == 0");
    const std::size_t n_in = partitions_->size();
    if (num_out >= n_in) return *this;
    std::vector<std::vector<T>> merged(num_out);
    for (std::size_t i = 0; i < n_in; ++i) {
      const std::size_t dest = i * num_out / n_in;
      merged[dest].insert(merged[dest].end(), (*partitions_)[i].begin(),
                          (*partitions_)[i].end());
    }
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = num_out;
    stage.task_seconds.assign(num_out, 0.0);
    engine_->metrics().add_stage(std::move(stage));
    Dataset result(engine_,
                   std::make_shared<Partitions>(std::move(merged)));
    result.codec_ = codec_;
    return result;
  }

  /// Concatenates this dataset's partitions with `other`'s (Spark's
  /// union: no shuffle, partition lists append).
  Dataset union_with(const Dataset& other) const {
    std::vector<std::vector<T>> parts = *partitions_;
    parts.insert(parts.end(), other.partitions_->begin(),
                 other.partitions_->end());
    Dataset result(engine_, std::make_shared<Partitions>(std::move(parts)));
    result.codec_ = codec_;
    return result;
  }

  /// Fold all records into a single value (associative `op`).
  template <typename U, typename Fold, typename Combine>
  U aggregate(const std::string& stage_name, U init, Fold&& fold,
              Combine&& combine) const {
    const std::size_t n = partitions_->size();
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n;
    stage.task_seconds.assign(n, 0.0);

    FaultInjector* injector = engine_->fault_injector();
    const std::size_t ordinal =
        injector ? injector->begin_stage(stage_name) : 0;
    Timer wall;
    std::vector<U> partials;
    try {
      partials = execute_stage<U>(
          engine_->pool(), engine_->exec_policy(), injector, stage, ordinal,
          n, /*task_offset=*/0, [&](std::size_t i, int) {
            U acc = init;
            for (const auto& x : (*partitions_)[i]) {
              acc = fold(std::move(acc), x);
            }
            return acc;
          });
    } catch (...) {
      record_stage(std::move(stage), wall, /*failed=*/true);
      throw;
    }
    observe_scheduler(stage_name, stage, n, partition_records());
    record_stage(std::move(stage), wall, /*failed=*/false);
    U result = init;
    for (auto& p : partials) result = combine(std::move(result), std::move(p));
    return result;
  }

 private:
  template <typename U>
  friend class Dataset;

  /// Record count of every partition (the planner's and cost model's
  /// per-task input signal).
  std::vector<std::size_t> partition_records() const {
    std::vector<std::size_t> records(partitions_->size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i] = (*partitions_)[i].size();
    }
    return records;
  }

  /// Feeds a finished stage's per-task timings to the scheduler's cost
  /// model (first `n` entries of task_seconds against `records`).
  void observe_scheduler(const std::string& stage_name,
                         const StageMetrics& stage, std::size_t n,
                         const std::vector<std::size_t>& records) const {
    if (sched::AdaptiveScheduler* scheduler = engine_->scheduler()) {
      scheduler->observe_stage(
          stage_name,
          std::span<const double>(stage.task_seconds.data(), n), records);
    }
  }

  /// Stamps the wall time and files the stage with the engine — also for
  /// failed stages, so chaos runs can audit retry/fault accounting.
  void record_stage(StageMetrics&& stage, const Timer& wall,
                    bool failed) const {
    stage.wall_seconds = wall.seconds();
    stage.failed = failed;
    stage.finalize_task_stats();
    trace::TraceRecorder& recorder = trace::TraceRecorder::global();
    if (recorder.enabled()) {
      trace::Span span;
      span.name = stage.name;
      span.kind = trace::SpanKind::kStage;
      span.dur_us = stage.wall_seconds * 1e6;
      span.start_us = recorder.now_us() - span.dur_us;
      span.failed = stage.failed;
      recorder.record(std::move(span));
    }
    engine_->metrics().add_stage(std::move(stage));
  }

  Engine* engine_ = nullptr;
  std::shared_ptr<Partitions> partitions_;
  std::shared_ptr<ShuffleCodec<T>> codec_;
};

template <typename T>
Dataset<T> Engine::make_dataset(std::vector<std::vector<T>> partitions) {
  return Dataset<T>(this, std::make_shared<std::vector<std::vector<T>>>(
                              std::move(partitions)));
}

template <typename T>
Dataset<T> Engine::parallelize(std::vector<T> records,
                               std::size_t num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("parallelize: num_partitions == 0");
  }
  std::vector<std::vector<T>> parts(num_partitions);
  const std::size_t total = records.size();
  const std::size_t chunk = (total + num_partitions - 1) / num_partitions;
  std::size_t at = 0;
  for (std::size_t p = 0; p < num_partitions && at < total; ++p) {
    const std::size_t end = std::min(total, at + chunk);
    parts[p].assign(std::make_move_iterator(records.begin() + at),
                    std::make_move_iterator(records.begin() + end));
    at = end;
  }
  return make_dataset(std::move(parts));
}

}  // namespace gpf::engine
