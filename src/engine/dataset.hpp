// The in-memory dataflow engine: a typed, partitioned, eagerly-executed
// dataset abstraction equivalent to the Spark RDD layer GPF builds on.
//
// Differences from Spark that matter for the reproduction:
//  * Execution is eager, one stage per transformation; the *Process-level*
//    DAG optimization the paper contributes lives above this layer in
//    src/core (the engine deliberately stays dumb, like Spark's task
//    runner, so that redundancy elimination is attributable to GPF).
//  * Every stage records metrics (per-task compute seconds, shuffle bytes,
//    serialization time) so a run can be replayed on the cluster simulator
//    at any core count.
//  * Shuffles optionally round-trip records through a real serializer
//    (Java-like / Kryo-like / GPF codecs), which is how the compression
//    experiments measure bytes actually moved.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "engine/metrics.hpp"

namespace gpf::engine {

/// Serializer hooks used when a shuffle round-trips records through bytes.
template <typename T>
struct ShuffleCodec {
  std::function<std::vector<std::uint8_t>(std::span<const T>)> encode;
  std::function<std::vector<T>(std::span<const std::uint8_t>)> decode;

  bool valid() const { return encode != nullptr && decode != nullptr; }
};

/// Engine configuration.
struct EngineConfig {
  /// Local worker threads executing partition tasks (0 = hardware).
  std::size_t worker_threads = 0;
  /// When true, wide dependencies serialize every shuffle block through the
  /// dataset's codec (if one is attached), measuring real byte volumes.
  bool serialize_shuffle = true;
  /// Failed partition tasks are re-executed up to this many times before
  /// the stage fails (Spark re-runs lost tasks from lineage; inputs here
  /// are immutable shared partitions, so a retry is exactly a lineage
  /// recompute).
  int max_task_retries = 2;
};

template <typename T>
class Dataset;

/// Execution context: owns the worker pool and metrics, hands out datasets.
class Engine {
 public:
  explicit Engine(EngineConfig config = {})
      : config_(config), pool_(config.worker_threads) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return pool_; }
  EngineMetrics& metrics() { return metrics_; }
  const EngineMetrics& metrics() const { return metrics_; }

  /// Creates a dataset from pre-partitioned data.
  template <typename T>
  Dataset<T> make_dataset(std::vector<std::vector<T>> partitions);

  /// Creates a dataset by slicing `records` into `num_partitions` evenly.
  template <typename T>
  Dataset<T> parallelize(std::vector<T> records, std::size_t num_partitions);

 private:
  EngineConfig config_;
  ThreadPool pool_;
  EngineMetrics metrics_;
};

/// A partitioned in-memory collection.  Cheap to copy (partitions are
/// shared and immutable once produced).
template <typename T>
class Dataset {
 public:
  using Partitions = std::vector<std::vector<T>>;

  Dataset() = default;
  Dataset(Engine* engine, std::shared_ptr<Partitions> partitions)
      : engine_(engine), partitions_(std::move(partitions)) {}

  Engine& engine() const { return *engine_; }
  std::size_t partition_count() const { return partitions_->size(); }
  const Partitions& partitions() const { return *partitions_; }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& p : *partitions_) n += p.size();
    return n;
  }

  /// Gathers all records into one vector (partition order preserved).
  std::vector<T> collect() const {
    std::vector<T> out;
    out.reserve(count());
    for (const auto& p : *partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  /// Attaches a serializer used by subsequent shuffles of this dataset.
  Dataset with_codec(ShuffleCodec<T> codec) const {
    Dataset copy = *this;
    copy.codec_ = std::make_shared<ShuffleCodec<T>>(std::move(codec));
    return copy;
  }

  const std::shared_ptr<ShuffleCodec<T>>& codec() const { return codec_; }

  /// Narrow transformation: element-wise map.
  template <typename Fn>
  auto map(const std::string& stage_name, Fn&& fn) const
      -> Dataset<std::decay_t<std::invoke_result_t<Fn, const T&>>> {
    using U = std::decay_t<std::invoke_result_t<Fn, const T&>>;
    return map_partitions<U>(stage_name, [fn](const std::vector<T>& part) {
      std::vector<U> out;
      out.reserve(part.size());
      for (const auto& x : part) out.push_back(fn(x));
      return out;
    });
  }

  /// Narrow transformation: element-wise flat map.
  template <typename Fn>
  auto flat_map(const std::string& stage_name, Fn&& fn) const
      -> Dataset<typename std::decay_t<
          std::invoke_result_t<Fn, const T&>>::value_type> {
    using Vec = std::decay_t<std::invoke_result_t<Fn, const T&>>;
    using U = typename Vec::value_type;
    return map_partitions<U>(stage_name, [fn](const std::vector<T>& part) {
      std::vector<U> out;
      for (const auto& x : part) {
        Vec ys = fn(x);
        out.insert(out.end(), std::make_move_iterator(ys.begin()),
                   std::make_move_iterator(ys.end()));
      }
      return out;
    });
  }

  /// Narrow transformation: keep elements satisfying `pred`.
  template <typename Pred>
  Dataset filter(const std::string& stage_name, Pred&& pred) const {
    return map_partitions<T>(stage_name, [pred](const std::vector<T>& part) {
      std::vector<T> out;
      for (const auto& x : part) {
        if (pred(x)) out.push_back(x);
      }
      return out;
    });
  }

  /// Narrow transformation over whole partitions.  `fn` receives the input
  /// partition and returns the output partition; it runs once per
  /// partition, in parallel, and per-task compute time is recorded.
  /// Failed tasks are retried per EngineConfig::max_task_retries — input
  /// partitions are immutable, so a retry is a clean lineage recompute.
  template <typename U, typename Fn>
  Dataset<U> map_partitions(const std::string& stage_name, Fn&& fn) const {
    return map_partitions_indexed<U>(
        stage_name,
        [&fn](std::size_t, const std::vector<T>& part) { return fn(part); });
  }

  /// Like map_partitions but `fn` also receives the partition index.
  template <typename U, typename Fn>
  Dataset<U> map_partitions_indexed(const std::string& stage_name,
                                    Fn&& fn) const {
    const std::size_t n = partitions_->size();
    auto out = std::make_shared<std::vector<std::vector<U>>>(n);
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n;
    stage.task_seconds.assign(n, 0.0);
    std::atomic<std::size_t> retries{0};

    const int max_retries = engine_->config().max_task_retries;
    Timer wall;
    engine_->pool().parallel_for(n, [&](std::size_t i) {
      Timer t;
      (*out)[i] = run_task(max_retries, retries,
                           [&] { return fn(i, (*partitions_)[i]); });
      stage.task_seconds[i] = t.seconds();
    });
    stage.wall_seconds = wall.seconds();
    stage.task_retries = retries.load();
    engine_->metrics().add_stage(std::move(stage));

    return Dataset<U>(engine_, std::move(out));
  }

  /// Wide transformation: redistribute every record to the output
  /// partition chosen by `part_fn(record) % num_out`.  When the dataset
  /// carries a codec and the engine is configured to serialize shuffles,
  /// every block is round-tripped through bytes and the volume recorded.
  template <typename PartFn>
  Dataset shuffle(const std::string& stage_name, std::size_t num_out,
                  PartFn&& part_fn) const {
    if (num_out == 0) throw std::invalid_argument("shuffle: num_out == 0");
    const std::size_t n_in = partitions_->size();
    const bool use_codec =
        codec_ && codec_->valid() && engine_->config().serialize_shuffle;

    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n_in + num_out;
    stage.task_seconds.assign(n_in + num_out, 0.0);
    stage.wide = true;
    stage.map_task_count = n_in;

    // Map side: bucket each input partition into num_out blocks.
    std::vector<std::vector<std::vector<T>>> blocks(n_in);
    std::vector<std::vector<std::vector<std::uint8_t>>> encoded(n_in);
    std::vector<std::uint64_t> write_bytes(n_in, 0);
    std::vector<double> ser_seconds(n_in + num_out, 0.0);

    Timer wall;
    engine_->pool().parallel_for(n_in, [&](std::size_t i) {
      Timer t;
      auto& buckets = blocks[i];
      buckets.resize(num_out);
      for (const auto& x : (*partitions_)[i]) {
        buckets[part_fn(x) % num_out].push_back(x);
      }
      if (use_codec) {
        Timer ser;
        encoded[i].resize(num_out);
        for (std::size_t b = 0; b < num_out; ++b) {
          encoded[i][b] = codec_->encode(
              std::span<const T>(buckets[b].data(), buckets[b].size()));
          write_bytes[i] += encoded[i][b].size();
          buckets[b].clear();
          buckets[b].shrink_to_fit();
        }
        ser_seconds[i] = ser.seconds();
      }
      stage.task_seconds[i] = t.seconds();
    });

    // Reduce side: gather blocks per output partition.
    auto out = std::make_shared<Partitions>(num_out);
    std::vector<std::uint64_t> read_bytes(num_out, 0);
    engine_->pool().parallel_for(num_out, [&](std::size_t b) {
      Timer t;
      auto& dest = (*out)[b];
      if (use_codec) {
        Timer ser;
        for (std::size_t i = 0; i < n_in; ++i) {
          read_bytes[b] += encoded[i][b].size();
          auto records = codec_->decode(std::span<const std::uint8_t>(
              encoded[i][b].data(), encoded[i][b].size()));
          dest.insert(dest.end(), std::make_move_iterator(records.begin()),
                      std::make_move_iterator(records.end()));
        }
        ser_seconds[n_in + b] = ser.seconds();
      } else {
        for (std::size_t i = 0; i < n_in; ++i) {
          auto& blk = blocks[i][b];
          dest.insert(dest.end(), std::make_move_iterator(blk.begin()),
                      std::make_move_iterator(blk.end()));
        }
      }
      stage.task_seconds[n_in + b] = t.seconds();
    });

    stage.wall_seconds = wall.seconds();
    stage.shuffle_write_bytes =
        std::accumulate(write_bytes.begin(), write_bytes.end(),
                        std::uint64_t{0});
    stage.shuffle_read_bytes = std::accumulate(
        read_bytes.begin(), read_bytes.end(), std::uint64_t{0});
    if (!use_codec) {
      // Without a codec we still estimate moved volume from record count
      // times a nominal record size so redundancy metrics stay comparable.
      std::uint64_t records_moved = 0;
      for (const auto& part_blocks : blocks) {
        for (const auto& blk : part_blocks) records_moved += blk.size();
      }
      stage.shuffle_write_bytes = records_moved * sizeof(T);
      stage.shuffle_read_bytes = stage.shuffle_write_bytes;
    }
    stage.serialization_seconds =
        std::accumulate(ser_seconds.begin(), ser_seconds.end(), 0.0);
    engine_->metrics().add_stage(std::move(stage));

    Dataset result(engine_, std::move(out));
    result.codec_ = codec_;
    return result;
  }

  /// Wide transformation: groups records by key; each output partition
  /// holds complete groups.
  template <typename KeyFn>
  auto group_by(const std::string& stage_name, std::size_t num_out,
                KeyFn&& key_fn) const
      -> Dataset<std::pair<std::decay_t<std::invoke_result_t<KeyFn, const T&>>,
                           std::vector<T>>> {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    auto shuffled = shuffle(stage_name, num_out, [key_fn](const T& x) {
      return std::hash<K>{}(key_fn(x));
    });
    return shuffled.template map_partitions<std::pair<K, std::vector<T>>>(
        stage_name + ".group", [key_fn](const std::vector<T>& part) {
          std::unordered_map<K, std::vector<T>> groups;
          for (const auto& x : part) groups[key_fn(x)].push_back(x);
          std::vector<std::pair<K, std::vector<T>>> out;
          out.reserve(groups.size());
          for (auto& [k, v] : groups) out.emplace_back(k, std::move(v));
          return out;
        });
  }

  /// Wide transformation: global sort by `key_fn`'s value using sampled
  /// range partitioning (Spark's sortBy): sample keys, pick splitters,
  /// route each record to its key range, sort locally.  Output partitions
  /// concatenate to a globally sorted sequence.
  template <typename KeyFn>
  Dataset sort_by(const std::string& stage_name, std::size_t num_out,
                  KeyFn&& key_fn) const {
    using K = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;
    if (num_out == 0) throw std::invalid_argument("sort_by: num_out == 0");

    // Sample candidate splitters from every partition.
    std::vector<K> samples;
    for (const auto& part : *partitions_) {
      const std::size_t stride = std::max<std::size_t>(1, part.size() / 32);
      for (std::size_t i = 0; i < part.size(); i += stride) {
        samples.push_back(key_fn(part[i]));
      }
    }
    std::sort(samples.begin(), samples.end());
    std::vector<K> splitters;
    for (std::size_t s = 1; s < num_out && !samples.empty(); ++s) {
      splitters.push_back(samples[s * samples.size() / num_out]);
    }

    auto ranged = shuffle(stage_name, num_out, [key_fn, splitters](const T& x) {
      const auto it = std::upper_bound(splitters.begin(), splitters.end(),
                                       key_fn(x));
      return static_cast<std::uint64_t>(
          std::distance(splitters.begin(), it));
    });
    return ranged.template map_partitions<T>(
        stage_name + ".local_sort", [key_fn](const std::vector<T>& part) {
          std::vector<T> out = part;
          std::stable_sort(out.begin(), out.end(),
                           [&key_fn](const T& a, const T& b) {
                             return key_fn(a) < key_fn(b);
                           });
          return out;
        });
  }

  /// Narrow transformation: merges partitions down to `num_out` without a
  /// shuffle (Spark's coalesce): adjacent input partitions concatenate.
  Dataset coalesce(const std::string& stage_name, std::size_t num_out) const {
    if (num_out == 0) throw std::invalid_argument("coalesce: num_out == 0");
    const std::size_t n_in = partitions_->size();
    if (num_out >= n_in) return *this;
    std::vector<std::vector<T>> merged(num_out);
    for (std::size_t i = 0; i < n_in; ++i) {
      const std::size_t dest = i * num_out / n_in;
      merged[dest].insert(merged[dest].end(), (*partitions_)[i].begin(),
                          (*partitions_)[i].end());
    }
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = num_out;
    stage.task_seconds.assign(num_out, 0.0);
    engine_->metrics().add_stage(std::move(stage));
    Dataset result(engine_,
                   std::make_shared<Partitions>(std::move(merged)));
    result.codec_ = codec_;
    return result;
  }

  /// Concatenates this dataset's partitions with `other`'s (Spark's
  /// union: no shuffle, partition lists append).
  Dataset union_with(const Dataset& other) const {
    std::vector<std::vector<T>> parts = *partitions_;
    parts.insert(parts.end(), other.partitions_->begin(),
                 other.partitions_->end());
    Dataset result(engine_, std::make_shared<Partitions>(std::move(parts)));
    result.codec_ = codec_;
    return result;
  }

  /// Fold all records into a single value (associative `op`).
  template <typename U, typename Fold, typename Combine>
  U aggregate(const std::string& stage_name, U init, Fold&& fold,
              Combine&& combine) const {
    const std::size_t n = partitions_->size();
    std::vector<U> partials(n, init);
    StageMetrics stage;
    stage.name = stage_name;
    stage.task_count = n;
    stage.task_seconds.assign(n, 0.0);
    Timer wall;
    engine_->pool().parallel_for(n, [&](std::size_t i) {
      Timer t;
      U acc = init;
      for (const auto& x : (*partitions_)[i]) acc = fold(std::move(acc), x);
      partials[i] = std::move(acc);
      stage.task_seconds[i] = t.seconds();
    });
    stage.wall_seconds = wall.seconds();
    engine_->metrics().add_stage(std::move(stage));
    U result = init;
    for (auto& p : partials) result = combine(std::move(result), std::move(p));
    return result;
  }

 private:
  template <typename U>
  friend class Dataset;

  /// Runs `attempt` with up to `max_retries` re-executions on exception;
  /// rethrows the final failure (which parallel_for surfaces to the
  /// caller).
  template <typename Attempt>
  static auto run_task(int max_retries, std::atomic<std::size_t>& retries,
                       Attempt&& attempt)
      -> decltype(attempt()) {
    for (int attempt_no = 0;; ++attempt_no) {
      try {
        return attempt();
      } catch (...) {
        if (attempt_no >= max_retries) throw;
        ++retries;
      }
    }
  }

  Engine* engine_ = nullptr;
  std::shared_ptr<Partitions> partitions_;
  std::shared_ptr<ShuffleCodec<T>> codec_;
};

template <typename T>
Dataset<T> Engine::make_dataset(std::vector<std::vector<T>> partitions) {
  return Dataset<T>(this, std::make_shared<std::vector<std::vector<T>>>(
                              std::move(partitions)));
}

template <typename T>
Dataset<T> Engine::parallelize(std::vector<T> records,
                               std::size_t num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("parallelize: num_partitions == 0");
  }
  std::vector<std::vector<T>> parts(num_partitions);
  const std::size_t total = records.size();
  const std::size_t chunk = (total + num_partitions - 1) / num_partitions;
  std::size_t at = 0;
  for (std::size_t p = 0; p < num_partitions && at < total; ++p) {
    const std::size_t end = std::min(total, at + chunk);
    parts[p].assign(std::make_move_iterator(records.begin() + at),
                    std::make_move_iterator(records.begin() + end));
    at = end;
  }
  return make_dataset(std::move(parts));
}

}  // namespace gpf::engine
