// The block-sink/source seam between the engine's shuffle and the
// physical storage of shuffle blocks.
//
// Dataset::shuffle always had exactly one physical transport: encoded
// blocks parked in driver memory between the map and reduce stages.  The
// execution backends (src/exec) need the same dataflow over different
// physical substrates — chunk files under a residency budget, or worker
// processes reached over sockets — without the shuffle algorithm, its
// integrity checks, or its metrics changing shape.  ShuffleTransport is
// that boundary:
//
//  * map tasks deposit each finished attempt's encoded blocks with
//    put_map_output() (idempotent: retried and speculative attempts
//    re-deposit bit-identical bytes, because attempts are pure functions
//    of immutable inputs);
//  * reduce tasks read blocks back with fetch_block(), which returns the
//    bytes plus a pin that keeps the backing storage (an mmap, a fetched
//    buffer) alive through decode;
//  * end_shuffle() releases everything once all reduce attempts are done.
//
// Checksums and record counts are validated by the SHUFFLE, not the
// transport — a transport that loses or corrupts a block surfaces as the
// same ShuffleBlockError / retry story the in-memory path has.  A null
// transport (the default) keeps the original in-memory path byte for
// byte.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace gpf::engine {

/// Integrity metadata for one encoded block (map task -> reduce part).
struct ShuffleBlockMeta {
  std::uint64_t checksum = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

/// A fetched block: the bytes plus whatever owns them.  `pin` keeps the
/// backing storage (mmap'd chunk, remote-fetch buffer) alive for as long
/// as the caller reads `bytes`.
struct ShuffleBlockHandle {
  std::span<const std::uint8_t> bytes;
  std::shared_ptr<const void> pin;
};

/// Cumulative counters a transport reports; the execution driver diffs
/// snapshots to attribute transport work per pipeline stage.
struct ShuffleTransportStats {
  std::uint64_t shuffles = 0;
  std::uint64_t blocks_put = 0;
  std::uint64_t blocks_fetched = 0;
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_fetched = 0;
  /// Blocks spilled to disk (spilling transports).
  std::uint64_t bytes_spilled = 0;
  /// Map outputs recovered from the driver-side cache after their owner
  /// was lost (distributed transports) — lineage recovery made visible.
  std::uint64_t lineage_recoveries = 0;
};

class ShuffleTransport {
 public:
  virtual ~ShuffleTransport() = default;

  /// Short name for reports ("memory", "spill", "distributed").
  virtual const char* name() const = 0;

  /// Registers one wide stage; the returned id scopes its blocks.  Called
  /// once per shuffle, before any map task deposits.
  virtual std::uint64_t begin_shuffle(const std::string& stage,
                                      std::size_t n_map,
                                      std::size_t n_reduce) = 0;

  /// Deposits one map task's encoded blocks (exactly n_reduce of them, in
  /// reduce-partition order).  May be called more than once for the same
  /// map task (retry or speculative copy that lost the claim race); the
  /// bytes are bit-identical, so last-write-wins is correct.  Throwing
  /// fails the calling map attempt, which the stage executor retries —
  /// the transport-level lineage contract.
  virtual void put_map_output(std::uint64_t shuffle, std::size_t map_task,
                              std::vector<std::vector<std::uint8_t>> blocks,
                              const std::vector<ShuffleBlockMeta>& meta) = 0;

  /// Returns the block map_task produced for reduce_part.  Throwing fails
  /// the calling reduce attempt (retried by the executor); transports
  /// with a lineage cache repair internally first.
  virtual ShuffleBlockHandle fetch_block(std::uint64_t shuffle,
                                         std::size_t map_task,
                                         std::size_t reduce_part) = 0;

  /// All reduce attempts are done (success or stage failure): the
  /// shuffle's blocks can be released.
  virtual void end_shuffle(std::uint64_t shuffle) noexcept = 0;

  virtual ShuffleTransportStats stats() const = 0;
};

}  // namespace gpf::engine
