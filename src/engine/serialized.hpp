// In-memory serialized storage: each partition held as one byte array
// (paper Sec 4.2: "our GPF stores each RDD partition as one large byte
// array", Spark's MEMORY_ONLY_SER storage level).
//
// A SerializedDataset is the at-rest form of a Dataset: it costs one
// encode to produce, reports its exact memory footprint, and materializes
// back into live records on demand.  Pipelines persist cold intermediates
// this way to halve memory consumption (the paper's Table 3 claim).
//
// Block storage is zero-copy on both edges: persist() adopts the encode
// stage's shared partition storage instead of deep-copying every block,
// and materialize() wraps that same storage as the decode stage's input.
// The byte blocks are produced once and never duplicated.
//
// Two invariants guard the zero-copy adoption:
//  * Integrity: persist() records a {checksum, record count} per block and
//    materialize() re-verifies both before and after decode, so a block
//    corrupted at rest (or by an injected corrupt_block rule) fails with a
//    retriable ShuffleBlockError instead of silently decoding garbage —
//    the same contract Dataset::shuffle gives in-flight blocks.
//  * Aliasing: adopted blocks are owned solely by the shared partition
//    storage and are NEVER handed to BufferPool::release while a
//    SerializedDataset (or a dataset view produced by materialize) can
//    still reach them — pooled storage is recycled and overwritten by the
//    next acquirer, so releasing a live block is a use-after-free in
//    disguise.  The encode stage's pooled buffers leave the pool for good
//    when they are adopted here.
#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/dataset.hpp"

namespace gpf::engine {

template <typename T>
class SerializedDataset {
 public:
  /// One encoded block per partition, in the engine's shared partition
  /// layout (a "partition" of the byte dataset is a single-element vector
  /// holding the block).
  using Blocks = std::vector<std::vector<std::vector<std::uint8_t>>>;

  /// Integrity metadata for one adopted block, recorded at persist time.
  struct BlockMeta {
    std::uint64_t checksum = 0;
    std::size_t records = 0;
  };

  SerializedDataset() = default;

  /// Encodes every partition of `dataset` through `codec`; recorded as a
  /// "<name>.persist" stage.
  static SerializedDataset persist(const Dataset<T>& dataset,
                                   ShuffleCodec<T> codec,
                                   const std::string& name) {
    if (!codec.valid()) {
      throw std::invalid_argument("persist: codec required");
    }
    SerializedDataset out;
    out.engine_ = &dataset.engine();
    out.codec_ = std::make_shared<ShuffleCodec<T>>(std::move(codec));
    auto encoded = dataset.template map_partitions<std::vector<std::uint8_t>>(
        name + ".persist",
        [codec = out.codec_,
         engine = out.engine_](const std::vector<T>& part) {
          std::vector<std::vector<std::uint8_t>> one;
          const std::span<const T> span(part.data(), part.size());
          if (codec->encode_into) {
            std::vector<std::uint8_t> buf = engine->buffer_pool().acquire();
            codec->encode_into(span, buf);
            one.push_back(std::move(buf));
          } else {
            one.push_back(codec->encode(span));
          }
          return one;
        });
    // Adopt the encode stage's shared partitions: the blocks are stored
    // exactly once, never copied.  From here on the blocks belong to this
    // shared storage and must not be released back to the buffer pool (see
    // the aliasing invariant in the file comment).
    out.blocks_ = encoded.shared_partitions();
    // Fingerprint every adopted block NOW, while the bytes are known good:
    // materialize() verifies against these before trusting a decode.
    auto meta = std::make_shared<std::vector<BlockMeta>>();
    meta->reserve(out.blocks_->size());
    const auto& parts = dataset.partitions();
    for (std::size_t i = 0; i < out.blocks_->size(); ++i) {
      const auto& block = (*out.blocks_)[i].at(0);
      meta->push_back(BlockMeta{
          shuffle_block_checksum(
              std::span<const std::uint8_t>(block.data(), block.size())),
          parts[i].size()});
    }
    out.meta_ = std::move(meta);
    return out;
  }

  std::size_t partition_count() const {
    return blocks_ ? blocks_->size() : 0;
  }

  /// Exact serialized footprint in bytes.
  std::size_t memory_bytes() const {
    if (!blocks_) return 0;
    std::size_t total = 0;
    for (const auto& part : *blocks_) {
      for (const auto& b : part) total += b.size();
    }
    return total;
  }

  /// Integrity metadata of the adopted blocks, one entry per partition.
  const std::vector<BlockMeta>& block_meta() const { return *meta_; }

  /// Decodes back into a live Dataset; recorded as "<name>.materialize".
  /// Every block is verified against its persist-time checksum before
  /// decode and its record count after; a mismatch (at-rest corruption or
  /// an injected corrupt_block rule) throws ShuffleBlockError, which the
  /// stage executor retries against the pristine bytes like any lost task.
  Dataset<T> materialize(const std::string& name) const {
    if (!blocks_) throw std::logic_error("materialize: empty");
    const std::string stage_name = name + ".materialize";
    // Wrap the shared blocks as a dataset of byte buffers (no copies) so
    // decoding runs as a normal parallel stage with retry semantics.
    Dataset<std::vector<std::uint8_t>> bytes_ds(engine_, blocks_);
    return bytes_ds.template map_partitions_ctx<T>(
        stage_name,
        [codec = codec_, meta = meta_, engine = engine_, stage_name](
            const TaskContext& ctx,
            const std::vector<std::vector<std::uint8_t>>& part) {
          const auto& stored = part.at(0);
          std::span<const std::uint8_t> block(stored.data(), stored.size());
          FaultInjector* injector = engine->fault_injector();
          std::optional<std::vector<std::uint8_t>> corrupted;
          if (injector != nullptr) {
            corrupted =
                injector->corrupted_copy(stage_name, ctx.ordinal, ctx.index,
                                         /*block=*/0, ctx.attempt, block);
            if (corrupted) {
              block = std::span<const std::uint8_t>(corrupted->data(),
                                                    corrupted->size());
            }
          }
          const BlockMeta& expect = (*meta)[ctx.index];
          if (shuffle_block_checksum(block) != expect.checksum) {
            throw ShuffleBlockError(
                "persisted block " + std::to_string(ctx.index) +
                " of stage '" + stage_name + "' failed its checksum");
          }
          auto records = codec->decode(block);
          if (records.size() != expect.records) {
            throw ShuffleBlockError(
                "persisted block " + std::to_string(ctx.index) +
                " of stage '" + stage_name + "' decoded to " +
                std::to_string(records.size()) + " records, expected " +
                std::to_string(expect.records));
          }
          return records;
        });
  }

 private:
  Engine* engine_ = nullptr;
  std::shared_ptr<ShuffleCodec<T>> codec_;
  std::shared_ptr<Blocks> blocks_;
  std::shared_ptr<std::vector<BlockMeta>> meta_;
};

}  // namespace gpf::engine
