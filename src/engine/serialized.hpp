// In-memory serialized storage: each partition held as one byte array
// (paper Sec 4.2: "our GPF stores each RDD partition as one large byte
// array", Spark's MEMORY_ONLY_SER storage level).
//
// A SerializedDataset is the at-rest form of a Dataset: it costs one
// encode to produce, reports its exact memory footprint, and materializes
// back into live records on demand.  Pipelines persist cold intermediates
// this way to halve memory consumption (the paper's Table 3 claim).
//
// Block storage is zero-copy on both edges: persist() adopts the encode
// stage's shared partition storage instead of deep-copying every block,
// and materialize() wraps that same storage as the decode stage's input.
// The byte blocks are produced once and never duplicated.
#pragma once

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "engine/dataset.hpp"

namespace gpf::engine {

template <typename T>
class SerializedDataset {
 public:
  /// One encoded block per partition, in the engine's shared partition
  /// layout (a "partition" of the byte dataset is a single-element vector
  /// holding the block).
  using Blocks = std::vector<std::vector<std::vector<std::uint8_t>>>;

  SerializedDataset() = default;

  /// Encodes every partition of `dataset` through `codec`; recorded as a
  /// "<name>.persist" stage.
  static SerializedDataset persist(const Dataset<T>& dataset,
                                   ShuffleCodec<T> codec,
                                   const std::string& name) {
    if (!codec.valid()) {
      throw std::invalid_argument("persist: codec required");
    }
    SerializedDataset out;
    out.engine_ = &dataset.engine();
    out.codec_ = std::make_shared<ShuffleCodec<T>>(std::move(codec));
    auto encoded = dataset.template map_partitions<std::vector<std::uint8_t>>(
        name + ".persist",
        [codec = out.codec_,
         engine = out.engine_](const std::vector<T>& part) {
          std::vector<std::vector<std::uint8_t>> one;
          const std::span<const T> span(part.data(), part.size());
          if (codec->encode_into) {
            std::vector<std::uint8_t> buf = engine->buffer_pool().acquire();
            codec->encode_into(span, buf);
            one.push_back(std::move(buf));
          } else {
            one.push_back(codec->encode(span));
          }
          return one;
        });
    // Adopt the encode stage's shared partitions: the blocks are stored
    // exactly once, never copied.
    out.blocks_ = encoded.shared_partitions();
    return out;
  }

  std::size_t partition_count() const {
    return blocks_ ? blocks_->size() : 0;
  }

  /// Exact serialized footprint in bytes.
  std::size_t memory_bytes() const {
    if (!blocks_) return 0;
    std::size_t total = 0;
    for (const auto& part : *blocks_) {
      for (const auto& b : part) total += b.size();
    }
    return total;
  }

  /// Decodes back into a live Dataset; recorded as "<name>.materialize".
  Dataset<T> materialize(const std::string& name) const {
    if (!blocks_) throw std::logic_error("materialize: empty");
    // Wrap the shared blocks as a dataset of byte buffers (no copies) so
    // decoding runs as a normal parallel stage with retry semantics.
    Dataset<std::vector<std::uint8_t>> bytes_ds(engine_, blocks_);
    return bytes_ds.template map_partitions<T>(
        name + ".materialize",
        [codec = codec_](
            const std::vector<std::vector<std::uint8_t>>& part) {
          return codec->decode(std::span<const std::uint8_t>(
              part.at(0).data(), part.at(0).size()));
        });
  }

 private:
  Engine* engine_ = nullptr;
  std::shared_ptr<ShuffleCodec<T>> codec_;
  std::shared_ptr<Blocks> blocks_;
};

}  // namespace gpf::engine
