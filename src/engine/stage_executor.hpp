// The fault-tolerant stage executor.
//
// Every stage the engine runs — narrow map tasks, shuffle map side, shuffle
// reduce side, aggregates — goes through execute_stage(), which adds three
// behaviours on top of the plain parallel loop the engine used to have:
//
//  * Retries: an attempt that throws is re-executed in place (the input
//    partitions are immutable shared state, so a retry is exactly a
//    lineage recompute) up to max_retries times; exhaustion surfaces as a
//    typed StageFailure carrying stage/task/attempt context, and the
//    partially-executed stage is still recorded in the metrics with
//    `failed = true`.
//
//  * Fault injection: when the engine carries a FaultInjector, each
//    attempt first serves any planned straggler delay, then asks the
//    injector whether it should fail.  All injector decisions are pure
//    hashes of (seed, stage, task, attempt), so the chaos pattern is
//    schedule-independent.
//
//  * Speculative execution: two rules share sched::SpeculationPolicy.
//    Under a FaultInjector, a task whose first attempt is delayed past
//    the static threshold gets a speculative copy submitted immediately
//    (keyed on the injector's planned delays rather than wall-clock
//    observation so that the speculative_launches counter is
//    deterministic under a fixed chaos seed).  Without an injector the
//    quantile rule may arm instead: the caller's wait loop watches
//    running tasks and launches a copy for any task older than
//    quantile_factor × the running median of finished tasks in the
//    stage (durations tracked in a common/histogram).  Either way the
//    first finished attempt claims the task; the loser — including a
//    straggler still parked in its injected delay, which waits on the
//    stage's condition variable and is woken on claim or abort — is
//    discarded.  Results are identical because attempts are pure
//    functions of the same immutable inputs.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "engine/fault_injector.hpp"
#include "engine/metrics.hpp"
#include "sched/speculation.hpp"

namespace gpf::engine {

/// The slice of EngineConfig the executor needs (kept separate so this
/// header does not depend on dataset.hpp).  Task attempts share the same
/// RetryPolicy shape the net channels use; the engine defaults backoff to
/// zero because an in-process retry has no transport to decongest.
/// Speculation knobs live in the shared sched::SpeculationPolicy.
struct StageExecPolicy {
  RetryPolicy retry{.max_attempts = 3, .backoff_initial_ms = 0,
                    .backoff_max_ms = 0};
  sched::SpeculationPolicy speculation = {};

  /// Retries after the first attempt (EngineConfig::max_task_retries).
  int max_retries() const { return retry.retries(); }
};

namespace detail {

/// Steady-clock now in microseconds (straggler-age bookkeeping).
inline std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What the current exception says, for StageFailure's message.
inline std::string current_exception_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace detail

/// Runs `fn(task, attempt)` for every task in [0, n_tasks), with retries,
/// fault injection and speculation as described above.  Task identity seen
/// by the injector and by StageFailure is `task_offset + task` (a wide
/// stage's reduce tasks are offset past its map tasks).  On success the
/// per-task results are returned in order and `stage`'s task_seconds
/// (at [task_offset, task_offset + n_tasks)) plus the retry/failure/
/// speculation counters are filled in; on exhaustion the counters are
/// still accumulated before StageFailure propagates.
template <typename U, typename Fn>
std::vector<U> execute_stage(ThreadPool& pool, const StageExecPolicy& policy,
                             FaultInjector* injector, StageMetrics& stage,
                             std::size_t ordinal, std::size_t n_tasks,
                             std::size_t task_offset, Fn&& fn) {
  std::vector<U> results(n_tasks);
  if (n_tasks == 0) return results;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t open_tasks = n_tasks;
  std::size_t inflight = 0;
  std::exception_ptr error;
  std::atomic<bool> abort{false};
  auto claimed = std::make_unique<std::atomic<bool>[]>(n_tasks);
  // Quantile-rule state: when each primary started (0 = not yet, steady
  // µs otherwise), which tasks already have a speculative copy, and the
  // finished-task duration histogram (0.1 ms buckets, guarded by mu).
  auto started_us = std::make_unique<std::atomic<std::int64_t>[]>(n_tasks);
  auto spec_launched = std::make_unique<std::atomic<bool>[]>(n_tasks);
  Histogram done_ms10;
  std::size_t done_count = 0;
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> injected{0};
  std::atomic<std::size_t> speculative{0};
  const std::string& name = stage.name;

  // First finished attempt claims the task and stores its result.
  auto finish_win = [&](std::size_t i, U&& r, double seconds) {
    bool expected = false;
    if (!claimed[i].compare_exchange_strong(expected, true)) return;
    results[i] = std::move(r);
    stage.task_seconds[task_offset + i] = seconds;
    std::lock_guard lock(mu);
    --open_tasks;
    done_ms10.add(std::llround(seconds * 1e4));
    ++done_count;
    cv.notify_all();
  };

  // Parks the calling attempt for `ms` on the stage's condition variable;
  // a cancelled straggler (its speculative copy won, or the stage
  // aborted) wakes immediately instead of burning its pool thread in a
  // poll loop.
  auto wait_cancelled = [&](double ms, std::size_t i) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    std::unique_lock lock(mu);
    cv.wait_until(lock, deadline,
                  [&] { return abort.load() || claimed[i].load(); });
  };

  // The authoritative attempt loop for one task.
  auto primary = [&](std::size_t i) {
    started_us[i].store(detail::steady_now_us());
    for (int attempt = 0;; ++attempt) {
      if (abort.load() || claimed[i].load()) return;
      Timer t;
      try {
        // The span covers the whole attempt — injected straggler delay,
        // injector verdict and the task body — so stragglers, failed
        // attempts and retries are all visible on the timeline; unwinding
        // through it marks the span failed.
        trace::ScopedSpan span(name, trace::SpanKind::kTask,
                               static_cast<std::int64_t>(task_offset + i),
                               attempt, /*retry=*/attempt > 0,
                               /*speculative=*/false);
        if (injector) {
          const double delay = injector->planned_delay_ms(
              name, ordinal, task_offset + i, attempt);
          if (delay > 0.0) {
            // Attempt 0 delays are counted at submission time (so the
            // counter cannot race a speculative copy finishing first);
            // retry-attempt delays are counted as they are served.
            if (attempt > 0) {
              injected.fetch_add(1);
              injector->record_injected_delay();
            }
            wait_cancelled(delay, i);
            if (abort.load() || claimed[i].load()) return;
          }
          injector->check_attempt(name, ordinal, task_offset + i, attempt);
        }
        U r = fn(i, attempt);
        finish_win(i, std::move(r), t.seconds());
        return;
      } catch (...) {
        if (claimed[i].load()) return;  // a speculative copy already won
        failed.fetch_add(1);
        try {
          throw;
        } catch (const InjectedFault&) {
          injected.fetch_add(1);
        } catch (...) {
        }
        if (attempt >= policy.max_retries()) {
          auto failure = std::make_exception_ptr(
              StageFailure(name, task_offset + i, attempt + 1,
                           detail::current_exception_message()));
          std::lock_guard lock(mu);
          if (!error) error = std::move(failure);
          abort.store(true);
          cv.notify_all();
          return;
        }
        retried.fetch_add(1);
        if (policy.retry.backoff_initial_ms > 0) {
          // Backoff between attempts (off by default in-process; backends
          // whose retries hit real transports opt in).
          int backoff = policy.retry.backoff_initial_ms;
          for (int past = 0; past < attempt; ++past) {
            backoff = policy.retry.next_backoff(backoff);
          }
          wait_cancelled(backoff, i);
        }
      }
    }
  };

  // One-shot speculative copy: runs as attempt -1, which the injector
  // never touches (it models a healthy replacement node).  Its failures
  // are ignored — the primary attempt loop is authoritative.
  auto speculative_copy = [&](std::size_t i) {
    if (abort.load() || claimed[i].load()) return;
    Timer t;
    try {
      trace::ScopedSpan span(name, trace::SpanKind::kTask,
                             static_cast<std::int64_t>(task_offset + i),
                             /*attempt=*/-1, /*retry=*/false,
                             /*speculative=*/true);
      U r = fn(i, -1);
      finish_win(i, std::move(r), t.seconds());
    } catch (...) {
    }
  };

  auto submit = [&](auto job) {
    {
      std::lock_guard lock(mu);
      ++inflight;
    }
    pool.submit([&mu, &cv, &inflight, job = std::move(job)] {
      job();
      std::lock_guard lock(mu);
      --inflight;
      cv.notify_all();
    });
  };

  for (std::size_t i = 0; i < n_tasks; ++i) {
    const double planned_delay =
        injector ? injector->planned_delay_ms(name, ordinal, task_offset + i, 0)
                 : 0.0;
    if (planned_delay > 0.0) {
      injected.fetch_add(1);
      injector->record_injected_delay();
    }
    submit([&primary, i] { primary(i); });
    if (policy.speculation.enabled &&
        planned_delay >= policy.speculation.delay_threshold_ms) {
      spec_launched[i].store(true);
      speculative.fetch_add(1);
      submit([&speculative_copy, i] { speculative_copy(i); });
    }
  }

  // Observational quantile speculation only arms without an injector:
  // chaos runs key speculation on planned delays (above) so the counter
  // stays deterministic under a fixed seed.
  const sched::SpeculationPolicy& spec = policy.speculation;
  const bool quantile_watch = spec.enabled && spec.quantile &&
                              injector == nullptr && n_tasks > 1;
  {
    std::unique_lock lock(mu);
    auto done = [&] { return inflight == 0 && (open_tasks == 0 || error); };
    if (!quantile_watch) {
      cv.wait(lock, done);
    } else {
      // The rule arms once the stage is quantile_fraction complete AND
      // min_completed tasks have reported; both guards fight the
      // early-finisher bias that would otherwise duplicate every task of
      // a heavier-than-median tier.
      const std::size_t armed_at = std::max<std::size_t>(
          spec.quantile_min_completed,
          static_cast<std::size_t>(
              std::ceil(spec.quantile_fraction *
                        static_cast<double>(n_tasks))));
      while (!done()) {
        cv.wait_for(lock, std::chrono::milliseconds(2));
        if (abort.load() || done_count < armed_at) {
          continue;
        }
        const double median_ms =
            static_cast<double>(done_ms10.percentile(0.5)) / 10.0;
        const double threshold_ms =
            std::max(median_ms * spec.quantile_factor, spec.min_task_ms);
        const std::int64_t now = detail::steady_now_us();
        std::vector<std::size_t> launch;
        for (std::size_t i = 0; i < n_tasks; ++i) {
          if (claimed[i].load() || spec_launched[i].load()) continue;
          const std::int64_t t0 = started_us[i].load();
          if (t0 == 0) continue;  // queued, not straggling
          if (static_cast<double>(now - t0) / 1e3 >= threshold_ms) {
            launch.push_back(i);
          }
        }
        if (launch.empty()) continue;
        lock.unlock();  // submit() takes mu
        for (const std::size_t i : launch) {
          if (spec_launched[i].exchange(true)) continue;
          speculative.fetch_add(1);
          submit([&speculative_copy, i] { speculative_copy(i); });
        }
        lock.lock();
      }
    }
  }

  stage.task_retries += retried.load();
  stage.failed_attempts += failed.load();
  stage.injected_faults += injected.load();
  stage.speculative_launches += speculative.load();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace gpf::engine
