// BED intervals and an interval set with overlap queries — the target
// mechanism behind exome (WES) and gene-panel workloads (the paper's
// Fig 12 workload family): sequencing and calling are restricted to a
// target list distributed as a BED file.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "formats/sam.hpp"

namespace gpf {

/// One half-open genomic interval [start, end).
struct BedInterval {
  std::int32_t contig_id = -1;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::string name;

  std::int64_t length() const { return end - start; }
  bool operator==(const BedInterval&) const = default;
};

/// A normalized interval list: sorted, merged, with O(log n) overlap
/// queries.
class IntervalSet {
 public:
  IntervalSet() = default;
  /// Normalizes (sorts and merges overlapping/adjacent intervals).
  explicit IntervalSet(std::vector<BedInterval> intervals);

  const std::vector<BedInterval>& intervals() const { return intervals_; }
  std::size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }
  /// Total bases covered.
  std::int64_t total_length() const;

  /// True when [start, end) on `contig_id` overlaps any interval.
  bool overlaps(std::int32_t contig_id, std::int64_t start,
                std::int64_t end) const;
  /// True when the position lies inside an interval.
  bool contains(std::int32_t contig_id, std::int64_t pos) const {
    return overlaps(contig_id, pos, pos + 1);
  }

 private:
  std::vector<BedInterval> intervals_;  // sorted by (contig, start)
};

/// Parses BED text ("chrom\tstart\tend[\tname]"); contig names are
/// resolved against `header`.  Unknown contigs raise
/// std::invalid_argument; comment/track lines are skipped.
std::vector<BedInterval> parse_bed(std::string_view text,
                                   const SamHeader& header);

/// Renders intervals back to BED text.
std::string write_bed(const std::vector<BedInterval>& intervals,
                      const SamHeader& header);

}  // namespace gpf
