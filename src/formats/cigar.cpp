#include "formats/cigar.hpp"

#include <cctype>
#include <stdexcept>

namespace gpf {
namespace {

CigarOp op_from_char(char c) {
  switch (c) {
    case 'M':
      return CigarOp::kMatch;
    case 'I':
      return CigarOp::kInsertion;
    case 'D':
      return CigarOp::kDeletion;
    case 'N':
      return CigarOp::kSkip;
    case 'S':
      return CigarOp::kSoftClip;
    case 'H':
      return CigarOp::kHardClip;
    case 'P':
      return CigarOp::kPad;
    case '=':
      return CigarOp::kEqual;
    case 'X':
      return CigarOp::kDiff;
    default:
      throw std::invalid_argument(std::string("bad CIGAR op: ") + c);
  }
}

}  // namespace

char cigar_op_char(CigarOp op) {
  static constexpr char kChars[] = {'M', 'I', 'D', 'N', 'S', 'H', 'P', '=',
                                    'X'};
  return kChars[static_cast<std::uint8_t>(op)];
}

Cigar parse_cigar(std::string_view text) {
  Cigar cigar;
  if (text == "*" || text.empty()) return cigar;
  std::uint64_t len = 0;
  bool have_digit = false;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      len = len * 10 + static_cast<std::uint64_t>(c - '0');
      have_digit = true;
      if (len > 0xffffffffULL) {
        throw std::invalid_argument("CIGAR length overflow");
      }
    } else {
      if (!have_digit || len == 0) {
        throw std::invalid_argument("CIGAR op without length");
      }
      cigar.push_back({op_from_char(c), static_cast<std::uint32_t>(len)});
      len = 0;
      have_digit = false;
    }
  }
  if (have_digit) throw std::invalid_argument("CIGAR trailing length");
  return cigar;
}

std::string cigar_to_string(const Cigar& cigar) {
  if (cigar.empty()) return "*";
  std::string out;
  for (const auto& el : cigar) {
    out += std::to_string(el.length);
    out += cigar_op_char(el.op);
  }
  return out;
}

bool consumes_read(CigarOp op) {
  switch (op) {
    case CigarOp::kMatch:
    case CigarOp::kInsertion:
    case CigarOp::kSoftClip:
    case CigarOp::kEqual:
    case CigarOp::kDiff:
      return true;
    default:
      return false;
  }
}

bool consumes_reference(CigarOp op) {
  switch (op) {
    case CigarOp::kMatch:
    case CigarOp::kDeletion:
    case CigarOp::kSkip:
    case CigarOp::kEqual:
    case CigarOp::kDiff:
      return true;
    default:
      return false;
  }
}

std::uint32_t cigar_read_length(const Cigar& cigar) {
  std::uint32_t n = 0;
  for (const auto& el : cigar) {
    if (consumes_read(el.op)) n += el.length;
  }
  return n;
}

std::uint32_t cigar_reference_length(const Cigar& cigar) {
  std::uint32_t n = 0;
  for (const auto& el : cigar) {
    if (consumes_reference(el.op)) n += el.length;
  }
  return n;
}

}  // namespace gpf
