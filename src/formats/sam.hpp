// SAM alignment records (SAM spec v1) — the Cleaner stage's working format.
//
// Contigs are referenced by dense integer id into a SamHeader, mirroring
// BAM's numeric reference ids; -1 means unmapped ("*").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "formats/cigar.hpp"
#include "formats/scan.hpp"

namespace gpf {

/// SAM FLAG bits (spec section 1.4.2).
struct SamFlags {
  static constexpr std::uint16_t kPaired = 0x1;
  static constexpr std::uint16_t kProperPair = 0x2;
  static constexpr std::uint16_t kUnmapped = 0x4;
  static constexpr std::uint16_t kMateUnmapped = 0x8;
  static constexpr std::uint16_t kReverse = 0x10;
  static constexpr std::uint16_t kMateReverse = 0x20;
  static constexpr std::uint16_t kFirstOfPair = 0x40;
  static constexpr std::uint16_t kSecondOfPair = 0x80;
  static constexpr std::uint16_t kSecondary = 0x100;
  static constexpr std::uint16_t kQcFail = 0x200;
  static constexpr std::uint16_t kDuplicate = 0x400;
  static constexpr std::uint16_t kSupplementary = 0x800;
};

/// One alignment record.  Positions are 0-based internally (converted
/// to/from SAM's 1-based text form at the parser boundary).
struct SamRecord {
  std::string qname;
  std::uint16_t flag = 0;
  std::int32_t contig_id = -1;  // -1 == unmapped / "*"
  std::int64_t pos = -1;        // 0-based leftmost mapped base
  std::uint8_t mapq = 0;
  Cigar cigar;
  std::int32_t mate_contig_id = -1;
  std::int64_t mate_pos = -1;
  std::int64_t tlen = 0;
  std::string sequence;
  std::string quality;  // Phred+33

  bool is_unmapped() const { return flag & SamFlags::kUnmapped; }
  bool is_reverse() const { return flag & SamFlags::kReverse; }
  bool is_duplicate() const { return flag & SamFlags::kDuplicate; }
  bool is_paired() const { return flag & SamFlags::kPaired; }
  bool is_secondary() const { return flag & SamFlags::kSecondary; }
  bool is_first_of_pair() const { return flag & SamFlags::kFirstOfPair; }

  /// Exclusive end of the reference span covered by this alignment.
  std::int64_t end_pos() const {
    return pos + cigar_reference_length(cigar);
  }

  /// The "unclipped" 5'-start used for duplicate marking: the position the
  /// read would start at if soft clips were part of the alignment.  For
  /// reverse-strand reads this is the unclipped *end*.
  std::int64_t unclipped_start() const;

  bool operator==(const SamRecord&) const = default;
};

/// Sequence dictionary: contig names/lengths, plus the sort state tag.
struct SamHeader {
  struct ContigInfo {
    std::string name;
    std::int64_t length = 0;
    bool operator==(const ContigInfo&) const = default;
  };

  std::vector<ContigInfo> contigs;
  bool coordinate_sorted = false;

  std::int32_t find_contig(std::string_view name) const;

  bool operator==(const SamHeader&) const = default;
};

/// Parses SAM text (header "@" lines populate the returned header).
/// Throws std::invalid_argument on malformed records.
struct SamFile {
  SamHeader header;
  std::vector<SamRecord> records;

  bool operator==(const SamFile&) const = default;
};
SamFile parse_sam(std::string_view text);

namespace detail {

/// Byte-at-a-time parser: the reference implementation the block-parallel
/// fast path is differential-tested and benchmarked against.
SamFile parse_sam_reference(std::string_view text);

/// Block-parallel parser with an explicit dispatch level: tab-separator
/// masks split fields, record lines parse concurrently once the input
/// crosses `parallel_threshold` bytes.  Inputs whose "@" header lines are
/// interleaved with records fall back to the reference parser so ordering
/// semantics stay identical.
SamFile parse_sam_at(simd::Level level, std::string_view text,
                     std::size_t parallel_threshold = fmt::kParallelParseBytes);

/// Parses one "@..." header line's fields into `header` (shared by both
/// paths so messages match).
void parse_sam_header_line(const std::vector<std::string_view>& fields,
                           SamHeader& header);

/// Parses one alignment line's tab-split fields against `header` (shared
/// by both paths so messages match).
SamRecord parse_sam_record(simd::Level level,
                           const std::vector<std::string_view>& fields,
                           const SamHeader& header);

}  // namespace detail

/// Renders header + records to SAM text.
std::string write_sam(const SamHeader& header,
                      const std::vector<SamRecord>& records);

/// Total ordering for coordinate sorting: (contig, pos, reverse flag,
/// qname) with unmapped records last.
bool coordinate_less(const SamRecord& a, const SamRecord& b);

}  // namespace gpf
