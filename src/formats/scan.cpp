#include "formats/scan.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace gpf::fmt {
namespace {

// --- 64-byte block mask kernels ---------------------------------------------
//
// Each kernel reads exactly 64 bytes and returns one bit per byte.  The
// SWAR path composes eight 8-lane masks via movemask_lanes; the SSE4 and
// AVX2 paths use the hardware movemask.

std::uint64_t eq_block_swar(const char* p, char needle) {
  std::uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t v = simd::load_u64(p + 8 * i);
    mask |= static_cast<std::uint64_t>(simd::movemask_lanes(
                simd::eq_lanes(v, static_cast<std::uint8_t>(needle))))
            << (8 * i);
  }
  return mask;
}

std::uint64_t range_violation_block_swar(const char* p, std::uint8_t lo,
                                         std::uint8_t hi) {
  std::uint64_t mask = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t v = simd::load_u64(p + 8 * i);
    const std::uint64_t bad =
        simd::lt_lanes(v, lo) | simd::gt_lanes(v, hi);
    mask |= static_cast<std::uint64_t>(simd::movemask_lanes(bad)) << (8 * i);
  }
  return mask;
}

#if defined(GPF_SIMD_X86)

__attribute__((target("sse4.2,ssse3"))) std::uint64_t eq_block_sse4(
    const char* p, char needle) {
  const __m128i n = _mm_set1_epi8(needle);
  std::uint64_t mask = 0;
  for (int i = 0; i < 4; ++i) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * i));
    mask |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(
                    _mm_movemask_epi8(_mm_cmpeq_epi8(v, n))))
            << (16 * i);
  }
  return mask;
}

__attribute__((target("avx2"))) std::uint64_t eq_block_avx2(const char* p,
                                                            char needle) {
  const __m256i n = _mm256_set1_epi8(needle);
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
  const auto mlo = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, n)));
  const auto mhi = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, n)));
  return static_cast<std::uint64_t>(mhi) << 32 | mlo;
}

__attribute__((target("sse4.2,ssse3"))) std::uint64_t
range_violation_block_sse4(const char* p, std::uint8_t lo, std::uint8_t hi) {
  const __m128i vlo = _mm_set1_epi8(static_cast<char>(lo));
  const __m128i vhi = _mm_set1_epi8(static_cast<char>(hi));
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t mask = 0;
  for (int i = 0; i < 4; ++i) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * i));
    // subs_epu8(v, hi) != 0  <=>  v > hi;  subs_epu8(lo, v) != 0  <=> v < lo.
    const __m128i bad = _mm_or_si128(_mm_subs_epu8(v, vhi),
                                     _mm_subs_epu8(vlo, v));
    const __m128i ok = _mm_cmpeq_epi8(bad, zero);
    mask |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(_mm_movemask_epi8(ok)) ^ 0xFFFFu)
            << (16 * i);
  }
  return mask;
}

__attribute__((target("avx2"))) std::uint64_t range_violation_block_avx2(
    const char* p, std::uint8_t lo, std::uint8_t hi) {
  const __m256i vlo = _mm256_set1_epi8(static_cast<char>(lo));
  const __m256i vhi = _mm256_set1_epi8(static_cast<char>(hi));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t mask = 0;
  for (int i = 0; i < 2; ++i) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * i));
    const __m256i bad = _mm256_or_si256(_mm256_subs_epu8(v, vhi),
                                        _mm256_subs_epu8(vlo, v));
    const __m256i ok = _mm256_cmpeq_epi8(bad, zero);
    mask |= static_cast<std::uint64_t>(
                ~static_cast<std::uint32_t>(_mm256_movemask_epi8(ok)))
            << (32 * i);
  }
  return mask;
}

#endif  // GPF_SIMD_X86

// --- byte-class kernels (newline / space / printable-range) -----------------
//
// One load per block feeds all three masks, so building the AsciiProfile
// costs one pass over the text instead of one per predicate.

struct ClassMasks {
  std::uint64_t newline;
  std::uint64_t space;
  std::uint64_t bad;  // outside [0x20, 0x7E], '\n' excluded
  std::uint64_t cr;
};

ClassMasks classify_block_swar(const char* p) {
  ClassMasks m{0, 0, 0, 0};
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t v = simd::load_u64(p + 8 * i);
    const std::uint64_t nl = simd::eq_lanes(v, '\n');
    const std::uint64_t sp = simd::eq_lanes(v, 0x20);
    const std::uint64_t cr = simd::eq_lanes(v, '\r');
    const std::uint64_t bad =
        (simd::lt_lanes(v, 0x20) | simd::gt_lanes(v, 0x7E)) & ~nl;
    m.newline |= static_cast<std::uint64_t>(simd::movemask_lanes(nl))
                 << (8 * i);
    m.space |= static_cast<std::uint64_t>(simd::movemask_lanes(sp)) << (8 * i);
    m.bad |= static_cast<std::uint64_t>(simd::movemask_lanes(bad)) << (8 * i);
    m.cr |= static_cast<std::uint64_t>(simd::movemask_lanes(cr)) << (8 * i);
  }
  return m;
}

#if defined(GPF_SIMD_X86)

__attribute__((target("sse4.2,ssse3"))) ClassMasks classify_block_sse4(
    const char* p) {
  const __m128i nl = _mm_set1_epi8('\n');
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i lo = _mm_set1_epi8(0x20);
  const __m128i hi = _mm_set1_epi8(0x7E);
  const __m128i zero = _mm_setzero_si128();
  ClassMasks m{0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * i));
    const auto nlm = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, nl)));
    const auto spm = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, sp)));
    const auto crm = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, cr)));
    const __m128i viol =
        _mm_or_si128(_mm_subs_epu8(v, hi), _mm_subs_epu8(lo, v));
    const auto okm = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(viol, zero)));
    m.newline |= static_cast<std::uint64_t>(nlm) << (16 * i);
    m.space |= static_cast<std::uint64_t>(spm) << (16 * i);
    m.bad |= static_cast<std::uint64_t>((okm ^ 0xFFFFu) & ~nlm) << (16 * i);
    m.cr |= static_cast<std::uint64_t>(crm) << (16 * i);
  }
  return m;
}

__attribute__((target("avx2"))) ClassMasks classify_block_avx2(const char* p) {
  const __m256i nl = _mm256_set1_epi8('\n');
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i cr = _mm256_set1_epi8('\r');
  const __m256i lo = _mm256_set1_epi8(0x20);
  const __m256i hi = _mm256_set1_epi8(0x7E);
  const __m256i zero = _mm256_setzero_si256();
  ClassMasks m{0, 0, 0, 0};
  for (int i = 0; i < 2; ++i) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * i));
    const auto nlm = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, nl)));
    const auto spm = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, sp)));
    const auto crm = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, cr)));
    const __m256i viol =
        _mm256_or_si256(_mm256_subs_epu8(v, hi), _mm256_subs_epu8(lo, v));
    const auto okm = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(viol, zero)));
    m.newline |= static_cast<std::uint64_t>(nlm) << (32 * i);
    m.space |= static_cast<std::uint64_t>(spm) << (32 * i);
    m.bad |= static_cast<std::uint64_t>(~okm & ~nlm) << (32 * i);
    m.cr |= static_cast<std::uint64_t>(crm) << (32 * i);
  }
  return m;
}

#endif  // GPF_SIMD_X86

ClassMasks classify_block(simd::Level level, const char* p) {
#if defined(GPF_SIMD_X86)
  if (level >= simd::Level::kAvx2) return classify_block_avx2(p);
  if (level >= simd::Level::kSse4) return classify_block_sse4(p);
#endif
  (void)level;
  return classify_block_swar(p);
}

/// Classifies a final partial block; bits at or past `n` are zero because
/// the padding byte ('A') is a clean printable.
ClassMasks classify_tail(simd::Level level, const char* p, std::size_t n) {
  char buf[64];
  std::memset(buf, 'A', sizeof buf);
  std::memcpy(buf, p, n);
  return classify_block(level, buf);
}

void emit_positions(std::uint64_t mask, std::size_t base,
                    std::vector<std::uint32_t>& out) {
  while (mask != 0) {
    out.push_back(static_cast<std::uint32_t>(
        base + static_cast<std::size_t>(std::countr_zero(mask))));
    mask &= mask - 1;
  }
}

/// Single sweep over [begin, end): newline positions, the head byte of
/// the line each newline opens (read while the block is cache-hot, so the
/// structural checks later touch no text), and the sparse byte-class
/// lists of the AsciiProfile.
void scan_profile_range(simd::Level level, std::string_view text,
                        std::size_t begin, std::size_t end,
                        std::vector<std::uint32_t>& newlines,
                        std::vector<char>& heads, AsciiProfile& profile) {
  const char* data = text.data();
  for (std::size_t i = begin; i < end; i += 64) {
    const std::size_t n = end - i;
    const ClassMasks m = n >= 64 ? classify_block(level, data + i)
                                 : classify_tail(level, data + i, n);
    std::uint64_t nl = m.newline;
    while (nl != 0) {
      const std::size_t pos =
          i + static_cast<std::size_t>(std::countr_zero(nl));
      newlines.push_back(static_cast<std::uint32_t>(pos));
      heads.push_back(pos + 1 < text.size() ? data[pos + 1] : '\n');
      nl &= nl - 1;
    }
    emit_positions(m.space, i, profile.spaces);
    emit_positions(m.bad, i, profile.violations);
    emit_positions(m.cr, i, profile.carriage);
  }
}

/// Mask for a final partial block (n < 64).  Works through 8-byte SWAR
/// words — cheaper than padding out a 64-byte buffer for short lines,
/// which are the common case.  Bits at or past `n` are zero because the
/// last word's padding is forced to differ from the needle.
std::uint64_t eq_tail_mask(simd::Level /*level*/, const char* p, std::size_t n,
                           char needle) {
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    mask |= static_cast<std::uint64_t>(simd::movemask_lanes(simd::eq_lanes(
                simd::load_u64(p + i), static_cast<std::uint8_t>(needle))))
            << i;
  }
  if (i < n) {
    char buf[8];
    std::memset(buf, ~needle, sizeof buf);
    std::memcpy(buf, p + i, n - i);
    mask |= static_cast<std::uint64_t>(simd::movemask_lanes(simd::eq_lanes(
                simd::load_u64(buf), static_cast<std::uint8_t>(needle))))
            << i;
  }
  return mask;
}

/// Appends every `needle` position in [begin, end) of `text` to `out`.
void scan_range(simd::Level level, std::string_view text, std::size_t begin,
                std::size_t end, char needle,
                std::vector<std::uint32_t>& out) {
  const char* data = text.data();
  std::size_t i = begin;
  while (i < end) {
    const std::size_t n = end - i;
    std::uint64_t mask;
    if (n >= 64) {
      mask = eq_block_mask(level, data + i, needle);
    } else {
      mask = eq_tail_mask(level, data + i, n, needle);
    }
    while (mask != 0) {
      out.push_back(static_cast<std::uint32_t>(
          i + static_cast<std::size_t>(std::countr_zero(mask))));
      mask &= mask - 1;
    }
    i += 64;
  }
}

}  // namespace

std::uint64_t eq_block_mask(simd::Level level, const char* p, char needle) {
#if defined(GPF_SIMD_X86)
  if (level >= simd::Level::kAvx2) return eq_block_avx2(p, needle);
  if (level >= simd::Level::kSse4) return eq_block_sse4(p, needle);
#endif
  (void)level;
  return eq_block_swar(p, needle);
}

std::uint64_t range_violation_block_mask(simd::Level level, const char* p,
                                         std::uint8_t lo, std::uint8_t hi) {
#if defined(GPF_SIMD_X86)
  if (level >= simd::Level::kAvx2) return range_violation_block_avx2(p, lo, hi);
  if (level >= simd::Level::kSse4) return range_violation_block_sse4(p, lo, hi);
#endif
  (void)level;
  return range_violation_block_swar(p, lo, hi);
}

bool bytes_in_range(simd::Level level, std::string_view s, std::uint8_t lo,
                    std::uint8_t hi) {
  const char* p = s.data();
  std::size_t n = s.size();
  while (n >= 64) {
    if (range_violation_block_mask(level, p, lo, hi) != 0) return false;
    p += 64;
    n -= 64;
  }
  // Tail: 8-byte SWAR words, then one padded word for the last <8 bytes.
  while (n >= 8) {
    const std::uint64_t v = simd::load_u64(p);
    if ((simd::lt_lanes(v, lo) | simd::gt_lanes(v, hi)) != 0) return false;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    char buf[8];
    std::memset(buf, lo, sizeof buf);  // padding is in-range by construction
    std::memcpy(buf, p, n);
    const std::uint64_t v = simd::load_u64(buf);
    if ((simd::lt_lanes(v, lo) | simd::gt_lanes(v, hi)) != 0) return false;
  }
  return true;
}

void scan_positions(simd::Level level, std::string_view text, char needle,
                    std::vector<std::uint32_t>& out) {
  scan_range(level, text, 0, text.size(), needle, out);
}

void split_fields(simd::Level level, std::string_view line, char sep,
                  std::vector<std::string_view>& fields) {
  fields.clear();
  const char* data = line.data();
  std::size_t start = 0;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    const std::size_t left = n - i;
    std::uint64_t mask = left >= 64 ? eq_block_mask(level, data + i, sep)
                                    : eq_tail_mask(level, data + i, left, sep);
    while (mask != 0) {
      const std::size_t pos =
          i + static_cast<std::size_t>(std::countr_zero(mask));
      fields.push_back(line.substr(start, pos - start));
      start = pos + 1;
      mask &= mask - 1;
    }
    i += 64;
  }
  fields.push_back(line.substr(start));
}

namespace {

/// Concatenates per-chunk lists (disjoint ascending ranges) into one
/// list, copying chunks in parallel.
template <typename T>
void concat_chunks(ThreadPool& pool, const std::vector<std::vector<T>>& partial,
                   std::vector<T>& out) {
  std::size_t total = 0;
  for (const auto& v : partial) total += v.size();
  out.resize(total);
  std::vector<std::size_t> offset(partial.size(), 0);
  for (std::size_t c = 1; c < partial.size(); ++c) {
    offset[c] = offset[c - 1] + partial[c - 1].size();
  }
  pool.parallel_for(partial.size(), [&](std::size_t c) {
    if (partial[c].empty()) return;
    std::memcpy(out.data() + offset[c], partial[c].data(),
                partial[c].size() * sizeof(T));
  });
}

}  // namespace

LineIndex::LineIndex(simd::Level level, std::string_view text,
                     std::size_t parallel_threshold, AsciiProfile* profile) {
  if (text.size() > kMaxTextBytes) {
    throw std::invalid_argument("parse: input exceeds 4 GiB");
  }
  text_ = text;
  if (profile != nullptr && !text.empty()) head0_ = text.front();
  if (text.size() < parallel_threshold) {
    newlines_.reserve(text.size() / 48 + 4);
    if (profile == nullptr) {
      scan_range(level, text, 0, text.size(), '\n', newlines_);
    } else {
      heads_.reserve(text.size() / 48 + 4);
      scan_profile_range(level, text, 0, text.size(), newlines_, heads_,
                         *profile);
    }
  } else {
    // Chunked parallel scan.  Byte classes are context-free, so chunks
    // may start at arbitrary byte offsets; keeping them 64-byte aligned
    // just keeps every block load inside one chunk.
    ThreadPool& pool = ThreadPool::global();
    const std::size_t min_chunk = 1 << 18;
    std::size_t chunks = std::max<std::size_t>(1, pool.size() * 4);
    chunks = std::min(chunks, (text.size() + min_chunk - 1) / min_chunk);
    const std::size_t per =
        ((text.size() + chunks - 1) / chunks + 63) / 64 * 64;
    std::vector<std::vector<std::uint32_t>> part_nl(chunks);
    std::vector<std::vector<char>> part_heads(profile != nullptr ? chunks : 0);
    std::vector<AsciiProfile> part_prof(profile != nullptr ? chunks : 0);
    pool.parallel_for(chunks, [&](std::size_t c) {
      const std::size_t lo = c * per;
      const std::size_t hi = std::min(text.size(), lo + per);
      if (lo >= hi) return;
      part_nl[c].reserve((hi - lo) / 48 + 4);
      if (profile == nullptr) {
        scan_range(level, text, lo, hi, '\n', part_nl[c]);
      } else {
        scan_profile_range(level, text, lo, hi, part_nl[c], part_heads[c],
                           part_prof[c]);
      }
    });
    concat_chunks(pool, part_nl, newlines_);
    if (profile != nullptr) {
      concat_chunks(pool, part_heads, heads_);
      std::vector<std::vector<std::uint32_t>> field(chunks);
      for (const auto list : {&AsciiProfile::spaces, &AsciiProfile::violations,
                              &AsciiProfile::carriage}) {
        for (std::size_t c = 0; c < chunks; ++c) {
          field[c] = std::move(part_prof[c].*list);
        }
        concat_chunks(pool, field, profile->*list);
      }
    }
  }
  count_ = newlines_.size();
  // A final byte run without a terminating '\n' is still a line.
  if (!text.empty() && text.back() != '\n') ++count_;
}

namespace detail {

void split_fields_reference(std::string_view line, char sep,
                            std::vector<std::string_view>& fields) {
  fields.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

bool bytes_in_range_reference(std::string_view s, std::uint8_t lo,
                              std::uint8_t hi) {
  for (const char c : s) {
    const auto b = static_cast<std::uint8_t>(c);
    if (b < lo || b > hi) return false;
  }
  return true;
}

}  // namespace detail

}  // namespace gpf::fmt
