// FASTQ reads: the sequencer output format consumed by the Aligner stage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpf {

/// Sanger Phred+33 quality encoding bounds.  The paper notes a "normal
/// read" quality character range of [33, 126].
inline constexpr char kPhredBase = 33;
inline constexpr char kPhredMax = 126;

/// One sequenced read.
struct FastqRecord {
  std::string name;
  std::string sequence;  // A/C/G/T/N
  std::string quality;   // Phred+33 chars, same length as sequence

  bool operator==(const FastqRecord&) const = default;
};

/// A read pair from paired-end sequencing; mates share a name.
struct FastqPair {
  FastqRecord first;
  FastqRecord second;

  bool operator==(const FastqPair&) const = default;
};

/// Parses 4-line FASTQ text.  Throws std::invalid_argument on structural
/// errors (bad separators, quality/sequence length mismatch).
std::vector<FastqRecord> parse_fastq(std::string_view text);

/// Renders records to 4-line FASTQ text.
std::string write_fastq(const std::vector<FastqRecord>& records);

/// Zips two mate files into pairs; throws if lengths differ.
std::vector<FastqPair> zip_pairs(std::vector<FastqRecord> first,
                                 std::vector<FastqRecord> second);

}  // namespace gpf
