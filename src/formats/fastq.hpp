// FASTQ reads: the sequencer output format consumed by the Aligner stage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "formats/scan.hpp"

namespace gpf {

/// Sanger Phred+33 quality encoding bounds.  The paper notes a "normal
/// read" quality character range of [33, 126].
inline constexpr char kPhredBase = 33;
inline constexpr char kPhredMax = 126;

/// One sequenced read.
struct FastqRecord {
  std::string name;
  std::string sequence;  // A/C/G/T/N
  std::string quality;   // Phred+33 chars, same length as sequence

  bool operator==(const FastqRecord&) const = default;
};

/// A read pair from paired-end sequencing; mates share a name.
struct FastqPair {
  FastqRecord first;
  FastqRecord second;

  bool operator==(const FastqPair&) const = default;
};

/// Parses 4-line FASTQ text with the block-parallel scanner.  Strict:
/// throws std::invalid_argument on bad separators, a repeated '+' header
/// that differs from the '@' header, sequence/quality length mismatch,
/// truncated final records, blank lines *between* records (trailing blank
/// lines are tolerated), and control/non-ASCII bytes.  CRLF endings are
/// accepted; a CR-only file is a byte-range error (the CR lands inside a
/// line).
std::vector<FastqRecord> parse_fastq(std::string_view text);

/// Structural statistics from a validation-only scan (no record
/// materialization): the parse front-end without its allocation cost.
/// Throws exactly when parse_fastq would.
struct FastqScanStats {
  std::size_t records = 0;
  std::size_t bases = 0;

  bool operator==(const FastqScanStats&) const = default;
};
FastqScanStats scan_fastq(std::string_view text);

/// Renders records to 4-line FASTQ text.
std::string write_fastq(const std::vector<FastqRecord>& records);

/// Zips two mate files into pairs; throws if lengths differ.
std::vector<FastqPair> zip_pairs(std::vector<FastqRecord> first,
                                 std::vector<FastqRecord> second);

namespace detail {

/// Byte-at-a-time parser: the reference implementation the fast path is
/// differential-tested and benchmarked against.  Same strict semantics.
std::vector<FastqRecord> parse_fastq_reference(std::string_view text);
FastqScanStats scan_fastq_reference(std::string_view text);

/// Block-parallel parser with an explicit dispatch level (the public
/// functions pass simd::active_level()).  `parallel_threshold` is the
/// input size at which the chunked ThreadPool driver engages; tests pass
/// a tiny value to exercise cross-chunk record stitching on small blobs.
std::vector<FastqRecord> parse_fastq_at(
    simd::Level level, std::string_view text,
    std::size_t parallel_threshold = fmt::kParallelParseBytes);
FastqScanStats scan_fastq_at(
    simd::Level level, std::string_view text,
    std::size_t parallel_threshold = fmt::kParallelParseBytes);

/// Validates one 4-line record (shared by the reference and fast paths so
/// both throw identical messages).  Check order: '@' header, '+'
/// separator, separator/header name agreement, length agreement, byte
/// ranges.
void validate_fastq_record(simd::Level level, std::string_view header,
                           std::string_view seq, std::string_view sep,
                           std::string_view qual);

}  // namespace detail

}  // namespace gpf
