#include "formats/vcf.hpp"

#include <charconv>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace gpf {
namespace {

// Byte-at-a-time on purpose: the reference parser is the benchmarking and
// differential-testing baseline for the block kernels.
std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = i;
  while (eol < text.size() && text[eol] != '\n') ++eol;
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

const char* genotype_string(Genotype g) {
  switch (g) {
    case Genotype::kHomRef:
      return "0/0";
    case Genotype::kHet:
      return "0/1";
    case Genotype::kHomAlt:
      return "1/1";
  }
  return "./.";
}

/// Finds `name` in the contig dictionary, synthesizing an id in order of
/// appearance when absent (tolerates files without ##contig lines).
std::int32_t resolve_contig(VcfHeader& header, std::string_view name) {
  for (std::size_t c = 0; c < header.contigs.size(); ++c) {
    if (header.contigs[c].name == name) return static_cast<std::int32_t>(c);
  }
  header.contigs.push_back({std::string(name), 0});
  return static_cast<std::int32_t>(header.contigs.size() - 1);
}

void apply_chrom_line(const std::vector<std::string_view>& fields,
                      VcfHeader& header) {
  if (fields.size() >= 10) header.sample_name = std::string(fields[9]);
}

}  // namespace

namespace detail {

void parse_vcf_meta_line(std::string_view line, VcfHeader& header) {
  // ##contig=<ID=name,length=N>; every other ## line is ignored.
  if (!line.starts_with("##contig=<")) return;
  SamHeader::ContigInfo info;
  std::string_view body = line.substr(10);
  if (!body.empty() && body.back() == '>') body.remove_suffix(1);
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    const std::string_view kv = body.substr(start, comma - start);
    if (kv.starts_with("ID=")) info.name = std::string(kv.substr(3));
    if (kv.starts_with("length=")) {
      std::int64_t v = 0;
      std::from_chars(kv.data() + 7, kv.data() + kv.size(), v);
      info.length = v;
    }
    start = comma + 1;
  }
  header.contigs.push_back(std::move(info));
}

VcfRecord parse_vcf_record(simd::Level level,
                           const std::vector<std::string_view>& fields) {
  if (fields.size() < 8) throw std::invalid_argument("VCF: short record");
  VcfRecord rec;
  std::int64_t pos1 = 0;
  const auto [pp, pec] = std::from_chars(
      fields[1].data(), fields[1].data() + fields[1].size(), pos1);
  if (pec != std::errc() || pp != fields[1].data() + fields[1].size()) {
    throw std::invalid_argument("VCF: bad POS");
  }
  rec.pos = pos1 - 1;
  rec.id = std::string(fields[2]);
  if (!fmt::bytes_in_range(level, fields[3], 0x21, 0x7E)) {
    throw std::invalid_argument("VCF: non-ASCII byte in REF");
  }
  rec.ref = std::string(fields[3]);
  if (!fmt::bytes_in_range(level, fields[4], 0x21, 0x7E)) {
    throw std::invalid_argument("VCF: non-ASCII byte in ALT");
  }
  rec.alt = std::string(fields[4]);
  if (rec.alt.find(',') != std::string::npos) {
    throw std::invalid_argument("VCF: multi-allelic sites unsupported");
  }
  if (fields[5] != ".") {
    double q = 0.0;
    const auto [qp, qec] = std::from_chars(
        fields[5].data(), fields[5].data() + fields[5].size(), q);
    if (qec != std::errc() || qp != fields[5].data() + fields[5].size()) {
      throw std::invalid_argument("VCF: bad QUAL");
    }
    rec.qual = q;
  }
  if (fields.size() >= 10) {
    const std::string_view gt = fields[9].substr(0, 3);
    if (gt == "0/0") rec.genotype = Genotype::kHomRef;
    else if (gt == "1/1") rec.genotype = Genotype::kHomAlt;
    else rec.genotype = Genotype::kHet;
  }
  return rec;
}

VcfFile parse_vcf_reference(std::string_view text) {
  VcfFile file;
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view line = next_line(text, i);
    if (line.empty()) continue;
    if (line.starts_with("##")) {
      parse_vcf_meta_line(line, file.header);
      continue;
    }
    if (line.starts_with("#CHROM")) {
      fmt::detail::split_fields_reference(line, '\t', fields);
      apply_chrom_line(fields, file.header);
      continue;
    }
    fmt::detail::split_fields_reference(line, '\t', fields);
    VcfRecord rec = parse_vcf_record(simd::Level::kScalar, fields);
    rec.contig_id = resolve_contig(file.header, fields[0]);
    file.records.push_back(std::move(rec));
  }
  return file;
}

VcfFile parse_vcf_at(simd::Level level, std::string_view text,
                     std::size_t parallel_threshold) {
  trace::ScopedSpan span("parse_vcf", trace::SpanKind::kParse);
  const fmt::LineIndex lines(level, text, parallel_threshold);
  const std::size_t n = lines.line_count();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Classify lines.  "##" metadata and the "#CHROM" column line must all
  // precede data lines for batch parsing (a late ##contig line would
  // change id assignment mid-file); otherwise fall back to the reference
  // parser.  A lone "#..." line that is neither is data, as in the
  // reference.
  std::vector<std::uint32_t> record_lines;
  record_lines.reserve(n);
  std::size_t first_record = kNone;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty()) continue;
    if (line.starts_with("##") || line.starts_with("#CHROM")) {
      if (first_record != kNone) return parse_vcf_reference(text);
    } else {
      if (first_record == kNone) first_record = i;
      record_lines.push_back(static_cast<std::uint32_t>(i));
    }
  }

  VcfFile file;
  std::vector<std::string_view> header_fields;
  const std::size_t header_end = first_record == kNone ? n : first_record;
  for (std::size_t i = 0; i < header_end; ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty()) continue;
    if (line.starts_with("##")) {
      parse_vcf_meta_line(line, file.header);
    } else {
      fmt::split_fields(level, line, '\t', header_fields);
      apply_chrom_line(header_fields, file.header);
    }
  }

  const std::size_t count = record_lines.size();
  file.records.assign(count, {});
  std::vector<std::string_view> contig_names(count);
  std::mutex mu;
  std::size_t first_bad = kNone;
  std::string first_error;
  const auto do_record = [&](std::size_t k) {
    static thread_local std::vector<std::string_view> fields;
    try {
      fmt::split_fields(level, lines.line(record_lines[k]), '\t', fields);
      file.records[k] = parse_vcf_record(level, fields);
      contig_names[k] = fields[0];
    } catch (const std::invalid_argument& e) {
      std::lock_guard lock(mu);
      if (k < first_bad) {
        first_bad = k;
        first_error = e.what();
      }
    }
  };
  if (text.size() >= parallel_threshold) {
    ThreadPool::global().parallel_for(count, do_record);
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      do_record(k);
      if (first_bad != kNone) break;
    }
  }
  if (first_bad != kNone) throw std::invalid_argument(first_error);

  // Contig resolution is sequential so synthesized ids keep appearance
  // order, exactly as the reference assigns them.
  for (std::size_t k = 0; k < count; ++k) {
    file.records[k].contig_id = resolve_contig(file.header, contig_names[k]);
  }
  return file;
}

}  // namespace detail

VcfFile parse_vcf(std::string_view text) {
  return detail::parse_vcf_at(simd::active_level(), text);
}

std::string write_vcf(const VcfHeader& header,
                      const std::vector<VcfRecord>& records) {
  std::string out = "##fileformat=VCFv4.2\n";
  for (const auto& c : header.contigs) {
    out += "##contig=<ID=" + c.name + ",length=" + std::to_string(c.length) +
           ">\n";
  }
  out += "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t" +
         header.sample_name + '\n';
  for (const auto& r : records) {
    char qual[32];
    std::snprintf(qual, sizeof qual, "%.2f", r.qual);
    out += header.contigs.at(r.contig_id).name;
    out += '\t';
    out += std::to_string(r.pos + 1);
    out += '\t';
    out += r.id;
    out += '\t';
    out += r.ref;
    out += '\t';
    out += r.alt;
    out += '\t';
    out += qual;
    out += "\tPASS\t.\tGT\t";
    out += genotype_string(r.genotype);
    out += '\n';
  }
  return out;
}

bool vcf_less(const VcfRecord& a, const VcfRecord& b) {
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.ref != b.ref) return a.ref < b.ref;
  return a.alt < b.alt;
}

}  // namespace gpf
