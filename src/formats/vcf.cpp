#include "formats/vcf.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace gpf {
namespace {

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = text.find('\n', i);
  if (eol == std::string_view::npos) eol = text.size();
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

const char* genotype_string(Genotype g) {
  switch (g) {
    case Genotype::kHomRef:
      return "0/0";
    case Genotype::kHet:
      return "0/1";
    case Genotype::kHomAlt:
      return "1/1";
  }
  return "./.";
}

}  // namespace

VcfFile parse_vcf(std::string_view text) {
  VcfFile file;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view line = next_line(text, i);
    if (line.empty()) continue;
    if (line.starts_with("##")) {
      // ##contig=<ID=name,length=N>
      if (line.starts_with("##contig=<")) {
        SamHeader::ContigInfo info;
        std::string_view body = line.substr(10);
        if (!body.empty() && body.back() == '>') body.remove_suffix(1);
        std::size_t start = 0;
        while (start <= body.size()) {
          std::size_t comma = body.find(',', start);
          if (comma == std::string_view::npos) comma = body.size();
          const std::string_view kv = body.substr(start, comma - start);
          if (kv.starts_with("ID=")) info.name = std::string(kv.substr(3));
          if (kv.starts_with("length=")) {
            std::int64_t v = 0;
            std::from_chars(kv.data() + 7, kv.data() + kv.size(), v);
            info.length = v;
          }
          start = comma + 1;
        }
        file.header.contigs.push_back(std::move(info));
      }
      continue;
    }
    if (line.starts_with("#CHROM")) {
      const auto fields = split_tabs(line);
      if (fields.size() >= 10) file.header.sample_name = fields[9];
      continue;
    }
    const auto fields = split_tabs(line);
    if (fields.size() < 8) throw std::invalid_argument("VCF: short record");
    VcfRecord rec;
    rec.contig_id = -1;
    for (std::size_t c = 0; c < file.header.contigs.size(); ++c) {
      if (file.header.contigs[c].name == fields[0]) {
        rec.contig_id = static_cast<std::int32_t>(c);
        break;
      }
    }
    if (rec.contig_id < 0) {
      // Tolerate files without ##contig lines: synthesize ids in order of
      // appearance.
      file.header.contigs.push_back({std::string(fields[0]), 0});
      rec.contig_id = static_cast<std::int32_t>(file.header.contigs.size() - 1);
    }
    std::int64_t pos1 = 0;
    std::from_chars(fields[1].data(), fields[1].data() + fields[1].size(),
                    pos1);
    rec.pos = pos1 - 1;
    rec.id = std::string(fields[2]);
    rec.ref = std::string(fields[3]);
    rec.alt = std::string(fields[4]);
    if (rec.alt.find(',') != std::string::npos) {
      throw std::invalid_argument("VCF: multi-allelic sites unsupported");
    }
    if (fields[5] != ".") {
      rec.qual = std::strtod(std::string(fields[5]).c_str(), nullptr);
    }
    if (fields.size() >= 10) {
      const std::string_view gt = fields[9].substr(0, 3);
      if (gt == "0/0") rec.genotype = Genotype::kHomRef;
      else if (gt == "1/1") rec.genotype = Genotype::kHomAlt;
      else rec.genotype = Genotype::kHet;
    }
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::string write_vcf(const VcfHeader& header,
                      const std::vector<VcfRecord>& records) {
  std::string out = "##fileformat=VCFv4.2\n";
  for (const auto& c : header.contigs) {
    out += "##contig=<ID=" + c.name + ",length=" + std::to_string(c.length) +
           ">\n";
  }
  out += "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t" +
         header.sample_name + '\n';
  for (const auto& r : records) {
    char qual[32];
    std::snprintf(qual, sizeof qual, "%.2f", r.qual);
    out += header.contigs.at(r.contig_id).name;
    out += '\t';
    out += std::to_string(r.pos + 1);
    out += '\t';
    out += r.id;
    out += '\t';
    out += r.ref;
    out += '\t';
    out += r.alt;
    out += '\t';
    out += qual;
    out += "\tPASS\t.\tGT\t";
    out += genotype_string(r.genotype);
    out += '\n';
  }
  return out;
}

bool vcf_less(const VcfRecord& a, const VcfRecord& b) {
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.ref != b.ref) return a.ref < b.ref;
  return a.alt < b.alt;
}

}  // namespace gpf
