#include "formats/fasta.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>

#include "common/simd.hpp"
#include "formats/scan.hpp"

namespace gpf {
namespace {

char normalize_base(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A':
      return 'A';
    case 'C':
      return 'C';
    case 'G':
      return 'G';
    case 'T':
      return 'T';
    default:
      return 'N';
  }
}

}  // namespace

Reference::Reference(std::vector<FastaContig> contigs)
    : contigs_(std::move(contigs)) {
  for (const auto& c : contigs_) total_length_ += c.sequence.size();
}

std::optional<std::int32_t> Reference::find_contig(
    std::string_view name) const {
  for (std::size_t i = 0; i < contigs_.size(); ++i) {
    if (contigs_[i].name == name) return static_cast<std::int32_t>(i);
  }
  return std::nullopt;
}

std::string_view Reference::slice(std::int32_t id, std::int64_t pos,
                                  std::int64_t len) const {
  const auto& seq = contigs_.at(id).sequence;
  if (pos < 0) {
    len += pos;
    pos = 0;
  }
  if (pos >= static_cast<std::int64_t>(seq.size()) || len <= 0) return {};
  const auto avail = static_cast<std::int64_t>(seq.size()) - pos;
  return std::string_view(seq).substr(static_cast<std::size_t>(pos),
                                      static_cast<std::size_t>(
                                          std::min(len, avail)));
}

Reference parse_fasta(std::string_view text) {
  const fmt::LineIndex lines(simd::active_level(), text);
  std::vector<FastaContig> contigs;
  for (std::size_t i = 0; i < lines.line_count(); ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty()) continue;
    if (line.front() == '>') {
      // Header line: name is the first whitespace-delimited token.
      std::string_view header = line.substr(1);
      const std::size_t sp = header.find_first_of(" \t");
      contigs.push_back(
          {std::string(sp == std::string_view::npos ? header
                                                    : header.substr(0, sp)),
           {}});
    } else {
      if (contigs.empty()) {
        throw std::invalid_argument("FASTA: sequence before header");
      }
      auto& seq = contigs.back().sequence;
      seq.reserve(seq.size() + line.size());
      for (const char c : line) seq.push_back(normalize_base(c));
    }
  }
  return Reference(std::move(contigs));
}

std::string write_fasta(const Reference& ref) {
  constexpr std::size_t kWidth = 70;
  std::string out;
  for (const auto& contig : ref.contigs()) {
    out += '>';
    out += contig.name;
    out += '\n';
    for (std::size_t i = 0; i < contig.sequence.size(); i += kWidth) {
      out += contig.sequence.substr(i, kWidth);
      out += '\n';
    }
  }
  return out;
}

}  // namespace gpf
