// Bitstream-parallel text scanning: the shared front-end under the
// FASTQ/SAM/VCF parsers.
//
// Parabix-style idea, adapted to the repo's SWAR/SIMD dispatch layer: the
// input is processed in 64-byte blocks, each block transposed into a
// 64-bit *mask stream* (bit i set iff byte i matches a predicate — is a
// newline, a tab, an out-of-range byte, ...).  Record and field
// boundaries are then found with mask arithmetic (countr_zero / clear
// lowest bit) instead of byte-at-a-time find('\n') loops, and structural
// validation becomes a handful of mask tests per record instead of a
// branch per byte.
//
// Three mask kernels exist per predicate — portable 64-bit SWAR, SSE4 and
// AVX2 — selected by the simd::Level argument at runtime (GPF_FORCE_SCALAR
// pins dispatch to the SWAR path; see common/simd.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/simd.hpp"

namespace gpf::fmt {

/// Inputs are indexed with 32-bit offsets (half the memory of size_t line
/// tables); parsers reject anything larger up front.
inline constexpr std::size_t kMaxTextBytes = 0xFFFFFFFFu;

/// Parsers switch from the single-threaded scan to the chunked
/// ThreadPool driver at this input size.
inline constexpr std::size_t kParallelParseBytes = std::size_t{1} << 20;

/// Bitmask of the positions of `needle` inside the 64-byte block at `p`.
/// Bit i corresponds to p[i]; all 64 bytes must be readable.
std::uint64_t eq_block_mask(simd::Level level, const char* p, char needle);

/// Bitmask of the bytes of the 64-byte block at `p` that fall *outside*
/// the inclusive range [lo, hi].  Requires lo >= 1 and hi <= 127 (ASCII
/// classification; that is all the parsers need).
std::uint64_t range_violation_block_mask(simd::Level level, const char* p,
                                         std::uint8_t lo, std::uint8_t hi);

/// True iff every byte of `s` lies in the inclusive range [lo, hi]
/// (block masks over full blocks, padded tail block at the end).
bool bytes_in_range(simd::Level level, std::string_view s, std::uint8_t lo,
                    std::uint8_t hi);

/// Appends the offset of every `needle` byte in `text` to `out`.
/// Single-threaded; the parallel driver lives in LineIndex.
void scan_positions(simd::Level level, std::string_view text, char needle,
                    std::vector<std::uint32_t>& out);

/// Splits `line` on `sep` into `fields` (cleared first) using separator
/// masks.  Matches the classic byte-loop splitter exactly, including the
/// trailing empty field of "a\t" and the single empty field of "".
void split_fields(simd::Level level, std::string_view line, char sep,
                  std::vector<std::string_view>& fields);

/// Sparse byte-class position lists collected in the *same* block sweep
/// that builds the newline index, so content validation needs no second
/// pass over the text.  In well-formed input both lists are empty (or
/// tiny: the CRs of CRLF files), so a record's byte-range check collapses
/// to binary searches over these lists instead of a re-scan of its bytes.
struct AsciiProfile {
  std::vector<std::uint32_t> spaces;      ///< positions of ' ' (0x20)
  std::vector<std::uint32_t> violations;  ///< outside [0x20, 0x7E]; '\n'
                                          ///< excluded (it is structure,
                                          ///< not content)
  std::vector<std::uint32_t> carriage;    ///< positions of '\r' (also in
                                          ///< `violations`; listed apart so
                                          ///< CRLF stripping can tell a
                                          ///< trailing CR from a stray
                                          ///< control byte)
};

/// True iff the sorted position list has an entry in [begin, end).
inline bool any_position_in(const std::vector<std::uint32_t>& positions,
                            std::size_t begin, std::size_t end) {
  const auto it = std::lower_bound(positions.begin(), positions.end(),
                                   static_cast<std::uint32_t>(begin));
  return it != positions.end() && *it < end;
}

/// Newline index over a text buffer: every '\n' position found with block
/// masks, built in boundary-aligned chunks on the global ThreadPool when
/// the input crosses `parallel_threshold` bytes.  Chunks scan disjoint
/// byte ranges, so per-chunk position lists concatenate into the global
/// line table without fixups — records that straddle a chunk boundary are
/// stitched back together simply by indexing lines across the seam.
class LineIndex {
 public:
  /// Builds the index.  Throws std::invalid_argument when `text` exceeds
  /// kMaxTextBytes.  When `profile` is non-null the same sweep also
  /// classifies every byte into it (single-pass scan + validate).
  LineIndex(simd::Level level, std::string_view text,
            std::size_t parallel_threshold = kParallelParseBytes,
            AsciiProfile* profile = nullptr);

  /// Number of lines.  A trailing '\n' does not open a final empty line,
  /// matching the byte-at-a-time reference parsers.
  std::size_t line_count() const { return count_; }

  /// Line `i` with the terminating newline excluded and one trailing CR
  /// stripped (CRLF input).
  std::string_view line(std::size_t i) const {
    const std::size_t start = i == 0 ? 0 : newlines_[i - 1] + std::size_t{1};
    std::size_t end =
        i < newlines_.size() ? newlines_[i] : text_.size();
    if (end > start && text_[end - 1] == '\r') --end;
    return text_.substr(start, end - start);
  }

  /// Offset of the first byte of line `i` in the source text.
  std::uint32_t line_start(std::size_t i) const {
    return i == 0 ? 0 : newlines_[i - 1] + 1;
  }

  /// Offset one past the last byte of line `i`, CR *not* stripped.
  std::size_t line_raw_end(std::size_t i) const {
    return i < newlines_.size() ? newlines_[i] : text_.size();
  }

  /// First byte of line `i` ('\n' for an empty line).  When the index was
  /// built with an AsciiProfile the head bytes were collected during the
  /// block sweep, so this reads the side table instead of the text —
  /// structural record checks then touch no text bytes at all.
  char line_head(std::size_t i) const {
    if (!heads_.empty()) return i == 0 ? head0_ : heads_[i - 1];
    const std::size_t s = line_start(i);
    return s < text_.size() ? text_[s] : '\n';
  }

 private:
  std::string_view text_;
  std::vector<std::uint32_t> newlines_;
  std::vector<char> heads_;  // byte after newline k (profile builds only)
  char head0_ = '\n';
  std::size_t count_ = 0;
};

namespace detail {

/// Byte-loop splitter kept as the reference implementation for the
/// differential tests and the sam_fields bench baseline.
void split_fields_reference(std::string_view line, char sep,
                            std::vector<std::string_view>& fields);

/// Byte-loop range check (reference for bytes_in_range).
bool bytes_in_range_reference(std::string_view s, std::uint8_t lo,
                              std::uint8_t hi);

}  // namespace detail

}  // namespace gpf::fmt
