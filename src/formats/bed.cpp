#include "formats/bed.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace gpf {
namespace {

std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = text.find('\n', i);
  if (eol == std::string_view::npos) eol = text.size();
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::int64_t to_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("BED: bad integer: " + std::string(s));
  }
  return v;
}

bool interval_less(const BedInterval& a, const BedInterval& b) {
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  return a.start < b.start;
}

}  // namespace

IntervalSet::IntervalSet(std::vector<BedInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(), interval_less);
  for (auto& iv : intervals) {
    if (iv.end <= iv.start) continue;  // drop empty/inverted
    if (!intervals_.empty() && intervals_.back().contig_id == iv.contig_id &&
        iv.start <= intervals_.back().end) {
      intervals_.back().end = std::max(intervals_.back().end, iv.end);
    } else {
      intervals_.push_back(std::move(iv));
    }
  }
}

std::int64_t IntervalSet::total_length() const {
  std::int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::overlaps(std::int32_t contig_id, std::int64_t start,
                           std::int64_t end) const {
  if (end <= start) return false;
  // First interval with (contig, start_of_interval) >= (contig, end).
  BedInterval probe;
  probe.contig_id = contig_id;
  probe.start = end;
  auto it = std::lower_bound(intervals_.begin(), intervals_.end(), probe,
                             interval_less);
  if (it == intervals_.begin()) return false;
  --it;
  return it->contig_id == contig_id && it->end > start;
}

std::vector<BedInterval> parse_bed(std::string_view text,
                                   const SamHeader& header) {
  std::vector<BedInterval> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view line = next_line(text, i);
    if (line.empty() || line.front() == '#' || line.starts_with("track") ||
        line.starts_with("browser")) {
      continue;
    }
    const auto fields = split_tabs(line);
    if (fields.size() < 3) throw std::invalid_argument("BED: short line");
    BedInterval iv;
    iv.contig_id = header.find_contig(fields[0]);
    if (iv.contig_id < 0) {
      throw std::invalid_argument("BED: unknown contig " +
                                  std::string(fields[0]));
    }
    iv.start = to_i64(fields[1]);
    iv.end = to_i64(fields[2]);
    if (fields.size() >= 4) iv.name = std::string(fields[3]);
    out.push_back(std::move(iv));
  }
  return out;
}

std::string write_bed(const std::vector<BedInterval>& intervals,
                      const SamHeader& header) {
  std::string out;
  for (const auto& iv : intervals) {
    out += header.contigs.at(iv.contig_id).name;
    out += '\t' + std::to_string(iv.start) + '\t' + std::to_string(iv.end);
    if (!iv.name.empty()) out += '\t' + iv.name;
    out += '\n';
  }
  return out;
}

}  // namespace gpf
