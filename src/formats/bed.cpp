#include "formats/bed.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "common/simd.hpp"
#include "formats/scan.hpp"

namespace gpf {
namespace {

std::int64_t to_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("BED: bad integer: " + std::string(s));
  }
  return v;
}

bool interval_less(const BedInterval& a, const BedInterval& b) {
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  return a.start < b.start;
}

}  // namespace

IntervalSet::IntervalSet(std::vector<BedInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(), interval_less);
  for (auto& iv : intervals) {
    if (iv.end <= iv.start) continue;  // drop empty/inverted
    if (!intervals_.empty() && intervals_.back().contig_id == iv.contig_id &&
        iv.start <= intervals_.back().end) {
      intervals_.back().end = std::max(intervals_.back().end, iv.end);
    } else {
      intervals_.push_back(std::move(iv));
    }
  }
}

std::int64_t IntervalSet::total_length() const {
  std::int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::overlaps(std::int32_t contig_id, std::int64_t start,
                           std::int64_t end) const {
  if (end <= start) return false;
  // First interval with (contig, start_of_interval) >= (contig, end).
  BedInterval probe;
  probe.contig_id = contig_id;
  probe.start = end;
  auto it = std::lower_bound(intervals_.begin(), intervals_.end(), probe,
                             interval_less);
  if (it == intervals_.begin()) return false;
  --it;
  return it->contig_id == contig_id && it->end > start;
}

std::vector<BedInterval> parse_bed(std::string_view text,
                                   const SamHeader& header) {
  const simd::Level level = simd::active_level();
  const fmt::LineIndex lines(level, text);
  std::vector<BedInterval> out;
  std::vector<std::string_view> fields;
  for (std::size_t i = 0; i < lines.line_count(); ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty() || line.front() == '#' || line.starts_with("track") ||
        line.starts_with("browser")) {
      continue;
    }
    fmt::split_fields(level, line, '\t', fields);
    if (fields.size() < 3) throw std::invalid_argument("BED: short line");
    BedInterval iv;
    iv.contig_id = header.find_contig(fields[0]);
    if (iv.contig_id < 0) {
      throw std::invalid_argument("BED: unknown contig " +
                                  std::string(fields[0]));
    }
    iv.start = to_i64(fields[1]);
    iv.end = to_i64(fields[2]);
    if (fields.size() >= 4) iv.name = std::string(fields[3]);
    out.push_back(std::move(iv));
  }
  return out;
}

std::string write_bed(const std::vector<BedInterval>& intervals,
                      const SamHeader& header) {
  std::string out;
  for (const auto& iv : intervals) {
    out += header.contigs.at(iv.contig_id).name;
    out += '\t' + std::to_string(iv.start) + '\t' + std::to_string(iv.end);
    if (!iv.name.empty()) out += '\t' + iv.name;
    out += '\n';
  }
  return out;
}

}  // namespace gpf
