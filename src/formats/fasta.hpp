// FASTA reference sequences and the in-memory Reference object that the
// aligner, cleaner and caller all share.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpf {

/// One reference contig (chromosome).
struct FastaContig {
  std::string name;
  std::string sequence;  // upper-case A/C/G/T/N
};

/// An indexed set of contigs.  Contigs are addressed by dense integer id
/// (their load order), which every downstream record uses instead of the
/// name string.
class Reference {
 public:
  Reference() = default;
  explicit Reference(std::vector<FastaContig> contigs);

  std::size_t contig_count() const { return contigs_.size(); }
  const FastaContig& contig(std::int32_t id) const { return contigs_.at(id); }
  /// Total bases across all contigs.
  std::uint64_t total_length() const { return total_length_; }

  /// Returns the dense id for `name`, or nullopt if absent.
  std::optional<std::int32_t> find_contig(std::string_view name) const;

  /// Bases [pos, pos+len) of contig `id`, clamped to the contig end.
  std::string_view slice(std::int32_t id, std::int64_t pos,
                         std::int64_t len) const;

  const std::vector<FastaContig>& contigs() const { return contigs_; }

 private:
  std::vector<FastaContig> contigs_;
  std::uint64_t total_length_ = 0;
};

/// Parses FASTA text (">name desc\nACGT...").  Lower-case bases are
/// upper-cased; any letter outside ACGT becomes N.
Reference parse_fasta(std::string_view text);

/// Renders a Reference back to FASTA with fixed 70-column wrapping.
std::string write_fasta(const Reference& ref);

}  // namespace gpf
