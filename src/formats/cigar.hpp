// CIGAR alignment-description strings (SAM spec section 1.4.6).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpf {

/// One CIGAR operation.  Op codes follow the SAM specification.
enum class CigarOp : std::uint8_t {
  kMatch = 0,      // M: alignment match or mismatch
  kInsertion = 1,  // I: insertion to the reference
  kDeletion = 2,   // D: deletion from the reference
  kSkip = 3,       // N: skipped region (introns)
  kSoftClip = 4,   // S: clipped read bases kept in SEQ
  kHardClip = 5,   // H: clipped read bases removed from SEQ
  kPad = 6,        // P: padding
  kEqual = 7,      // =: sequence match
  kDiff = 8,       // X: sequence mismatch
};

struct CigarElement {
  CigarOp op;
  std::uint32_t length;

  bool operator==(const CigarElement&) const = default;
};

using Cigar = std::vector<CigarElement>;

/// Character code for an op ('M', 'I', ...).
char cigar_op_char(CigarOp op);

/// Parses "76M2I20M" style strings; throws std::invalid_argument on
/// malformed input.  "*" parses to an empty Cigar.
Cigar parse_cigar(std::string_view text);

/// Renders a Cigar back to its SAM text form ("*" when empty).
std::string cigar_to_string(const Cigar& cigar);

/// Number of read bases consumed (M/I/S/=/X).
std::uint32_t cigar_read_length(const Cigar& cigar);

/// Number of reference bases consumed (M/D/N/=/X).
std::uint32_t cigar_reference_length(const Cigar& cigar);

/// True if op consumes read bases.
bool consumes_read(CigarOp op);
/// True if op consumes reference bases.
bool consumes_reference(CigarOp op);

}  // namespace gpf
