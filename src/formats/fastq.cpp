#include "formats/fastq.hpp"

#include <mutex>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace gpf {
namespace {

// Every structural error, shared verbatim by the reference and fast paths
// so the differential fuzz suite can assert message equality.
constexpr const char* kErrBlank = "FASTQ: blank line between records";
constexpr const char* kErrHeader = "FASTQ: expected '@' header";
constexpr const char* kErrTruncated = "FASTQ: truncated record";
constexpr const char* kErrSeparator = "FASTQ: expected '+' separator";
constexpr const char* kErrSepName =
    "FASTQ: '+' line repeats a different header";
constexpr const char* kErrLength = "FASTQ: sequence/quality length mismatch";
constexpr const char* kErrHeaderByte = "FASTQ: non-ASCII byte in header";
constexpr const char* kErrSeqByte = "FASTQ: non-ASCII byte in sequence";
constexpr const char* kErrQualByte = "FASTQ: quality character out of range";

/// Returns the next line of `text` starting at `i`, advancing `i` past the
/// newline.  CR is stripped.  Deliberately byte-at-a-time: this is the
/// reference parser's line splitter, the baseline the block kernels are
/// benchmarked against.
std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = i;
  while (eol < text.size() && text[eol] != '\n') ++eol;
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

/// Structural checks shared by both paths; returns nullptr or the error
/// message.  Byte-range checks follow separately (the two paths find bad
/// bytes differently but in the same order).
const char* check_fastq_structure(std::string_view header,
                                  std::string_view seq, std::string_view sep,
                                  std::string_view qual) {
  if (header.empty()) return kErrBlank;
  if (header.front() != '@') return kErrHeader;
  if (sep.empty() || sep.front() != '+') return kErrSeparator;
  if (sep.size() > 1 && sep.substr(1) != header.substr(1)) return kErrSepName;
  if (seq.size() != qual.size()) return kErrLength;
  return nullptr;
}

/// Record validation shared by the reference parser and the one-record
/// entry point; returns nullptr or the error message.  `byte_loop`
/// selects the unoptimized per-byte range check (the reference parser)
/// over the block-mask one.
const char* check_fastq_record(simd::Level level, bool byte_loop,
                               std::string_view header, std::string_view seq,
                               std::string_view sep, std::string_view qual) {
  if (const char* err = check_fastq_structure(header, seq, sep, qual)) {
    return err;
  }
  const auto in_range = [&](std::string_view s, std::uint8_t lo,
                            std::uint8_t hi) {
    return byte_loop ? fmt::detail::bytes_in_range_reference(s, lo, hi)
                     : fmt::bytes_in_range(level, s, lo, hi);
  };
  // Headers may carry a description, so space is legal there; sequence and
  // quality must be printable non-space ASCII ([33, 126] — the Phred range).
  if (!in_range(header.substr(1), 0x20, 0x7E)) return kErrHeaderByte;
  if (!in_range(seq, 0x21, 0x7E)) return kErrSeqByte;
  if (!in_range(qual, static_cast<std::uint8_t>(kPhredBase),
                static_cast<std::uint8_t>(kPhredMax))) {
    return kErrQualByte;
  }
  return nullptr;
}

/// Byte-at-a-time parse/scan (records and stats optional).
void run_fastq_reference(std::string_view text,
                         std::vector<FastqRecord>* records,
                         FastqScanStats* stats) {
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view header = next_line(text, i);
    if (header.empty()) {
      // A blank line is legal only when every remaining line is blank
      // (trailing blanks); a blank *between* records is an error.
      std::size_t j = i;
      while (j < text.size()) {
        if (!next_line(text, j).empty()) {
          throw std::invalid_argument(kErrBlank);
        }
      }
      break;
    }
    if (header.front() != '@') throw std::invalid_argument(kErrHeader);
    if (i >= text.size()) throw std::invalid_argument(kErrTruncated);
    const std::string_view seq = next_line(text, i);
    if (i >= text.size()) throw std::invalid_argument(kErrTruncated);
    const std::string_view sep = next_line(text, i);
    if (i >= text.size()) throw std::invalid_argument(kErrTruncated);
    const std::string_view qual = next_line(text, i);
    const char* err = check_fastq_record(simd::Level::kScalar,
                                         /*byte_loop=*/true, header, seq, sep,
                                         qual);
    if (err != nullptr) throw std::invalid_argument(err);
    if (records != nullptr) {
      records->push_back({std::string(header.substr(1)), std::string(seq),
                          std::string(qual)});
    }
    if (stats != nullptr) {
      ++stats->records;
      stats->bases += seq.size();
    }
  }
}

/// Block-parallel parse/scan over the LineIndex.  Lines group into 4-line
/// records positionally, so every group validates independently; groups
/// run through ThreadPool::parallel_for on large inputs and the earliest
/// non-OK group decides the outcome, matching the sequential reference.
void run_fastq_fast(simd::Level level, std::string_view text,
                    std::size_t parallel_threshold,
                    std::vector<FastqRecord>* records, FastqScanStats* stats) {
  trace::ScopedSpan span(records != nullptr ? "parse_fastq" : "scan_fastq",
                         trace::SpanKind::kParse);
  // Single sweep: newline index + sparse byte-class lists.  Per-record
  // range validation is then binary searches over the (normally empty)
  // lists, not a second pass over the record's bytes.
  fmt::AsciiProfile profile;
  const fmt::LineIndex lines(level, text, parallel_threshold, &profile);
  const std::size_t n = lines.line_count();
  const std::size_t full = n / 4;
  const std::size_t rem = n % 4;
  const std::size_t groups = full + (rem != 0 ? 1 : 0);

  if (records != nullptr) records->assign(full, {});
  std::vector<std::uint32_t> base_len(stats != nullptr ? full : 0, 0);

  // Earliest non-OK group: kStop marks the start of the trailing blank
  // run (legal; truncates the record list), an error message marks a
  // malformed group (throws).
  std::mutex mu;
  std::size_t first_marked = static_cast<std::size_t>(-1);
  const char* first_error = nullptr;
  const auto note = [&](std::size_t g, const char* err) {
    std::lock_guard lock(mu);
    if (g < first_marked) {
      first_marked = g;
      first_error = err;
    }
  };

  // Stripped length of line i, resolved from the newline table and the CR
  // position list — no text bytes are read.
  const auto line_len = [&](std::size_t i) {
    const std::size_t s = lines.line_start(i);
    std::size_t e = lines.line_raw_end(i);
    if (e > s && fmt::any_position_in(profile.carriage, e - 1, e)) --e;
    return e - s;
  };

  // The happy path runs entirely on the sweep's side tables (line starts,
  // head bytes, sparse byte-class lists); the record's own bytes are only
  // touched again to materialize strings or on the rare '+'-repeats-header
  // line.  Checks replicate check_fastq_record's order exactly.
  const auto do_group = [&](std::size_t g) {
    const std::size_t hlen = line_len(4 * g);
    if (hlen == 0) {
      for (std::size_t j = 4 * g + 1; j < n; ++j) {
        if (line_len(j) != 0) return note(g, kErrBlank);
      }
      return note(g, nullptr);  // trailing blank run: stop marker
    }
    if (lines.line_head(4 * g) != '@') return note(g, kErrHeader);
    if (g == full) return note(g, kErrTruncated);  // partial group: 1-3 lines
    const std::size_t slen = line_len(4 * g + 1);
    const std::size_t plen = line_len(4 * g + 2);
    const std::size_t qlen = line_len(4 * g + 3);
    if (plen == 0 || lines.line_head(4 * g + 2) != '+') {
      return note(g, kErrSeparator);
    }
    if (plen > 1 &&
        lines.line(4 * g + 2).substr(1) != lines.line(4 * g).substr(1)) {
      return note(g, kErrSepName);
    }
    if (slen != qlen) return note(g, kErrLength);
    // Byte ranges via the profile: header allows space ([0x20, 0x7E]);
    // sequence and quality are the same range minus space ([0x21, 0x7E]
    // == the Phred range).
    const std::size_t h = lines.line_start(4 * g);
    const std::size_t s0 = lines.line_start(4 * g + 1);
    const std::size_t q0 = lines.line_start(4 * g + 3);
    if (fmt::any_position_in(profile.violations, h + 1, h + hlen)) {
      return note(g, kErrHeaderByte);
    }
    if (fmt::any_position_in(profile.violations, s0, s0 + slen) ||
        fmt::any_position_in(profile.spaces, s0, s0 + slen)) {
      return note(g, kErrSeqByte);
    }
    if (fmt::any_position_in(profile.violations, q0, q0 + qlen) ||
        fmt::any_position_in(profile.spaces, q0, q0 + qlen)) {
      return note(g, kErrQualByte);
    }
    if (records != nullptr) {
      (*records)[g] = {std::string(text.substr(h + 1, hlen - 1)),
                       std::string(text.substr(s0, slen)),
                       std::string(text.substr(q0, qlen))};
    }
    if (stats != nullptr) {
      base_len[g] = static_cast<std::uint32_t>(slen);
    }
  };

  if (text.size() >= parallel_threshold) {
    ThreadPool::global().parallel_for(groups, do_group);
  } else {
    for (std::size_t g = 0; g < groups; ++g) {
      do_group(g);
      if (first_marked != static_cast<std::size_t>(-1)) break;
    }
  }

  std::size_t limit = full;
  if (first_marked != static_cast<std::size_t>(-1)) {
    if (first_error != nullptr) throw std::invalid_argument(first_error);
    limit = first_marked;
  }
  if (records != nullptr) records->resize(limit);
  if (stats != nullptr) {
    stats->records = limit;
    for (std::size_t g = 0; g < limit; ++g) stats->bases += base_len[g];
  }
}

}  // namespace

namespace detail {

void validate_fastq_record(simd::Level level, std::string_view header,
                           std::string_view seq, std::string_view sep,
                           std::string_view qual) {
  const char* err =
      check_fastq_record(level, /*byte_loop=*/false, header, seq, sep, qual);
  if (err != nullptr) throw std::invalid_argument(err);
}

std::vector<FastqRecord> parse_fastq_reference(std::string_view text) {
  std::vector<FastqRecord> records;
  run_fastq_reference(text, &records, nullptr);
  return records;
}

FastqScanStats scan_fastq_reference(std::string_view text) {
  FastqScanStats stats;
  run_fastq_reference(text, nullptr, &stats);
  return stats;
}

std::vector<FastqRecord> parse_fastq_at(simd::Level level,
                                        std::string_view text,
                                        std::size_t parallel_threshold) {
  std::vector<FastqRecord> records;
  run_fastq_fast(level, text, parallel_threshold, &records, nullptr);
  return records;
}

FastqScanStats scan_fastq_at(simd::Level level, std::string_view text,
                             std::size_t parallel_threshold) {
  FastqScanStats stats;
  run_fastq_fast(level, text, parallel_threshold, nullptr, &stats);
  return stats;
}

}  // namespace detail

std::vector<FastqRecord> parse_fastq(std::string_view text) {
  return detail::parse_fastq_at(simd::active_level(), text);
}

FastqScanStats scan_fastq(std::string_view text) {
  return detail::scan_fastq_at(simd::active_level(), text);
}

std::string write_fastq(const std::vector<FastqRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += '@';
    out += r.name;
    out += '\n';
    out += r.sequence;
    out += "\n+\n";
    out += r.quality;
    out += '\n';
  }
  return out;
}

std::vector<FastqPair> zip_pairs(std::vector<FastqRecord> first,
                                 std::vector<FastqRecord> second) {
  if (first.size() != second.size()) {
    throw std::invalid_argument("paired FASTQ files differ in read count");
  }
  std::vector<FastqPair> pairs;
  pairs.reserve(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    pairs.push_back({std::move(first[i]), std::move(second[i])});
  }
  return pairs;
}

}  // namespace gpf
