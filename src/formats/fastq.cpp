#include "formats/fastq.hpp"

#include <stdexcept>

namespace gpf {
namespace {

/// Returns the next line of `text` starting at `i`, advancing `i` past the
/// newline.  CR is stripped.
std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = text.find('\n', i);
  if (eol == std::string_view::npos) eol = text.size();
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

}  // namespace

std::vector<FastqRecord> parse_fastq(std::string_view text) {
  std::vector<FastqRecord> records;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view header = next_line(text, i);
    if (header.empty()) continue;  // tolerate blank trailing lines
    if (header.front() != '@') {
      throw std::invalid_argument("FASTQ: expected '@' header");
    }
    if (i >= text.size()) throw std::invalid_argument("FASTQ: truncated");
    const std::string_view seq = next_line(text, i);
    const std::string_view sep = next_line(text, i);
    const std::string_view qual = next_line(text, i);
    if (sep.empty() || sep.front() != '+') {
      throw std::invalid_argument("FASTQ: expected '+' separator");
    }
    if (seq.size() != qual.size()) {
      throw std::invalid_argument("FASTQ: sequence/quality length mismatch");
    }
    records.push_back({std::string(header.substr(1)), std::string(seq),
                       std::string(qual)});
  }
  return records;
}

std::string write_fastq(const std::vector<FastqRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += '@';
    out += r.name;
    out += '\n';
    out += r.sequence;
    out += "\n+\n";
    out += r.quality;
    out += '\n';
  }
  return out;
}

std::vector<FastqPair> zip_pairs(std::vector<FastqRecord> first,
                                 std::vector<FastqRecord> second) {
  if (first.size() != second.size()) {
    throw std::invalid_argument("paired FASTQ files differ in read count");
  }
  std::vector<FastqPair> pairs;
  pairs.reserve(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    pairs.push_back({std::move(first[i]), std::move(second[i])});
  }
  return pairs;
}

}  // namespace gpf
