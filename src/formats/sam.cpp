#include "formats/sam.hpp"

#include <charconv>
#include <stdexcept>

namespace gpf {
namespace {

/// Splits `line` into tab-separated fields.
std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::int64_t to_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("SAM: bad integer field: " + std::string(s));
  }
  return v;
}

std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = text.find('\n', i);
  if (eol == std::string_view::npos) eol = text.size();
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

}  // namespace

std::int64_t SamRecord::unclipped_start() const {
  if (is_unmapped()) return pos;
  if (!is_reverse()) {
    std::int64_t start = pos;
    // Leading soft/hard clips shift the unclipped start left.
    for (const auto& el : cigar) {
      if (el.op == CigarOp::kSoftClip || el.op == CigarOp::kHardClip) {
        start -= el.length;
      } else {
        break;
      }
    }
    return start;
  }
  // Reverse strand: the biological 5' end is the alignment end plus any
  // trailing clips.
  std::int64_t end = end_pos();
  for (auto it = cigar.rbegin(); it != cigar.rend(); ++it) {
    if (it->op == CigarOp::kSoftClip || it->op == CigarOp::kHardClip) {
      end += it->length;
    } else {
      break;
    }
  }
  return end - 1;
}

std::int32_t SamHeader::find_contig(std::string_view name) const {
  for (std::size_t i = 0; i < contigs.size(); ++i) {
    if (contigs[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

SamFile parse_sam(std::string_view text) {
  SamFile file;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view line = next_line(text, i);
    if (line.empty()) continue;
    if (line.front() == '@') {
      const auto fields = split_tabs(line);
      if (fields[0] == "@SQ") {
        SamHeader::ContigInfo info;
        for (const auto f : fields) {
          if (f.starts_with("SN:")) info.name = std::string(f.substr(3));
          if (f.starts_with("LN:")) info.length = to_i64(f.substr(3));
        }
        file.header.contigs.push_back(std::move(info));
      } else if (fields[0] == "@HD") {
        for (const auto f : fields) {
          if (f == "SO:coordinate") file.header.coordinate_sorted = true;
        }
      }
      continue;
    }
    const auto fields = split_tabs(line);
    if (fields.size() < 11) {
      throw std::invalid_argument("SAM: record with <11 fields");
    }
    SamRecord rec;
    rec.qname = std::string(fields[0]);
    rec.flag = static_cast<std::uint16_t>(to_i64(fields[1]));
    rec.contig_id =
        fields[2] == "*" ? -1 : file.header.find_contig(fields[2]);
    if (fields[2] != "*" && rec.contig_id < 0) {
      throw std::invalid_argument("SAM: unknown contig " +
                                  std::string(fields[2]));
    }
    rec.pos = to_i64(fields[3]) - 1;  // SAM text is 1-based
    rec.mapq = static_cast<std::uint8_t>(to_i64(fields[4]));
    rec.cigar = parse_cigar(fields[5]);
    if (fields[6] == "=") {
      rec.mate_contig_id = rec.contig_id;
    } else if (fields[6] == "*") {
      rec.mate_contig_id = -1;
    } else {
      rec.mate_contig_id = file.header.find_contig(fields[6]);
    }
    rec.mate_pos = to_i64(fields[7]) - 1;
    rec.tlen = to_i64(fields[8]);
    rec.sequence = fields[9] == "*" ? "" : std::string(fields[9]);
    rec.quality = fields[10] == "*" ? "" : std::string(fields[10]);
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::string write_sam(const SamHeader& header,
                      const std::vector<SamRecord>& records) {
  std::string out;
  out += "@HD\tVN:1.6\tSO:";
  out += header.coordinate_sorted ? "coordinate" : "unsorted";
  out += '\n';
  for (const auto& c : header.contigs) {
    out += "@SQ\tSN:" + c.name + "\tLN:" + std::to_string(c.length) + '\n';
  }
  for (const auto& r : records) {
    out += r.qname;
    out += '\t';
    out += std::to_string(r.flag);
    out += '\t';
    out += r.contig_id < 0 ? "*" : header.contigs.at(r.contig_id).name;
    out += '\t';
    out += std::to_string(r.pos + 1);
    out += '\t';
    out += std::to_string(r.mapq);
    out += '\t';
    out += cigar_to_string(r.cigar);
    out += '\t';
    if (r.mate_contig_id < 0) {
      out += '*';
    } else if (r.mate_contig_id == r.contig_id) {
      out += '=';
    } else {
      out += header.contigs.at(r.mate_contig_id).name;
    }
    out += '\t';
    out += std::to_string(r.mate_pos + 1);
    out += '\t';
    out += std::to_string(r.tlen);
    out += '\t';
    out += r.sequence.empty() ? "*" : r.sequence;
    out += '\t';
    out += r.quality.empty() ? "*" : r.quality;
    out += '\n';
  }
  return out;
}

bool coordinate_less(const SamRecord& a, const SamRecord& b) {
  const bool a_unmapped = a.is_unmapped() || a.contig_id < 0;
  const bool b_unmapped = b.is_unmapped() || b.contig_id < 0;
  if (a_unmapped != b_unmapped) return b_unmapped;  // unmapped sort last
  if (a_unmapped) return a.qname < b.qname;
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.is_reverse() != b.is_reverse()) return b.is_reverse();
  return a.qname < b.qname;
}

}  // namespace gpf
