#include "formats/sam.hpp"

#include <charconv>
#include <mutex>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace gpf {
namespace {

std::int64_t to_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("SAM: bad integer field: " + std::string(s));
  }
  return v;
}

// Byte-at-a-time on purpose: the reference parser is the benchmarking and
// differential-testing baseline for the block kernels.
std::string_view next_line(std::string_view text, std::size_t& i) {
  std::size_t eol = i;
  while (eol < text.size() && text[eol] != '\n') ++eol;
  std::string_view line = text.substr(i, eol - i);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  i = eol + 1;
  return line;
}

}  // namespace

std::int64_t SamRecord::unclipped_start() const {
  if (is_unmapped()) return pos;
  if (!is_reverse()) {
    std::int64_t start = pos;
    // Leading soft/hard clips shift the unclipped start left.
    for (const auto& el : cigar) {
      if (el.op == CigarOp::kSoftClip || el.op == CigarOp::kHardClip) {
        start -= el.length;
      } else {
        break;
      }
    }
    return start;
  }
  // Reverse strand: the biological 5' end is the alignment end plus any
  // trailing clips.
  std::int64_t end = end_pos();
  for (auto it = cigar.rbegin(); it != cigar.rend(); ++it) {
    if (it->op == CigarOp::kSoftClip || it->op == CigarOp::kHardClip) {
      end += it->length;
    } else {
      break;
    }
  }
  return end - 1;
}

std::int32_t SamHeader::find_contig(std::string_view name) const {
  for (std::size_t i = 0; i < contigs.size(); ++i) {
    if (contigs[i].name == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

namespace detail {

void parse_sam_header_line(const std::vector<std::string_view>& fields,
                           SamHeader& header) {
  if (fields[0] == "@SQ") {
    SamHeader::ContigInfo info;
    for (const auto f : fields) {
      if (f.starts_with("SN:")) info.name = std::string(f.substr(3));
      if (f.starts_with("LN:")) info.length = to_i64(f.substr(3));
    }
    header.contigs.push_back(std::move(info));
  } else if (fields[0] == "@HD") {
    for (const auto f : fields) {
      if (f == "SO:coordinate") header.coordinate_sorted = true;
    }
  }
}

SamRecord parse_sam_record(simd::Level level,
                           const std::vector<std::string_view>& fields,
                           const SamHeader& header) {
  if (fields.size() < 11) {
    throw std::invalid_argument("SAM: record with <11 fields");
  }
  SamRecord rec;
  if (!fmt::bytes_in_range(level, fields[0], 0x21, 0x7E)) {
    throw std::invalid_argument("SAM: non-ASCII byte in QNAME");
  }
  rec.qname = std::string(fields[0]);
  rec.flag = static_cast<std::uint16_t>(to_i64(fields[1]));
  rec.contig_id = fields[2] == "*" ? -1 : header.find_contig(fields[2]);
  if (fields[2] != "*" && rec.contig_id < 0) {
    throw std::invalid_argument("SAM: unknown contig " +
                                std::string(fields[2]));
  }
  rec.pos = to_i64(fields[3]) - 1;  // SAM text is 1-based
  rec.mapq = static_cast<std::uint8_t>(to_i64(fields[4]));
  rec.cigar = parse_cigar(fields[5]);
  if (fields[6] == "=") {
    rec.mate_contig_id = rec.contig_id;
  } else if (fields[6] == "*") {
    rec.mate_contig_id = -1;
  } else {
    rec.mate_contig_id = header.find_contig(fields[6]);
  }
  rec.mate_pos = to_i64(fields[7]) - 1;
  rec.tlen = to_i64(fields[8]);
  if (!fmt::bytes_in_range(level, fields[9], 0x21, 0x7E)) {
    throw std::invalid_argument("SAM: non-ASCII byte in SEQ");
  }
  if (!fmt::bytes_in_range(level, fields[10], 0x21, 0x7E)) {
    throw std::invalid_argument("SAM: non-ASCII byte in QUAL");
  }
  rec.sequence = fields[9] == "*" ? "" : std::string(fields[9]);
  rec.quality = fields[10] == "*" ? "" : std::string(fields[10]);
  return rec;
}

SamFile parse_sam_reference(std::string_view text) {
  SamFile file;
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    const std::string_view line = next_line(text, i);
    if (line.empty()) continue;
    fmt::detail::split_fields_reference(line, '\t', fields);
    if (line.front() == '@') {
      parse_sam_header_line(fields, file.header);
      continue;
    }
    file.records.push_back(
        parse_sam_record(simd::Level::kScalar, fields, file.header));
  }
  return file;
}

SamFile parse_sam_at(simd::Level level, std::string_view text,
                     std::size_t parallel_threshold) {
  trace::ScopedSpan span("parse_sam", trace::SpanKind::kParse);
  const fmt::LineIndex lines(level, text, parallel_threshold);
  const std::size_t n = lines.line_count();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Classify lines.  Header ("@") lines must all precede record lines for
  // the batch plan to be valid; interleaved headers change which contig
  // dictionary later records resolve against, so that rare shape falls
  // back to the sequential reference parser.
  std::vector<std::uint32_t> record_lines;
  record_lines.reserve(n);
  std::size_t first_record = kNone;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty()) continue;
    if (line.front() == '@') {
      if (first_record != kNone) return parse_sam_reference(text);
    } else {
      if (first_record == kNone) first_record = i;
      record_lines.push_back(static_cast<std::uint32_t>(i));
    }
  }

  SamFile file;
  std::vector<std::string_view> header_fields;
  const std::size_t header_end = first_record == kNone ? n : first_record;
  for (std::size_t i = 0; i < header_end; ++i) {
    const std::string_view line = lines.line(i);
    if (line.empty()) continue;
    fmt::split_fields(level, line, '\t', header_fields);
    parse_sam_header_line(header_fields, file.header);
  }

  const std::size_t count = record_lines.size();
  file.records.assign(count, {});
  std::mutex mu;
  std::size_t first_bad = kNone;
  std::string first_error;
  const auto do_record = [&](std::size_t k) {
    static thread_local std::vector<std::string_view> fields;
    try {
      fmt::split_fields(level, lines.line(record_lines[k]), '\t', fields);
      file.records[k] = parse_sam_record(level, fields, file.header);
    } catch (const std::invalid_argument& e) {
      std::lock_guard lock(mu);
      if (k < first_bad) {
        first_bad = k;
        first_error = e.what();
      }
    }
  };
  if (text.size() >= parallel_threshold) {
    ThreadPool::global().parallel_for(count, do_record);
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      do_record(k);
      if (first_bad != kNone) break;
    }
  }
  if (first_bad != kNone) throw std::invalid_argument(first_error);
  return file;
}

}  // namespace detail

SamFile parse_sam(std::string_view text) {
  return detail::parse_sam_at(simd::active_level(), text);
}

std::string write_sam(const SamHeader& header,
                      const std::vector<SamRecord>& records) {
  std::string out;
  out += "@HD\tVN:1.6\tSO:";
  out += header.coordinate_sorted ? "coordinate" : "unsorted";
  out += '\n';
  for (const auto& c : header.contigs) {
    out += "@SQ\tSN:" + c.name + "\tLN:" + std::to_string(c.length) + '\n';
  }
  for (const auto& r : records) {
    out += r.qname;
    out += '\t';
    out += std::to_string(r.flag);
    out += '\t';
    out += r.contig_id < 0 ? "*" : header.contigs.at(r.contig_id).name;
    out += '\t';
    out += std::to_string(r.pos + 1);
    out += '\t';
    out += std::to_string(r.mapq);
    out += '\t';
    out += cigar_to_string(r.cigar);
    out += '\t';
    if (r.mate_contig_id < 0) {
      out += '*';
    } else if (r.mate_contig_id == r.contig_id) {
      out += '=';
    } else {
      out += header.contigs.at(r.mate_contig_id).name;
    }
    out += '\t';
    out += std::to_string(r.mate_pos + 1);
    out += '\t';
    out += std::to_string(r.tlen);
    out += '\t';
    out += r.sequence.empty() ? "*" : r.sequence;
    out += '\t';
    out += r.quality.empty() ? "*" : r.quality;
    out += '\n';
  }
  return out;
}

bool coordinate_less(const SamRecord& a, const SamRecord& b) {
  const bool a_unmapped = a.is_unmapped() || a.contig_id < 0;
  const bool b_unmapped = b.is_unmapped() || b.contig_id < 0;
  if (a_unmapped != b_unmapped) return b_unmapped;  // unmapped sort last
  if (a_unmapped) return a.qname < b.qname;
  if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.is_reverse() != b.is_reverse()) return b.is_reverse();
  return a.qname < b.qname;
}

}  // namespace gpf
