// VCF variant records — the Caller stage's output and the "known sites"
// input to BQSR (the paper's dbsnp resource).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "formats/sam.hpp"
#include "formats/scan.hpp"

namespace gpf {

/// Diploid genotype call.
enum class Genotype : std::uint8_t {
  kHomRef = 0,  // 0/0
  kHet = 1,     // 0/1
  kHomAlt = 2,  // 1/1
};

/// One variant site.  Positions are 0-based internally.
struct VcfRecord {
  std::int32_t contig_id = -1;
  std::int64_t pos = -1;
  std::string id = ".";
  std::string ref;
  std::string alt;
  double qual = 0.0;
  Genotype genotype = Genotype::kHet;

  bool is_snp() const { return ref.size() == 1 && alt.size() == 1; }
  bool is_insertion() const { return alt.size() > ref.size(); }
  bool is_deletion() const { return ref.size() > alt.size(); }

  bool operator==(const VcfRecord&) const = default;
};

/// Header metadata for VCF output (contig dictionary reused from SAM).
struct VcfHeader {
  std::vector<SamHeader::ContigInfo> contigs;
  std::string sample_name = "SAMPLE";

  bool operator==(const VcfHeader&) const = default;
};

struct VcfFile {
  VcfHeader header;
  std::vector<VcfRecord> records;

  bool operator==(const VcfFile&) const = default;
};

/// Parses VCF text.  Only single-allele sites are supported (matching the
/// simulator's output); multi-allelic rows raise std::invalid_argument, as
/// do a non-numeric POS, a non-numeric QUAL (other than "."), a record
/// with fewer than 8 fields, and non-ASCII bytes in REF/ALT.
VcfFile parse_vcf(std::string_view text);

namespace detail {

/// Byte-at-a-time parser: the reference implementation the block-parallel
/// fast path is differential-tested and benchmarked against.
VcfFile parse_vcf_reference(std::string_view text);

/// Block-parallel parser with an explicit dispatch level.  Record lines
/// parse concurrently (contig ids resolve in a sequential second pass so
/// synthesized ids keep appearance order); inputs with "##"/"#CHROM" lines
/// after the first record fall back to the reference parser.
VcfFile parse_vcf_at(simd::Level level, std::string_view text,
                     std::size_t parallel_threshold = fmt::kParallelParseBytes);

/// Applies one "##..." metadata line to `header` (shared by both paths).
void parse_vcf_meta_line(std::string_view line, VcfHeader& header);

/// Parses one data line's tab-split fields into a record with contig_id
/// left unresolved (-1); shared by both paths so messages match.
VcfRecord parse_vcf_record(simd::Level level,
                           const std::vector<std::string_view>& fields);

}  // namespace detail

/// Renders header + records to VCF 4.2 text.
std::string write_vcf(const VcfHeader& header,
                      const std::vector<VcfRecord>& records);

/// Sort order used everywhere: (contig, pos, ref, alt).
bool vcf_less(const VcfRecord& a, const VcfRecord& b);

}  // namespace gpf
