// VCF variant records — the Caller stage's output and the "known sites"
// input to BQSR (the paper's dbsnp resource).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "formats/sam.hpp"

namespace gpf {

/// Diploid genotype call.
enum class Genotype : std::uint8_t {
  kHomRef = 0,  // 0/0
  kHet = 1,     // 0/1
  kHomAlt = 2,  // 1/1
};

/// One variant site.  Positions are 0-based internally.
struct VcfRecord {
  std::int32_t contig_id = -1;
  std::int64_t pos = -1;
  std::string id = ".";
  std::string ref;
  std::string alt;
  double qual = 0.0;
  Genotype genotype = Genotype::kHet;

  bool is_snp() const { return ref.size() == 1 && alt.size() == 1; }
  bool is_insertion() const { return alt.size() > ref.size(); }
  bool is_deletion() const { return ref.size() > alt.size(); }

  bool operator==(const VcfRecord&) const = default;
};

/// Header metadata for VCF output (contig dictionary reused from SAM).
struct VcfHeader {
  std::vector<SamHeader::ContigInfo> contigs;
  std::string sample_name = "SAMPLE";
};

struct VcfFile {
  VcfHeader header;
  std::vector<VcfRecord> records;
};

/// Parses VCF text.  Only single-allele sites are supported (matching the
/// simulator's output); multi-allelic rows raise std::invalid_argument.
VcfFile parse_vcf(std::string_view text);

/// Renders header + records to VCF 4.2 text.
std::string write_vcf(const VcfHeader& header,
                      const std::vector<VcfRecord>& records);

/// Sort order used everywhere: (contig, pos, ref, alt).
bool vcf_less(const VcfRecord& a, const VcfRecord& b);

}  // namespace gpf
