// Per-stage task cost estimation from observed executions.
//
// Every finished stage feeds its per-task (seconds, records) pairs back
// here; the model keeps a decayed per-record cost per stage name, so a
// stage that runs again (iterative jobs, repeated pipelines, cohort
// loops) is predicted from its own history.  A stage never seen before
// falls back to a uniform default per-record cost — ratios between
// partitions then reduce to record-count ratios, which is exactly the
// signal skew-aware repartitioning needs on a cold start.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

namespace gpf::sched {

class CostModel {
 public:
  struct Params {
    /// Weight of the newest observation in the decayed average.
    double decay = 0.4;
    /// Per-record cost assumed for stages with no history.
    double default_per_record_seconds = 1e-6;
    /// Fixed per-task scheduling overhead added to every prediction (what
    /// keeps the planner from shattering partitions into confetti).
    double task_overhead_seconds = 20e-6;
  };

  // (Defaulting `params` in-class trips GCC's complete-class rule for
  // nested NSDMIs, hence the separate default constructor below.)
  CostModel() = default;
  explicit CostModel(Params params) : params_(params) {}

  /// Folds one finished stage execution into the model.  `task_seconds`
  /// and `task_records` are parallel per-task arrays; tasks with zero
  /// records still count toward the stage total.
  void observe_stage(const std::string& stage,
                     std::span<const double> task_seconds,
                     std::span<const std::size_t> task_records);

  /// Decayed per-record cost for `stage` (the default when unobserved).
  double per_record_seconds(const std::string& stage) const;

  /// Predicted compute seconds of one task over `records` records,
  /// excluding the per-task overhead (the planner adds it per task).
  double predict_seconds(const std::string& stage, std::size_t records) const;

  /// Predicted LPT makespan of one task per entry of `task_records` on
  /// `slots` slots, including per-task overhead.
  double predict_makespan(const std::string& stage,
                          std::span<const std::size_t> task_records,
                          std::size_t slots) const;

  const Params& params() const { return params_; }
  std::size_t observed_stage_count() const;

 private:
  struct StageCost {
    double per_record_seconds = 0.0;
    std::size_t executions = 0;
  };

  Params params_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, StageCost> stages_;
};

}  // namespace gpf::sched
