// Skew-aware adaptive repartitioning: the deterministic plan rewrite that
// turns a stage's per-partition task layout into a balanced one.
//
// Given predicted per-partition costs, plan_stage() splits partitions
// predicted to exceed `split_ratio`× the mean task time into contiguous
// record ranges, and bundles micro-partitions whose predicted cost is
// below a floor into shared tasks.  The output is a list of tasks, each
// covering one or more ordered record spans; spans tile every partition
// exactly, in (partition, begin) order, so executing the plan and
// concatenating each partition's span outputs in order reproduces the
// static per-partition output bit for bit.
//
// The plan is a pure function of (policy, costs, records, slots): no
// clocks, no randomness — the same inputs give the same layout on every
// backend and every run.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpf::sched {

/// A contiguous record range [begin, end) within one input partition.
struct TaskSpan {
  std::size_t partition = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t records() const { return end - begin; }
};

/// One schedulable task: ordered spans plus the planner's cost estimate.
struct StageTask {
  std::vector<TaskSpan> spans;
  double predicted_seconds = 0.0;

  std::size_t records() const {
    std::size_t n = 0;
    for (const auto& s : spans) n += s.records();
    return n;
  }
};

/// The rewritten task layout for one stage.  When `adopted` is false the
/// caller must run the static per-partition path (the rewrite either
/// changed nothing or did not beat the static makespan by `min_gain`).
struct StagePlan {
  std::vector<StageTask> tasks;
  bool adopted = false;
  /// Partitions split into more than one span.
  std::size_t partitions_split = 0;
  /// Tasks bundling more than one span.
  std::size_t tasks_merged = 0;
  /// LPT-predicted makespans the adoption decision compared.
  double static_makespan = 0.0;
  double adaptive_makespan = 0.0;
};

/// Knobs for the rewrite.
struct RepartitionPolicy {
  /// Split partitions predicted to exceed this multiple of the mean
  /// per-partition cost (the paper's ~2× straggler criterion).
  double split_ratio = 2.0;
  /// Hard cap on the pieces one partition may split into.
  std::size_t max_splits = 16;
  /// Spans below merge_fraction × the target task cost are micro-tasks
  /// eligible for bundling.
  double merge_fraction = 0.25;
  /// The target task cost is at least this multiple of the per-task
  /// overhead — bundling stops paying off below it.
  double merge_overhead_factor = 4.0;
  /// Never merge below this multiple of the slot count (keeps enough
  /// tasks in flight for work stealing and speculation to matter).
  std::size_t min_tasks_per_slot = 2;
  /// Adopt the rewrite only when its predicted makespan beats the static
  /// one by at least this fraction.
  double min_gain = 0.05;
};

/// Rewrites one stage's layout.  `costs` and `records` are parallel
/// per-partition arrays (predicted seconds, record counts); `slots` is
/// the executor's parallelism; `splittable` is false for stages whose
/// task function consumes whole partitions (they may only be merged,
/// never split).  `task_overhead_seconds` is the fixed per-task cost used
/// in both makespans.
StagePlan plan_stage(const RepartitionPolicy& policy,
                     std::span<const double> costs,
                     std::span<const std::size_t> records, std::size_t slots,
                     bool splittable, double task_overhead_seconds);

}  // namespace gpf::sched
