#include "sched/cost_model.hpp"

#include <vector>

#include "sched/lpt.hpp"

namespace gpf::sched {

void CostModel::observe_stage(const std::string& stage,
                              std::span<const double> task_seconds,
                              std::span<const std::size_t> task_records) {
  double seconds = 0.0;
  std::size_t records = 0;
  const std::size_t n = std::min(task_seconds.size(), task_records.size());
  for (std::size_t i = 0; i < n; ++i) {
    seconds += task_seconds[i];
    records += task_records[i];
  }
  if (records == 0 || seconds <= 0.0) return;
  const double observed = seconds / static_cast<double>(records);
  std::lock_guard lock(mu_);
  StageCost& cost = stages_[stage];
  if (cost.executions == 0) {
    cost.per_record_seconds = observed;
  } else {
    cost.per_record_seconds = (1.0 - params_.decay) * cost.per_record_seconds +
                              params_.decay * observed;
  }
  ++cost.executions;
}

double CostModel::per_record_seconds(const std::string& stage) const {
  std::lock_guard lock(mu_);
  const auto it = stages_.find(stage);
  if (it == stages_.end() || it->second.executions == 0) {
    return params_.default_per_record_seconds;
  }
  return it->second.per_record_seconds;
}

double CostModel::predict_seconds(const std::string& stage,
                                  std::size_t records) const {
  return per_record_seconds(stage) * static_cast<double>(records);
}

double CostModel::predict_makespan(const std::string& stage,
                                   std::span<const std::size_t> task_records,
                                   std::size_t slots) const {
  const double per_record = per_record_seconds(stage);
  std::vector<double> costs;
  costs.reserve(task_records.size());
  for (const std::size_t records : task_records) {
    costs.push_back(per_record * static_cast<double>(records) +
                    params_.task_overhead_seconds);
  }
  return lpt_makespan(costs, slots);
}

std::size_t CostModel::observed_stage_count() const {
  std::lock_guard lock(mu_);
  return stages_.size();
}

}  // namespace gpf::sched
