// The trace-driven adaptive scheduler: ties the cost model and the
// repartition planner together behind the one handle the engine holds.
//
// Attach one to an Engine (Engine::set_scheduler) and every element-wise
// stage consults it before submitting tasks: the scheduler predicts
// per-partition costs from observed history (or record counts on a cold
// start), rewrites skewed layouts via plan_stage(), and ingests the
// finished stage's per-task timings afterwards.  core::ExecutionBackend
// installs one for the duration of a plan when
// PipelineConfig::adaptive_scheduling is set, so all three backends
// inherit the same rewrite.  Outputs are bit-identical with and without
// a scheduler — only task granularity changes.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <string>

#include "sched/cost_model.hpp"
#include "sched/repartition.hpp"

namespace gpf::sched {

class AdaptiveScheduler {
 public:
  explicit AdaptiveScheduler(RepartitionPolicy policy = RepartitionPolicy(),
                             CostModel::Params model_params =
                                 CostModel::Params())
      : policy_(policy), model_(model_params) {}

  AdaptiveScheduler(const AdaptiveScheduler&) = delete;
  AdaptiveScheduler& operator=(const AdaptiveScheduler&) = delete;

  /// Plans the task layout for an upcoming stage over partitions of the
  /// given record counts.  `splittable` must only be true when the stage's
  /// task function is element-wise (range outputs concatenate to the
  /// whole-partition output); partition-consuming stages may merge only.
  StagePlan plan_stage(const std::string& stage,
                       std::span<const std::size_t> partition_records,
                       std::size_t slots, bool splittable);

  /// Feeds one finished stage execution back into the cost model.
  void observe_stage(const std::string& stage,
                     std::span<const double> task_seconds,
                     std::span<const std::size_t> task_records);

  /// Cumulative planning outcomes (for reports and tests).
  struct Stats {
    std::size_t stages_planned = 0;
    std::size_t stages_rewritten = 0;
    std::size_t partitions_split = 0;
    std::size_t tasks_merged = 0;
  };
  Stats stats() const;

  const RepartitionPolicy& policy() const { return policy_; }
  CostModel& model() { return model_; }

 private:
  RepartitionPolicy policy_;
  CostModel model_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace gpf::sched
