#include "sched/scheduler.hpp"

#include <vector>

namespace gpf::sched {

StagePlan AdaptiveScheduler::plan_stage(
    const std::string& stage, std::span<const std::size_t> partition_records,
    std::size_t slots, bool splittable) {
  std::vector<double> costs;
  costs.reserve(partition_records.size());
  for (const std::size_t records : partition_records) {
    costs.push_back(model_.predict_seconds(stage, records));
  }
  StagePlan plan =
      gpf::sched::plan_stage(policy_, costs, partition_records, slots,
                             splittable, model_.params().task_overhead_seconds);
  std::lock_guard lock(mu_);
  ++stats_.stages_planned;
  if (plan.adopted) {
    ++stats_.stages_rewritten;
    stats_.partitions_split += plan.partitions_split;
    stats_.tasks_merged += plan.tasks_merged;
  }
  return plan;
}

void AdaptiveScheduler::observe_stage(
    const std::string& stage, std::span<const double> task_seconds,
    std::span<const std::size_t> task_records) {
  model_.observe_stage(stage, task_seconds, task_records);
}

AdaptiveScheduler::Stats AdaptiveScheduler::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace gpf::sched
