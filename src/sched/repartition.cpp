#include "sched/repartition.hpp"

#include <algorithm>
#include <cmath>

#include "sched/lpt.hpp"

namespace gpf::sched {

namespace {

/// A span plus its predicted cost, kept in (partition, begin) order.
struct CostedSpan {
  TaskSpan span;
  double cost = 0.0;
};

}  // namespace

StagePlan plan_stage(const RepartitionPolicy& policy,
                     std::span<const double> costs,
                     std::span<const std::size_t> records, std::size_t slots,
                     bool splittable, double task_overhead_seconds) {
  StagePlan plan;
  const std::size_t n = std::min(costs.size(), records.size());
  if (n == 0 || slots <= 1) return plan;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += costs[i];
  if (total <= 0.0) return plan;
  const double mean = total / static_cast<double>(n);

  // Pass 1 — split: a partition predicted past split_ratio × mean becomes
  // ~mean-cost contiguous ranges (remainder records spread to the front so
  // piece sizes differ by at most one).
  std::vector<CostedSpan> spans;
  spans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pieces = 1;
    if (splittable && records[i] >= 2 && costs[i] > policy.split_ratio * mean) {
      pieces = static_cast<std::size_t>(std::ceil(costs[i] / mean));
      pieces = std::min({pieces, policy.max_splits, records[i]});
    }
    if (pieces > 1) ++plan.partitions_split;
    const std::size_t base = records[i] / pieces;
    const std::size_t extra = records[i] % pieces;
    std::size_t at = 0;
    for (std::size_t k = 0; k < pieces; ++k) {
      const std::size_t len = base + (k < extra ? 1 : 0);
      CostedSpan s;
      s.span = {i, at, at + len};
      s.cost = records[i] == 0
                   ? costs[i]
                   : costs[i] * static_cast<double>(len) /
                         static_cast<double>(records[i]);
      spans.push_back(s);
      at += len;
    }
  }

  // Pass 2 — merge: bundle runs of micro-spans up to the target task cost,
  // never dropping below min_tasks runnable tasks.  The target granularity
  // is the fair share of 2× the slot count, floored at the point where
  // per-task overhead stops paying off.
  const std::size_t min_tasks =
      std::min(spans.size(), policy.min_tasks_per_slot * slots);
  const double target = std::max(
      total / static_cast<double>(policy.min_tasks_per_slot * slots),
      policy.merge_overhead_factor * task_overhead_seconds);
  const double tiny = policy.merge_fraction * target;
  bool open = false;  // last task still accepting micro-spans
  for (std::size_t s = 0; s < spans.size(); ++s) {
    const std::size_t remaining = spans.size() - s - 1;
    StageTask* last = plan.tasks.empty() ? nullptr : &plan.tasks.back();
    if (last != nullptr && open && spans[s].cost < tiny &&
        last->predicted_seconds + spans[s].cost <= target &&
        plan.tasks.size() + remaining >= min_tasks) {
      last->spans.push_back(spans[s].span);
      last->predicted_seconds += spans[s].cost;
      continue;
    }
    StageTask task;
    task.spans.push_back(spans[s].span);
    task.predicted_seconds = spans[s].cost;
    plan.tasks.push_back(std::move(task));
    open = spans[s].cost < tiny;
  }
  for (const auto& t : plan.tasks) {
    if (t.spans.size() > 1) ++plan.tasks_merged;
  }

  // Adoption: compare LPT-predicted makespans, overhead included.  The
  // per-record cost scalar cancels out of every ratio above, so the layout
  // is deterministic; the makespan comparison additionally weighs overhead
  // so a rewrite must earn its extra (or save its former) task count.
  std::vector<double> static_costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    static_costs[i] = costs[i] + task_overhead_seconds;
  }
  std::vector<double> adaptive_costs;
  adaptive_costs.reserve(plan.tasks.size());
  for (const auto& t : plan.tasks) {
    adaptive_costs.push_back(t.predicted_seconds + task_overhead_seconds);
  }
  plan.static_makespan = lpt_makespan(static_costs, slots);
  plan.adaptive_makespan = lpt_makespan(adaptive_costs, slots);
  plan.adopted =
      (plan.partitions_split > 0 || plan.tasks_merged > 0) &&
      plan.adaptive_makespan < plan.static_makespan * (1.0 - policy.min_gain);
  return plan;
}

}  // namespace gpf::sched
