// Longest-processing-time-first list scheduling onto identical slots.
//
// Hoisted from simcluster's schedule_stage so the simulator and the real
// engine's cost model share one implementation: the simulator replays
// recorded stages through it, and sched::CostModel uses its makespan to
// decide whether an adaptive task layout beats the static one.  LPT is a
// 4/3-approximation of optimal makespan and, with the slot-id tie break,
// fully deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <queue>
#include <span>
#include <utility>
#include <vector>

namespace gpf::sched {

/// Schedules `costs` (seconds per task) LPT onto `slots` identical slots
/// starting at time `start`; returns the stage end time and records each
/// placement via `on_task(idx, start_time, duration, slot)`.
template <typename OnTask>
double lpt_schedule(std::span<const double> costs, std::size_t slots,
                    double start, OnTask&& on_task) {
  if (costs.empty() || slots == 0) return start;
  // LPT: process longest tasks first for a tight makespan bound.
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });
  // Min-heap of (free time, slot id); slot ids keep ties deterministic
  // and give timeline exports a stable per-core track.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<>>
      free_at;
  const std::size_t used = std::min(slots, costs.size());
  for (std::size_t i = 0; i < used; ++i) free_at.emplace(start, i);
  double end = start;
  for (const std::size_t idx : order) {
    const auto [t0, slot] = free_at.top();
    free_at.pop();
    const double dur = costs[idx];
    on_task(idx, t0, dur, slot);
    free_at.emplace(t0 + dur, slot);
    end = std::max(end, t0 + dur);
  }
  return end;
}

/// Predicted makespan of `costs` on `slots` slots.
inline double lpt_makespan(std::span<const double> costs, std::size_t slots) {
  return lpt_schedule(costs, slots, 0.0,
                      [](std::size_t, double, double, std::size_t) {});
}

}  // namespace gpf::sched
