// Shared speculative-execution policy (paper Sec 4.4 / Spark's
// spark.speculation), consumed by EngineConfig and the stage executor.
//
// Two rules coexist:
//  * Static rule: a task whose first attempt carries an injected straggler
//    delay at or above `delay_threshold_ms` gets a speculative copy at
//    submission time.  Keyed on the FaultInjector's planned delays (pure
//    hashes of the chaos seed), so the speculative_launches counter is
//    deterministic under a fixed GPF_CHAOS_SEED.
//  * Quantile rule: launch a copy when a running task's wall-clock age
//    exceeds `quantile_factor`× the running median of finished tasks in
//    its stage.  Observational by nature, so it only arms when no
//    injector is attached — chaos runs always use the static rule.
#pragma once

#include <cstddef>

namespace gpf::sched {

/// Speculation knobs shared by the engine configuration and the stage
/// executor (one home for what used to be two copies of the same pair).
struct SpeculationPolicy {
  /// Master switch for both rules.
  bool enabled = true;
  /// Static rule: injected first-attempt delays at or above this launch a
  /// speculative copy immediately.
  double delay_threshold_ms = 20.0;
  /// Quantile rule: observational straggler detection against the running
  /// median of finished task durations.  Off by default so static runs
  /// stay span-for-span identical; attaching an AdaptiveScheduler to the
  /// engine raises it (Engine::exec_policy).
  bool quantile = false;
  /// Launch a copy when a task's age exceeds factor × running median.
  double quantile_factor = 3.0;
  /// Finished tasks required before the median is trusted.
  std::size_t quantile_min_completed = 3;
  /// Fraction of the stage's tasks that must have finished before the
  /// rule arms (Spark's spark.speculation.quantile).  Early finishers are
  /// biased cheap — a median over just the first few would mark every
  /// ordinary task in a heavier tier a straggler and duplicate real work.
  double quantile_fraction = 0.75;
  /// Never speculate tasks younger than this, whatever the median says.
  double min_task_ms = 5.0;
};

}  // namespace gpf::sched
