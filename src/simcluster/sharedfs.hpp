// Shared-filesystem contention model for the paper's Table 1 motivation
// experiment: a disk-file-based WGS pipeline run on 1..30 samples
// concurrently over Lustre or NFS, where every inter-stage handoff is a
// file read/write against the shared filesystem.
//
// As samples are added, each sample's share of the aggregate filesystem
// bandwidth shrinks while its CPU work is unchanged, so the I/O fraction
// of total runtime grows — the paper measures 29% -> 60% (Lustre) and
// 25% -> 74% (NFS).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpf::sim {

/// A shared filesystem with an aggregate bandwidth ceiling and a per-client
/// cap (one client = one sample's worth of processes).
struct SharedFsConfig {
  std::string name;
  /// Aggregate bandwidth across all clients, bytes/second.
  double aggregate_bw = 8e9;
  /// Per-client ceiling (a single sample cannot exceed this even when the
  /// filesystem is idle), bytes/second.
  double per_client_bw = 1.2e9;
  /// Metadata/protocol efficiency under concurrency: effective aggregate
  /// bandwidth is aggregate_bw * pow(efficiency, clients-1).  NFS degrades
  /// faster than Lustre.
  double concurrency_efficiency = 1.0;

  static SharedFsConfig lustre();
  static SharedFsConfig nfs();
};

/// One pipeline step of a disk-file pipeline: CPU seconds (per sample, at
/// the given core count) plus the file bytes read and written through the
/// shared filesystem.
struct FilePipelineStep {
  std::string name;
  double cpu_core_seconds = 0.0;  // total core-seconds of compute
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
};

/// Outcome of running `samples` concurrent pipelines.
struct SharedFsResult {
  double total_seconds = 0.0;
  double io_seconds = 0.0;
  double cpu_seconds = 0.0;

  double io_fraction() const {
    return total_seconds <= 0.0 ? 0.0 : io_seconds / total_seconds;
  }
  double cpu_fraction() const { return 1.0 - io_fraction(); }
};

/// Runs `samples` identical pipelines concurrently, `cores_per_sample`
/// cores each, with all file I/O contending on `fs`.  Returns the
/// per-sample time breakdown (all samples are symmetric).
SharedFsResult run_file_pipeline(const std::vector<FilePipelineStep>& steps,
                                 std::size_t samples,
                                 std::size_t cores_per_sample,
                                 const SharedFsConfig& fs);

}  // namespace gpf::sim
