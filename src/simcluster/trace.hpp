// Converts a locally-executed engine run (EngineMetrics) into a SimJob the
// cluster simulator can replay at arbitrary core counts.
//
// Byte mapping follows Spark's shuffle mechanics, which the paper leans on:
// map tasks write shuffle blocks to local disk, reduce tasks read them
// (mostly over the network, then from the remote disk).  Stage input/output
// bytes — set by load/save stages — become disk traffic spread over the
// stage's tasks.
#pragma once

#include <functional>
#include <string>

#include "engine/metrics.hpp"
#include "simcluster/cluster.hpp"

namespace gpf::sim {

struct TraceOptions {
  /// Scales measured local compute seconds (e.g. to account for dataset
  /// scale-up when bytes are scaled too).
  double compute_scale = 1.0;
  /// Scales all byte volumes (shuffle + input/output).
  double bytes_scale = 1.0;
  /// Fraction of shuffle reads crossing the network (the rest are
  /// node-local blocks).  Spark's default placement gives roughly
  /// (nodes-1)/nodes; 0.9 is a good approximation for large clusters.
  double remote_read_fraction = 0.9;
  /// Maps a stage name to a phase label for the reports; the default takes
  /// the prefix before the first '.' or '/'.
  std::function<std::string(const std::string&)> phase_of;
};

/// Builds a SimJob from recorded engine metrics.
SimJob trace_job(const engine::EngineMetrics& metrics,
                 const TraceOptions& options = {});

}  // namespace gpf::sim
