#include "simcluster/trace.hpp"

#include <algorithm>

namespace gpf::sim {
namespace {

std::string default_phase(const std::string& stage_name) {
  const std::size_t cut = stage_name.find_first_of("./");
  return cut == std::string::npos ? stage_name : stage_name.substr(0, cut);
}

}  // namespace

SimJob trace_job(const engine::EngineMetrics& metrics,
                 const TraceOptions& options) {
  const auto phase_of =
      options.phase_of ? options.phase_of : default_phase;
  SimJob job;
  for (const auto& stage : metrics.stages()) {
    SimStage s;
    s.name = stage.name;
    s.phase = phase_of(stage.name);
    const std::size_t n = stage.task_seconds.size();
    s.tasks.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.tasks[i].compute_seconds =
          stage.task_seconds[i] * options.compute_scale;
    }

    enum class DiskKind { kNone, kSpill, kCold };
    auto spread = [&](std::uint64_t bytes, std::size_t lo, std::size_t hi,
                      DiskKind disk_kind, bool to_net) {
      if (hi <= lo || bytes == 0) return;
      const auto scaled = static_cast<std::uint64_t>(
          static_cast<double>(bytes) * options.bytes_scale);
      const std::uint64_t share = scaled / (hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        if (disk_kind == DiskKind::kSpill) s.tasks[i].disk_bytes += share;
        if (disk_kind == DiskKind::kCold) {
          s.tasks[i].cold_disk_bytes += share;
        }
        if (to_net) {
          s.tasks[i].net_bytes += static_cast<std::uint64_t>(
              static_cast<double>(share) * options.remote_read_fraction);
        }
      }
    };

    if (stage.wide && n > 0) {
      const std::size_t n_map = std::min(stage.map_task_count, n);
      // Map side writes shuffle blocks to local disk (page-cache spill).
      spread(stage.shuffle_write_bytes, 0, n_map, DiskKind::kSpill,
             /*net=*/false);
      // Reduce side reads them: from disk and over the network for the
      // remote fraction.
      spread(stage.shuffle_read_bytes, n_map, n, DiskKind::kSpill,
             /*net=*/true);
    }
    // External input/output (loading FASTQ from the storage subsystem,
    // stage files, the result VCF) is cold file traffic across all tasks.
    spread(stage.input_bytes, 0, n, DiskKind::kCold, /*net=*/false);
    spread(stage.output_bytes, 0, n, DiskKind::kCold, /*net=*/false);

    job.stages.push_back(std::move(s));
  }
  return job;
}

}  // namespace gpf::sim
