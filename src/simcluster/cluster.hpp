// Trace-driven cluster simulator.
//
// The paper evaluates on a 240-node / 2048-core Spark cluster.  We measure
// real per-task compute times on the local thread pool (src/engine records
// them) and replay the task DAG here on a virtual cluster with configurable
// cores, disk bandwidth and network bandwidth.  Strong-scaling curves,
// blocked-time analysis (Ousterhout et al., NSDI'15 — the method the paper
// itself uses in Sec 5.3) and utilization timelines all come from this
// replay.
//
// Model: stages run in sequence (Spark's stage barrier).  Within a stage,
// tasks are list-scheduled longest-processing-time-first onto core slots.
// A task occupies its core for compute + disk + network time; disk and
// network components use a static contention model (per-core share of the
// node's bandwidth), which keeps the replay deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace gpf::sim {

/// Virtual cluster parameters.  Defaults approximate the paper's testbed:
/// 64GB nodes whose page cache absorbs shuffle spills (effective ~1 GB/s
/// per node; the 7200rpm spindle only throttles cold spills), FDR
/// InfiniBand derated to what Spark's shuffle layer achieves, 10 usable
/// cores per node.
struct ClusterConfig {
  std::size_t nodes = 205;
  std::size_t cores_per_node = 10;
  /// Multiplier applied to measured compute seconds (1.0 = local core
  /// speed).
  double core_speed = 1.0;
  /// Per-node effective shuffle-spill bandwidth, bytes/second (spills are
  /// absorbed by the page cache on 64GB nodes).
  double disk_bw_per_node = 1.0e9;
  /// Per-node bandwidth for cold file traffic — stage files written and
  /// re-read through the spindle (7200rpm SATA), the cost that file-based
  /// pipelines like Churchill pay at every stage boundary.
  double cold_disk_bw_per_node = 120e6;
  /// Per-node effective network bandwidth, bytes/second.
  double net_bw_per_node = 2.0e9;
  /// Fixed per-task scheduling/launch overhead, seconds.
  double task_overhead = 0.002;

  std::size_t total_cores() const { return nodes * cores_per_node; }

  /// Convenience: a config with exactly `cores` total, keeping 10
  /// cores/node like the paper's setup.
  static ClusterConfig with_cores(std::size_t cores);
};

/// One simulated task.
struct SimTask {
  double compute_seconds = 0.0;
  std::uint64_t disk_bytes = 0;  // shuffle spill/read (page-cache rate)
  std::uint64_t net_bytes = 0;   // bytes crossing the network
  std::uint64_t cold_disk_bytes = 0;  // stage files (spindle rate)
};

/// One stage: a set of independent tasks separated from the next stage by
/// a barrier.
struct SimStage {
  std::string name;
  std::vector<SimTask> tasks;
  /// Phase label used by the utilization/blocked-time reports
  /// ("aligner" / "cleaner" / "caller" / "io").
  std::string phase;
};

/// A job is an ordered list of stages.
struct SimJob {
  std::vector<SimStage> stages;

  /// Total compute seconds across all tasks.
  double total_compute_seconds() const;
  std::uint64_t total_disk_bytes() const;
  std::uint64_t total_net_bytes() const;
};

/// Per-stage outcome of a replay.
struct SimStageResult {
  std::string name;
  std::string phase;
  double start = 0.0;
  double duration = 0.0;
  double compute_seconds = 0.0;  // sum over tasks
  double disk_seconds = 0.0;
  double net_seconds = 0.0;
  std::size_t task_count = 0;
};

/// Utilization sample (one per timeline bucket).
struct UtilSample {
  double time = 0.0;           // bucket start
  double cpu_fraction = 0.0;   // busy cores / total cores
  double disk_bytes_per_s = 0.0;
  double net_bytes_per_s = 0.0;
};

/// Replay outcome.
struct SimResult {
  double makespan = 0.0;
  double total_compute_seconds = 0.0;
  double total_disk_seconds = 0.0;
  double total_net_seconds = 0.0;
  std::vector<SimStageResult> stages;
  /// Chaos replays only: tasks that were in flight on a failing node and
  /// had to be re-executed elsewhere, and nodes lost during the run.
  std::size_t tasks_restarted = 0;
  std::size_t nodes_lost = 0;

  /// Core-hours consumed (cores reserved for the whole makespan, the
  /// accounting the paper's Table 4 uses).
  double core_hours(const ClusterConfig& cluster) const;

  /// Fraction of the makespan attributable to blocked disk / network time,
  /// on the critical path approximation (task components summed per stage
  /// and scaled by stage duration share).
  double disk_fraction() const;
  double net_fraction() const;
};

/// Simulates `job` on `cluster`.
SimResult simulate(const SimJob& job, const ClusterConfig& cluster);

/// Replays `job` and exports the per-task virtual-time timeline through
/// the shared Span model: one kSimStage span per stage on track 0 and one
/// kSimTask span per task on track (core slot + 1), timestamps in virtual
/// microseconds.  Written next to an engine trace (pid 0), the replay
/// (default pid 1) makes a measured local run and its 2048-core twin
/// directly comparable in chrome://tracing or Perfetto.
std::vector<trace::Span> simulate_to_spans(const SimJob& job,
                                           const ClusterConfig& cluster,
                                           std::uint32_t pid = 1);

/// A chaos event on the virtual cluster, answering the paper's resilience
/// question ("what does losing a node at t=30s do to the 2048-core
/// makespan?") on a recorded trace.
struct NodeEvent {
  enum class Kind {
    /// The node disappears at `time`: its in-flight tasks are lost and
    /// re-executed on surviving nodes (Spark's lineage recompute), and its
    /// cores leave the pool for the rest of the run.
    kNodeFailure,
    /// The node's cores run at `speed_factor` × their former speed from
    /// `time` on (a degraded straggler node).
    kNodeSlowdown,
  };
  Kind kind = Kind::kNodeFailure;
  double time = 0.0;
  std::size_t node = 0;
  double speed_factor = 1.0;  // kNodeSlowdown only; < 1 means slower

  static NodeEvent failure(std::size_t node, double time);
  static NodeEvent slowdown(std::size_t node, double time,
                            double speed_factor);
};

/// An ordered chaos schedule applied to a replay.
struct FaultScenario {
  std::vector<NodeEvent> events;
};

/// Replays `job` while injecting `scenario`'s node events.  Deterministic:
/// same trace + scenario => identical result.  A task caught on a failing
/// node restarts from scratch on the next free core (counted in
/// tasks_restarted); a slowdown stretches every task that starts on the
/// node after the event.  Throws std::runtime_error if every node has
/// failed while tasks remain.
SimResult simulate_with_faults(const SimJob& job, const ClusterConfig& cluster,
                               const FaultScenario& scenario);

/// Blocked-time analysis: improvement in job completion time when all
/// disk (resp. network) time is removed, as a fraction in [0, 1).  This is
/// the paper's Fig 12 metric.
struct BlockedTimeResult {
  double base_makespan = 0.0;
  double no_disk_makespan = 0.0;
  double no_net_makespan = 0.0;

  double disk_improvement() const {
    return base_makespan <= 0.0
               ? 0.0
               : 1.0 - no_disk_makespan / base_makespan;
  }
  double net_improvement() const {
    return base_makespan <= 0.0 ? 0.0 : 1.0 - no_net_makespan / base_makespan;
  }
};
BlockedTimeResult blocked_time_analysis(const SimJob& job,
                                        const ClusterConfig& cluster);

/// Samples the run into `buckets` utilization samples for timeline plots
/// (paper Fig 13).
std::vector<UtilSample> utilization_timeline(const SimJob& job,
                                             const ClusterConfig& cluster,
                                             std::size_t buckets);

/// Replicates every stage's task list `factor` times — used to scale a
/// locally-measured trace up to the paper's dataset size while preserving
/// the task-time distribution (and therefore the skew).
SimJob replicate_tasks(const SimJob& job, std::size_t factor);

/// Scales compute seconds and byte volumes of every task.
SimJob scale_job(const SimJob& job, double compute_scale, double bytes_scale);

}  // namespace gpf::sim
