#include "simcluster/sharedfs.hpp"

#include <algorithm>
#include <cmath>

namespace gpf::sim {

SharedFsConfig SharedFsConfig::lustre() {
  // Striped parallel filesystem: high aggregate ceiling per client but a
  // modest total, degrading gently with client count.  Calibrated so a
  // WGS-shaped pipeline reproduces the paper's Table 1 (29% I/O at 1
  // sample, ~60% at 30 samples).
  SharedFsConfig fs;
  fs.name = "Lustre";
  fs.aggregate_bw = 2.0e9;
  fs.per_client_bw = 1.4e9;
  fs.concurrency_efficiency = 0.995;
  return fs;
}

SharedFsConfig SharedFsConfig::nfs() {
  // Single NFS server head: an individual client can go fast (25% I/O at
  // 1 sample, slightly better than Lustre — Table 1), but aggregate
  // service degrades sharply with concurrency (74% I/O at 30 samples).
  SharedFsConfig fs;
  fs.name = "NFS";
  fs.aggregate_bw = 2.5e9;
  fs.per_client_bw = 1.8e9;
  fs.concurrency_efficiency = 0.97;
  return fs;
}

SharedFsResult run_file_pipeline(const std::vector<FilePipelineStep>& steps,
                                 std::size_t samples,
                                 std::size_t cores_per_sample,
                                 const SharedFsConfig& fs) {
  SharedFsResult result;
  if (samples == 0 || cores_per_sample == 0) return result;

  // Effective aggregate bandwidth shrinks with client count (protocol and
  // seek overheads); each sample then gets an equal share, capped by its
  // own client ceiling.
  const double effective_aggregate =
      fs.aggregate_bw *
      std::pow(fs.concurrency_efficiency,
               static_cast<double>(samples - 1));
  const double per_sample_bw = std::min(
      fs.per_client_bw, effective_aggregate / static_cast<double>(samples));

  for (const auto& step : steps) {
    const double cpu =
        step.cpu_core_seconds / static_cast<double>(cores_per_sample);
    const double io =
        static_cast<double>(step.read_bytes + step.write_bytes) /
        per_sample_bw;
    result.cpu_seconds += cpu;
    result.io_seconds += io;
  }
  result.total_seconds = result.cpu_seconds + result.io_seconds;
  return result;
}

}  // namespace gpf::sim
