#include "simcluster/cluster.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <utility>

#include "sched/lpt.hpp"

namespace gpf::sim {
namespace {

/// Per-task timing decomposition on a given cluster.
struct TaskCost {
  double compute = 0.0;
  double disk = 0.0;
  double net = 0.0;
  double total(bool with_disk, bool with_net) const {
    return compute + (with_disk ? disk : 0.0) + (with_net ? net : 0.0);
  }
};

TaskCost task_cost(const SimTask& task, const ClusterConfig& cluster) {
  TaskCost c;
  c.compute = task.compute_seconds / cluster.core_speed +
              cluster.task_overhead;
  // Static contention model: a task sees its per-core share of the node's
  // disk/network bandwidth (the steady-state share when the node is full).
  const double disk_share =
      cluster.disk_bw_per_node / static_cast<double>(cluster.cores_per_node);
  const double cold_share = cluster.cold_disk_bw_per_node /
                            static_cast<double>(cluster.cores_per_node);
  const double net_share =
      cluster.net_bw_per_node / static_cast<double>(cluster.cores_per_node);
  c.disk = static_cast<double>(task.disk_bytes) / disk_share +
           static_cast<double>(task.cold_disk_bytes) / cold_share;
  c.net = static_cast<double>(task.net_bytes) / net_share;
  return c;
}

/// Schedules one stage's tasks LPT onto `cores` slots starting at time
/// `start`; returns the stage end time and optionally records per-task
/// intervals via `on_task(idx, start, duration, slot)`.  The LPT heap
/// itself is shared with the engine's adaptive planner (sched/lpt.hpp).
template <typename OnTask>
double schedule_stage(const std::vector<TaskCost>& costs, std::size_t cores,
                      double start, bool with_disk, bool with_net,
                      OnTask&& on_task) {
  std::vector<double> totals;
  totals.reserve(costs.size());
  for (const TaskCost& c : costs) {
    totals.push_back(c.total(with_disk, with_net));
  }
  return sched::lpt_schedule(totals, cores, start,
                             std::forward<OnTask>(on_task));
}

SimResult simulate_impl(const SimJob& job, const ClusterConfig& cluster,
                        bool with_disk, bool with_net) {
  if (cluster.total_cores() == 0) {
    throw std::invalid_argument("cluster has zero cores");
  }
  SimResult result;
  double clock = 0.0;
  for (const auto& stage : job.stages) {
    std::vector<TaskCost> costs;
    costs.reserve(stage.tasks.size());
    for (const auto& t : stage.tasks) costs.push_back(task_cost(t, cluster));

    SimStageResult sr;
    sr.name = stage.name;
    sr.phase = stage.phase;
    sr.start = clock;
    sr.task_count = stage.tasks.size();
    for (const auto& c : costs) {
      sr.compute_seconds += c.compute;
      sr.disk_seconds += with_disk ? c.disk : 0.0;
      sr.net_seconds += with_net ? c.net : 0.0;
    }
    const double end = schedule_stage(
        costs, cluster.total_cores(), clock, with_disk, with_net,
        [](std::size_t, double, double, std::size_t) {});
    sr.duration = end - clock;
    clock = end;

    result.total_compute_seconds += sr.compute_seconds;
    result.total_disk_seconds += sr.disk_seconds;
    result.total_net_seconds += sr.net_seconds;
    result.stages.push_back(std::move(sr));
  }
  result.makespan = clock;
  return result;
}

}  // namespace

ClusterConfig ClusterConfig::with_cores(std::size_t cores) {
  ClusterConfig c;
  if (cores == 0) cores = 1;
  // Pick the largest cores-per-node <= 10 (the paper's usable cores per
  // node) that divides the requested total exactly, so experiments get
  // the core count they asked for.
  for (std::size_t cpn = std::min<std::size_t>(10, cores); cpn >= 1; --cpn) {
    if (cores % cpn == 0) {
      c.cores_per_node = cpn;
      c.nodes = cores / cpn;
      break;
    }
  }
  return c;
}

double SimJob::total_compute_seconds() const {
  double t = 0.0;
  for (const auto& s : stages) {
    for (const auto& task : s.tasks) t += task.compute_seconds;
  }
  return t;
}

std::uint64_t SimJob::total_disk_bytes() const {
  std::uint64_t b = 0;
  for (const auto& s : stages) {
    for (const auto& task : s.tasks) b += task.disk_bytes;
  }
  return b;
}

std::uint64_t SimJob::total_net_bytes() const {
  std::uint64_t b = 0;
  for (const auto& s : stages) {
    for (const auto& task : s.tasks) b += task.net_bytes;
  }
  return b;
}

double SimResult::core_hours(const ClusterConfig& cluster) const {
  return makespan * static_cast<double>(cluster.total_cores()) / 3600.0;
}

double SimResult::disk_fraction() const {
  const double busy =
      total_compute_seconds + total_disk_seconds + total_net_seconds;
  return busy <= 0.0 ? 0.0 : total_disk_seconds / busy;
}

double SimResult::net_fraction() const {
  const double busy =
      total_compute_seconds + total_disk_seconds + total_net_seconds;
  return busy <= 0.0 ? 0.0 : total_net_seconds / busy;
}

SimResult simulate(const SimJob& job, const ClusterConfig& cluster) {
  return simulate_impl(job, cluster, /*with_disk=*/true, /*with_net=*/true);
}

std::vector<trace::Span> simulate_to_spans(const SimJob& job,
                                           const ClusterConfig& cluster,
                                           std::uint32_t pid) {
  if (cluster.total_cores() == 0) {
    throw std::invalid_argument("cluster has zero cores");
  }
  std::vector<trace::Span> spans;
  double clock = 0.0;
  for (const auto& stage : job.stages) {
    std::vector<TaskCost> costs;
    costs.reserve(stage.tasks.size());
    for (const auto& t : stage.tasks) costs.push_back(task_cost(t, cluster));
    const double start = clock;
    clock = schedule_stage(
        costs, cluster.total_cores(), clock, /*with_disk=*/true,
        /*with_net=*/true,
        [&](std::size_t idx, double t0, double dur, std::size_t slot) {
          trace::Span s;
          s.name = stage.name;
          s.kind = trace::SpanKind::kSimTask;
          s.pid = pid;
          s.track = static_cast<std::uint32_t>(slot + 1);
          s.start_us = t0 * 1e6;
          s.dur_us = dur * 1e6;
          s.task = static_cast<std::int64_t>(idx);
          spans.push_back(std::move(s));
        });
    trace::Span s;
    s.name = stage.name;
    s.kind = trace::SpanKind::kSimStage;
    s.pid = pid;
    s.track = 0;  // the virtual driver track, above the core slots
    s.start_us = start * 1e6;
    s.dur_us = (clock - start) * 1e6;
    spans.push_back(std::move(s));
  }
  return spans;
}

NodeEvent NodeEvent::failure(std::size_t node, double time) {
  NodeEvent e;
  e.kind = Kind::kNodeFailure;
  e.node = node;
  e.time = time;
  return e;
}

NodeEvent NodeEvent::slowdown(std::size_t node, double time,
                              double speed_factor) {
  NodeEvent e;
  e.kind = Kind::kNodeSlowdown;
  e.node = node;
  e.time = time;
  e.speed_factor = speed_factor;
  return e;
}

SimResult simulate_with_faults(const SimJob& job, const ClusterConfig& cluster,
                               const FaultScenario& scenario) {
  if (cluster.total_cores() == 0) {
    throw std::invalid_argument("cluster has zero cores");
  }
  const double kNever = std::numeric_limits<double>::infinity();
  std::vector<double> fail_at(cluster.nodes, kNever);
  std::vector<std::vector<std::pair<double, double>>> slowdowns(cluster.nodes);
  for (const auto& e : scenario.events) {
    if (e.node >= cluster.nodes) {
      throw std::invalid_argument("node event beyond cluster size");
    }
    if (e.kind == NodeEvent::Kind::kNodeFailure) {
      fail_at[e.node] = std::min(fail_at[e.node], e.time);
    } else {
      if (e.speed_factor <= 0.0) {
        throw std::invalid_argument("slowdown factor must be positive");
      }
      slowdowns[e.node].emplace_back(e.time, e.speed_factor);
    }
  }
  // Speed of a node's cores for a task starting at time `t` (slowdowns
  // compound; a task keeps its start-time speed for its whole duration,
  // which keeps the replay a pure function of the scenario).
  auto speed_at = [&](std::size_t node, double t) {
    double f = 1.0;
    for (const auto& [time, factor] : slowdowns[node]) {
      if (time <= t) f *= factor;
    }
    return f;
  };

  SimResult result;
  double clock = 0.0;
  for (const auto& stage : job.stages) {
    std::vector<TaskCost> costs;
    costs.reserve(stage.tasks.size());
    for (const auto& t : stage.tasks) costs.push_back(task_cost(t, cluster));

    SimStageResult sr;
    sr.name = stage.name;
    sr.phase = stage.phase;
    sr.start = clock;
    sr.task_count = stage.tasks.size();
    for (const auto& c : costs) {
      sr.compute_seconds += c.compute;
      sr.disk_seconds += c.disk;
      sr.net_seconds += c.net;
    }

    // LPT order, as the fault-free scheduler uses.
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return costs[a].total(true, true) >
                              costs[b].total(true, true);
                     });
    std::deque<std::size_t> pending(order.begin(), order.end());

    // Min-heap of (free time, node) core slots on nodes alive at the
    // stage barrier; slots on nodes that die mid-stage are retired as
    // they surface.
    std::priority_queue<std::pair<double, std::size_t>,
                        std::vector<std::pair<double, std::size_t>>,
                        std::greater<>>
        free_at;
    for (std::size_t node = 0; node < cluster.nodes; ++node) {
      if (fail_at[node] <= clock) continue;
      for (std::size_t c = 0; c < cluster.cores_per_node; ++c) {
        free_at.emplace(clock, node);
      }
    }

    double end = clock;
    while (!pending.empty()) {
      if (free_at.empty()) {
        throw std::runtime_error(
            "simulate_with_faults: every node failed with tasks remaining");
      }
      const auto [t0, node] = free_at.top();
      free_at.pop();
      if (fail_at[node] <= t0) continue;  // node died while the core idled
      const std::size_t idx = pending.front();
      pending.pop_front();
      const double dur = costs[idx].total(true, true) / speed_at(node, t0);
      const double t1 = t0 + dur;
      if (fail_at[node] < t1) {
        // Node dies mid-task: the attempt's work is lost; the task
        // restarts from its lineage on whichever core frees next.
        ++result.tasks_restarted;
        pending.push_back(idx);
        continue;  // the slot dies with the node
      }
      free_at.emplace(t1, node);
      end = std::max(end, t1);
    }
    sr.duration = end - clock;
    clock = end;

    result.total_compute_seconds += sr.compute_seconds;
    result.total_disk_seconds += sr.disk_seconds;
    result.total_net_seconds += sr.net_seconds;
    result.stages.push_back(std::move(sr));
  }
  result.makespan = clock;
  for (std::size_t node = 0; node < cluster.nodes; ++node) {
    if (fail_at[node] <= result.makespan) ++result.nodes_lost;
  }
  return result;
}

BlockedTimeResult blocked_time_analysis(const SimJob& job,
                                        const ClusterConfig& cluster) {
  BlockedTimeResult r;
  r.base_makespan = simulate_impl(job, cluster, true, true).makespan;
  r.no_disk_makespan = simulate_impl(job, cluster, false, true).makespan;
  r.no_net_makespan = simulate_impl(job, cluster, true, false).makespan;
  return r;
}

std::vector<UtilSample> utilization_timeline(const SimJob& job,
                                             const ClusterConfig& cluster,
                                             std::size_t buckets) {
  if (buckets == 0) throw std::invalid_argument("buckets == 0");
  // First pass to learn the makespan; second pass distributes each task's
  // compute/disk/net phases into buckets.
  const SimResult base = simulate(job, cluster);
  const double makespan = std::max(base.makespan, 1e-9);
  const double width = makespan / static_cast<double>(buckets);

  std::vector<UtilSample> samples(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    samples[b].time = width * static_cast<double>(b);
  }

  // Buckets are half-open [b*width, (b+1)*width) except the last, whose
  // right edge is the makespan itself: width*buckets can land a hair below
  // makespan in floating point, and an event ending exactly at the
  // makespan must not have its final sliver dropped.
  auto bucket_of = [&](double t) {
    return std::min<std::size_t>(buckets - 1,
                                 static_cast<std::size_t>(t / width));
  };
  auto bucket_end = [&](std::size_t b) {
    return b + 1 == buckets ? makespan : width * static_cast<double>(b + 1);
  };
  auto deposit = [&](double t0, double t1, double amount,
                     auto member) {
    // Spreads `amount` uniformly over [t0, t1) across buckets.
    if (t1 <= t0) return;
    const double rate = amount / (t1 - t0);
    const std::size_t b0 = bucket_of(t0);
    const std::size_t b1 = bucket_of(t1);
    for (std::size_t b = b0; b <= b1; ++b) {
      const double lo = std::max(t0, width * static_cast<double>(b));
      const double hi = std::min(t1, bucket_end(b));
      if (hi > lo) samples[b].*member += rate * (hi - lo);
    }
  };

  double clock = 0.0;
  for (const auto& stage : job.stages) {
    std::vector<TaskCost> costs;
    costs.reserve(stage.tasks.size());
    for (const auto& t : stage.tasks) costs.push_back(task_cost(t, cluster));
    const double end = schedule_stage(
        costs, cluster.total_cores(), clock, true, true,
        [&](std::size_t idx, double t0, double, std::size_t) {
          const TaskCost& c = costs[idx];
          // Task phases: compute, then disk, then network.
          deposit(t0, t0 + c.compute, c.compute, &UtilSample::cpu_fraction);
          // c.disk covers both page-cache shuffle traffic and cold stage
          // files, so the byte deposit must too — otherwise a cold-disk
          // dominated job shows a flat-zero disk timeline.
          const double d0 = t0 + c.compute;
          deposit(d0, d0 + c.disk,
                  static_cast<double>(stage.tasks[idx].disk_bytes +
                                      stage.tasks[idx].cold_disk_bytes),
                  &UtilSample::disk_bytes_per_s);
          const double n0 = d0 + c.disk;
          deposit(n0, n0 + c.net,
                  static_cast<double>(stage.tasks[idx].net_bytes),
                  &UtilSample::net_bytes_per_s);
        });
    clock = end;
  }

  // cpu_fraction currently holds busy core-seconds per bucket; normalize.
  const double denom = width * static_cast<double>(cluster.total_cores());
  for (auto& s : samples) {
    s.cpu_fraction = std::min(1.0, s.cpu_fraction / denom);
    s.disk_bytes_per_s /= width;
    s.net_bytes_per_s /= width;
  }
  return samples;
}

SimJob replicate_tasks(const SimJob& job, std::size_t factor) {
  SimJob out;
  out.stages.reserve(job.stages.size());
  for (const auto& stage : job.stages) {
    SimStage s;
    s.name = stage.name;
    s.phase = stage.phase;
    s.tasks.reserve(stage.tasks.size() * factor);
    for (std::size_t f = 0; f < factor; ++f) {
      s.tasks.insert(s.tasks.end(), stage.tasks.begin(), stage.tasks.end());
    }
    out.stages.push_back(std::move(s));
  }
  return out;
}

SimJob scale_job(const SimJob& job, double compute_scale,
                 double bytes_scale) {
  SimJob out = job;
  for (auto& stage : out.stages) {
    for (auto& t : stage.tasks) {
      t.compute_seconds *= compute_scale;
      t.disk_bytes =
          static_cast<std::uint64_t>(static_cast<double>(t.disk_bytes) *
                                     bytes_scale);
      t.cold_disk_bytes = static_cast<std::uint64_t>(
          static_cast<double>(t.cold_disk_bytes) * bytes_scale);
      t.net_bytes = static_cast<std::uint64_t>(
          static_cast<double>(t.net_bytes) * bytes_scale);
    }
  }
  return out;
}

}  // namespace gpf::sim
