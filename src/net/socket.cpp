#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace gpf::net {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Waits for `events` on `fd`; throws on poll error, returns false on
/// timeout.
bool wait_for(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw SocketError(errno_message("poll"));
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw SocketError(errno_message("fcntl(F_GETFL)"));
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    throw SocketError(errno_message("fcntl(F_SETFL)"));
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port,
                           int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError(errno_message("socket"));
  Socket sock(fd);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("connect: bad address '" + host + "'");
  }

  // Non-blocking connect so the timeout is enforceable.
  set_nonblocking(fd, true);
  const int rc =
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    throw SocketError(errno_message("connect"));
  }
  if (rc < 0) {
    if (!wait_for(fd, POLLOUT, timeout_ms)) {
      throw SocketError("connect: timeout to " + host + ":" +
                        std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err != 0 ? err : errno;
      throw SocketError(errno_message("connect"));
    }
  }
  set_nonblocking(fd, false);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

void Socket::send_all(const void* data, std::size_t n, int timeout_ms) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_for(fd_, POLLOUT, timeout_ms)) {
        throw SocketError("send: timeout");
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw SocketError(errno_message("send"));
  }
}

void Socket::recv_all(void* data, std::size_t n, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    bool timed_out = false;
    const std::size_t rc = recv_some(p + got, n - got, timeout_ms, &timed_out);
    if (timed_out) throw SocketError("recv: timeout");
    if (rc == 0) throw SocketError("recv: connection closed by peer");
    got += rc;
  }
}

std::size_t Socket::recv_some(void* data, std::size_t n, int timeout_ms,
                              bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  for (;;) {
    const ssize_t rc = ::recv(fd_, data, n, MSG_DONTWAIT);
    if (rc > 0) return static_cast<std::size_t>(rc);
    if (rc == 0) return 0;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_for(fd_, POLLIN, timeout_ms)) {
        if (timed_out != nullptr) {
          *timed_out = true;
          return 0;
        }
        throw SocketError("recv: timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    throw SocketError(errno_message("recv"));
  }
}

bool Socket::wait_readable(int timeout_ms) {
  return wait_for(fd_, POLLIN, timeout_ms);
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError(errno_message("socket"));
  Listener l;
  l.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError(errno_message("bind"));
  }
  if (::listen(fd, 64) < 0) throw SocketError(errno_message("listen"));

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    throw SocketError(errno_message("getsockname"));
  }
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Socket Listener::accept(int timeout_ms) {
  if (!wait_for(fd_, POLLIN, timeout_ms)) return Socket();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Socket();
    }
    throw SocketError(errno_message("accept"));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

}  // namespace gpf::net
