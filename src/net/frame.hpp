// Length-prefixed message framing over a stream socket.
//
// Every driver/worker message travels as one frame:
//
//   magic   u32  'GPFB' — rejects a peer that is not speaking the protocol
//   type    u32  message type (runtime/protocol.hpp assigns meanings)
//   req_id  u64  request correlation id, echoed by responses
//   len     u64  payload byte count (bounded by FrameLimits::max_payload)
//   check   u64  FNV-1a 64 of the payload
//   payload len bytes
//
// The checksum guards the transport the same way shuffle_block_checksum
// guards shuffle blocks: a damaged or desynchronized stream surfaces as a
// typed FrameError instead of garbage records.  All integers are
// little-endian (the ByteWriter convention used by every codec in the
// repo).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace gpf::net {

inline constexpr std::uint32_t kFrameMagic = 0x42465047;  // "GPFB" LE
inline constexpr std::size_t kFrameHeaderBytes = 32;

/// Why a frame could not be read.
enum class FrameFault {
  kBadMagic,   // stream is not frame-aligned / wrong protocol
  kOversized,  // declared payload exceeds the limit
  kTruncated,  // peer closed mid-frame
  kChecksum,   // payload bytes do not match the header checksum
};

class FrameError : public std::runtime_error {
 public:
  FrameError(FrameFault fault, const std::string& message)
      : std::runtime_error(message), fault_(fault) {}
  FrameFault fault() const { return fault_; }

 private:
  FrameFault fault_;
};

/// Clean EOF before the first header byte — the peer hung up between
/// messages, which servers treat as a normal disconnect.
class FrameEof : public std::runtime_error {
 public:
  FrameEof() : std::runtime_error("peer closed the connection") {}
};

struct Frame {
  std::uint32_t type = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

struct FrameLimits {
  /// Largest accepted payload; a corrupted length field otherwise asks the
  /// reader to allocate petabytes.
  std::size_t max_payload = std::size_t{256} << 20;
};

/// FNV-1a 64 (same construction as engine::shuffle_block_checksum; kept
/// separate so the transport does not depend on the engine).
std::uint64_t frame_checksum(std::span<const std::uint8_t> bytes);

/// Serializes `frame` into the wire format (header + payload).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parses one complete frame from `bytes` (throws FrameError on any
/// malformation; used directly by the framing fuzz tests).
Frame decode_frame(std::span<const std::uint8_t> bytes,
                   const FrameLimits& limits = {});

/// Writes one frame to the socket.
void write_frame(Socket& sock, const Frame& frame, int timeout_ms);

/// Reads one frame, throwing FrameEof on clean disconnect and FrameError
/// on malformed input; SocketError covers timeouts and transport failures.
Frame read_frame(Socket& sock, const FrameLimits& limits, int timeout_ms);

}  // namespace gpf::net
