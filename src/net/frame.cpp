#include "net/frame.hpp"

#include <cstring>

namespace gpf::net {
namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void encode_header(std::uint8_t (&header)[kFrameHeaderBytes],
                   const Frame& frame) {
  put_u32(header, kFrameMagic);
  put_u32(header + 4, frame.type);
  put_u64(header + 8, frame.request_id);
  put_u64(header + 16, frame.payload.size());
  put_u64(header + 24, frame_checksum(frame.payload));
}

/// Validates the header fields shared by the stream and in-memory readers;
/// returns the declared payload length.
std::uint64_t check_header(const std::uint8_t* header,
                           const FrameLimits& limits, Frame& out) {
  if (get_u32(header) != kFrameMagic) {
    throw FrameError(FrameFault::kBadMagic, "frame: bad magic");
  }
  out.type = get_u32(header + 4);
  out.request_id = get_u64(header + 8);
  const std::uint64_t len = get_u64(header + 16);
  if (len > limits.max_payload) {
    throw FrameError(FrameFault::kOversized,
                     "frame: payload of " + std::to_string(len) +
                         " bytes exceeds limit of " +
                         std::to_string(limits.max_payload));
  }
  return len;
}

}  // namespace

std::uint64_t frame_checksum(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::uint8_t header[kFrameHeaderBytes];
  encode_header(header, frame);
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.insert(out.end(), header, header + kFrameHeaderBytes);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes,
                   const FrameLimits& limits) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw FrameError(FrameFault::kTruncated, "frame: truncated header");
  }
  Frame out;
  const std::uint64_t len = check_header(bytes.data(), limits, out);
  const std::uint64_t checksum = get_u64(bytes.data() + 24);
  if (bytes.size() - kFrameHeaderBytes < len) {
    throw FrameError(FrameFault::kTruncated, "frame: truncated payload");
  }
  out.payload.assign(bytes.begin() + kFrameHeaderBytes,
                     bytes.begin() + kFrameHeaderBytes + len);
  if (frame_checksum(out.payload) != checksum) {
    throw FrameError(FrameFault::kChecksum, "frame: payload checksum mismatch");
  }
  return out;
}

void write_frame(Socket& sock, const Frame& frame, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  encode_header(header, frame);
  sock.send_all(header, sizeof header, timeout_ms);
  if (!frame.payload.empty()) {
    sock.send_all(frame.payload.data(), frame.payload.size(), timeout_ms);
  }
}

Frame read_frame(Socket& sock, const FrameLimits& limits, int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  // The first byte distinguishes a quiet peer hanging up (FrameEof) from a
  // peer dying mid-frame (kTruncated).
  const std::size_t first = sock.recv_some(header, 1, timeout_ms);
  if (first == 0) throw FrameEof();
  try {
    sock.recv_all(header + 1, sizeof header - 1, timeout_ms);
  } catch (const SocketError&) {
    throw FrameError(FrameFault::kTruncated, "frame: truncated header");
  }
  Frame out;
  const std::uint64_t len = check_header(header, limits, out);
  const std::uint64_t checksum = get_u64(header + 24);
  out.payload.resize(len);
  if (len > 0) {
    try {
      sock.recv_all(out.payload.data(), len, timeout_ms);
    } catch (const SocketError&) {
      throw FrameError(FrameFault::kTruncated, "frame: truncated payload");
    }
  }
  if (frame_checksum(out.payload) != checksum) {
    throw FrameError(FrameFault::kChecksum, "frame: payload checksum mismatch");
  }
  return out;
}

}  // namespace gpf::net
