// Thin RAII layer over loopback/LAN TCP sockets with poll-based timeouts.
//
// The distributed runtime deliberately uses blocking sockets plus poll():
// the driver and workers exchange few, large, length-prefixed frames, so
// per-connection blocking I/O with a deadline beats an async reactor in
// both simplicity and debuggability (Thrill makes the same call for its
// batch shuffle transport).  Every operation takes an explicit timeout so
// a dead peer surfaces as SocketError instead of a hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace gpf::net {

/// Transport-level failure: connect/send/recv error, timeout, or the peer
/// closing the connection mid-message.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port, failing after `timeout_ms`.
  static Socket connect_tcp(const std::string& host, std::uint16_t port,
                            int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes exactly `n` bytes or throws SocketError.  The timeout applies
  /// per poll wait, so a live-but-slow peer keeps extending the deadline
  /// while a dead one fails within one timeout.
  void send_all(const void* data, std::size_t n, int timeout_ms);

  /// Reads exactly `n` bytes or throws SocketError (including on EOF).
  void recv_all(void* data, std::size_t n, int timeout_ms);

  /// Reads up to `n` bytes; returns 0 on orderly EOF.  Blocks up to
  /// `timeout_ms` for the first byte.  When `timed_out` is non-null a
  /// timeout sets it and returns 0 instead of throwing, so callers can
  /// tell a quiet peer from a closed one.
  std::size_t recv_some(void* data, std::size_t n, int timeout_ms,
                        bool* timed_out = nullptr);

  /// Waits up to `timeout_ms` for the socket to become readable without
  /// consuming anything; servers use this to poll idle connections while
  /// checking a stop flag.
  bool wait_readable(int timeout_ms);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to the loopback interface.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
  static Listener bind_loopback(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Accepts one connection, or returns an invalid Socket after
  /// `timeout_ms` with nothing pending.
  Socket accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gpf::net
