// A retriable request/response channel over framed TCP.
//
// One channel = one logical peer.  Calls are synchronous (one outstanding
// request per channel, matching the driver's task-at-a-time dispatch); the
// channel reconnects transparently with exponential backoff when the
// transport fails, and every call carries a per-attempt timeout so a dead
// peer turns into a typed ChannelError bounded in time.
//
// Retries re-send the request, so callers must only issue idempotent
// requests — which every runtime message is: tasks are pure functions of
// immutable inputs (the engine's lineage-recompute contract), heartbeats
// and block fetches are reads.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

#include "common/retry.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace gpf::net {

/// The channel exhausted its attempts; carries the last transport error.
class ChannelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ChannelConfig {
  int connect_timeout_ms = 2000;
  /// Per-attempt deadline for the response (tasks that legitimately run
  /// longer need a larger value; the loopback tests use seconds).
  int call_timeout_ms = 10000;
  /// Attempt count and backoff, shared with every other retrying layer.
  RetryPolicy retry;
  FrameLimits limits;
};

class RetriableChannel {
 public:
  RetriableChannel(std::string host, std::uint16_t port,
                   ChannelConfig config = {})
      : host_(std::move(host)), port_(port), config_(config) {}

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

  /// Sends `payload` as a frame of `type` and returns the peer's response
  /// frame.  Transport failures (connect, send, recv, framing) are retried
  /// with exponential backoff up to max_attempts, then surface as
  /// ChannelError.  Application-level error responses are returned to the
  /// caller like any other frame — the channel does not interpret types.
  Frame call(std::uint32_t type, std::span<const std::uint8_t> payload);

  /// Like call() but with a custom per-attempt timeout (heartbeats probe
  /// with a short one; long tasks extend it).
  Frame call(std::uint32_t type, std::span<const std::uint8_t> payload,
             int timeout_ms, int max_attempts);

  /// Drops the connection; the next call reconnects.
  void disconnect();

 private:
  Frame attempt(std::uint32_t type, std::span<const std::uint8_t> payload,
                std::uint64_t request_id, int timeout_ms);

  std::string host_;
  std::uint16_t port_ = 0;
  ChannelConfig config_;
  std::mutex mu_;  // serializes calls and guards the socket
  Socket sock_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace gpf::net
