#include "net/channel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace gpf::net {

Frame RetriableChannel::call(std::uint32_t type,
                             std::span<const std::uint8_t> payload) {
  return call(type, payload, config_.call_timeout_ms,
              config_.retry.max_attempts);
}

Frame RetriableChannel::call(std::uint32_t type,
                             std::span<const std::uint8_t> payload,
                             int timeout_ms, int max_attempts) {
  std::lock_guard lock(mu_);
  const std::uint64_t request_id = next_request_id_++;
  std::string last_error;
  int backoff_ms = config_.retry.backoff_initial_ms;
  for (int a = 0; a < std::max(1, max_attempts); ++a) {
    if (a > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = config_.retry.next_backoff(backoff_ms);
    }
    try {
      return attempt(type, payload, request_id, timeout_ms);
    } catch (const std::runtime_error& e) {
      // SocketError / FrameError / FrameEof: the connection is suspect —
      // drop it so the next attempt reconnects from scratch.
      sock_.close();
      last_error = e.what();
    }
  }
  throw ChannelError("channel to " + host_ + ":" + std::to_string(port_) +
                     " failed after " + std::to_string(max_attempts) +
                     " attempts; last error: " + last_error);
}

Frame RetriableChannel::attempt(std::uint32_t type,
                                std::span<const std::uint8_t> payload,
                                std::uint64_t request_id, int timeout_ms) {
  if (!sock_.valid()) {
    sock_ = Socket::connect_tcp(host_, port_, config_.connect_timeout_ms);
  }
  Frame request;
  request.type = type;
  request.request_id = request_id;
  request.payload.assign(payload.begin(), payload.end());
  write_frame(sock_, request, timeout_ms);
  Frame response = read_frame(sock_, config_.limits, timeout_ms);
  if (response.request_id != request_id) {
    // A stale response from a previous timed-out attempt desynchronized
    // the stream; treat as a transport fault so the call retries clean.
    throw FrameError(FrameFault::kBadMagic,
                     "channel: response id " +
                         std::to_string(response.request_id) +
                         " does not match request " +
                         std::to_string(request_id));
  }
  return response;
}

void RetriableChannel::disconnect() {
  std::lock_guard lock(mu_);
  sock_.close();
}

}  // namespace gpf::net
