// Multi-sample (cohort) analysis: the operating mode behind the paper's
// Table 1 motivation experiment (1..30 samples processed concurrently)
// and the standard clinical workflow of per-sample calling followed by a
// cohort merge.
//
// Each sample runs through the full GPF WGS pipeline against the shared
// reference (the FM index and known-sites data are built once, like a
// broadcast variable); per-sample call sets are then merged into one
// cohort VCF with per-sample genotype columns.
#pragma once

#include <string>
#include <vector>

#include "core/wgs_pipeline.hpp"

namespace gpf::core {

struct SampleInput {
  std::string name;
  std::vector<FastqPair> pairs;
};

/// One row of the merged cohort call set: a site plus per-sample
/// genotypes (index-aligned with CohortResult::sample_names).
struct CohortSite {
  std::int32_t contig_id = -1;
  std::int64_t pos = -1;
  std::string ref;
  std::string alt;
  /// Maximum QUAL across carrying samples.
  double qual = 0.0;
  std::vector<Genotype> genotypes;  // kHomRef when absent from a sample

  bool operator==(const CohortSite&) const = default;
};

struct CohortResult {
  std::vector<std::string> sample_names;
  std::vector<WgsResult> per_sample;
  std::vector<CohortSite> sites;
};

/// Runs every sample through the WGS pipeline and merges the call sets.
CohortResult run_cohort(engine::Engine& engine, const Reference& reference,
                        std::vector<SampleInput> samples,
                        std::vector<VcfRecord> known_sites,
                        const PipelineConfig& config = {});

/// Merges already-called per-sample VCFs into cohort sites (site union;
/// samples without a call at a site are hom-ref).  Exposed for tests and
/// incremental workflows.
std::vector<CohortSite> merge_call_sets(
    const std::vector<std::vector<VcfRecord>>& per_sample_calls);

/// Renders the cohort as multi-sample VCF text.
std::string write_cohort_vcf(const VcfHeader& header,
                             const std::vector<std::string>& sample_names,
                             const std::vector<CohortSite>& sites);

}  // namespace gpf::core
