#include "core/wgs_pipeline.hpp"

#include "core/backend.hpp"

namespace gpf::core {
namespace {

/// Wires the Fig-3 DAG into `pipeline` and runs it; shared by both entry
/// points so in-process and backend runs execute the identical plan.
WgsResult build_and_run(Pipeline& pipeline, std::vector<FastqPair> pairs,
                        std::vector<VcfRecord> known_sites, bool use_gvcf) {
  // Resources (paper Fig 3's Bundle instances).
  auto* fastq = pipeline.add_resource(
      FastqPairBundle::make_undefined("fastqPair"));
  auto* known = pipeline.add_resource(VcfBundle::make_undefined("dbsnp"));
  auto* aligned = pipeline.add_resource(
      SamBundle::make_undefined("alignedSam"));
  auto* sorted = pipeline.add_resource(SamBundle::make_undefined("sortedSam"));
  auto* deduped = pipeline.add_resource(
      SamBundle::make_undefined("dedupedSam"));
  auto* partition_info = pipeline.add_resource(
      PartitionInfoResource::make_undefined("partitionInfo"));
  auto* realigned = pipeline.add_resource(
      SamBundle::make_undefined("realignedSam"));
  auto* recaled = pipeline.add_resource(
      SamBundle::make_undefined("recaledSam"));
  auto* vcf = pipeline.add_resource(VcfBundle::make_undefined("resultVcf"));
  auto* final_vcf = pipeline.add_resource(
      VcfResultResource::make_undefined("finalVcf"));
  GvcfBlocksResource* gvcf_blocks = nullptr;
  if (use_gvcf) {
    gvcf_blocks = pipeline.add_resource(
        GvcfBlocksResource::make_undefined("gvcfBlocks"));
  }

  // Processes (paper Fig 3's pipeline.addProcess calls).
  pipeline.add_process(std::make_unique<LoadFastqProcess>(
      "LoadFastq", std::move(pairs), fastq));
  pipeline.add_process(std::make_unique<LoadKnownSitesProcess>(
      "LoadDbsnp", std::move(known_sites), known));
  pipeline.add_process(
      std::make_unique<BwaMemProcess>("MyBwaMapping", fastq, aligned));
  pipeline.add_process(std::make_unique<ReadRepartitioner>(
      "MyRepartitioner", aligned, partition_info));
  pipeline.add_process(std::make_unique<SortProcess>(
      "MySort", aligned, partition_info, sorted));
  auto* markdup = pipeline.add_process(std::make_unique<MarkDuplicateProcess>(
      "MyMarkDuplicate", sorted, deduped));
  pipeline.add_process(std::make_unique<IndelRealignProcess>(
      "MyIndelRealign", deduped, known, partition_info, realigned));
  pipeline.add_process(std::make_unique<BaseRecalibrationProcess>(
      "MyBaseRecalibration", realigned, known, partition_info, recaled));
  pipeline.add_process(std::make_unique<HaplotypeCallerProcess>(
      "MyHaplotypeCaller", recaled, known, partition_info, vcf, use_gvcf,
      gvcf_blocks));
  pipeline.add_process(std::make_unique<CollectVcfProcess>(
      "CollectVcf", vcf, final_vcf));

  WgsResult result;
  result.report = pipeline.run();
  result.variants = final_vcf->get();
  if (use_gvcf) result.gvcf_blocks = gvcf_blocks->get();
  result.markdup_stats = markdup->stats();
  result.final_partitions = partition_info->get().partition_count();
  return result;
}

}  // namespace

WgsResult run_wgs_pipeline(engine::Engine& engine, const Reference& reference,
                           std::vector<FastqPair> pairs,
                           std::vector<VcfRecord> known_sites,
                           const PipelineConfig& config, bool use_gvcf) {
  Pipeline pipeline("wgs", engine, reference, config);
  return build_and_run(pipeline, std::move(pairs), std::move(known_sites),
                       use_gvcf);
}

WgsResult run_wgs_pipeline(ExecutionBackend& backend,
                           const Reference& reference,
                           std::vector<FastqPair> pairs,
                           std::vector<VcfRecord> known_sites,
                           const PipelineConfig& config, bool use_gvcf) {
  Pipeline pipeline("wgs", backend, reference, config);
  return build_and_run(pipeline, std::move(pairs), std::move(known_sites),
                       use_gvcf);
}

}  // namespace gpf::core
