// The GPF Process abstraction (paper Sec 3.1) and the pipeline context
// shared by all Processes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "align/bwamem.hpp"
#include "align/fm_index.hpp"
#include "compress/record_codec.hpp"
#include "core/resource.hpp"
#include "engine/dataset.hpp"
#include "formats/fasta.hpp"

namespace gpf::core {

class ExecutionBackend;

/// Paper Fig 2: Blocked -> Ready -> Running -> End.
enum class ProcessState { kBlocked, kReady, kRunning, kEnd };

/// Engine/DAG-level configuration of a pipeline run.  The three booleans
/// are the paper's headline optimizations, individually switchable so the
/// ablation benches can isolate them.
struct PipelineConfig {
  /// Serializer for shuffled genomic records (Table 3 / codec ablation).
  Codec codec = Codec::kGpf;
  /// Process-level DAG fusion: eliminate redundant partition/join shuffles
  /// (paper Fig 7 / Table 4).
  bool eliminate_redundancy = true;
  /// Dynamic repartition of hot partitions (paper Sec 4.4 / Figs 8-9).
  bool dynamic_repartition = true;
  /// Base genomic partition length in bases (Fig 8's 1,000,000 bp scaled
  /// to the synthetic genome sizes).
  std::int64_t partition_length = 100'000;
  /// Reads-per-partition split threshold for dynamic repartition.
  std::uint64_t split_threshold = 4'000;
  /// Partition count for the input FASTQ dataset.
  std::size_t fastq_partitions = 16;
  /// Trace-driven adaptive scheduling (sched/scheduler.hpp): the backend
  /// installs an AdaptiveScheduler around the plan, so element-wise engine
  /// stages are re-tasked against predicted skew.  Only task granularity
  /// changes — outputs stay bit-identical to the static path.
  bool adaptive_scheduling = false;
};

/// Shared state for one pipeline run: the engine, the reference (a
/// broadcast variable in Spark terms) and lazily-built index structures.
class PipelineContext {
 public:
  PipelineContext(engine::Engine& engine, const Reference& reference,
                  PipelineConfig config)
      : engine_(&engine), reference_(&reference), config_(config) {}

  engine::Engine& engine() { return *engine_; }
  const Reference& reference() const { return *reference_; }
  const PipelineConfig& config() const { return config_; }

  /// The backend executing the current plan (nullptr outside a backend
  /// run).  Set by ExecutionBackend::execute; Processes that care about
  /// physical placement may consult it, most should not.
  void set_backend(ExecutionBackend* backend) { backend_ = backend; }
  ExecutionBackend* backend() const { return backend_; }

  /// FM-index and aligner, built on first use and shared (the reference
  /// index is loaded once per executor in the real system).
  const align::ReadAligner& aligner();

  /// Contig dictionary derived from the reference.
  std::vector<SamHeader::ContigInfo> contig_infos() const;

 private:
  engine::Engine* engine_;
  const Reference* reference_;
  PipelineConfig config_;
  ExecutionBackend* backend_ = nullptr;
  std::unique_ptr<align::FmIndex> fm_index_;
  std::unique_ptr<align::ReadAligner> aligner_;
};

/// A Process: a named execution instance with declared input and output
/// Resources.  The Pipeline schedules it when all inputs are defined
/// (paper Fig 2 / Algorithm 1).
class Process {
 public:
  Process(std::string name, std::vector<Resource*> inputs,
          std::vector<Resource*> outputs)
      : name_(std::move(name)),
        inputs_(std::move(inputs)),
        outputs_(std::move(outputs)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  ProcessState state() const { return state_; }
  const std::vector<Resource*>& inputs() const { return inputs_; }
  const std::vector<Resource*>& outputs() const { return outputs_; }

  /// True when every input Resource is defined.
  bool ready() const {
    for (const auto* r : inputs_) {
      if (!r->defined()) return false;
    }
    return true;
  }

  /// Partition Processes group records by genomic partition and are
  /// eligible for the Fig 7 fusion.
  virtual bool is_partition_process() const { return false; }

  /// True when running this Process crosses a shuffle (wide) boundary —
  /// what the PhysicalPlan marks as a wide stage for the backends.
  /// Partition Processes shuffle by construction; Processes with an
  /// additional record-level shuffle (sort, markdup) override.
  virtual bool has_wide_dependency() const { return is_partition_process(); }

  /// Runs the process (state transitions handled here).
  void execute(PipelineContext& ctx);

  /// Wall seconds of the last execute() call.
  double wall_seconds() const { return wall_seconds_; }

  // --- fusion wiring (set by Pipeline's redundancy-elimination pass) ---

  /// When set, this process must publish its region-bundle dataset for the
  /// downstream consumer instead of flattening it.
  void set_emit_bundle(bool emit) { emit_bundle_ = emit; }
  bool emit_bundle() const { return emit_bundle_; }

  /// When set, this process consumes the upstream process's bundle dataset
  /// directly, skipping its own partition/join shuffles.
  void set_bundle_source(Process* source) { bundle_source_ = source; }
  Process* bundle_source() const { return bundle_source_; }

  const std::optional<engine::Dataset<RegionBundle>>& published_bundle()
      const {
    return bundle_output_;
  }

 protected:
  virtual void run(PipelineContext& ctx) = 0;

  void publish_bundle(engine::Dataset<RegionBundle> bundle) {
    bundle_output_ = std::move(bundle);
  }

 private:
  friend class Pipeline;
  friend class ExecutionBackend;
  void mark_state(ProcessState s) { state_ = s; }

  std::string name_;
  std::vector<Resource*> inputs_;
  std::vector<Resource*> outputs_;
  ProcessState state_ = ProcessState::kBlocked;
  double wall_seconds_ = 0.0;
  bool emit_bundle_ = false;
  Process* bundle_source_ = nullptr;
  std::optional<engine::Dataset<RegionBundle>> bundle_output_;
};

}  // namespace gpf::core
