#include "core/backend.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <stdexcept>

#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "sched/scheduler.hpp"

namespace gpf::core {

std::size_t PhysicalPlan::wide_stage_count() const {
  std::size_t n = 0;
  for (const auto& s : stages_) {
    if (s.wide) ++n;
  }
  return n;
}

std::size_t PhysicalPlan::wave_count() const {
  std::size_t waves = 0;
  for (const auto& s : stages_) waves = std::max(waves, s.wave + 1);
  return waves;
}

std::string PhysicalPlan::describe() const {
  std::string out;
  for (const auto& s : stages_) {
    if (!out.empty()) out += ' ';
    out += s.name + "[w" + std::to_string(s.wave);
    if (s.wide) out += ",wide";
    if (s.fused_into_chain) out += ",fused";
    if (s.emits_bundle) out += ",bundle>";
    if (s.adaptive) out += ",adaptive";
    out += ']';
  }
  return out;
}

PhysicalPlan build_physical_plan(
    const std::string& pipeline, const PipelineConfig& config,
    const std::vector<std::unique_ptr<Process>>& processes) {
  // Simulate the Algorithm-1 readiness loop statically.  The defined-set
  // is seeded from actual Resource state (pre-loaded inputs are ready at
  // wave 0) and grows wave by wave; within a wave, readiness is judged
  // against the state at wave START — exactly the semantics (and hence
  // exactly the execution order) of the historical runtime loop.
  std::set<const Resource*> defined;
  for (const auto& p : processes) {
    for (const Resource* r : p->inputs()) {
      if (r->defined()) defined.insert(r);
    }
  }

  std::vector<PhysicalStage> stages;
  std::vector<Process*> unfinished;
  for (const auto& p : processes) unfinished.push_back(p.get());

  std::size_t wave = 0;
  while (!unfinished.empty()) {
    std::vector<Process*> runnable;
    for (Process* p : unfinished) {
      bool ready = true;
      for (const Resource* r : p->inputs()) {
        if (defined.count(r) == 0) {
          ready = false;
          break;
        }
      }
      if (ready) runnable.push_back(p);
    }
    if (runnable.empty()) {
      std::string stuck;
      for (const Process* p : unfinished) {
        stuck += ' ' + p->name();
      }
      throw std::runtime_error("circular dependency among processes:" +
                               stuck);
    }
    for (Process* p : runnable) {
      PhysicalStage s;
      s.process = p;
      s.name = p->name();
      s.wave = wave;
      s.fused_into_chain = p->bundle_source() != nullptr;
      s.emits_bundle = p->emit_bundle();
      s.adaptive = config.adaptive_scheduling;
      // A fused stage consumes its upstream's bundle in place; its own
      // wide boundary was what the Fig-7 pass eliminated.
      s.wide = p->has_wide_dependency() && !s.fused_into_chain;
      for (const Resource* r : p->inputs()) s.inputs.push_back(r->name());
      for (const Resource* r : p->outputs()) s.outputs.push_back(r->name());
      stages.push_back(std::move(s));
      std::erase(unfinished, p);
    }
    for (const Process* p : runnable) {
      for (const Resource* r : p->outputs()) defined.insert(r);
    }
    ++wave;
  }
  return PhysicalPlan(pipeline, config, std::move(stages));
}

namespace {

/// Per-stage delta of the cumulative counters; snapshot fields pass
/// through from `after`.
BackendStageStats diff_counters(const BackendStageStats& before,
                                const BackendStageStats& after) {
  BackendStageStats d;
  d.blocks_put = after.blocks_put - before.blocks_put;
  d.blocks_fetched = after.blocks_fetched - before.blocks_fetched;
  d.bytes_put = after.bytes_put - before.bytes_put;
  d.bytes_fetched = after.bytes_fetched - before.bytes_fetched;
  d.bytes_spilled = after.bytes_spilled - before.bytes_spilled;
  d.lineage_recoveries = after.lineage_recoveries - before.lineage_recoveries;
  d.residency_hits = after.residency_hits - before.residency_hits;
  d.residency_misses = after.residency_misses - before.residency_misses;
  d.residency_evictions =
      after.residency_evictions - before.residency_evictions;
  d.pooled_bytes = after.pooled_bytes;
  return d;
}

}  // namespace

void ExecutionBackend::begin_plan(const PhysicalPlan&) {}
void ExecutionBackend::end_plan(const PhysicalPlan&) noexcept {}

BackendStageStats ExecutionBackend::counters() {
  BackendStageStats stats;
  stats.pooled_bytes = engine().buffer_pool().pooled_bytes();
  return stats;
}

void ExecutionBackend::execute(const PhysicalPlan& plan, PipelineContext& ctx,
                               PipelineReport& report) {
  report.backend = name();
  ctx.set_backend(this);
  // The adaptive scheduler is a plan-scoped engine seam, like the shuffle
  // transport: installed here so every backend inherits identical adaptive
  // behavior.  A scheduler the caller attached beforehand is respected
  // (and kept after the run).
  const bool install_scheduler =
      plan.config().adaptive_scheduling && engine().scheduler() == nullptr;
  if (install_scheduler) {
    engine().set_scheduler(std::make_shared<sched::AdaptiveScheduler>());
  }
  begin_plan(plan);
  Timer total;
  try {
    for (const PhysicalStage& s : plan.stages()) {
      s.process->mark_state(ProcessState::kReady);
      GPF_INFO("running process %s (%s backend)", s.name.c_str(),
               name().c_str());
      const std::size_t stages_before = engine().metrics().stage_count();
      const BackendStageStats before = counters();
      s.process->execute(ctx);

      PipelineReport::ProcessTiming t;
      t.name = s.name;
      t.wall_seconds = s.process->wall_seconds();
      const auto& stages = engine().metrics().stages();
      t.engine_stages = stages.size() - stages_before;
      Histogram task_ms100;
      for (std::size_t k = stages_before; k < stages.size(); ++k) {
        t.shuffle_write_bytes += stages[k].shuffle_write_bytes;
        t.shuffle_read_bytes += stages[k].shuffle_read_bytes;
        t.shuffle_records += stages[k].shuffle_records;
        for (const double sec : stages[k].task_seconds) {
          task_ms100.add(std::llround(sec * 1e5));
        }
      }
      if (!task_ms100.empty()) {
        t.task_p50_ms = static_cast<double>(task_ms100.percentile(0.50)) / 100.0;
        t.task_p95_ms = static_cast<double>(task_ms100.percentile(0.95)) / 100.0;
        t.task_p99_ms = static_cast<double>(task_ms100.percentile(0.99)) / 100.0;
      }
      t.backend = diff_counters(before, counters());
      report.timings.push_back(std::move(t));
    }
  } catch (...) {
    end_plan(plan);
    if (install_scheduler) engine().set_scheduler(nullptr);
    report.total_wall_seconds = total.seconds();
    throw;
  }
  end_plan(plan);
  if (install_scheduler) engine().set_scheduler(nullptr);
  report.total_wall_seconds = total.seconds();
}

const std::string& EngineBackend::name() const {
  static const std::string kName = "inprocess";
  return kName;
}

}  // namespace gpf::core
