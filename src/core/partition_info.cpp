#include "core/partition_info.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpf::core {

PartitionInfo::PartitionInfo(
    const std::vector<SamHeader::ContigInfo>& contigs,
    std::int64_t partition_length)
    : partition_length_(partition_length) {
  if (partition_length <= 0) {
    throw std::invalid_argument("partition_length must be positive");
  }
  std::uint32_t running = 0;
  for (const auto& c : contigs) {
    const auto parts = static_cast<std::uint32_t>(
        (c.length + partition_length - 1) / partition_length);
    partitions_per_contig_.push_back(std::max<std::uint32_t>(1, parts));
    contig_start_id_.push_back(running);
    contig_lengths_.push_back(c.length);
    running += partitions_per_contig_.back();
  }
  base_count_ = running;

  // Identity split table and base regions.
  split_table_.assign(base_count_, SplitEntry{});
  regions_.clear();
  regions_.reserve(base_count_);
  for (std::size_t cid = 0; cid < partitions_per_contig_.size(); ++cid) {
    for (std::uint32_t p = 0; p < partitions_per_contig_[cid]; ++p) {
      const std::int64_t start = static_cast<std::int64_t>(p) *
                                 partition_length_;
      regions_.push_back({static_cast<std::int32_t>(cid), start,
                          std::min(contig_lengths_[cid],
                                   start + partition_length_)});
      split_table_[contig_start_id_[cid] + p].start_id =
          contig_start_id_[cid] + p;
    }
  }
}

std::uint32_t PartitionInfo::base_partition_of(std::int32_t contig_id,
                                               std::int64_t pos) const {
  if (contig_id < 0 ||
      static_cast<std::size_t>(contig_id) >= contig_start_id_.size()) {
    throw std::out_of_range("base_partition_of: bad contig id");
  }
  const auto cid = static_cast<std::size_t>(contig_id);
  pos = std::clamp<std::int64_t>(pos, 0, contig_lengths_[cid] - 1);
  // Paper Fig 8: segment base address + offset.
  const auto offset = static_cast<std::uint32_t>(pos / partition_length_);
  return contig_start_id_[cid] +
         std::min(offset, partitions_per_contig_[cid] - 1);
}

void PartitionInfo::apply_split(
    std::span<const std::uint64_t> reads_per_partition,
    std::uint64_t threshold) {
  if (reads_per_partition.size() != base_count_) {
    throw std::invalid_argument("apply_split: count vector size mismatch");
  }
  if (threshold == 0) throw std::invalid_argument("apply_split: threshold 0");

  split_table_.assign(base_count_, SplitEntry{});
  regions_.clear();
  std::uint32_t next_id = 0;
  for (std::uint32_t base = 0; base < base_count_; ++base) {
    const std::uint64_t reads = reads_per_partition[base];
    const auto splits = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, (reads + threshold - 1) / threshold));
    split_table_[base] = {splits, next_id};
    // Carve the base region into `splits` equal sub-ranges.
    // Recover the base region from the original geometry.
    std::size_t cid = 0;
    while (cid + 1 < contig_start_id_.size() &&
           contig_start_id_[cid + 1] <= base) {
      ++cid;
    }
    const std::uint32_t within = base - contig_start_id_[cid];
    const std::int64_t base_start =
        static_cast<std::int64_t>(within) * partition_length_;
    const std::int64_t base_end =
        std::min(contig_lengths_[cid], base_start + partition_length_);
    const std::int64_t base_len = base_end - base_start;
    const std::int64_t sub_len =
        std::max<std::int64_t>(1, base_len / splits);
    for (std::uint32_t s = 0; s < splits; ++s) {
      const std::int64_t lo = base_start + static_cast<std::int64_t>(s) *
                                               sub_len;
      const std::int64_t hi =
          s + 1 == splits ? base_end : lo + sub_len;
      regions_.push_back({static_cast<std::int32_t>(cid), lo,
                          std::min(hi, base_end)});
    }
    next_id += splits;
  }
  split_applied_ = true;
}

std::uint32_t PartitionInfo::partition_of(std::int32_t contig_id,
                                          std::int64_t pos) const {
  const std::uint32_t base = base_partition_of(contig_id, pos);
  const SplitEntry& entry = split_table_[base];
  if (entry.split_count <= 1) return entry.start_id;
  // Paper Fig 9: length of partition after split, offset in the split.
  const auto cid = static_cast<std::size_t>(contig_id);
  const std::uint32_t within = base - contig_start_id_[cid];
  const std::int64_t base_start =
      static_cast<std::int64_t>(within) * partition_length_;
  const std::int64_t base_end =
      std::min(contig_lengths_[cid], base_start + partition_length_);
  const std::int64_t sub_len = std::max<std::int64_t>(
      1, (base_end - base_start) / entry.split_count);
  const auto offset = static_cast<std::uint32_t>(
      std::min<std::int64_t>((pos - base_start) / sub_len,
                             entry.split_count - 1));
  return entry.start_id + offset;
}

std::uint32_t PartitionInfo::partition_count() const {
  return static_cast<std::uint32_t>(regions_.size());
}

PartitionInfo::Region PartitionInfo::region_of(std::uint32_t final_id) const {
  return regions_.at(final_id);
}

}  // namespace gpf::core
