// Convenience builder for the paper's test-case pipeline (Fig 1/Fig 3):
// LoadFASTQ -> BwaMem -> Sort -> MarkDuplicate -> Repartition ->
// IndelRealign -> BaseRecalibration -> HaplotypeCaller -> CollectVCF.
//
// This is the programmatic equivalent of the user code in paper Fig 3 and
// the workload behind Figs 10-13 and Tables 3-4.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "core/processes.hpp"
#include "formats/fastq.hpp"
#include "formats/vcf.hpp"

namespace gpf::core {

struct WgsResult {
  std::vector<VcfRecord> variants;
  /// Reference-confidence blocks; filled only when `use_gvcf` was set
  /// (the paper API's useGVCF flag).
  std::vector<caller::GvcfBlock> gvcf_blocks;
  cleaner::MarkDuplicatesStats markdup_stats;
  PipelineReport report;
  std::size_t final_partitions = 0;
};

/// Builds and runs the full WGS pipeline over in-memory inputs (on the
/// default in-process backend wrapping `engine`).
WgsResult run_wgs_pipeline(engine::Engine& engine, const Reference& reference,
                           std::vector<FastqPair> pairs,
                           std::vector<VcfRecord> known_sites,
                           const PipelineConfig& config = {},
                           bool use_gvcf = false);

/// Same pipeline, submitted to an explicit execution backend (in-process,
/// spilling, or distributed — see src/exec).  All backends produce
/// bit-identical results.
WgsResult run_wgs_pipeline(ExecutionBackend& backend,
                           const Reference& reference,
                           std::vector<FastqPair> pairs,
                           std::vector<VcfRecord> known_sites,
                           const PipelineConfig& config = {},
                           bool use_gvcf = false);

}  // namespace gpf::core
