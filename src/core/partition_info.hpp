// PartitionInfo: the paper's auxiliary structure mapping genomic positions
// to partition ids (Fig 8) with a dynamic split table for hot partitions
// (Fig 9, Sec 4.4).
//
// Base mapping: each contig is divided into fixed-length segments; the
// partition id of (contig, position) is the contig's starting partition
// number plus position / partition_length.
//
// Dynamic splitting: after the RepartitionInfoProducer counts reads per
// partition, partitions above a threshold are split into `ceil(count /
// threshold)` equal sub-ranges.  A split table maps old ids to (split
// count, new start id); ids are renumbered densely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "formats/sam.hpp"

namespace gpf::core {

class PartitionInfo {
 public:
  /// Builds the base mapping for contigs of the given lengths.
  PartitionInfo(const std::vector<SamHeader::ContigInfo>& contigs,
                std::int64_t partition_length);

  std::int64_t partition_length() const { return partition_length_; }

  /// Base (pre-split) partition id of a position (paper Fig 8).
  std::uint32_t base_partition_of(std::int32_t contig_id,
                                  std::int64_t pos) const;

  /// Number of base partitions.
  std::uint32_t base_partition_count() const { return base_count_; }

  /// Applies the dynamic split: `reads_per_partition` indexed by base id;
  /// any partition with more reads than `threshold` is split.  Replaces
  /// any previous split table.
  void apply_split(std::span<const std::uint64_t> reads_per_partition,
                   std::uint64_t threshold);

  /// Final (post-split) partition id of a position (paper Fig 9).  Without
  /// a split table this equals a dense renumbering of the base ids.
  std::uint32_t partition_of(std::int32_t contig_id, std::int64_t pos) const;

  /// Number of final partitions.
  std::uint32_t partition_count() const;

  /// Genomic range [start, end) of a final partition.
  struct Region {
    std::int32_t contig_id = -1;
    std::int64_t start = 0;
    std::int64_t end = 0;
  };
  Region region_of(std::uint32_t final_id) const;

  /// Split-table entry for a base partition (paper Fig 9's table rows).
  struct SplitEntry {
    std::uint32_t split_count = 1;
    std::uint32_t start_id = 0;
  };
  const std::vector<SplitEntry>& split_table() const { return split_table_; }
  bool has_split() const { return split_applied_; }

 private:
  std::int64_t partition_length_;
  /// Paper Fig 8's two arrays: partitions per contig and starting number.
  std::vector<std::uint32_t> partitions_per_contig_;
  std::vector<std::uint32_t> contig_start_id_;
  std::vector<std::int64_t> contig_lengths_;
  std::uint32_t base_count_ = 0;

  bool split_applied_ = false;
  std::vector<SplitEntry> split_table_;  // indexed by base id
  std::vector<Region> regions_;          // indexed by final id
};

}  // namespace gpf::core
