// File-backed endpoints — the C++ equivalent of the paper's FileLoader
// API (Fig 3: `FileLoader.loadFastqPairToRdd(sc, fastqPath1, fastqPath2)`)
// plus writers for every format, so pipelines can consume and produce
// real files on disk.
#pragma once

#include <string>
#include <vector>

#include "formats/fasta.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::core {

/// Reads a whole file into memory; throws std::runtime_error with the
/// path on failure.
std::string read_file(const std::string& path);
/// Writes atomically (temp file + fsync + rename, via fs::atomic_write_file
/// — a crash mid-write can never leave a torn file that parses as
/// silently-short FASTQ/FASTA/VCF); throws std::runtime_error with the
/// path on failure.
void write_file(const std::string& path, std::string_view contents);

/// FASTQ ----------------------------------------------------------------

std::vector<FastqRecord> load_fastq_file(const std::string& path);
/// Paper: loadFastqPairToRdd — zips two mate files into pairs.
std::vector<FastqPair> load_fastq_pair_files(const std::string& path1,
                                             const std::string& path2);
void save_fastq_file(const std::string& path,
                     const std::vector<FastqRecord>& records);
/// Splits pairs back into the conventional _1/_2 mate files.
void save_fastq_pair_files(const std::string& path1,
                           const std::string& path2,
                           const std::vector<FastqPair>& pairs);

/// FASTA ----------------------------------------------------------------

Reference load_fasta_file(const std::string& path);
void save_fasta_file(const std::string& path, const Reference& reference);

/// SAM ------------------------------------------------------------------

SamFile load_sam_file(const std::string& path);
void save_sam_file(const std::string& path, const SamHeader& header,
                   const std::vector<SamRecord>& records);

/// VCF ------------------------------------------------------------------

VcfFile load_vcf_file(const std::string& path);
void save_vcf_file(const std::string& path, const VcfHeader& header,
                   const std::vector<VcfRecord>& records);

}  // namespace gpf::core
