// The GPF programming model's Resource abstraction (paper Sec 3.1).
//
// A Resource is the unit of data dependency between Processes: a named
// slot that is either `undefined` (empty) or `defined` (filled by a
// producing Process).  The typed subclasses wrap engine datasets (the
// paper's RDD Bundles: FASTQPairBundle, SAMBundle, VCFBundle,
// PartitionInfoBundle) or scalar values (the BQSR table, the reference
// path).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/dataset.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::core {

/// State machine (paper Fig 2): undefined -> defined, set exactly once by
/// the producing Process (or pre-defined by the user for pipeline inputs).
class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}
  virtual ~Resource() = default;

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const { return name_; }
  bool defined() const { return defined_; }

 protected:
  void mark_defined() {
    if (defined_) {
      throw std::logic_error("resource '" + name_ + "' defined twice");
    }
    defined_ = true;
  }

 private:
  std::string name_;
  bool defined_ = false;
};

/// A dataset-valued Resource (an RDD Bundle).
template <typename T>
class BundleResource final : public Resource {
 public:
  using Resource::Resource;

  /// Creates a pre-defined bundle (paper: `Bundle.defined(...)`).
  static std::unique_ptr<BundleResource> make_defined(
      std::string name, engine::Dataset<T> dataset) {
    auto r = std::make_unique<BundleResource>(std::move(name));
    r->set(std::move(dataset));
    return r;
  }

  /// Creates an empty bundle to be filled by a Process
  /// (paper: `Bundle.undefined(...)`).
  static std::unique_ptr<BundleResource> make_undefined(std::string name) {
    return std::make_unique<BundleResource>(std::move(name));
  }

  void set(engine::Dataset<T> dataset) {
    dataset_ = std::move(dataset);
    mark_defined();
  }

  const engine::Dataset<T>& get() const {
    if (!defined()) {
      throw std::logic_error("resource '" + name() + "' read while undefined");
    }
    return *dataset_;
  }

 private:
  std::optional<engine::Dataset<T>> dataset_;
};

/// A scalar-valued Resource (headers, tables, paths).
template <typename T>
class ValueResource final : public Resource {
 public:
  using Resource::Resource;

  static std::unique_ptr<ValueResource> make_defined(std::string name,
                                                     T value) {
    auto r = std::make_unique<ValueResource>(std::move(name));
    r->set(std::move(value));
    return r;
  }

  static std::unique_ptr<ValueResource> make_undefined(std::string name) {
    return std::make_unique<ValueResource>(std::move(name));
  }

  void set(T value) {
    value_ = std::move(value);
    mark_defined();
  }

  const T& get() const {
    if (!defined()) {
      throw std::logic_error("resource '" + name() + "' read while undefined");
    }
    return *value_;
  }

 private:
  std::optional<T> value_;
};

/// A genomic region bundle: the unit of the fused "Bundle RDD" from the
/// paper's Fig 7 — one partitioned region's SAM records together with the
/// reference slice descriptor and the known-sites slice it needs.
struct RegionBundle {
  std::uint32_t partition_id = 0;
  std::int32_t contig_id = -1;
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// Reference bases for [start, end) — carried in the bundle so shuffle
  /// volume reflects the paper's FASTA partition RDD.
  std::string ref_bases;
  std::vector<SamRecord> sam;
  std::vector<VcfRecord> known;
};

using FastqPairBundle = BundleResource<FastqPair>;
using SamBundle = BundleResource<SamRecord>;
using VcfBundle = BundleResource<VcfRecord>;
using RegionBundleResource = BundleResource<RegionBundle>;

}  // namespace gpf::core
