#include "core/processes.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "caller/haplotype_caller.hpp"
#include "cleaner/indel_realign.hpp"
#include "cleaner/markdup.hpp"
#include "cleaner/sorter.hpp"
#include "common/bytes.hpp"
#include "common/timer.hpp"
#include "compress/qual_codec.hpp"
#include "compress/seq_codec.hpp"

namespace gpf::core {
namespace {

/// Raw FASTQ text size of a pair (the storage-subsystem read volume).
std::uint64_t fastq_text_size(const FastqPair& p) {
  const auto one = [](const FastqRecord& r) {
    return r.name.size() + r.sequence.size() + r.quality.size() + 7;
  };
  return one(p.first) + one(p.second);
}

/// VCF text size estimate for output-volume accounting.
std::uint64_t vcf_text_size(const VcfRecord& v) {
  return 24 + v.ref.size() + v.alt.size() + v.id.size();
}

/// Records a synthetic stage for driver-side or I/O-only steps that do not
/// run through Dataset transformations.
void record_stage(PipelineContext& ctx, std::string name, double seconds,
                  std::uint64_t input_bytes, std::uint64_t output_bytes,
                  std::size_t tasks = 1) {
  engine::StageMetrics stage;
  stage.name = std::move(name);
  stage.task_count = tasks;
  stage.task_seconds.assign(tasks, seconds / static_cast<double>(tasks));
  stage.wall_seconds = seconds;
  stage.input_bytes = input_bytes;
  stage.output_bytes = output_bytes;
  ctx.engine().metrics().add_stage(std::move(stage));
}

// --- RegionBundle batch codec ----------------------------------------------

std::vector<std::uint8_t> encode_bundle_batch(
    std::span<const RegionBundle> bundles, Codec codec) {
  ByteWriter w;
  w.u32(0x474e4442);  // "GNDB"
  w.uvarint(bundles.size());
  for (const auto& b : bundles) {
    w.u32(b.partition_id);
    w.i32(b.contig_id);
    w.i64(b.start);
    w.i64(b.end);
    if (codec == Codec::kGpf) {
      // 2-bit pack the reference slice; N positions listed explicitly.
      std::string dummy_qual(b.ref_bases.size(), 'I');
      const CompressedSequence seq =
          compress_sequence(b.ref_bases, dummy_qual);
      w.uvarint(seq.length);
      w.raw(std::span(seq.packed.data(), seq.packed.size()));
      std::vector<std::uint64_t> n_positions;
      for (std::size_t i = 0; i < b.ref_bases.size(); ++i) {
        if (b.ref_bases[i] == 'N') n_positions.push_back(i);
      }
      w.uvarint(n_positions.size());
      for (const auto p : n_positions) w.uvarint(p);
    } else {
      w.str(b.ref_bases);
    }
    const auto sam = encode_sam_batch(b.sam, codec);
    w.uvarint(sam.size());
    w.raw(std::span(sam.data(), sam.size()));
    const auto vcf = encode_vcf_batch(b.known, codec);
    w.uvarint(vcf.size());
    w.raw(std::span(vcf.data(), vcf.size()));
  }
  return w.take();
}

std::vector<RegionBundle> decode_bundle_batch(
    std::span<const std::uint8_t> bytes, Codec codec) {
  ByteReader r(bytes);
  if (r.u32() != 0x474e4442) {
    throw std::invalid_argument("bundle batch: bad magic");
  }
  const std::uint64_t count = r.uvarint();
  std::vector<RegionBundle> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RegionBundle b;
    b.partition_id = r.u32();
    b.contig_id = r.i32();
    b.start = r.i64();
    b.end = r.i64();
    if (codec == Codec::kGpf) {
      CompressedSequence seq;
      seq.length = static_cast<std::uint32_t>(r.uvarint());
      const auto raw = r.raw(packed_size(seq.length));
      seq.packed.assign(raw.begin(), raw.end());
      std::string qual(seq.length, 'I');
      b.ref_bases = decompress_sequence(seq, qual);
      const std::uint64_t n_count = r.uvarint();
      for (std::uint64_t n = 0; n < n_count; ++n) {
        b.ref_bases[r.uvarint()] = 'N';
      }
    } else {
      b.ref_bases = r.str();
    }
    const std::size_t sam_size = r.uvarint();
    b.sam = decode_sam_batch(r.raw(sam_size), codec);
    const std::size_t vcf_size = r.uvarint();
    b.known = decode_vcf_batch(r.raw(vcf_size), codec);
    out.push_back(std::move(b));
  }
  return out;
}

engine::ShuffleCodec<RegionBundle> make_bundle_codec(Codec codec) {
  return {
      [codec](std::span<const RegionBundle> b) {
        return encode_bundle_batch(b, codec);
      },
      [codec](std::span<const std::uint8_t> bytes) {
        return decode_bundle_batch(bytes, codec);
      },
  };
}

/// Partition function for mapped records; unmapped reads ride along in the
/// partition of their mate position (or 0).
std::uint32_t record_partition(const SamRecord& rec,
                               const PartitionInfo& info) {
  if (rec.contig_id >= 0) return info.partition_of(rec.contig_id, rec.pos);
  if (rec.mate_contig_id >= 0) {
    return info.partition_of(rec.mate_contig_id, rec.mate_pos);
  }
  return 0;
}

}  // namespace

engine::ShuffleCodec<FastqPair> make_fastq_pair_codec(Codec codec) {
  return {
      [codec](std::span<const FastqPair> p) {
        return encode_fastq_pair_batch(p, codec);
      },
      [codec](std::span<const std::uint8_t> bytes) {
        return decode_fastq_pair_batch(bytes, codec);
      },
      [codec](std::span<const FastqPair> p, std::vector<std::uint8_t>& out) {
        encode_fastq_pair_batch_into(p, codec, out);
      },
  };
}

engine::ShuffleCodec<SamRecord> make_sam_codec(Codec codec) {
  return {
      [codec](std::span<const SamRecord> r) {
        return encode_sam_batch(r, codec);
      },
      [codec](std::span<const std::uint8_t> bytes) {
        return decode_sam_batch(bytes, codec);
      },
      [codec](std::span<const SamRecord> r, std::vector<std::uint8_t>& out) {
        encode_sam_batch_into(r, codec, out);
      },
  };
}

engine::ShuffleCodec<VcfRecord> make_vcf_codec(Codec codec) {
  return {
      [codec](std::span<const VcfRecord> r) {
        return encode_vcf_batch(r, codec);
      },
      [codec](std::span<const std::uint8_t> bytes) {
        return decode_vcf_batch(bytes, codec);
      },
      [codec](std::span<const VcfRecord> r, std::vector<std::uint8_t>& out) {
        encode_vcf_batch_into(r, codec, out);
      },
  };
}

// --- LoadFastqProcess -------------------------------------------------------

LoadFastqProcess::LoadFastqProcess(std::string name,
                                   std::vector<FastqPair> pairs,
                                   FastqPairBundle* output)
    : Process(std::move(name), {}, {output}),
      pairs_(std::move(pairs)),
      output_(output) {}

void LoadFastqProcess::run(PipelineContext& ctx) {
  std::uint64_t raw_bytes = 0;
  for (const auto& p : pairs_) raw_bytes += fastq_text_size(p);
  Timer t;
  auto dataset =
      ctx.engine()
          .parallelize(std::move(pairs_), ctx.config().fastq_partitions)
          .with_codec(make_fastq_pair_codec(ctx.config().codec));
  record_stage(ctx, name() + ".load", t.seconds(), raw_bytes, 0,
               ctx.config().fastq_partitions);
  output_->set(std::move(dataset));
}

// --- LoadKnownSitesProcess --------------------------------------------------

LoadKnownSitesProcess::LoadKnownSitesProcess(std::string name,
                                             std::vector<VcfRecord> sites,
                                             VcfBundle* output)
    : Process(std::move(name), {}, {output}),
      sites_(std::move(sites)),
      output_(output) {}

void LoadKnownSitesProcess::run(PipelineContext& ctx) {
  std::uint64_t raw_bytes = 0;
  for (const auto& v : sites_) raw_bytes += vcf_text_size(v);
  Timer t;
  auto dataset =
      ctx.engine()
          .parallelize(std::move(sites_),
                       std::max<std::size_t>(1,
                                             ctx.config().fastq_partitions / 4))
          .with_codec(make_vcf_codec(ctx.config().codec));
  record_stage(ctx, name() + ".load", t.seconds(), raw_bytes, 0, 1);
  output_->set(std::move(dataset));
}

// --- BwaMemProcess ----------------------------------------------------------

BwaMemProcess::BwaMemProcess(std::string name, FastqPairBundle* input,
                             SamBundle* output)
    : Process(std::move(name), {input}, {output}),
      input_(input),
      output_(output) {}

void BwaMemProcess::run(PipelineContext& ctx) {
  // The FM index is a prebuilt artifact in production (bwa ships hg19
  // indexes; the paper's runs load, not build, it), so construction time
  // is deliberately NOT recorded as a pipeline stage: replaying it as
  // data-scaled work would wrongly charge the aligner a fixed per-cluster
  // setup cost multiplied by dataset size.
  const align::ReadAligner& aligner = ctx.aligner();

  auto aligned = input_->get().flat_map(
      "aligner.bwamem",
      [&aligner](const FastqPair& pair) -> std::vector<SamRecord> {
        auto [r1, r2] = aligner.align_pair(pair);
        std::vector<SamRecord> out;
        out.reserve(2);
        out.push_back(std::move(r1));
        out.push_back(std::move(r2));
        return out;
      });
  output_->set(
      aligned.with_codec(make_sam_codec(ctx.config().codec)));
}

// --- ReadRepartitioner ------------------------------------------------------

ReadRepartitioner::ReadRepartitioner(std::string name, SamBundle* input,
                                     PartitionInfoResource* output)
    : Process(std::move(name), {input}, {output}),
      input_(input),
      output_(output) {}

void ReadRepartitioner::run(PipelineContext& ctx) {
  PartitionInfo info(ctx.contig_infos(), ctx.config().partition_length);
  const std::size_t buckets = info.base_partition_count();

  // Count reads per base partition (the paper's (partition id, 1) tuples
  // reduced with collect()).
  using Counts = std::vector<std::uint64_t>;
  const Counts counts = input_->get().aggregate<Counts>(
      "repartition.count", Counts(buckets, 0),
      [&info](Counts acc, const SamRecord& rec) {
        ++acc[record_partition(rec, info)];
        return acc;
      },
      [](Counts a, Counts b) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
        return a;
      });

  if (ctx.config().dynamic_repartition) {
    Timer t;
    info.apply_split(counts, ctx.config().split_threshold);
    record_stage(ctx, "repartition.split", t.seconds(), 0, 0);
  }
  output_->set(std::move(info));
}

// --- SortProcess ------------------------------------------------------------

SortProcess::SortProcess(std::string name, SamBundle* input,
                         PartitionInfoResource* partition_info,
                         SamBundle* output)
    : Process(std::move(name), {input, partition_info}, {output}),
      input_(input),
      partition_info_(partition_info),
      output_(output) {}

void SortProcess::run(PipelineContext& ctx) {
  const PartitionInfo& info = partition_info_->get();
  auto shuffled = input_->get().shuffle(
      "cleaner.sort.shuffle", info.partition_count(),
      [&info](const SamRecord& rec) { return record_partition(rec, info); });
  auto sorted = shuffled.map_partitions<SamRecord>(
      "cleaner.sort.local", [](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        cleaner::coordinate_sort(out);
        return out;
      });
  output_->set(sorted.with_codec(make_sam_codec(ctx.config().codec)));
}

// --- MarkDuplicateProcess ---------------------------------------------------

MarkDuplicateProcess::MarkDuplicateProcess(std::string name, SamBundle* input,
                                           SamBundle* output)
    : Process(std::move(name), {input}, {output}),
      input_(input),
      output_(output) {}

void MarkDuplicateProcess::run(PipelineContext& ctx) {
  // Duplicates share a fragment signature, so routing by signature hash
  // keeps every signature group within one partition.
  const std::size_t n_out =
      std::max<std::size_t>(ctx.engine().pool().size() * 2,
                            input_->get().partition_count());
  auto shuffled = input_->get().shuffle(
      "cleaner.markdup.shuffle", n_out, [](const SamRecord& rec) {
        const auto sig = cleaner::fragment_signature(rec);
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mixin = [&h](std::uint64_t v) {
          h ^= v;
          h *= 0x100000001b3ULL;
        };
        mixin(static_cast<std::uint64_t>(sig.contig_id));
        mixin(static_cast<std::uint64_t>(sig.unclipped_start));
        mixin(static_cast<std::uint64_t>(sig.mate_contig_id));
        mixin(static_cast<std::uint64_t>(sig.mate_pos));
        return h;
      });

  std::mutex stats_mu;
  stats_ = {};
  auto marked = shuffled.map_partitions<SamRecord>(
      "cleaner.markdup.mark",
      [this, &stats_mu](const std::vector<SamRecord>& part) {
        std::vector<SamRecord> out = part;
        const auto s = cleaner::mark_duplicates(out);
        {
          std::lock_guard lock(stats_mu);
          stats_.records += s.records;
          stats_.duplicates_marked += s.duplicates_marked;
          stats_.signature_groups += s.signature_groups;
        }
        return out;
      });
  output_->set(marked.with_codec(make_sam_codec(ctx.config().codec)));
}

// --- region bundle construction ----------------------------------------------

engine::Dataset<RegionBundle> build_region_bundles(
    PipelineContext& ctx, const engine::Dataset<SamRecord>& sam,
    const engine::Dataset<VcfRecord>& known, const PartitionInfo& info,
    const std::string& stage_prefix) {
  const std::size_t n_out = info.partition_count();
  const Codec codec = ctx.config().codec;

  // Shuffle 1: SAM records grouped by partition id.
  auto sam_parts = sam.with_codec(make_sam_codec(codec))
                       .shuffle(stage_prefix + ".sam_groupby", n_out,
                                [&info](const SamRecord& rec) {
                                  return record_partition(rec, info);
                                });

  // Shuffle 2: FASTA partition RDD — reference slices routed to their
  // partition (paper Fig 7's "groupBy partition ID" over FASTA contigs).
  std::vector<RegionBundle> fasta_chunks;
  fasta_chunks.reserve(n_out);
  for (std::uint32_t pid = 0; pid < n_out; ++pid) {
    const auto region = info.region_of(pid);
    RegionBundle chunk;
    chunk.partition_id = pid;
    chunk.contig_id = region.contig_id;
    chunk.start = region.start;
    chunk.end = region.end;
    chunk.ref_bases = std::string(ctx.reference().slice(
        region.contig_id, region.start, region.end - region.start));
    fasta_chunks.push_back(std::move(chunk));
  }
  auto fasta_parts =
      ctx.engine()
          .parallelize(std::move(fasta_chunks),
                       std::max<std::size_t>(1, n_out / 4))
          .with_codec(make_bundle_codec(codec))
          .shuffle(stage_prefix + ".fasta_groupby", n_out,
                   [](const RegionBundle& c) { return c.partition_id; });

  // Shuffle 3: known-VCF partition RDD.
  auto vcf_parts = known.with_codec(make_vcf_codec(codec))
                       .shuffle(stage_prefix + ".vcf_groupby", n_out,
                                [&info](const VcfRecord& v) {
                                  return info.partition_of(v.contig_id,
                                                           v.pos);
                                });

  // Join: co-partitioned by construction, so the join zips partitions by
  // index.
  const auto& fasta_partitions = fasta_parts.partitions();
  const auto& vcf_partitions = vcf_parts.partitions();
  return sam_parts.map_partitions_indexed<RegionBundle>(
      stage_prefix + ".join",
      [&fasta_partitions, &vcf_partitions](
          std::size_t pid, const std::vector<SamRecord>& sam_part) {
        RegionBundle bundle;
        if (!fasta_partitions[pid].empty()) {
          bundle = fasta_partitions[pid][0];  // ref slice + region info
        }
        bundle.partition_id = static_cast<std::uint32_t>(pid);
        bundle.sam = sam_part;
        cleaner::coordinate_sort(bundle.sam);
        bundle.known = vcf_partitions[pid];
        std::sort(bundle.known.begin(), bundle.known.end(), vcf_less);
        std::vector<RegionBundle> out;
        out.push_back(std::move(bundle));
        return out;
      });
}

std::size_t encoded_bundle_bytes(std::span<const RegionBundle> bundles,
                                 Codec codec) {
  return encode_bundle_batch(bundles, codec).size();
}

engine::Dataset<SamRecord> flatten_bundles(
    PipelineContext& ctx, const engine::Dataset<RegionBundle>& bundles,
    const std::string& stage_name) {
  auto flat = bundles.flat_map(
      stage_name,
      [](const RegionBundle& b) { return b.sam; });
  return flat.with_codec(make_sam_codec(ctx.config().codec));
}

// --- IndelRealignProcess ----------------------------------------------------

IndelRealignProcess::IndelRealignProcess(std::string name, SamBundle* input,
                                         VcfBundle* known,
                                         PartitionInfoResource* partition_info,
                                         SamBundle* output)
    : Process(std::move(name), {input, known, partition_info}, {output}),
      input_(input),
      known_(known),
      partition_info_(partition_info),
      output_(output) {}

void IndelRealignProcess::run(PipelineContext& ctx) {
  engine::Dataset<RegionBundle> bundles =
      bundle_source() != nullptr
          ? *bundle_source()->published_bundle()
          : build_region_bundles(ctx, input_->get(), known_->get(),
                                 partition_info_->get(), "cleaner.indel");

  const Reference& reference = ctx.reference();
  auto processed = bundles.map(
      "cleaner.indel.realign", [&reference](const RegionBundle& in) {
        RegionBundle b = in;
        const cleaner::RealignOptions options;
        const auto targets =
            cleaner::find_realign_targets(b.sam, b.known, options);
        cleaner::realign_reads(b.sam, reference, targets, options);
        return b;
      });

  if (emit_bundle()) {
    publish_bundle(processed);
    // The flat output is fused away; downstream reads the bundle.
    output_->set(ctx.engine().make_dataset<SamRecord>({}));
  } else {
    output_->set(
        flatten_bundles(ctx, processed, "cleaner.indel.flatten"));
  }
}

// --- BaseRecalibrationProcess -------------------------------------------------

BaseRecalibrationProcess::BaseRecalibrationProcess(
    std::string name, SamBundle* input, VcfBundle* known,
    PartitionInfoResource* partition_info, SamBundle* output)
    : Process(std::move(name), {input, known, partition_info}, {output}),
      input_(input),
      known_(known),
      partition_info_(partition_info),
      output_(output) {}

void BaseRecalibrationProcess::run(PipelineContext& ctx) {
  engine::Dataset<RegionBundle> bundles =
      bundle_source() != nullptr
          ? *bundle_source()->published_bundle()
          : build_region_bundles(ctx, input_->get(), known_->get(),
                                 partition_info_->get(), "cleaner.bqsr");

  const Reference& reference = ctx.reference();

  // Pass 1: per-partition covariate tables.
  auto tables = bundles.map(
      "cleaner.bqsr.collect_covariates",
      [&reference](const RegionBundle& b) {
        const cleaner::KnownSites known_sites(b.known);
        return cleaner::collect_covariates(b.sam, reference, known_sites);
      });

  // Collect: merge on the driver and broadcast — the serial step the
  // paper observes slowing BQSR's parallel efficiency.
  Timer collect_timer;
  cleaner::RecalTable merged;
  for (const auto& part : tables.partitions()) {
    for (const auto& t : part) merged.merge(t);
  }
  broadcast_bytes_ = merged.byte_size();
  record_stage(ctx, "cleaner.bqsr.collect", collect_timer.seconds(), 0,
               broadcast_bytes_);

  // Pass 2: apply.
  auto recalibrated = bundles.map(
      "cleaner.bqsr.apply", [&merged](const RegionBundle& in) {
        RegionBundle b = in;
        cleaner::apply_recalibration(b.sam, merged);
        return b;
      });

  if (emit_bundle()) {
    publish_bundle(recalibrated);
    output_->set(ctx.engine().make_dataset<SamRecord>({}));
  } else {
    output_->set(
        flatten_bundles(ctx, recalibrated, "cleaner.bqsr.flatten"));
  }
}

// --- HaplotypeCallerProcess ---------------------------------------------------

namespace {

/// Output resource list for the HaplotypeCaller, depending on gVCF mode.
std::vector<Resource*> hc_outputs(VcfBundle* output,
                                  GvcfBlocksResource* gvcf_output) {
  std::vector<Resource*> outs{output};
  if (gvcf_output != nullptr) outs.push_back(gvcf_output);
  return outs;
}

}  // namespace

HaplotypeCallerProcess::HaplotypeCallerProcess(
    std::string name, SamBundle* input, VcfBundle* known,
    PartitionInfoResource* partition_info, VcfBundle* output, bool use_gvcf,
    GvcfBlocksResource* gvcf_output)
    : Process(std::move(name), {input, known, partition_info},
              hc_outputs(output, gvcf_output)),
      input_(input),
      known_(known),
      partition_info_(partition_info),
      output_(output),
      use_gvcf_(use_gvcf),
      gvcf_output_(gvcf_output) {
  if (use_gvcf_ && gvcf_output_ == nullptr) {
    throw std::invalid_argument(
        "HaplotypeCallerProcess: useGVCF requires a gvcf output resource");
  }
}

void HaplotypeCallerProcess::run(PipelineContext& ctx) {
  engine::Dataset<RegionBundle> bundles =
      bundle_source() != nullptr
          ? *bundle_source()->published_bundle()
          : build_region_bundles(ctx, input_->get(), known_->get(),
                                 partition_info_->get(), "caller.hc");

  const Reference& reference = ctx.reference();
  if (!use_gvcf_) {
    auto variants = bundles.flat_map(
        "caller.hc.call", [&reference](const RegionBundle& in) {
          std::vector<SamRecord> sorted = in.sam;
          cleaner::coordinate_sort(sorted);
          const caller::CallerOptions options;
          return caller::call_variants(sorted, reference, options);
        });
    output_->set(variants.with_codec(make_vcf_codec(ctx.config().codec)));
    return;
  }

  // gVCF mode: call variants and derive reference-confidence blocks per
  // region in one pass.
  using RegionResult =
      std::pair<std::vector<VcfRecord>, std::vector<caller::GvcfBlock>>;
  auto results = bundles.map(
      "caller.hc.call_gvcf", [&reference](const RegionBundle& in) {
        std::vector<SamRecord> sorted = in.sam;
        cleaner::coordinate_sort(sorted);
        const caller::CallerOptions options;
        RegionResult result;
        result.first = caller::call_variants(sorted, reference, options);
        result.second =
            caller::reference_blocks(sorted, result.first, reference);
        // Clip blocks to this bundle's genomic region: reads spanning the
        // partition border would otherwise produce overlapping blocks in
        // two bundles (the neighbour owns the territory past the border).
        std::vector<caller::GvcfBlock> clipped;
        for (auto& b : result.second) {
          b.start = std::max(b.start, in.start);
          b.end = std::min(b.end, in.end);
          if (b.start < b.end) clipped.push_back(b);
        }
        result.second = std::move(clipped);
        return result;
      });
  auto variants = results.flat_map(
      "caller.hc.extract_variants",
      [](const RegionResult& r) { return r.first; });
  output_->set(variants.with_codec(make_vcf_codec(ctx.config().codec)));

  std::vector<caller::GvcfBlock> blocks;
  for (const auto& part : results.partitions()) {
    for (const auto& r : part) {
      blocks.insert(blocks.end(), r.second.begin(), r.second.end());
    }
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const caller::GvcfBlock& a, const caller::GvcfBlock& b) {
              if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
              return a.start < b.start;
            });
  gvcf_output_->set(std::move(blocks));
}

// --- CollectVcfProcess --------------------------------------------------------

CollectVcfProcess::CollectVcfProcess(std::string name, VcfBundle* input,
                                     VcfResultResource* output)
    : Process(std::move(name), {input}, {output}),
      input_(input),
      output_(output) {}

void CollectVcfProcess::run(PipelineContext& ctx) {
  Timer t;
  std::vector<VcfRecord> all = input_->get().collect();
  std::sort(all.begin(), all.end(), vcf_less);
  all.erase(std::unique(all.begin(), all.end(),
                        [](const VcfRecord& a, const VcfRecord& b) {
                          return a.contig_id == b.contig_id &&
                                 a.pos == b.pos && a.ref == b.ref &&
                                 a.alt == b.alt;
                        }),
            all.end());
  std::uint64_t out_bytes = 0;
  for (const auto& v : all) out_bytes += vcf_text_size(v);
  record_stage(ctx, name() + ".write", t.seconds(), 0, out_bytes);
  output_->set(std::move(all));
}

}  // namespace gpf::core
