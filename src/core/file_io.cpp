#include "core/file_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fsio.hpp"

namespace gpf::core {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return std::move(buf).str();
}

void write_file(const std::string& path, std::string_view contents) {
  // Atomic (temp + fsync + rename): the old truncate-in-place write left a
  // torn-write window where a crash mid-write produced a short file that
  // parses as silently-truncated FASTQ/FASTA/VCF.  Readers now see either
  // the old bytes or the new bytes, never a prefix.
  fs::atomic_write_file(path, contents);
}

std::vector<FastqRecord> load_fastq_file(const std::string& path) {
  return parse_fastq(read_file(path));
}

std::vector<FastqPair> load_fastq_pair_files(const std::string& path1,
                                             const std::string& path2) {
  return zip_pairs(load_fastq_file(path1), load_fastq_file(path2));
}

void save_fastq_file(const std::string& path,
                     const std::vector<FastqRecord>& records) {
  write_file(path, write_fastq(records));
}

void save_fastq_pair_files(const std::string& path1,
                           const std::string& path2,
                           const std::vector<FastqPair>& pairs) {
  std::vector<FastqRecord> first, second;
  first.reserve(pairs.size());
  second.reserve(pairs.size());
  for (const auto& p : pairs) {
    first.push_back(p.first);
    second.push_back(p.second);
  }
  save_fastq_file(path1, first);
  save_fastq_file(path2, second);
}

Reference load_fasta_file(const std::string& path) {
  return parse_fasta(read_file(path));
}

void save_fasta_file(const std::string& path, const Reference& reference) {
  write_file(path, write_fasta(reference));
}

SamFile load_sam_file(const std::string& path) {
  return parse_sam(read_file(path));
}

void save_sam_file(const std::string& path, const SamHeader& header,
                   const std::vector<SamRecord>& records) {
  write_file(path, write_sam(header, records));
}

VcfFile load_vcf_file(const std::string& path) {
  return parse_vcf(read_file(path));
}

void save_vcf_file(const std::string& path, const VcfHeader& header,
                   const std::vector<VcfRecord>& records) {
  write_file(path, write_vcf(header, records));
}

}  // namespace gpf::core
