// The physical side of the Pipeline split: an explicit PhysicalPlan
// lowered from the logical Process DAG, and the ExecutionBackend
// interface that runs it.
//
// Pipeline::run() performs the paper's passes (Algorithm 1 readiness
// scheduling, Fig 7 redundancy elimination) and then stops: it emits a
// PhysicalPlan — ordered stages annotated with narrow/wide boundaries,
// per-stage lineage (the resources each stage consumes and defines), and
// the codec/partitioning choices from PipelineConfig — and submits it to
// a backend.  What varies per backend is purely *where shuffle blocks
// live*: in driver memory (InProcessBackend), in chunk files under a
// ResidencyManager budget (SpillingBackend), or in worker processes
// (DistributedBackend).  The concrete backends live in src/exec; core
// only defines the boundary, plus the shared driver loop every backend
// uses, so that stage ordering, trace spans and report shape are
// identical everywhere — bit-identical output is the contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/process.hpp"

namespace gpf::core {

/// One scheduled step of the plan: a Process plus everything the backend
/// may want to know about it without consulting the logical layer.
struct PhysicalStage {
  Process* process = nullptr;
  std::string name;
  /// Algorithm-1 readiness wave this stage runs in (stages of the same
  /// wave have no dependencies among themselves).
  std::size_t wave = 0;
  /// True when the stage crosses a shuffle (wide) boundary the backend's
  /// transport will carry.  Fused stages consume the upstream bundle
  /// in place, so their own wide boundary was eliminated.
  bool wide = false;
  /// Fig-7 fusion wiring: this stage consumes its upstream's bundle.
  bool fused_into_chain = false;
  /// Fig-7 fusion wiring: this stage publishes its bundle downstream.
  bool emits_bundle = false;
  /// True when the plan runs under an AdaptiveScheduler
  /// (PipelineConfig::adaptive_scheduling) — stamped on every stage so
  /// backends and describe() see the scheduling mode without consulting
  /// the config.
  bool adaptive = false;
  /// Lineage: resource names consumed / defined by this stage.
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// The ordered physical form of one pipeline: what run() submits.
class PhysicalPlan {
 public:
  PhysicalPlan(std::string pipeline, PipelineConfig config,
               std::vector<PhysicalStage> stages)
      : pipeline_(std::move(pipeline)),
        config_(config),
        stages_(std::move(stages)) {}

  const std::string& pipeline() const { return pipeline_; }
  /// Codec + partitioning choices the stages were planned under.
  const PipelineConfig& config() const { return config_; }
  const std::vector<PhysicalStage>& stages() const { return stages_; }

  std::size_t wide_stage_count() const;
  std::size_t wave_count() const;

  /// Canonical one-line structure description, e.g.
  /// "LoadFastq[w0] MyBwaMapping[w1,fused>] MySort[w2,wide] ..." — the
  /// cross-backend golden tests assert this string is identical for every
  /// backend.
  std::string describe() const;

 private:
  std::string pipeline_;
  PipelineConfig config_;
  std::vector<PhysicalStage> stages_;
};

/// Lowers a Process DAG to its physical plan by simulating the
/// Algorithm-1 readiness loop statically (seeded from which resources are
/// currently defined).  The stage order is exactly the order the
/// pre-backend Pipeline::run() executed in, so metrics and traces stay
/// comparable across versions.  Throws std::runtime_error naming the
/// stuck processes on a circular dependency.
PhysicalPlan build_physical_plan(
    const std::string& pipeline, const PipelineConfig& config,
    const std::vector<std::unique_ptr<Process>>& processes);

/// Where and how a PhysicalPlan runs.  Subclasses own (or borrow) an
/// Engine and decide the physical substrate for shuffle blocks by
/// installing a ShuffleTransport around the plan; the driver loop itself
/// — stage order, Process execution, per-stage accounting — is shared
/// and final, which is what keeps outputs bit-identical across backends.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Report/flag name: "inprocess", "spill", "distributed".
  virtual const std::string& name() const = 0;

  /// The engine Processes execute against.
  virtual engine::Engine& engine() = 0;

  /// Runs `plan` against `ctx`, filling `report` timings.  Not virtual:
  /// the loop is the contract.
  void execute(const PhysicalPlan& plan, PipelineContext& ctx,
               PipelineReport& report);

 protected:
  /// Installs the backend's physical seams (e.g. the shuffle transport)
  /// before the first stage / removes them after the last (also on
  /// failure).  Default: nothing — the in-process path.
  virtual void begin_plan(const PhysicalPlan& plan);
  virtual void end_plan(const PhysicalPlan& plan) noexcept;

  /// Cumulative transport/residency counters; the driver loop diffs
  /// snapshots around each stage.  Default: all zero.
  virtual BackendStageStats counters();
};

/// The trivial backend wrapping an existing engine: no transport, blocks
/// stay in driver memory.  This is what `Pipeline(name, Engine&, ...)`
/// constructs, and what exec::InProcessBackend builds on.
class EngineBackend : public ExecutionBackend {
 public:
  explicit EngineBackend(engine::Engine& engine) : engine_(&engine) {}

  const std::string& name() const override;
  engine::Engine& engine() override { return *engine_; }

 private:
  engine::Engine* engine_;
};

}  // namespace gpf::core
