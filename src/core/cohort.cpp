#include "core/cohort.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.hpp"

namespace gpf::core {

CohortResult run_cohort(engine::Engine& engine, const Reference& reference,
                        std::vector<SampleInput> samples,
                        std::vector<VcfRecord> known_sites,
                        const PipelineConfig& config) {
  CohortResult result;
  std::vector<std::vector<VcfRecord>> calls;
  for (auto& sample : samples) {
    GPF_INFO("cohort: running sample %s (%zu pairs)", sample.name.c_str(),
             sample.pairs.size());
    result.sample_names.push_back(sample.name);
    result.per_sample.push_back(run_wgs_pipeline(engine, reference,
                                                 std::move(sample.pairs),
                                                 known_sites, config));
    calls.push_back(result.per_sample.back().variants);
  }
  result.sites = merge_call_sets(calls);
  return result;
}

std::vector<CohortSite> merge_call_sets(
    const std::vector<std::vector<VcfRecord>>& per_sample_calls) {
  const std::size_t n = per_sample_calls.size();
  // Site key -> cohort row.
  std::map<std::tuple<std::int32_t, std::int64_t, std::string, std::string>,
           CohortSite>
      sites;
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& v : per_sample_calls[s]) {
      auto& site = sites[{v.contig_id, v.pos, v.ref, v.alt}];
      if (site.genotypes.empty()) {
        site.contig_id = v.contig_id;
        site.pos = v.pos;
        site.ref = v.ref;
        site.alt = v.alt;
        site.genotypes.assign(n, Genotype::kHomRef);
      }
      site.genotypes[s] = v.genotype;
      site.qual = std::max(site.qual, v.qual);
    }
  }
  std::vector<CohortSite> out;
  out.reserve(sites.size());
  for (auto& [key, site] : sites) out.push_back(std::move(site));
  return out;  // map order == coordinate order
}

std::string write_cohort_vcf(const VcfHeader& header,
                             const std::vector<std::string>& sample_names,
                             const std::vector<CohortSite>& sites) {
  std::string out = "##fileformat=VCFv4.2\n";
  for (const auto& c : header.contigs) {
    out += "##contig=<ID=" + c.name + ",length=" + std::to_string(c.length) +
           ">\n";
  }
  out += "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT";
  for (const auto& name : sample_names) out += '\t' + name;
  out += '\n';
  for (const auto& site : sites) {
    char qual[32];
    std::snprintf(qual, sizeof qual, "%.2f", site.qual);
    out += header.contigs.at(site.contig_id).name;
    out += '\t' + std::to_string(site.pos + 1) + "\t.\t" + site.ref + '\t' +
           site.alt + '\t' + qual + "\tPASS\t.\tGT";
    for (const auto g : site.genotypes) {
      out += g == Genotype::kHomAlt ? "\t1/1"
             : g == Genotype::kHet  ? "\t0/1"
                                    : "\t0/0";
    }
    out += '\n';
  }
  return out;
}

}  // namespace gpf::core
