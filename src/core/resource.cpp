// resource.hpp is header-only; this translation unit anchors the module in
// the build and instantiates the common bundle types once for faster
// downstream compiles.
#include "core/resource.hpp"

namespace gpf::core {

template class BundleResource<FastqPair>;
template class BundleResource<SamRecord>;
template class BundleResource<VcfRecord>;
template class BundleResource<RegionBundle>;

}  // namespace gpf::core
