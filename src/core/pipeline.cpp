#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/backend.hpp"

namespace gpf::core {

const align::ReadAligner& PipelineContext::aligner() {
  if (!aligner_) {
    Timer t;
    fm_index_ = std::make_unique<align::FmIndex>(*reference_);
    aligner_ = std::make_unique<align::ReadAligner>(*fm_index_);
    GPF_INFO("built FM index over %zu bases in %s",
             static_cast<std::size_t>(reference_->total_length()),
             format_duration(t.seconds()).c_str());
  }
  return *aligner_;
}

std::vector<SamHeader::ContigInfo> PipelineContext::contig_infos() const {
  std::vector<SamHeader::ContigInfo> out;
  out.reserve(reference_->contig_count());
  for (const auto& c : reference_->contigs()) {
    out.push_back({c.name, static_cast<std::int64_t>(c.sequence.size())});
  }
  return out;
}

void Process::execute(PipelineContext& ctx) {
  mark_state(ProcessState::kRunning);
  Timer t;
  {
    // DAG-node span: groups this Process's stage/task spans on the driver
    // track of the trace timeline.
    trace::ScopedSpan span(name_, trace::SpanKind::kProcess);
    run(ctx);
  }
  wall_seconds_ = t.seconds();
  // Every declared output must now be defined — catching Processes that
  // forget to fill a Resource early.
  for (const auto* r : outputs_) {
    if (!r->defined()) {
      throw std::logic_error("process '" + name_ +
                             "' finished without defining resource '" +
                             r->name() + "'");
    }
  }
  mark_state(ProcessState::kEnd);
}

Pipeline::Pipeline(std::string name, engine::Engine& engine,
                   const Reference& reference, PipelineConfig config)
    : name_(std::move(name)),
      owned_backend_(std::make_unique<EngineBackend>(engine)),
      backend_(owned_backend_.get()),
      context_(engine, reference, config) {}

Pipeline::Pipeline(std::string name, ExecutionBackend& backend,
                   const Reference& reference, PipelineConfig config)
    : name_(std::move(name)),
      backend_(&backend),
      context_(backend.engine(), reference, config) {}

Pipeline::~Pipeline() = default;

void Pipeline::eliminate_redundancy(PipelineReport& report) {
  // Producer map: resource -> producing process; consumer count per
  // resource.
  std::map<const Resource*, Process*> producer;
  std::map<const Resource*, int> consumers;
  for (const auto& p : processes_) {
    for (const auto* r : p->outputs()) producer[r] = p.get();
    for (const auto* r : p->inputs()) ++consumers[r];
  }

  // Walk processes; fuse Q onto P when: both are partition Processes, Q
  // consumes a resource produced by P, and that resource has exactly one
  // consumer (the paper's out-degree-1 / in-degree-1 path condition).
  for (const auto& q : processes_) {
    if (!q->is_partition_process()) continue;
    for (const auto* r : q->inputs()) {
      const auto it = producer.find(r);
      if (it == producer.end()) continue;
      Process* p = it->second;
      if (!p->is_partition_process()) continue;
      if (consumers[r] != 1) continue;
      p->set_emit_bundle(true);
      q->set_bundle_source(p);
      ++report.processes_fused;
      break;
    }
  }
  // Count chains (maximal runs of fused processes).
  std::set<const Process*> sources;
  for (const auto& q : processes_) {
    if (q->bundle_source() != nullptr) sources.insert(q->bundle_source());
  }
  for (const auto* s : sources) {
    if (s->bundle_source() == nullptr) ++report.fused_chains;
  }
}

PhysicalPlan Pipeline::plan() const {
  return build_physical_plan(name_, context_.config(), processes_);
}

PipelineReport Pipeline::run() {
  PipelineReport report;
  if (context_.config().eliminate_redundancy) {
    eliminate_redundancy(report);
  }
  // Lower the logical DAG (paper Algorithm 1, evaluated statically) and
  // submit it; the backend owns where shuffle blocks physically live.
  const PhysicalPlan physical = plan();
  backend_->execute(physical, context_, report);
  return report;
}

}  // namespace gpf::core
