// The Pipeline runtime: resource-pool DAG scheduling (paper Algorithm 1)
// plus the redundancy-elimination pass (paper Fig 7) that fuses chains of
// partition Processes into bundle-passing form.
//
// Since the backend split, run() no longer executes Processes itself: it
// lowers the logical DAG to a PhysicalPlan (core/backend.hpp) and submits
// that to an ExecutionBackend, which decides where shuffle blocks live —
// driver memory (default), chunk files under a residency budget, or a
// worker-process fleet.  Constructing a Pipeline from a bare Engine keeps
// the historical behavior: an owned in-process backend wrapping it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "core/resource.hpp"

namespace gpf::core {

class ExecutionBackend;
class PhysicalPlan;

/// Transport/residency counters a backend accumulates while executing;
/// the driver loop diffs snapshots to attribute overhead per Process.
struct BackendStageStats {
  std::uint64_t blocks_put = 0;
  std::uint64_t blocks_fetched = 0;
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_spilled = 0;
  std::uint64_t lineage_recoveries = 0;
  std::uint64_t residency_hits = 0;
  std::uint64_t residency_misses = 0;
  std::uint64_t residency_evictions = 0;
  /// Snapshot (not a delta): engine BufferPool bytes parked at stage end.
  std::uint64_t pooled_bytes = 0;
};

/// Summary of one pipeline run, feeding the Table 4 metrics.
struct PipelineReport {
  struct ProcessTiming {
    std::string name;
    double wall_seconds = 0.0;
    /// Engine stages this Process executed.
    std::size_t engine_stages = 0;
    /// Shuffle traffic attributed to this Process's stages.
    std::uint64_t shuffle_write_bytes = 0;
    std::uint64_t shuffle_read_bytes = 0;
    std::uint64_t shuffle_records = 0;
    /// Task-time percentiles across all engine tasks this Process ran
    /// (10 µs resolution; 0 when the Process ran no engine stages).
    double task_p50_ms = 0.0;
    double task_p95_ms = 0.0;
    double task_p99_ms = 0.0;
    /// Backend-side work (spill/fetch/residency) during this Process.
    BackendStageStats backend;
  };
  std::vector<ProcessTiming> timings;
  double total_wall_seconds = 0.0;
  std::size_t fused_chains = 0;
  std::size_t processes_fused = 0;
  /// Which ExecutionBackend ran the plan ("inprocess"/"spill"/...).
  std::string backend;
};

/// Owns resources and processes and executes them in dependency order.
class Pipeline {
 public:
  /// Historical constructor: runs on an owned in-process backend wrapping
  /// `engine` — behavior-identical to the pre-backend Pipeline.
  Pipeline(std::string name, engine::Engine& engine,
           const Reference& reference, PipelineConfig config = {});

  /// Runs on `backend` (not owned; must outlive the pipeline).
  Pipeline(std::string name, ExecutionBackend& backend,
           const Reference& reference, PipelineConfig config = {});

  ~Pipeline();

  const std::string& name() const { return name_; }
  PipelineContext& context() { return context_; }
  ExecutionBackend& backend() { return *backend_; }

  /// Registers a Resource; the pipeline owns it.  Returns a raw pointer
  /// for wiring into Processes.
  template <typename R>
  R* add_resource(std::unique_ptr<R> resource) {
    R* raw = resource.get();
    resources_.push_back(std::move(resource));
    return raw;
  }

  /// Adds a Process to the execution DAG (paper: `pipeline.addProcess`).
  template <typename P>
  P* add_process(std::unique_ptr<P> process) {
    P* raw = process.get();
    processes_.push_back(std::move(process));
    return raw;
  }

  /// Lowers the current DAG to its physical plan WITHOUT executing it
  /// (fusion decisions reflect the config; run() re-plans itself).
  /// Throws std::runtime_error on circular dependencies.
  PhysicalPlan plan() const;

  /// Parses, optimizes and executes all Processes (paper: `run()`):
  /// redundancy elimination, then plan(), then backend submission.
  /// Throws std::runtime_error on circular dependencies.
  PipelineReport run();

 private:
  /// The Fig 7 pass: finds linear chains of partition Processes and wires
  /// bundle handoffs.
  void eliminate_redundancy(PipelineReport& report);

  std::string name_;
  /// Set by the Engine& constructor; backend_ points into it then.
  std::unique_ptr<ExecutionBackend> owned_backend_;
  ExecutionBackend* backend_ = nullptr;
  PipelineContext context_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace gpf::core
