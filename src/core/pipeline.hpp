// The Pipeline runtime: resource-pool DAG scheduling (paper Algorithm 1)
// plus the redundancy-elimination pass (paper Fig 7) that fuses chains of
// partition Processes into bundle-passing form.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "core/resource.hpp"

namespace gpf::core {

/// Summary of one pipeline run, feeding the Table 4 metrics.
struct PipelineReport {
  struct ProcessTiming {
    std::string name;
    double wall_seconds = 0.0;
  };
  std::vector<ProcessTiming> timings;
  double total_wall_seconds = 0.0;
  std::size_t fused_chains = 0;
  std::size_t processes_fused = 0;
};

/// Owns resources and processes and executes them in dependency order.
class Pipeline {
 public:
  Pipeline(std::string name, engine::Engine& engine,
           const Reference& reference, PipelineConfig config = {});

  const std::string& name() const { return name_; }
  PipelineContext& context() { return context_; }

  /// Registers a Resource; the pipeline owns it.  Returns a raw pointer
  /// for wiring into Processes.
  template <typename R>
  R* add_resource(std::unique_ptr<R> resource) {
    R* raw = resource.get();
    resources_.push_back(std::move(resource));
    return raw;
  }

  /// Adds a Process to the execution DAG (paper: `pipeline.addProcess`).
  template <typename P>
  P* add_process(std::unique_ptr<P> process) {
    P* raw = process.get();
    processes_.push_back(std::move(process));
    return raw;
  }

  /// Parses, optimizes and executes all Processes (paper: `run()`).
  /// Throws std::runtime_error on circular dependencies.
  PipelineReport run();

 private:
  /// The Fig 7 pass: finds linear chains of partition Processes and wires
  /// bundle handoffs.
  void eliminate_redundancy(PipelineReport& report);

  std::string name_;
  PipelineContext context_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace gpf::core
