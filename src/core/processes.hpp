// The algorithm-specific Processes of the GPF API (paper Table 2):
// Aligner (BwaMemProcess), Cleaner (Sort/MarkDuplicate/IndelRealign/
// BaseRecalibration), Caller (HaplotypeCaller), plus the auxiliary
// ReadRepartitioner and the load/store endpoints.
//
// Partition Processes (IndelRealign, BaseRecalibration, HaplotypeCaller)
// work on region bundles.  In unoptimized mode each builds its own bundle
// RDD with three shuffles (SAM groupBy, FASTA partition, known-VCF
// partition) plus a join; with redundancy elimination the Pipeline wires
// them into a chain where only the head pays the shuffles (paper Fig 7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "caller/gvcf.hpp"
#include "cleaner/bqsr.hpp"
#include "cleaner/markdup.hpp"
#include "core/partition_info.hpp"
#include "core/pipeline.hpp"
#include "core/process.hpp"
#include "core/resource.hpp"

namespace gpf::core {

using PartitionInfoResource = ValueResource<PartitionInfo>;
using VcfResultResource = ValueResource<std::vector<VcfRecord>>;

/// Loads simulated FASTQ pairs into a bundle, recording the storage-read
/// volume (the "Storage Subsystem -> Aligner" edge of paper Fig 1).
class LoadFastqProcess final : public Process {
 public:
  LoadFastqProcess(std::string name, std::vector<FastqPair> pairs,
                   FastqPairBundle* output);

 private:
  void run(PipelineContext& ctx) override;

  std::vector<FastqPair> pairs_;
  FastqPairBundle* output_;
};

/// Loads a known-sites database (the paper's dbsnp rodMap entry).
class LoadKnownSitesProcess final : public Process {
 public:
  LoadKnownSitesProcess(std::string name, std::vector<VcfRecord> sites,
                        VcfBundle* output);

 private:
  void run(PipelineContext& ctx) override;

  std::vector<VcfRecord> sites_;
  VcfBundle* output_;
};

/// Aligner stage: BWA-MEM-like paired-end mapping
/// (paper: BwaMemProcess.pairEnd).
class BwaMemProcess final : public Process {
 public:
  BwaMemProcess(std::string name, FastqPairBundle* input, SamBundle* output);

 private:
  void run(PipelineContext& ctx) override;

  FastqPairBundle* input_;
  SamBundle* output_;
};

/// Auxiliary Process producing the PartitionInfo (paper:
/// ReadRepartitioner / RepartitionInfoProducer).  Counts reads per base
/// partition and applies the dynamic split when enabled.
class ReadRepartitioner final : public Process {
 public:
  ReadRepartitioner(std::string name, SamBundle* input,
                    PartitionInfoResource* output);

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  PartitionInfoResource* output_;
};

/// Cleaner: distributed coordinate sort (samtools sort).
class SortProcess final : public Process {
 public:
  SortProcess(std::string name, SamBundle* input,
              PartitionInfoResource* partition_info, SamBundle* output);

  /// Range-partitioned global sort: a record-level shuffle.
  bool has_wide_dependency() const override { return true; }

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  PartitionInfoResource* partition_info_;
  SamBundle* output_;
};

/// Cleaner: duplicate marking (paper: MarkDuplicateProcess).
class MarkDuplicateProcess final : public Process {
 public:
  MarkDuplicateProcess(std::string name, SamBundle* input, SamBundle* output);

  /// Groups read pairs by alignment signature: a record-level shuffle.
  bool has_wide_dependency() const override { return true; }

  /// Stats from the last run (for tests/benches).
  const cleaner::MarkDuplicatesStats& stats() const { return stats_; }

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  SamBundle* output_;
  cleaner::MarkDuplicatesStats stats_;
};

/// Cleaner: local indel realignment (paper: IndelRealignProcess).
/// Partition Process — fusable.
class IndelRealignProcess final : public Process {
 public:
  IndelRealignProcess(std::string name, SamBundle* input, VcfBundle* known,
                      PartitionInfoResource* partition_info,
                      SamBundle* output);

  bool is_partition_process() const override { return true; }

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  VcfBundle* known_;
  PartitionInfoResource* partition_info_;
  SamBundle* output_;
};

/// Cleaner: base quality recalibration (paper: BaseRecalibrationProcess).
/// Partition Process — fusable.  The covariate Collect step merges
/// per-partition tables on the driver and re-broadcasts (the serial step
/// the paper observes after BQSR).
class BaseRecalibrationProcess final : public Process {
 public:
  BaseRecalibrationProcess(std::string name, SamBundle* input,
                           VcfBundle* known,
                           PartitionInfoResource* partition_info,
                           SamBundle* output);

  bool is_partition_process() const override { return true; }

  /// Broadcast payload of the last run in bytes.
  std::size_t broadcast_bytes() const { return broadcast_bytes_; }

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  VcfBundle* known_;
  PartitionInfoResource* partition_info_;
  SamBundle* output_;
  std::size_t broadcast_bytes_ = 0;
};

using GvcfBlocksResource = ValueResource<std::vector<caller::GvcfBlock>>;

/// Caller: HaplotypeCaller (paper: HaplotypeCallerProcess).  Partition
/// Process — fusable (always a chain tail: its output is a VCF bundle).
/// With `use_gvcf` (the paper API's useGVCF flag) it additionally emits
/// the homozygous-reference confidence blocks into `gvcf_output`.
class HaplotypeCallerProcess final : public Process {
 public:
  HaplotypeCallerProcess(std::string name, SamBundle* input, VcfBundle* known,
                         PartitionInfoResource* partition_info,
                         VcfBundle* output, bool use_gvcf = false,
                         GvcfBlocksResource* gvcf_output = nullptr);

  bool is_partition_process() const override { return true; }

 private:
  void run(PipelineContext& ctx) override;

  SamBundle* input_;
  VcfBundle* known_;
  PartitionInfoResource* partition_info_;
  VcfBundle* output_;
  bool use_gvcf_;
  GvcfBlocksResource* gvcf_output_;
};

/// Collects, sorts and deduplicates the called variants, recording the
/// result-write volume.
class CollectVcfProcess final : public Process {
 public:
  CollectVcfProcess(std::string name, VcfBundle* input,
                    VcfResultResource* output);

 private:
  void run(PipelineContext& ctx) override;

  VcfBundle* input_;
  VcfResultResource* output_;
};

/// Shuffle codecs matching PipelineConfig::codec.
engine::ShuffleCodec<FastqPair> make_fastq_pair_codec(Codec codec);
engine::ShuffleCodec<SamRecord> make_sam_codec(Codec codec);
engine::ShuffleCodec<VcfRecord> make_vcf_codec(Codec codec);

/// Builds the region-bundle dataset for a partition Process in unfused
/// mode: three shuffles plus the join (exposed for tests and ablations).
engine::Dataset<RegionBundle> build_region_bundles(
    PipelineContext& ctx, const engine::Dataset<SamRecord>& sam,
    const engine::Dataset<VcfRecord>& known, const PartitionInfo& info,
    const std::string& stage_prefix);

/// Serialized size of a region-bundle batch under `codec` (used by the
/// compression benches to weigh the "Generate Bundle RDD" stage).
std::size_t encoded_bundle_bytes(std::span<const RegionBundle> bundles,
                                 Codec codec);

/// Flattens bundles back to records.
engine::Dataset<SamRecord> flatten_bundles(
    PipelineContext& ctx, const engine::Dataset<RegionBundle>& bundles,
    const std::string& stage_name);

}  // namespace gpf::core
