// Local de Bruijn assembly of candidate haplotypes over an active region
// (the "local de-novo assembly of haplotypes" the paper's
// HaplotypeCallerProcess description cites).
//
// A k-mer graph is built from the region's reads plus the reference
// window; low-support k-mers are pruned; candidate haplotypes are all
// acyclic source->sink paths (bounded), where source/sink are the
// reference window's first/last k-mers.  When assembly fails (cycle
// through the reference anchors, missing anchors after pruning) the
// reference window is returned alone, which degrades the caller to
// ref-only — exactly GATK's fallback behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gpf::caller {

struct AssemblerOptions {
  int kmer_length = 21;
  /// K-mers seen fewer times than this in the reads are pruned (reference
  /// k-mers are always kept).
  int min_kmer_count = 2;
  /// Cap on emitted haplotypes.
  int max_haplotypes = 16;
  /// DFS budget: maximum path length in bases relative to the window.
  double max_path_stretch = 1.5;
};

struct AssemblyResult {
  /// Candidate haplotypes; index 0 is always the reference window.
  std::vector<std::string> haplotypes;
  /// True when the graph produced at least one non-reference haplotype.
  bool assembled = false;
};

/// Assembles haplotypes for reads against the reference window.
AssemblyResult assemble_haplotypes(std::span<const std::string_view> reads,
                                   std::string_view ref_window,
                                   const AssemblerOptions& options = {});

}  // namespace gpf::caller
