// gVCF support: reference-confidence blocks between variant sites, the
// output mode behind the paper API's `useGVCF` flag
// (HaplotypeCallerProcess(..., useGVCF)).
//
// A gVCF records, for every covered non-variant region, a block stating
// "confidently homozygous-reference here" with a genotype quality derived
// from depth.  Blocks are banded by GQ (GATK's standard 3-band layout) so
// adjacent positions with similar confidence merge into one row.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "formats/fasta.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::caller {

/// One homozygous-reference confidence block: [start, end).
struct GvcfBlock {
  std::int32_t contig_id = -1;
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// Minimum depth observed across the block.
  std::int32_t min_depth = 0;
  /// Banded genotype quality (block-wide minimum).
  std::int32_t gq = 0;

  bool operator==(const GvcfBlock&) const = default;
};

struct GvcfOptions {
  /// GQ band boundaries (GATK defaults: [1,20), [20,60), [60,99]).
  std::vector<std::int32_t> gq_bands = {1, 20, 60};
  /// Positions with zero depth produce no block.
  std::int32_t min_depth = 1;
  /// GQ per supporting read (diploid hom-ref likelihood gain).
  double gq_per_read = 3.0;
};

/// Derives reference blocks from coordinate-sorted records, skipping
/// positions covered by `variants`.  Depth is computed from the aligned
/// spans of primary, non-duplicate records.
std::vector<GvcfBlock> reference_blocks(
    std::span<const SamRecord> sorted_records,
    std::span<const VcfRecord> variants, const Reference& reference,
    const GvcfOptions& options = {});

/// Renders a gVCF text document: variant rows interleaved with
/// <NON_REF> block rows (END= in INFO), both coordinate sorted.
std::string write_gvcf(const VcfHeader& header,
                       std::span<const VcfRecord> variants,
                       std::span<const GvcfBlock> blocks,
                       const Reference& reference);

}  // namespace gpf::caller
