#include "caller/gvcf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace gpf::caller {
namespace {

/// GQ band index for a quality value (0 = below the first band).
std::size_t band_of(std::int32_t gq, const std::vector<std::int32_t>& bands) {
  std::size_t band = 0;
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (gq >= bands[i]) band = i + 1;
  }
  return band;
}

}  // namespace

std::vector<GvcfBlock> reference_blocks(
    std::span<const SamRecord> sorted_records,
    std::span<const VcfRecord> variants, const Reference& reference,
    const GvcfOptions& options) {
  // Depth profile via coverage difference arrays per contig.
  std::map<std::int32_t, std::map<std::int64_t, std::int32_t>> deltas;
  for (const auto& rec : sorted_records) {
    if (rec.is_unmapped() || rec.is_duplicate() || rec.is_secondary() ||
        rec.contig_id < 0) {
      continue;
    }
    auto& d = deltas[rec.contig_id];
    d[rec.pos] += 1;
    d[rec.end_pos()] -= 1;
  }

  // Variant positions to exclude (whole REF span).
  std::map<std::int32_t, std::vector<std::pair<std::int64_t, std::int64_t>>>
      var_spans;
  for (const auto& v : variants) {
    var_spans[v.contig_id].emplace_back(
        v.pos, v.pos + static_cast<std::int64_t>(v.ref.size()));
  }
  for (auto& [cid, spans] : var_spans) std::sort(spans.begin(), spans.end());

  std::vector<GvcfBlock> blocks;
  for (const auto& [cid, d] : deltas) {
    const auto contig_len =
        static_cast<std::int64_t>(reference.contig(cid).sequence.size());
    const auto& spans = var_spans[cid];
    std::size_t span_idx = 0;

    std::int32_t depth = 0;
    std::int64_t segment_start = 0;
    GvcfBlock current;  // contig_id == -1 means "no open block"

    auto close_block = [&blocks, &current]() {
      if (current.contig_id >= 0 && current.end > current.start) {
        blocks.push_back(current);
      }
      current.contig_id = -1;
    };

    // Walk the depth profile as piecewise-constant segments.
    auto process_segment = [&](std::int64_t from, std::int64_t to,
                               std::int32_t seg_depth) {
      if (to <= from) return;
      // Clip out variant spans inside the segment.
      std::int64_t cursor = from;
      while (span_idx < spans.size() && spans[span_idx].second <= cursor) {
        ++span_idx;
      }
      std::size_t idx = span_idx;
      while (cursor < to) {
        std::int64_t next_cut = to;
        bool in_variant = false;
        if (idx < spans.size() && spans[idx].first < to) {
          if (spans[idx].first <= cursor) {
            // Inside a variant span.
            in_variant = true;
            next_cut = std::min(to, spans[idx].second);
          } else {
            next_cut = spans[idx].first;
          }
        }
        const std::int32_t gq = static_cast<std::int32_t>(std::min(
            99.0, options.gq_per_read * static_cast<double>(seg_depth)));
        const bool emit = !in_variant && seg_depth >= options.min_depth;
        if (emit) {
          const std::size_t band = band_of(gq, options.gq_bands);
          if (current.contig_id >= 0 && current.end == cursor &&
              band_of(current.gq, options.gq_bands) == band) {
            // Extend the open block within the same GQ band.
            current.end = next_cut;
            current.min_depth = std::min(current.min_depth, seg_depth);
            current.gq = std::min(current.gq, gq);
          } else {
            close_block();
            current.contig_id = cid;
            current.start = cursor;
            current.end = next_cut;
            current.min_depth = seg_depth;
            current.gq = gq;
          }
        } else {
          close_block();
        }
        cursor = next_cut;
        if (in_variant && idx < spans.size() &&
            spans[idx].second <= cursor) {
          ++idx;
        }
      }
    };

    for (const auto& [pos, change] : d) {
      process_segment(segment_start, std::min(pos, contig_len), depth);
      depth += change;
      segment_start = pos;
    }
    close_block();
  }
  return blocks;
}

std::string write_gvcf(const VcfHeader& header,
                       std::span<const VcfRecord> variants,
                       std::span<const GvcfBlock> blocks,
                       const Reference& reference) {
  std::string out = "##fileformat=VCFv4.2\n";
  out += "##ALT=<ID=NON_REF,Description=\"Represents any possible "
         "alternative allele\">\n";
  out += "##INFO=<ID=END,Number=1,Type=Integer,Description=\"Stop position "
         "of the interval\">\n";
  for (const auto& c : header.contigs) {
    out += "##contig=<ID=" + c.name + ",length=" + std::to_string(c.length) +
           ">\n";
  }
  out += "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t" +
         header.sample_name + '\n';

  // Merge-sort variants and blocks by coordinate.
  std::size_t vi = 0, bi = 0;
  auto block_before_variant = [&]() {
    if (bi >= blocks.size()) return false;
    if (vi >= variants.size()) return true;
    const auto& b = blocks[bi];
    const auto& v = variants[vi];
    if (b.contig_id != v.contig_id) return b.contig_id < v.contig_id;
    return b.start < v.pos;
  };
  char line[256];
  while (vi < variants.size() || bi < blocks.size()) {
    if (block_before_variant()) {
      const auto& b = blocks[bi++];
      const std::string_view ref_base =
          reference.slice(b.contig_id, b.start, 1);
      std::snprintf(line, sizeof line,
                    "%s\t%lld\t.\t%c\t<NON_REF>\t.\tPASS\tEND=%lld\t"
                    "GT:DP:GQ\t0/0:%d:%d\n",
                    header.contigs.at(b.contig_id).name.c_str(),
                    static_cast<long long>(b.start + 1),
                    ref_base.empty() ? 'N' : ref_base[0],
                    static_cast<long long>(b.end), b.min_depth, b.gq);
      out += line;
    } else {
      const auto& v = variants[vi++];
      std::snprintf(line, sizeof line,
                    "%s\t%lld\t.\t%s\t%s\t%.2f\tPASS\t.\tGT\t%s\n",
                    header.contigs.at(v.contig_id).name.c_str(),
                    static_cast<long long>(v.pos + 1), v.ref.c_str(),
                    v.alt.c_str(), v.qual,
                    v.genotype == Genotype::kHomAlt ? "1/1" : "0/1");
      out += line;
    }
  }
  return out;
}

}  // namespace gpf::caller
