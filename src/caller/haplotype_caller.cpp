#include "caller/haplotype_caller.hpp"

#include <algorithm>

namespace gpf::caller {

std::vector<VcfRecord> call_region(const ActiveRegion& region,
                                   std::span<const SamRecord> records,
                                   const Reference& reference,
                                   const CallerOptions& options,
                                   CallStats* stats) {
  std::vector<VcfRecord> out;
  if (region.read_indices.empty()) return out;

  // Gather region reads (bounded).
  std::vector<const SamRecord*> reads;
  reads.reserve(
      std::min(region.read_indices.size(), options.max_reads_per_region));
  for (const std::size_t idx : region.read_indices) {
    if (reads.size() >= options.max_reads_per_region) break;
    reads.push_back(&records[idx]);
  }

  const std::string_view ref_window =
      reference.slice(region.contig_id, region.start, region.size());
  if (ref_window.empty()) return out;

  // Assemble candidate haplotypes.
  std::vector<std::string_view> read_seqs;
  read_seqs.reserve(reads.size());
  for (const auto* r : reads) read_seqs.push_back(r->sequence);
  const AssemblyResult assembly =
      assemble_haplotypes(read_seqs, ref_window, options.assembler);
  if (stats != nullptr && assembly.assembled) ++stats->assembled_regions;
  if (assembly.haplotypes.size() < 2) return out;

  // Pair-HMM likelihoods.
  PairHmm hmm(options.pairhmm);
  LikelihoodMatrix likelihoods(reads.size());
  for (std::size_t r = 0; r < reads.size(); ++r) {
    likelihoods[r].resize(assembly.haplotypes.size());
    for (std::size_t h = 0; h < assembly.haplotypes.size(); ++h) {
      likelihoods[r][h] = hmm.log10_likelihood(
          reads[r]->sequence, reads[r]->quality, assembly.haplotypes[h]);
    }
  }
  if (stats != nullptr) stats->reads_processed += reads.size();

  // Genotype.
  const auto genotyped =
      genotype_region(assembly.haplotypes, likelihoods, region.contig_id,
                      region.start, options.genotyper);
  out.reserve(genotyped.size());
  for (const auto& gv : genotyped) out.push_back(gv.record);
  return out;
}

std::vector<VcfRecord> call_variants(std::span<const SamRecord> sorted_records,
                                     const Reference& reference,
                                     const CallerOptions& options,
                                     CallStats* stats) {
  auto regions =
      find_active_regions(sorted_records, reference, options.active_region);
  if (options.targets != nullptr) {
    std::erase_if(regions, [&options](const ActiveRegion& r) {
      return !options.targets->overlaps(r.contig_id, r.start, r.end);
    });
  }
  CallStats local;
  std::vector<VcfRecord> out;
  for (const auto& region : regions) {
    auto calls = call_region(region, sorted_records, reference, options,
                             &local);
    out.insert(out.end(), std::make_move_iterator(calls.begin()),
               std::make_move_iterator(calls.end()));
  }
  local.regions = regions.size();
  local.variants_emitted = out.size();
  std::sort(out.begin(), out.end(), vcf_less);
  // Deduplicate identical records from adjacent/overlapping regions.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const VcfRecord& a, const VcfRecord& b) {
                          return a.contig_id == b.contig_id &&
                                 a.pos == b.pos && a.ref == b.ref &&
                                 a.alt == b.alt;
                        }),
            out.end());
  if (stats != nullptr) {
    stats->regions += local.regions;
    stats->assembled_regions += local.assembled_regions;
    stats->reads_processed += local.reads_processed;
    stats->variants_emitted += local.variants_emitted;
  }
  return out;
}

}  // namespace gpf::caller
