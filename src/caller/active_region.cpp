#include "caller/active_region.hpp"

#include <algorithm>
#include <map>

namespace gpf::caller {
namespace {

bool usable(const SamRecord& rec) {
  return !rec.is_unmapped() && !rec.is_duplicate() && !rec.is_secondary() &&
         rec.contig_id >= 0;
}

/// Adds mismatch/indel activity events for one record.
void add_activity(const SamRecord& rec, const Reference& reference,
                  std::map<std::pair<std::int32_t, std::int64_t>, int>& act) {
  std::int64_t ref_pos = rec.pos;
  std::size_t read_pos = 0;
  for (const auto& el : rec.cigar) {
    switch (el.op) {
      case CigarOp::kMatch:
      case CigarOp::kEqual:
      case CigarOp::kDiff: {
        const std::string_view ref_span =
            reference.slice(rec.contig_id, ref_pos, el.length);
        for (std::size_t i = 0; i < ref_span.size(); ++i) {
          const char rb = ref_span[i];
          const char qb = rec.sequence[read_pos + i];
          // Low-quality mismatches are noise, not activity.
          if (rb != 'N' && qb != 'N' && rb != qb &&
              rec.quality[read_pos + i] - 33 >= 20) {
            ++act[{rec.contig_id, ref_pos + static_cast<std::int64_t>(i)}];
          }
        }
        ref_pos += el.length;
        read_pos += el.length;
        break;
      }
      case CigarOp::kInsertion:
        act[{rec.contig_id, ref_pos}] += 2;
        read_pos += el.length;
        break;
      case CigarOp::kDeletion:
      case CigarOp::kSkip:
        act[{rec.contig_id, ref_pos}] += 2;
        ref_pos += el.length;
        break;
      case CigarOp::kSoftClip:
        read_pos += el.length;
        break;
      default:
        break;
    }
  }
}

}  // namespace

std::vector<ActiveRegion> find_active_regions(
    std::span<const SamRecord> sorted_records, const Reference& reference,
    const ActiveRegionOptions& options) {
  // Pileup of activity events plus a coarse coverage profile (100bp bins)
  // for the depth-relative threshold.
  constexpr std::int64_t kDepthBin = 100;
  std::map<std::pair<std::int32_t, std::int64_t>, int> activity;
  std::map<std::pair<std::int32_t, std::int64_t>, std::int64_t> coverage;
  for (const auto& rec : sorted_records) {
    if (!usable(rec)) continue;
    add_activity(rec, reference, activity);
    const std::int64_t lo = rec.pos;
    const std::int64_t hi = rec.end_pos();
    for (std::int64_t bin = lo / kDepthBin; bin <= (hi - 1) / kDepthBin;
         ++bin) {
      const std::int64_t overlap = std::min(hi, (bin + 1) * kDepthBin) -
                                   std::max(lo, bin * kDepthBin);
      coverage[{rec.contig_id, bin}] += overlap;
    }
  }
  auto depth_at = [&coverage](std::int32_t contig, std::int64_t pos) {
    const auto it = coverage.find({contig, pos / kDepthBin});
    return it == coverage.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(kDepthBin);
  };

  // Collect active positions and merge into spans.
  std::vector<ActiveRegion> regions;
  for (const auto& [key, count] : activity) {
    if (count < options.min_activity) continue;
    if (static_cast<double>(count) <
        options.min_activity_fraction * depth_at(key.first, key.second)) {
      continue;
    }
    const auto [contig, pos] = key;
    if (!regions.empty() && regions.back().contig_id == contig &&
        pos - regions.back().end <= options.merge_distance &&
        regions.back().size() < options.max_region_size) {
      regions.back().end = pos + 1;
    } else {
      ActiveRegion r;
      r.contig_id = contig;
      r.start = pos;
      r.end = pos + 1;
      regions.push_back(std::move(r));
    }
  }

  // Pad and clamp.
  for (auto& r : regions) {
    const auto contig_len = static_cast<std::int64_t>(
        reference.contig(r.contig_id).sequence.size());
    r.start = std::max<std::int64_t>(0, r.start - options.padding);
    r.end = std::min(contig_len, r.end + options.padding);
  }
  // Merge overlaps introduced by padding.
  std::vector<ActiveRegion> merged;
  for (auto& r : regions) {
    if (!merged.empty() && merged.back().contig_id == r.contig_id &&
        r.start <= merged.back().end &&
        merged.back().size() + r.size() <= 2 * options.max_region_size) {
      merged.back().end = std::max(merged.back().end, r.end);
    } else {
      merged.push_back(std::move(r));
    }
  }

  // Assign reads to regions (records are coordinate sorted; two-pointer
  // sweep).
  std::size_t rec_idx = 0;
  for (auto& region : merged) {
    // Advance past records entirely before the region.
    while (rec_idx < sorted_records.size()) {
      const auto& rec = sorted_records[rec_idx];
      if (!usable(rec)) {
        ++rec_idx;
        continue;
      }
      if (rec.contig_id < region.contig_id ||
          (rec.contig_id == region.contig_id &&
           rec.end_pos() <= region.start)) {
        ++rec_idx;
        continue;
      }
      break;
    }
    // Scan forward collecting overlaps (without consuming, since a read
    // can span two regions).
    for (std::size_t j = rec_idx; j < sorted_records.size(); ++j) {
      const auto& rec = sorted_records[j];
      if (!usable(rec)) continue;
      if (rec.contig_id != region.contig_id || rec.pos >= region.end) break;
      if (rec.end_pos() > region.start) region.read_indices.push_back(j);
    }
  }
  return merged;
}

}  // namespace gpf::caller
