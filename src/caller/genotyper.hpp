// Diploid genotyping over assembled haplotypes: picks the best haplotype
// pair by total read likelihood, extracts variants from the winning
// haplotypes by alignment against the reference window, and assigns
// genotypes/QUALs from likelihood ratios.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "formats/vcf.hpp"

namespace gpf::caller {

struct GenotyperOptions {
  /// Variants with QUAL below this are dropped.
  double min_qual = 10.0;
  /// Band for haplotype-vs-reference alignment.
  int band = 24;
};

/// Read likelihood matrix: likelihoods[r][h] = log10 P(read r | hap h).
using LikelihoodMatrix = std::vector<std::vector<double>>;

struct GenotypedVariant {
  VcfRecord record;
  /// Index of the haplotype(s) carrying the allele (diagnostics).
  int hap_a = -1;
  int hap_b = -1;
};

/// Genotypes an active region.
///  `haplotypes` — candidate haplotypes, index 0 must be the reference
///  window;
///  `likelihoods` — per read x haplotype log10 likelihoods;
///  `contig_id` / `window_start` — mapping of window offsets to reference
///  coordinates.
std::vector<GenotypedVariant> genotype_region(
    std::span<const std::string> haplotypes,
    const LikelihoodMatrix& likelihoods, std::int32_t contig_id,
    std::int64_t window_start, const GenotyperOptions& options = {});

}  // namespace gpf::caller
