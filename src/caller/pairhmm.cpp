#include "caller/pairhmm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gpf::caller {
namespace {

double error_prob(char qual_char) {
  const int q = std::max(1, qual_char - 33);
  return std::pow(10.0, -q / 10.0);
}

constexpr double kScaleThreshold = 1e-200;
constexpr double kScaleFactor = 1e200;

}  // namespace

PairHmm::PairHmm(PairHmmOptions options) : options_(options) {}

double PairHmm::log10_likelihood(std::string_view read,
                                 std::string_view quality,
                                 std::string_view haplotype) {
  if (read.size() != quality.size()) {
    throw std::invalid_argument("pairhmm: read/quality length mismatch");
  }
  if (read.empty() || haplotype.empty()) return -300.0;

  const std::size_t n = haplotype.size();
  for (auto& row : m_) row.assign(n + 1, 0.0);
  for (auto& row : x_) row.assign(n + 1, 0.0);
  for (auto& row : y_) row.assign(n + 1, 0.0);

  // Transition probabilities.
  const double mm = 1.0 - 2.0 * options_.gap_open;
  const double gm = 1.0 - options_.gap_extend;
  const double go = options_.gap_open;
  const double ge = options_.gap_extend;

  // Free start anywhere along the haplotype: initial mass in the D (Y)
  // state spread uniformly.
  const double init = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j <= n; ++j) y_[0][j] = init;

  double log10_scale = 0.0;
  int cur = 0;
  for (std::size_t i = 1; i <= read.size(); ++i) {
    const int prev = cur;
    cur ^= 1;
    const char rb = read[i - 1];
    const double e = error_prob(quality[i - 1]);
    m_[cur][0] = 0.0;
    x_[cur][0] = 0.0;
    y_[cur][0] = 0.0;
    double row_max = 0.0;
    for (std::size_t j = 1; j <= n; ++j) {
      const char hb = haplotype[j - 1];
      const double emit =
          (rb == 'N' || hb == 'N') ? 0.25 : (rb == hb ? 1.0 - e : e / 3.0);
      m_[cur][j] = emit * (mm * m_[prev][j - 1] + gm * x_[prev][j - 1] +
                           gm * y_[prev][j - 1]);
      x_[cur][j] = go * m_[prev][j] + ge * x_[prev][j];
      y_[cur][j] = go * m_[cur][j - 1] + ge * y_[cur][j - 1];
      row_max = std::max({row_max, m_[cur][j], x_[cur][j], y_[cur][j]});
    }
    if (row_max > 0.0 && row_max < kScaleThreshold) {
      for (std::size_t j = 0; j <= n; ++j) {
        m_[cur][j] *= kScaleFactor;
        x_[cur][j] *= kScaleFactor;
        y_[cur][j] *= kScaleFactor;
      }
      log10_scale -= std::log10(kScaleFactor);
    }
    if (row_max == 0.0) return -300.0;  // underflow: effectively impossible
  }

  // Free end anywhere along the haplotype.
  double total = 0.0;
  for (std::size_t j = 1; j <= n; ++j) total += m_[cur][j] + x_[cur][j];
  if (total <= 0.0) return -300.0;
  return std::log10(total) + log10_scale;
}

}  // namespace gpf::caller
