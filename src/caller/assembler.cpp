#include "caller/assembler.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gpf::caller {
namespace {

/// Rolling 2-bit k-mer encoding; returns false when the window contains a
/// non-ACGT character.
bool encode_kmer(std::string_view s, std::size_t at, int k,
                 std::uint64_t& out) {
  std::uint64_t v = 0;
  for (int i = 0; i < k; ++i) {
    switch (s[at + static_cast<std::size_t>(i)]) {
      case 'A':
        v = (v << 2) | 0;
        break;
      case 'C':
        v = (v << 2) | 1;
        break;
      case 'G':
        v = (v << 2) | 2;
        break;
      case 'T':
        v = (v << 2) | 3;
        break;
      default:
        return false;
    }
  }
  out = v;
  return true;
}

char last_base(std::uint64_t kmer) {
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return kBases[kmer & 3];
}

}  // namespace

namespace {

/// True when every k-mer of the reference window is unique — the
/// precondition for cycle-free source/sink anchoring (GATK retries with a
/// larger k when it fails).
bool ref_kmers_unique(std::string_view ref_window, int k) {
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0;
       i + static_cast<std::size_t>(k) <= ref_window.size(); ++i) {
    std::uint64_t km;
    if (!encode_kmer(ref_window, i, k, km)) continue;
    if (!seen.insert(km).second) return false;
  }
  return true;
}

}  // namespace

AssemblyResult assemble_haplotypes(std::span<const std::string_view> reads,
                                   std::string_view ref_window,
                                   const AssemblerOptions& options) {
  int k = options.kmer_length;
  if (k < 5 || k > 31) {
    throw std::invalid_argument("assembler kmer_length must be in [5, 31]");
  }
  AssemblyResult result;
  result.haplotypes.push_back(std::string(ref_window));
  if (static_cast<int>(ref_window.size()) <= k) return result;

  // Repetitive windows make the reference path cyclic; retry with larger
  // k, then give up (GATK's fallback to the reference haplotype).
  while (!ref_kmers_unique(ref_window, k)) {
    k += 6;
    if (k > 31 || static_cast<int>(ref_window.size()) <= k) return result;
  }

  // Count k-mers from reads.
  std::unordered_map<std::uint64_t, int> counts;
  for (const auto read : reads) {
    if (static_cast<int>(read.size()) < k) continue;
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= read.size();
         ++i) {
      std::uint64_t km;
      if (encode_kmer(read, i, k, km)) ++counts[km];
    }
  }
  // Reference k-mers are always present (count boost keeps them past
  // pruning).
  std::unordered_set<std::uint64_t> ref_kmers;
  for (std::size_t i = 0;
       i + static_cast<std::size_t>(k) <= ref_window.size(); ++i) {
    std::uint64_t km;
    if (encode_kmer(ref_window, i, k, km)) {
      ref_kmers.insert(km);
      counts[km] = std::max(counts[km], options.min_kmer_count);
    }
  }

  // Adjacency: for each surviving (k-1)-prefix, which bases extend it.
  // Edges follow from k-mer membership: kmer a->b iff suffix(a) ==
  // prefix(b); we walk by trying all 4 extensions.
  const std::uint64_t mask =
      k == 32 ? ~0ULL : ((1ULL << (2 * k)) - 1);
  auto survives = [&](std::uint64_t km) {
    const auto it = counts.find(km);
    return it != counts.end() && it->second >= options.min_kmer_count;
  };

  std::uint64_t source, sink;
  if (!encode_kmer(ref_window, 0, k, source) ||
      !encode_kmer(ref_window, ref_window.size() - static_cast<std::size_t>(k),
                   k, sink)) {
    return result;  // anchors contain N: no assembly
  }

  // Bounded DFS from source to sink.  A haplotype is only emitted when
  // its length is plausible for the window — repetitive graphs (e.g.
  // homopolymers) reach the sink k-mer early and must keep walking.
  const auto max_len = static_cast<std::size_t>(
      static_cast<double>(ref_window.size()) * options.max_path_stretch);
  const auto min_len = static_cast<std::size_t>(
      static_cast<double>(ref_window.size()) / options.max_path_stretch);
  struct Frame {
    std::uint64_t kmer;
    std::string path;  // bases appended after the source k-mer
  };
  std::vector<Frame> stack;
  stack.push_back({source, {}});
  std::vector<std::string> haplotypes;
  // Budget on explored states to keep worst-case graphs cheap.
  int budget = 20000;

  while (!stack.empty() && budget-- > 0 &&
         static_cast<int>(haplotypes.size()) < options.max_haplotypes) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.kmer == sink && !f.path.empty() &&
        f.path.size() + static_cast<std::size_t>(k) >= min_len) {
      std::string hap(ref_window.substr(0, static_cast<std::size_t>(k)));
      hap += f.path;
      haplotypes.push_back(std::move(hap));
      continue;
    }
    if (f.path.size() >= max_len) continue;
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t next = ((f.kmer << 2) | b) & mask;
      if (!survives(next)) continue;
      Frame nf;
      nf.kmer = next;
      nf.path = f.path;
      nf.path.push_back(last_base(next));
      stack.push_back(std::move(nf));
    }
  }

  // Keep the reference haplotype first and deduplicate.
  std::unordered_set<std::string> seen;
  seen.insert(result.haplotypes[0]);
  for (auto& h : haplotypes) {
    if (seen.insert(h).second) {
      result.haplotypes.push_back(std::move(h));
      result.assembled = true;
    }
  }
  return result;
}

}  // namespace gpf::caller
