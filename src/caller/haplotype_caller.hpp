// End-to-end HaplotypeCaller: active regions -> assembly -> pair-HMM ->
// genotyping -> VCF records.  This is the algorithm behind the paper's
// HaplotypeCallerProcess; the GPF core layer parallelizes it by calling
// `call_region` per partition.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "caller/active_region.hpp"
#include "caller/assembler.hpp"
#include "caller/genotyper.hpp"
#include "caller/pairhmm.hpp"
#include "formats/bed.hpp"
#include "formats/fasta.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::caller {

struct CallerOptions {
  ActiveRegionOptions active_region;
  AssemblerOptions assembler;
  PairHmmOptions pairhmm;
  GenotyperOptions genotyper;
  /// Reads beyond this many per region are downsampled (GATK's safeguard
  /// against the 10,000x pileups the paper mentions).
  std::size_t max_reads_per_region = 512;
  /// When set, only active regions overlapping these target intervals are
  /// assembled and called (the WES / gene-panel mode: -L in GATK terms).
  /// Not owned; must outlive the call.
  const IntervalSet* targets = nullptr;
};

struct CallStats {
  std::size_t regions = 0;
  std::size_t assembled_regions = 0;
  std::size_t reads_processed = 0;
  std::size_t variants_emitted = 0;
};

/// Calls variants in one active region.
std::vector<VcfRecord> call_region(const ActiveRegion& region,
                                   std::span<const SamRecord> records,
                                   const Reference& reference,
                                   const CallerOptions& options,
                                   CallStats* stats = nullptr);

/// Whole-batch driver: detects active regions over coordinate-sorted
/// records and calls each.  Single-threaded; distribution happens above.
std::vector<VcfRecord> call_variants(std::span<const SamRecord> sorted_records,
                                     const Reference& reference,
                                     const CallerOptions& options = {},
                                     CallStats* stats = nullptr);

}  // namespace gpf::caller
