// Active-region detection: the HaplotypeCaller front-end that restricts
// expensive local assembly + pair-HMM work to genomic windows showing
// evidence of variation (mismatch/indel pileup activity).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "formats/fasta.hpp"
#include "formats/sam.hpp"

namespace gpf::caller {

struct ActiveRegionOptions {
  /// Minimum summed activity at a position to seed a region.
  int min_activity = 2;
  /// Depth-relative floor: a position is active only when its activity
  /// also reaches this fraction of the local coverage depth.  This is
  /// GATK's guard against sequencing-error pileups looking active in
  /// ultra-deep regions (the 10,000x hotspots of paper Sec 4.4).
  double min_activity_fraction = 0.04;
  /// Active positions closer than this merge into one region.
  std::int64_t merge_distance = 50;
  /// Padding added on both sides of the active span.
  std::int64_t padding = 75;
  /// Regions larger than this are split.
  std::int64_t max_region_size = 400;
};

/// A window selected for assembly, with the indices (into the input
/// record span) of reads overlapping it.
struct ActiveRegion {
  std::int32_t contig_id = -1;
  std::int64_t start = 0;
  std::int64_t end = 0;  // exclusive
  std::vector<std::size_t> read_indices;

  std::int64_t size() const { return end - start; }
};

/// Scans coordinate-sorted records and returns active regions.  Unmapped,
/// duplicate and secondary records contribute no activity and are never
/// assigned to regions.
std::vector<ActiveRegion> find_active_regions(
    std::span<const SamRecord> sorted_records, const Reference& reference,
    const ActiveRegionOptions& options = {});

}  // namespace gpf::caller
