#include "caller/genotyper.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "align/smith_waterman.hpp"

namespace gpf::caller {
namespace {

/// log10( (10^a + 10^b) / 2 ): the diploid per-read mixture.
double log10_mean(double a, double b) {
  const double m = std::max(a, b);
  return m + std::log10((std::pow(10.0, a - m) + std::pow(10.0, b - m)) / 2.0) ;
}

/// Variants present in `haplotype` relative to the reference window.
std::vector<VcfRecord> haplotype_variants(const std::string& haplotype,
                                          const std::string& ref_window,
                                          std::int32_t contig_id,
                                          std::int64_t window_start,
                                          int band) {
  std::vector<VcfRecord> out;
  if (haplotype == ref_window) return out;
  const align::AlignmentResult r = align::banded_global(
      haplotype, ref_window, align::ScoringScheme{}, band);
  std::int64_t ref_pos = 0;   // offset in window
  std::size_t hap_pos = 0;
  for (const auto& el : r.cigar) {
    switch (el.op) {
      case CigarOp::kMatch:
      case CigarOp::kEqual:
      case CigarOp::kDiff:
        for (std::uint32_t i = 0; i < el.length; ++i) {
          const char rb = ref_window[static_cast<std::size_t>(ref_pos + i)];
          const char hb = haplotype[hap_pos + i];
          if (rb != hb && rb != 'N' && hb != 'N') {
            VcfRecord v;
            v.contig_id = contig_id;
            v.pos = window_start + ref_pos + i;
            v.ref = std::string(1, rb);
            v.alt = std::string(1, hb);
            out.push_back(std::move(v));
          }
        }
        ref_pos += el.length;
        hap_pos += el.length;
        break;
      case CigarOp::kInsertion: {
        // Anchor on the previous reference base (VCF convention).
        if (ref_pos > 0) {
          VcfRecord v;
          v.contig_id = contig_id;
          v.pos = window_start + ref_pos - 1;
          v.ref = std::string(1, ref_window[static_cast<std::size_t>(
                                     ref_pos - 1)]);
          v.alt = v.ref + haplotype.substr(hap_pos, el.length);
          out.push_back(std::move(v));
        }
        hap_pos += el.length;
        break;
      }
      case CigarOp::kDeletion: {
        if (ref_pos > 0) {
          VcfRecord v;
          v.contig_id = contig_id;
          v.pos = window_start + ref_pos - 1;
          v.ref = ref_window.substr(static_cast<std::size_t>(ref_pos - 1),
                                    el.length + 1);
          v.alt = std::string(1, ref_window[static_cast<std::size_t>(
                                     ref_pos - 1)]);
          out.push_back(std::move(v));
        }
        ref_pos += el.length;
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace

std::vector<GenotypedVariant> genotype_region(
    std::span<const std::string> haplotypes,
    const LikelihoodMatrix& likelihoods, std::int32_t contig_id,
    std::int64_t window_start, const GenotyperOptions& options) {
  std::vector<GenotypedVariant> out;
  if (haplotypes.size() < 2 || likelihoods.empty()) return out;
  const std::size_t n_hap = haplotypes.size();
  const std::size_t n_reads = likelihoods.size();

  // Score every unordered haplotype pair.
  double best_score = -1e300;
  double homref_score = 0.0;
  std::size_t best_a = 0, best_b = 0;
  for (std::size_t a = 0; a < n_hap; ++a) {
    for (std::size_t b = a; b < n_hap; ++b) {
      double score = 0.0;
      for (std::size_t r = 0; r < n_reads; ++r) {
        score += log10_mean(likelihoods[r][a], likelihoods[r][b]);
      }
      if (a == 0 && b == 0) homref_score = score;
      if (score > best_score) {
        best_score = score;
        best_a = a;
        best_b = b;
      }
    }
  }
  if (best_a == 0 && best_b == 0) return out;  // hom-ref region

  const double qual = std::max(0.0, 10.0 * (best_score - homref_score));
  if (qual < options.min_qual) return out;

  // Extract variants from the winning pair.
  const std::string& ref_window = haplotypes[0];
  std::map<std::pair<std::int64_t, std::pair<std::string, std::string>>, int>
      allele_count;
  for (const std::size_t h : {best_a, best_b}) {
    if (h == 0) continue;
    for (auto& v : haplotype_variants(haplotypes[h], ref_window, contig_id,
                                      window_start, options.band)) {
      ++allele_count[{v.pos, {v.ref, v.alt}}];
    }
  }
  for (const auto& [key, count] : allele_count) {
    GenotypedVariant gv;
    gv.record.contig_id = contig_id;
    gv.record.pos = key.first;
    gv.record.ref = key.second.first;
    gv.record.alt = key.second.second;
    gv.record.qual = qual;
    // Both chosen haplotypes carry it (or one hap chosen twice) -> hom.
    const bool hom = count >= 2 || (best_a == best_b);
    gv.record.genotype = hom ? Genotype::kHomAlt : Genotype::kHet;
    gv.hap_a = static_cast<int>(best_a);
    gv.hap_b = static_cast<int>(best_b);
    out.push_back(std::move(gv));
  }
  std::sort(out.begin(), out.end(),
            [](const GenotypedVariant& a, const GenotypedVariant& b) {
              return vcf_less(a.record, b.record);
            });
  return out;
}

}  // namespace gpf::caller
