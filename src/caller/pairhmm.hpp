// Pair-HMM read-vs-haplotype likelihood (the paper: "calling variants via
// local de-novo assembly of haplotypes in an active region based on
// paired-HMM algorithm").
//
// Standard 3-state (match / insert / delete) HMM evaluated in probability
// space with per-row scaling; emission probabilities come from the base
// quality string.  This kernel dominates Caller-phase CPU exactly as the
// paper reports.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace gpf::caller {

struct PairHmmOptions {
  /// Gap-open probability (Phred ~ 45 in GATK).
  double gap_open = 1e-4;
  /// Gap-extension probability.
  double gap_extend = 0.1;
};

/// Evaluator reusing its DP buffers across calls; one instance per thread.
class PairHmm {
 public:
  explicit PairHmm(PairHmmOptions options = {});

  /// log10 P(read | haplotype).  `quality` is Phred+33, same length as
  /// `read`.
  double log10_likelihood(std::string_view read, std::string_view quality,
                          std::string_view haplotype);

 private:
  PairHmmOptions options_;
  // Two rolling rows for each of the three state matrices.
  std::vector<double> m_[2], x_[2], y_[2];
};

}  // namespace gpf::caller
