// Durable filesystem primitives shared by every on-disk writer.
//
// A plain truncate-in-place write has a torn-write window: a crash after
// the truncate but before the final byte leaves a short file that parses
// as silently-truncated FASTQ/FASTA/VCF (or a chunk whose footer is gone).
// atomic_write_file closes that window with the classic discipline: write
// a temp file in the target directory, fsync it, rename over the target,
// fsync the directory.  Readers see either the old bytes or the new bytes,
// never a prefix.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace gpf::fs {

/// Writes `bytes` to `path` atomically (temp file + fsync + rename +
/// directory fsync).  Throws std::runtime_error naming the path and the
/// failing step; the temp file is unlinked on every failure path.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// std::string_view convenience overload.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Deliberately NON-atomic prefix write: truncates `path` in place and
/// writes only the first `prefix_bytes` of `bytes` (clamped to the full
/// size).  This is the torn-write fault-injection surface — it reproduces
/// exactly what a crash mid-write under the old truncate-in-place
/// discipline leaves behind, so tests and the chunk store's injected
/// faults can assert torn files are *detected* rather than silently
/// parsed short.  Never use it for real data.
void write_file_prefix_for_testing(const std::string& path,
                                   std::span<const std::uint8_t> bytes,
                                   std::size_t prefix_bytes);

namespace testing {

/// Installs a hook invoked by atomic_write_file after the temp file is
/// opened but before any byte is written; a throwing hook simulates a
/// crash mid-write.  The regression contract under an injected failure:
/// the destination keeps its old bytes and no temp file is left behind.
/// Pass nullptr to uninstall.  Not thread-safe; test-only.
void set_write_failure_hook(void (*hook)());

}  // namespace testing

}  // namespace gpf::fs
