#include "common/histogram.hpp"

#include <cstdio>
#include <stdexcept>

namespace gpf {

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (const auto& [k, c] : counts_) t += c;
  return t;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t key) const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(t);
}

std::int64_t Histogram::min_key() const {
  if (counts_.empty()) throw std::logic_error("empty histogram");
  return counts_.begin()->first;
}

std::int64_t Histogram::max_key() const {
  if (counts_.empty()) throw std::logic_error("empty histogram");
  return counts_.rbegin()->first;
}

double Histogram::mean() const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [k, c] : counts_) {
    sum += static_cast<double>(k) * static_cast<double>(c);
  }
  return sum / static_cast<double>(t);
}

std::int64_t Histogram::percentile(double p) const {
  if (counts_.empty()) throw std::logic_error("empty histogram");
  const std::uint64_t t = total();
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(t));
  std::uint64_t seen = 0;
  for (const auto& [k, c] : counts_) {
    seen += c;
    if (seen >= target) return k;
  }
  return counts_.rbegin()->first;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [k, c] : other.counts_) counts_[k] += c;
}

std::string Histogram::to_tsv(std::int64_t lo, std::int64_t hi) const {
  std::string out;
  const std::uint64_t t = total();
  for (std::int64_t k = lo; k <= hi; ++k) {
    const double pct =
        t == 0 ? 0.0
               : 100.0 * static_cast<double>(count(k)) / static_cast<double>(t);
    char line[64];
    std::snprintf(line, sizeof line, "%lld\t%.3f\n",
                  static_cast<long long>(k), pct);
    out += line;
  }
  return out;
}

}  // namespace gpf
