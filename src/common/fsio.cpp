#include "common/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string_view>

namespace gpf::fs {
namespace {

/// Distinct temp names per process *and* per call, so concurrent writers
/// targeting the same path never share a temp file.
std::string temp_name(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

[[noreturn]] void fail(const std::string& path, const char* step) {
  throw std::runtime_error(std::string("atomic write of ") + path +
                           " failed at " + step + ": " +
                           std::strerror(errno));
}

/// Directory part of `path` ("." when there is none), for the directory
/// fsync that makes the rename itself durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path, "write");
    }
    done += static_cast<std::size_t>(n);
  }
}

void (*write_failure_hook)() = nullptr;

}  // namespace

namespace testing {

void set_write_failure_hook(void (*hook)()) { write_failure_hook = hook; }

}  // namespace testing

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = temp_name(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) fail(path, "open temp");
  try {
    if (write_failure_hook != nullptr) write_failure_hook();
    write_all(fd, bytes.data(), bytes.size(), path);
    if (::fsync(fd) != 0) fail(path, "fsync temp");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(path, "close temp");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(path, "rename");
  }
  // Make the rename itself durable: fsync the containing directory.  Best
  // effort on filesystems that refuse directory fds.
  const int dir = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir >= 0) {
    ::fsync(dir);
    ::close(dir);
  }
}

void write_file_prefix_for_testing(const std::string& path,
                                   std::span<const std::uint8_t> bytes,
                                   std::size_t prefix_bytes) {
  const std::size_t n = std::min(prefix_bytes, bytes.size());
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(path, "open");
  try {
    write_all(fd, bytes.data(), n, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) fail(path, "close");
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  atomic_write_file(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(contents.data()),
                contents.size()));
}

}  // namespace gpf::fs
