#include "common/timer.hpp"

#include <cmath>
#include <cstdio>

namespace gpf {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof buf, "%dm%04.1fs", minutes,
                  seconds - 60.0 * minutes);
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fGB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fMB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fKB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace gpf
