#include "common/timer.hpp"

#include <cmath>
#include <cstdio>

namespace gpf {

std::string format_duration(double seconds) {
  // Simulator edge cases can produce NaN/negative durations; render them
  // explicitly instead of misformatting ("nanms", garbage minute counts).
  if (std::isnan(seconds)) return "nan";
  if (std::isinf(seconds)) return seconds < 0.0 ? "-inf" : "inf";
  if (seconds < 0.0) return "-" + format_duration(-seconds);
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else if (seconds < 3600.0) {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof buf, "%dm%04.1fs", minutes,
                  seconds - 60.0 * minutes);
  } else {
    const int hours = static_cast<int>(seconds / 3600.0);
    const double rem = seconds - 3600.0 * hours;
    const int minutes = static_cast<int>(rem / 60.0);
    std::snprintf(buf, sizeof buf, "%dh%02dm%04.1fs", hours, minutes,
                  rem - 60.0 * minutes);
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fGB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fMB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fKB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace gpf
