// Deterministic, fast pseudo-random generator used throughout the synthetic
// data generators and simulators.  Experiments must be bit-reproducible
// across runs and machines, so we pin a specific algorithm (xoshiro256**)
// instead of relying on std::mt19937's unspecified distribution behaviour
// for doubles.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace gpf {

/// xoshiro256** by Blackman & Vigna: small state, excellent statistical
/// quality, and a cheap next().  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64,
  /// which guarantees a non-zero, well-mixed state for any seed value.
  void reseed(std::uint64_t seed) {
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via the polar Box-Muller method.
  double normal() {
    for (;;) {
      const double u = 2.0 * uniform() - 1.0;
      const double v = 2.0 * uniform() - 1.0;
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Bernoulli draw with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gpf
