// Flat byte-buffer serialization primitives.
//
// The engine stores every partition either as live objects or as one large
// serialized byte array (the paper's "store each RDD partition as one large
// byte array").  ByteWriter/ByteReader are the low-level primitives all
// record codecs build on: little-endian fixed-width integers, varints, and
// length-prefixed strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpf {

/// Append-only byte sink backed by a std::vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts `buf`'s storage (cleared, capacity kept) so encode paths can
  /// reuse pooled buffers instead of reallocating; pair with take().
  explicit ByteWriter(std::vector<std::uint8_t>&& buf)
      : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { append_raw(&v, sizeof v); }
  void u32(std::uint32_t v) { append_raw(&v, sizeof v); }
  void u64(std::uint64_t v) { append_raw(&v, sizeof v); }
  void i32(std::int32_t v) { append_raw(&v, sizeof v); }
  void i64(std::int64_t v) { append_raw(&v, sizeof v); }
  void f32(float v) { append_raw(&v, sizeof v); }
  void f64(double v) { append_raw(&v, sizeof v); }

  /// LEB128-style unsigned varint: 1 byte for values < 128, which covers
  /// the vast majority of genomic record fields (flags, small lengths).
  void uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag signed varint.
  void svarint(std::int64_t v) {
    uvarint((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
  }

  /// Length-prefixed byte string.
  void str(std::string_view s) {
    uvarint(s.size());
    append_raw(s.data(), s.size());
  }

  /// Raw bytes without a length prefix.
  void raw(std::span<const std::uint8_t> bytes) {
    append_raw(bytes.data(), bytes.size());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte span; throws std::out_of_range on
/// truncated input so corrupt shuffle blocks surface immediately.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return data_[need(1)]; }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return fixed<std::int32_t>(); }
  std::int64_t i64() { return fixed<std::int64_t>(); }
  float f32() { return fixed<float>(); }
  double f64() { return fixed<double>(); }

  std::uint64_t uvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
      if (shift >= 64) throw std::out_of_range("uvarint overflow");
    }
  }

  std::int64_t svarint() {
    const std::uint64_t u = uvarint();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  std::string str() {
    const std::size_t n = uvarint();
    const std::size_t at = need(n);
    return std::string(reinterpret_cast<const char*>(data_.data() + at), n);
  }

  /// Returns a view of `n` raw bytes and advances.
  std::span<const std::uint8_t> raw(std::size_t n) {
    const std::size_t at = need(n);
    return data_.subspan(at, n);
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T fixed() {
    const std::size_t at = need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + at, sizeof(T));
    return v;
  }

  /// Reserves `n` bytes, returning the start offset.
  std::size_t need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: truncated input");
    }
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gpf
