// Fixed-size work-stealing thread pool used by the execution engine.
//
// Each worker owns a deque: tasks submitted from a worker go to its own
// deque and are popped LIFO (newest first, cache-hot); tasks submitted
// from outside the pool are distributed round-robin.  An idle worker
// steals FIFO from the other deques (oldest first), so a skewed stage —
// one queue stacked with heavy tasks — drains across all cores instead of
// serializing behind its owner.  The pool stays allocation-light: it is
// the substrate every other module builds on, so predictability beats
// cleverness here.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpf {

/// A fixed-size pool of worker threads with per-worker deques and work
/// stealing.  Tasks on one deque run newest-first for their owner and are
/// stolen oldest-first by idle workers; there is no global FIFO order
/// across deques (the engine never depends on submission order).
///
/// Thread-safe: submit() may be called concurrently from any thread,
/// including from inside a task (tasks must not block on tasks that cannot
/// be scheduled, but the engine only submits leaf work so this cannot
/// deadlock).
///
/// Setting GPF_FORCE_STEAL=1 in the environment (read at construction)
/// makes every worker try to steal before touching its own deque —
/// maximum cross-thread traffic, used by CI to stress the stealing path.
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (defaults to hardware
  /// concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    push_task([task] { (*task)(); });
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations complete.  Iterations are distributed in contiguous blocks.
  /// Safe to call from inside a task running on this pool: a nested call
  /// executes its iterations inline on the calling worker, because queued
  /// chunks could otherwise wait forever behind workers that are all
  /// blocked in outer parallel_for calls.
  /// An exception thrown by `fn` propagates to the caller — after every
  /// other chunk has finished, so `fn` is never referenced past the call's
  /// return.  When several chunks throw, the earliest-submitted chunk's
  /// exception wins.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const { return current_pool() == this; }

  /// Global pool shared by code that does not need a private one.
  static ThreadPool& global();

 private:
  /// One worker's deque.  A plain mutex per deque keeps the code obvious;
  /// engine tasks are whole partitions (or record ranges), coarse enough
  /// that the lock never sees real contention.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  /// Pops and runs one task (own deque LIFO, then steal FIFO); false when
  /// every deque was empty.
  bool try_run_one(std::size_t self);
  /// Routes a task to a deque (own deque on workers, round-robin outside)
  /// and wakes a sleeper.
  void push_task(std::function<void()> task);

  /// The pool whose worker_loop the calling thread is running, if any.
  static ThreadPool*& current_pool();
  /// The calling worker's index within current_pool() (0 outside).
  static std::size_t& current_worker();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Tasks pushed but not yet taken, across all deques.  The release/
  /// acquire pairing with sleep_mu_ is what makes the sleep path lossless.
  std::atomic<std::size_t> pending_{0};
  /// Round-robin cursor for external submissions.
  std::atomic<std::size_t> next_queue_{0};
  std::mutex sleep_mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by sleep_mu_
  bool force_steal_ = false;
};

}  // namespace gpf
