// Fixed-size work-stealing-free thread pool used by the execution engine.
//
// The engine schedules whole partitions as tasks; tasks are coarse enough
// that a single shared queue with a condition variable does not become a
// bottleneck.  The pool is deliberately simple and allocation-light: it is
// the substrate every other module builds on, so predictability beats
// cleverness here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gpf {

/// A fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// Thread-safe: submit() may be called concurrently from any thread,
/// including from inside a task (tasks must not block on tasks that cannot
/// be scheduled, but the engine only submits leaf work so this cannot
/// deadlock).
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (defaults to hardware
  /// concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations complete.  Iterations are distributed in contiguous blocks.
  /// Safe to call from inside a task running on this pool: a nested call
  /// executes its iterations inline on the calling worker, because queued
  /// chunks could otherwise wait forever behind workers that are all
  /// blocked in outer parallel_for calls.
  /// An exception thrown by `fn` propagates to the caller — after every
  /// other chunk has finished, so `fn` is never referenced past the call's
  /// return.  When several chunks throw, the earliest-submitted chunk's
  /// exception wins.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const { return current_pool() == this; }

  /// Global pool shared by code that does not need a private one.
  static ThreadPool& global();

 private:
  void worker_loop();

  /// The pool whose worker_loop the calling thread is running, if any.
  static ThreadPool*& current_pool();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gpf
