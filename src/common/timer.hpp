// Wall-clock timing helpers used by the engine's metrics layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace gpf {

/// Monotonic stopwatch; resolution is the steady clock's.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(seconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as "12m34.5s" / "3.21s" / "45ms".
std::string format_duration(double seconds);

/// Formats a byte count as "1.5GB" / "322MB" / "17KB".
std::string format_bytes(std::uint64_t bytes);

}  // namespace gpf
