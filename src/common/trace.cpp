#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace gpf::trace {
namespace {

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

/// One "M"-phase metadata event naming a trace process.
void append_process_name(std::string& out, std::uint32_t pid,
                         const char* name) {
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"tid\":0,\"args\":{\"name\":",
                pid);
  out += buf;
  append_json_string(out, name);
  out += "}},\n";
}

}  // namespace

const char* span_category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kTask:
      return "task";
    case SpanKind::kShuffleSer:
      return "shuffle_ser";
    case SpanKind::kShuffleDeser:
      return "shuffle_deser";
    case SpanKind::kProcess:
      return "process";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kSimStage:
      return "sim_stage";
    case SpanKind::kSimTask:
      return "sim_task";
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(mu_);
    b->track = next_track_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceRecorder::record(Span span) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  span.track = buffer.track;
  std::lock_guard lock(buffer.mu);
  buffer.spans.push_back(std::move(span));
}

std::vector<Span> TraceRecorder::drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(mu_);
    buffers = buffers_;
  }
  std::vector<Span> out;
  for (const auto& b : buffers) {
    std::lock_guard lock(b->mu);
    out.insert(out.end(), std::make_move_iterator(b->spans.begin()),
               std::make_move_iterator(b->spans.end()));
    b->spans.clear();
  }
  return out;
}

void TraceRecorder::clear() { drain(); }

std::string write_chrome_trace(std::span<const Span> spans) {
  // Stable-sort into per-track timelines so ts is monotonic per track.
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->track != b->track) return a->track < b->track;
                     return a->start_us < b->start_us;
                   });

  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool has_local = false;
  bool has_sim = false;
  for (const Span* s : ordered) {
    has_local |= s->pid == 0;
    has_sim |= s->pid == 1;
  }
  if (has_local) append_process_name(out, 0, "gpf engine (measured)");
  if (has_sim) append_process_name(out, 1, "simcluster replay (virtual time)");

  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Span& s = *ordered[i];
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":\"";
    out += span_category(s.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_number(out, s.start_us);
    out += ",\"dur\":";
    append_number(out, s.dur_us < 0.0 ? 0.0 : s.dur_us);
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u", s.pid, s.track);
    out += buf;
    out += ",\"args\":{";
    if (s.task >= 0) {
      std::snprintf(buf, sizeof buf, "\"task\":%lld,\"attempt\":%d,",
                    static_cast<long long>(s.task), s.attempt);
      out += buf;
      out += "\"retry\":";
      out += s.retry ? "true," : "false,";
      out += "\"speculative\":";
      out += s.speculative ? "true," : "false,";
    }
    out += "\"failed\":";
    out += s.failed ? "true" : "false";
    out += "}}";
    if (i + 1 < ordered.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const Span> spans) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = write_chrome_trace(spans);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace gpf::trace
