#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace gpf::trace {
namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not well-formed UTF-8 (truncated sequence, stray
/// continuation byte, overlong form, surrogate, or > U+10FFFF).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len;
  unsigned char lo = 0x80;
  unsigned char hi = 0xbf;
  if (b0 <= 0x7f) return 1;
  if (b0 >= 0xc2 && b0 <= 0xdf) {
    len = 2;
  } else if (b0 >= 0xe0 && b0 <= 0xef) {
    len = 3;
    if (b0 == 0xe0) lo = 0xa0;  // reject overlong
    if (b0 == 0xed) hi = 0x9f;  // reject surrogates
  } else if (b0 >= 0xf0 && b0 <= 0xf4) {
    len = 4;
    if (b0 == 0xf0) lo = 0x90;  // reject overlong
    if (b0 == 0xf4) hi = 0x8f;  // reject > U+10FFFF
  } else {
    return 0;  // 0x80-0xc1 and 0xf5-0xff never start a sequence
  }
  if (i + len > s.size()) return 0;
  if (byte(i + 1) < lo || byte(i + 1) > hi) return 0;
  for (std::size_t k = 2; k < len; ++k) {
    if (byte(i + k) < 0x80 || byte(i + k) > 0xbf) return 0;
  }
  return len;
}

/// Escapes a string for a JSON literal.  Quotes, backslashes and control
/// characters are escaped; valid UTF-8 passes through; bytes that are NOT
/// valid UTF-8 are escaped as \u00XX (their Latin-1 code points), because
/// Chrome's trace viewer rejects documents with raw non-UTF-8 bytes.  The
/// output is therefore valid JSON for ARBITRARY input bytes.
void append_json_string(std::string& out, std::string_view s) {
  const auto escape_byte = [&out](unsigned char b) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(b));
    out += buf;
  };
  out += '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      default:
        break;
    }
    const unsigned char b = static_cast<unsigned char>(c);
    if (b < 0x20) {
      escape_byte(b);
      ++i;
      continue;
    }
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      escape_byte(b);
      ++i;
      continue;
    }
    out.append(s.data() + i, len);
    i += len;
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

/// One "M"-phase metadata event naming a trace process.
void append_process_name(std::string& out, std::uint32_t pid,
                         const char* name) {
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"tid\":0,\"args\":{\"name\":",
                pid);
  out += buf;
  append_json_string(out, name);
  out += "}},\n";
}

}  // namespace

const char* span_category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kTask:
      return "task";
    case SpanKind::kShuffleSer:
      return "shuffle_ser";
    case SpanKind::kShuffleDeser:
      return "shuffle_deser";
    case SpanKind::kProcess:
      return "process";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kSimStage:
      return "sim_stage";
    case SpanKind::kSimTask:
      return "sim_task";
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(mu_);
    b->track = next_track_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceRecorder::record(Span span) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  span.track = buffer.track;
  std::lock_guard lock(buffer.mu);
  buffer.spans.push_back(std::move(span));
}

std::vector<Span> TraceRecorder::drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(mu_);
    buffers = buffers_;
  }
  std::vector<Span> out;
  for (const auto& b : buffers) {
    std::lock_guard lock(b->mu);
    out.insert(out.end(), std::make_move_iterator(b->spans.begin()),
               std::make_move_iterator(b->spans.end()));
    b->spans.clear();
  }
  return out;
}

void TraceRecorder::clear() { drain(); }

std::string write_chrome_trace(std::span<const Span> spans) {
  // Stable-sort into per-track timelines so ts is monotonic per track.
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->track != b->track) return a->track < b->track;
                     return a->start_us < b->start_us;
                   });

  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool has_local = false;
  bool has_sim = false;
  for (const Span* s : ordered) {
    has_local |= s->pid == 0;
    has_sim |= s->pid == 1;
  }
  if (has_local) append_process_name(out, 0, "gpf engine (measured)");
  if (has_sim) append_process_name(out, 1, "simcluster replay (virtual time)");

  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Span& s = *ordered[i];
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":\"";
    out += span_category(s.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_number(out, s.start_us);
    out += ",\"dur\":";
    append_number(out, s.dur_us < 0.0 ? 0.0 : s.dur_us);
    char buf[64];
    std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u", s.pid, s.track);
    out += buf;
    out += ",\"args\":{";
    if (s.task >= 0) {
      std::snprintf(buf, sizeof buf, "\"task\":%lld,\"attempt\":%d,",
                    static_cast<long long>(s.task), s.attempt);
      out += buf;
      out += "\"retry\":";
      out += s.retry ? "true," : "false,";
      out += "\"speculative\":";
      out += s.speculative ? "true," : "false,";
    }
    out += "\"failed\":";
    out += s.failed ? "true" : "false";
    out += "}}";
    if (i + 1 < ordered.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const Span> spans) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = write_chrome_trace(spans);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace gpf::trace
