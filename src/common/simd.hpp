// Portable SIMD/SWAR support for the hot codec and alignment kernels.
//
// Three dispatch levels: a pure-C++ 64-bit SWAR path that compiles and runs
// everywhere, and guarded SSE4/AVX2 intrinsic paths selected at runtime from
// CPUID.  The scalar path is always compiled so it stays testable on any
// machine; setting the environment variable GPF_FORCE_SCALAR=1 pins dispatch
// to it (the perf-regression harness uses this to measure the vector paths
// against their scalar baselines on the same binary).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define GPF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace gpf::simd {

/// Dispatch levels, ordered so `level >= kSse4` style comparisons work.
enum class Level : int {
  kScalar = 0,  // 64-bit SWAR, no intrinsics
  kSse4 = 1,    // 128-bit SSE4.2/SSSE3
  kAvx2 = 2,    // 256-bit AVX2
};

inline const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse4:
      return "sse4";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

/// Highest level this CPU supports (compile-time gated, then CPUID).
inline Level detect_level() {
#if defined(GPF_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("ssse3")) {
    return Level::kSse4;
  }
#endif
  return Level::kScalar;
}

/// Active dispatch level: detect_level() unless GPF_FORCE_SCALAR=1 is set in
/// the environment.  Cached after the first call (env + CPUID cost once).
inline Level active_level() {
  static const Level cached = [] {
    const char* force = std::getenv("GPF_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1' && force[1] == '\0') {
      return Level::kScalar;
    }
    return detect_level();
  }();
  return cached;
}

// --- 64-bit SWAR primitives -------------------------------------------------
//
// Treat a std::uint64_t as eight byte lanes.  All helpers are branch-free
// and exact per lane (no carry bleed between lanes).

inline constexpr std::uint64_t kLaneLsb = 0x0101010101010101ULL;
inline constexpr std::uint64_t kLaneMsb = 0x8080808080808080ULL;

/// Replicates `b` into all eight lanes.
inline constexpr std::uint64_t broadcast(std::uint8_t b) {
  return kLaneLsb * b;
}

/// Unaligned little-endian 64-bit load/store.
inline std::uint64_t load_u64(const void* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_u64(void* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

/// 0x80 in every lane whose byte is zero, 0x00 elsewhere.  Exact per lane
/// (uses the carry-free Hacker's Delight form, not the cheaper variant that
/// over-reports after a zero lane).
inline constexpr std::uint64_t zero_lanes(std::uint64_t v) {
  return ~(((v & ~kLaneMsb) + ~kLaneMsb) | v) & kLaneMsb;
}

/// 0x80 in every lane equal to `b`.
inline constexpr std::uint64_t eq_lanes(std::uint64_t v, std::uint8_t b) {
  return zero_lanes(v ^ broadcast(b));
}

/// 0x80 in every lane whose byte is (unsigned) less than `b`.  Valid for
/// b in [1, 128].  Uses the carry-free Bit Twiddling Hacks "countless"
/// form — the cheaper "hasless" form lets a borrow bleed into the next
/// lane when a low lane underflows, corrupting its neighbor's bit.
inline constexpr std::uint64_t lt_lanes(std::uint64_t v, std::uint8_t b) {
  return (broadcast(static_cast<std::uint8_t>(127 + b)) - (v & ~kLaneMsb)) &
         ~v & kLaneMsb;
}

/// 0x80 in every lane whose byte is (unsigned) greater than `b`.  Valid
/// for b in [0, 127].  Carry-free "countmore" form, for the same reason.
inline constexpr std::uint64_t gt_lanes(std::uint64_t v, std::uint8_t b) {
  return (((v & ~kLaneMsb) + broadcast(static_cast<std::uint8_t>(127 - b))) |
          v) &
         kLaneMsb;
}

/// Compresses a lane mask (0x80 per flagged lane, as produced by eq_lanes
/// and friends) into one bit per lane: bit i set iff lane i was flagged.
/// The SWAR analogue of SSE's movemask.
inline constexpr std::uint8_t movemask_lanes(std::uint64_t lane_mask) {
  return static_cast<std::uint8_t>(
      ((lane_mask & kLaneMsb) * 0x0002040810204081ULL) >> 56);
}

}  // namespace gpf::simd
