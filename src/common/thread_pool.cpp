#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace gpf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool*& ThreadPool::current_pool() {
  static thread_local ThreadPool* pool = nullptr;
  return pool;
}

void ThreadPool::worker_loop() {
  current_pool() = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Nested parallelism: every worker may already be blocked in an outer
    // parallel_for's f.get(), so chunks submitted here could never be
    // scheduled.  Running inline keeps the caller's worker productive and
    // cannot deadlock.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t blocks = std::min(n, size() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Drain every chunk before propagating a failure.  Rethrowing on the
  // first get() would return while queued chunks still reference `fn`,
  // whose lifetime ends with the caller's stack frame — a use-after-free
  // once the pool schedules them.  All iterations either ran or threw by
  // the time this returns; the first exception wins, later ones are
  // dropped (each retryable body should be idempotent anyway, per the
  // stage executor's contract).
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gpf
