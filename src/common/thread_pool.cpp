#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace gpf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const char* force = std::getenv("GPF_FORCE_STEAL");
  force_steal_ = force != nullptr && *force != '\0' && *force != '0';
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool*& ThreadPool::current_pool() {
  static thread_local ThreadPool* pool = nullptr;
  return pool;
}

std::size_t& ThreadPool::current_worker() {
  static thread_local std::size_t index = 0;
  return index;
}

void ThreadPool::push_task(std::function<void()> task) {
  std::size_t target;
  if (on_worker_thread()) {
    // Worker-spawned work stays local: the owner pops it LIFO while it is
    // cache-hot, idle workers steal it FIFO if the owner is busy.
    target = current_worker();
  } else {
    target = next_queue_.fetch_add(1) % queues_.size();
  }
  {
    std::lock_guard lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section orders the pending_ increment against a
  // sleeper's predicate check: a worker that saw pending_ == 0 under
  // sleep_mu_ is guaranteed to be waiting by the time notify_one fires,
  // so the wakeup cannot be lost.
  { std::lock_guard lock(sleep_mu_); }
  cv_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  auto pop_own = [&] {
    WorkerQueue& q = *queues_[self];
    std::lock_guard lock(q.mu);
    if (q.tasks.empty()) return false;
    task = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
  };
  auto steal = [&] {
    for (std::size_t off = 1; off < queues_.size(); ++off) {
      WorkerQueue& q = *queues_[(self + off) % queues_.size()];
      std::lock_guard lock(q.mu);
      if (q.tasks.empty()) continue;
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
    return false;
  };
  bool got = force_steal_ ? (steal() || pop_own()) : (pop_own() || steal());
  if (!got) return false;
  pending_.fetch_sub(1, std::memory_order_acquire);
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  current_pool() = this;
  current_worker() = self;
  for (;;) {
    while (try_run_one(self)) {
    }
    std::unique_lock lock(sleep_mu_);
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    if (stop_) return;
    cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Nested parallelism: every worker may already be blocked in an outer
    // parallel_for's f.get(), so chunks submitted here could never be
    // scheduled.  Running inline keeps the caller's worker productive and
    // cannot deadlock.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t blocks = std::min(n, size() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Drain every chunk before propagating a failure.  Rethrowing on the
  // first get() would return while queued chunks still reference `fn`,
  // whose lifetime ends with the caller's stack frame — a use-after-free
  // once the pool schedules them.  All iterations either ran or threw by
  // the time this returns; the first exception wins, later ones are
  // dropped (each retryable body should be idempotent anyway, per the
  // stage executor's contract).
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gpf
