// FNV-1a 64-bit checksum shared by every integrity layer in the repo.
//
// The engine's shuffle blocks, the runtime's wire blocks, and the on-disk
// chunk store all guard bytes with the same checksum so a block can cross
// layers (encoded in a shuffle, spilled to a chunk, fetched by a peer)
// without being re-fingerprinted under a different scheme.
#pragma once

#include <cstdint>
#include <span>

namespace gpf {

inline constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ULL;

inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                             std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace gpf
