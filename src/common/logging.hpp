// Minimal leveled logger.  The engine logs stage boundaries at Info; tests
// and benches run at Warn by default to keep output parseable.
#pragma once

#include <cstdio>
#include <string>

namespace gpf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log statement.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GPF_DEBUG(...) ::gpf::log(::gpf::LogLevel::kDebug, __VA_ARGS__)
#define GPF_INFO(...) ::gpf::log(::gpf::LogLevel::kInfo, __VA_ARGS__)
#define GPF_WARN(...) ::gpf::log(::gpf::LogLevel::kWarn, __VA_ARGS__)
#define GPF_ERROR(...) ::gpf::log(::gpf::LogLevel::kError, __VA_ARGS__)

}  // namespace gpf
