// Integer-keyed histogram used for quality-score distributions (paper
// Fig 5), coverage-depth profiles, and simulator timelines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpf {

/// Sparse histogram over signed integer keys.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t count = 1) {
    counts_[key] += count;
  }

  std::uint64_t total() const;
  std::uint64_t count(std::int64_t key) const;

  /// Fraction of mass at `key`, in [0,1]; 0 when the histogram is empty.
  double fraction(std::int64_t key) const;

  /// Smallest/largest key with non-zero count.  Histogram must be
  /// non-empty.
  std::int64_t min_key() const;
  std::int64_t max_key() const;

  double mean() const;

  /// p in [0,1]; returns the smallest key whose CDF reaches p.
  std::int64_t percentile(double p) const;

  bool empty() const { return counts_.empty(); }
  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return counts_;
  }

  /// Merges another histogram into this one (used when reducing per-worker
  /// histograms).
  void merge(const Histogram& other);

  /// Renders "key<TAB>percent" lines for keys in [lo, hi], matching the
  /// series format of the paper's distribution figures.
  std::string to_tsv(std::int64_t lo, std::int64_t hi) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
};

}  // namespace gpf
