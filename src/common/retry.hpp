// The single source of truth for retry/backoff knobs.
//
// Before this header existed every layer grew its own copies of the same
// three numbers — the net channel had max_attempts/backoff_initial_ms/
// backoff_max_ms, the engine's executor had max_task_retries, and ad-hoc
// call sites (worker peer fetches, pool dispatch) re-declared attempt
// counts inline.  They all describe one idea: how many times to try an
// idempotent operation and how long to wait between tries.  Everything
// that retries now consumes a RetryPolicy; layers that need different
// defaults override the values, not the shape.
#pragma once

#include <algorithm>

namespace gpf {

struct RetryPolicy {
  /// Total attempts (first try + retries).  1 = no retry.
  int max_attempts = 3;
  /// Delay before the first retry; doubles per retry up to the cap.
  /// 0 disables backoff (retry immediately — what the in-process engine
  /// wants, since its "transport" cannot be congested).
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;

  /// Retries remaining after the first attempt.
  int retries() const { return std::max(0, max_attempts - 1); }

  /// The delay to apply after `current_ms` (exponential, capped).
  int next_backoff(int current_ms) const {
    return std::min(std::max(current_ms, 1) * 2, backoff_max_ms);
  }
};

}  // namespace gpf
