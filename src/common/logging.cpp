#include "common/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <mutex>

namespace gpf {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::va_list args;
  va_start(args, fmt);
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[gpf %s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace gpf
