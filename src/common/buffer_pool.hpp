// Bounded free-list of byte buffers shared across engine tasks.
//
// Shuffle map tasks and persist stages encode every block into a fresh
// std::vector, which at steady state means one large allocation (and one
// free) per block per stage.  The pool recycles those allocations: a task
// acquires an empty buffer that keeps the capacity of a previously
// released one, encodes into it, and the engine returns the storage once
// the consuming side is done with the bytes.
//
// The free list is bounded two ways, and both matter:
//  * a buffer-count cap, so a burst of wide stages cannot park an
//    unbounded number of allocations, and
//  * a byte budget over the *capacities* parked in the list.  Counting
//    buffers alone is not enough — one burst of very wide shuffle blocks
//    would otherwise pin max_buffers x largest-capacity bytes forever,
//    long after the stage that needed them.  Releases that would blow the
//    budget first evict the oldest parked buffers; a single buffer larger
//    than the whole budget is freed outright.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace gpf {

class BufferPool {
 public:
  /// Default byte budget for parked capacity (64 MiB): generous for
  /// steady-state shuffle blocks, small next to a dataset.
  static constexpr std::size_t kDefaultMaxPooledBytes =
      std::size_t{64} << 20;

  explicit BufferPool(std::size_t max_buffers = 64,
                      std::size_t max_pooled_bytes = kDefaultMaxPooledBytes)
      : max_buffers_(max_buffers), max_pooled_bytes_(max_pooled_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer, reusing the capacity of a released one when
  /// available.
  std::vector<std::uint8_t> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    pooled_bytes_ -= buf.capacity();
    buf.clear();  // keeps capacity
    ++reuses_;
    return buf;
  }

  /// Donates `buf`'s storage to the pool.  Buffers beyond the count cap or
  /// the byte budget (and buffers with no capacity) are freed; a release
  /// that would overflow the byte budget evicts the oldest parked buffers
  /// first, preferring recently-used capacity like the rest of the engine's
  /// caches.
  void release(std::vector<std::uint8_t>&& buf) {
    const std::size_t cap = buf.capacity();
    if (cap == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_buffers_ || cap > max_pooled_bytes_) return;
    while (!free_.empty() && pooled_bytes_ + cap > max_pooled_bytes_) {
      pooled_bytes_ -= free_.front().capacity();
      free_.erase(free_.begin());
      ++byte_evictions_;
    }
    pooled_bytes_ += cap;
    free_.push_back(std::move(buf));
  }

  /// Number of buffers currently parked in the free list.
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  /// Total capacity (bytes) currently parked in the free list.
  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pooled_bytes_;
  }

  /// Byte budget the free list is held under.
  std::size_t max_pooled_bytes() const { return max_pooled_bytes_; }

  /// How many acquire() calls were satisfied from the free list.
  std::uint64_t reuse_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }

  /// How many parked buffers were evicted to keep releases under the byte
  /// budget (does not count releases dropped outright).
  std::uint64_t byte_eviction_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return byte_evictions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  std::size_t max_pooled_bytes_;
  std::size_t pooled_bytes_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t byte_evictions_ = 0;
};

}  // namespace gpf
