// Bounded free-list of byte buffers shared across engine tasks.
//
// Shuffle map tasks and persist stages encode every block into a fresh
// std::vector, which at steady state means one large allocation (and one
// free) per block per stage.  The pool recycles those allocations: a task
// acquires an empty buffer that keeps the capacity of a previously
// released one, encodes into it, and the engine returns the storage once
// the consuming side is done with the bytes.  The free list is capped so
// a burst of wide stages cannot pin unbounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace gpf {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 64)
      : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer, reusing the capacity of a released one when
  /// available.
  std::vector<std::uint8_t> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();  // keeps capacity
    ++reuses_;
    return buf;
  }

  /// Donates `buf`'s storage to the pool.  Buffers beyond the cap (and
  /// buffers with no capacity) are simply freed.
  void release(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_buffers_) return;
    free_.push_back(std::move(buf));
  }

  /// Number of buffers currently parked in the free list.
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  /// How many acquire() calls were satisfied from the free list.
  std::uint64_t reuse_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  std::uint64_t reuses_ = 0;
};

}  // namespace gpf
