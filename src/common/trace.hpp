// Structured execution tracing: typed spans recorded into thread-local
// buffers and exported as Chrome trace_event JSON (chrome://tracing /
// Perfetto).
//
// The recorder is the observability counterpart of EngineMetrics: metrics
// aggregate per-stage totals, spans keep *when* every task attempt ran, on
// which worker, and whether it was a retry or a speculative copy — the
// raw material of blocked-time analysis and straggler diagnosis
// (Ousterhout et al., NSDI'15).  The cluster simulator exports its
// virtual-time task timeline through the same Span model, so a measured
// local run (pid 0) and its simulated 2048-core replay (pid 1) open side
// by side in one Perfetto view.
//
// Cost model: tracing must be free when disabled — every entry point is a
// relaxed atomic load and a branch.  When enabled, record() appends to a
// per-thread buffer guarded by an uncontended per-thread mutex (taken only
// by the owning thread until drain() merges), so hot task loops never
// share a lock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gpf::trace {

/// What a span measures.  Exported as the Chrome event's category, so
/// Perfetto can filter one layer at a time.
enum class SpanKind : std::uint8_t {
  kStage,         // one engine stage (all tasks, wall time)
  kTask,          // one task attempt on a worker thread
  kShuffleSer,    // shuffle-block serialization inside a map task
  kShuffleDeser,  // shuffle-block deserialization inside a reduce task
  kProcess,       // one Process-level DAG node (core/pipeline)
  kParse,         // a text-format parse (FASTQ/SAM/VCF ingest)
  kSimStage,      // a stage on the simulated cluster (virtual time)
  kSimTask,       // a task on the simulated cluster (virtual time)
};

/// Category string for a kind ("stage", "task", ...).
const char* span_category(SpanKind kind);

/// One timed interval.  Timestamps are microseconds — real time since the
/// recorder's epoch for engine spans, virtual cluster time for sim spans.
struct Span {
  std::string name;
  SpanKind kind = SpanKind::kTask;
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Trace process: 0 = the measured local run, 1 = the simulated
  /// cluster replay.
  std::uint32_t pid = 0;
  /// Track within the process (worker thread, or virtual core slot for
  /// sim spans; the recorder stamps engine spans automatically).
  std::uint32_t track = 0;
  /// Task attempt context (task < 0 for non-task spans).  Speculative
  /// copies run as attempt -1, matching the executor's convention.
  std::int64_t task = -1;
  std::int32_t attempt = 0;
  bool retry = false;
  bool speculative = false;
  /// True when the span ended by exception (a failed task attempt).
  bool failed = false;
};

/// Global span sink.  enable()/disable() gate every recording site; spans
/// accumulate in per-thread buffers until drain() merges them.
class TraceRecorder {
 public:
  /// The process-wide recorder (intentionally leaked so worker threads may
  /// record during static destruction).
  static TraceRecorder& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder's construction (the trace epoch).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Files a span under the calling thread's track.  No-op when disabled.
  void record(Span span);

  /// Moves out every recorded span (ordered by track, then recording
  /// order) and clears the buffers.
  std::vector<Span> drain();

  /// Discards everything recorded so far.
  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::uint32_t track = 0;
    std::vector<Span> spans;
  };

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;  // guards the buffer registry
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_track_ = 0;
};

/// RAII span: captures the start time at construction and records at
/// destruction.  The enabled check happens once, up front, so a disabled
/// recorder costs one branch and nothing else.  Marks the span failed when
/// it unwinds through an exception.
class ScopedSpan {
 public:
  ScopedSpan(const std::string& name, SpanKind kind, std::int64_t task = -1,
             std::int32_t attempt = 0, bool retry = false,
             bool speculative = false) {
    TraceRecorder& r = TraceRecorder::global();
    if (!r.enabled()) return;
    recorder_ = &r;
    // Copy, don't alias: callers may pass a temporary (e.g. a string
    // literal) that dies before the destructor runs.
    name_ = name;
    kind_ = kind;
    task_ = task;
    attempt_ = attempt;
    retry_ = retry;
    speculative_ = speculative;
    exceptions_at_entry_ = std::uncaught_exceptions();
    start_us_ = r.now_us();
  }

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    Span s;
    s.name = std::move(name_);
    s.kind = kind_;
    s.start_us = start_us_;
    s.dur_us = recorder_->now_us() - start_us_;
    s.task = task_;
    s.attempt = attempt_;
    s.retry = retry_;
    s.speculative = speculative_;
    s.failed = std::uncaught_exceptions() > exceptions_at_entry_;
    recorder_->record(std::move(s));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  std::string name_;
  SpanKind kind_ = SpanKind::kTask;
  double start_us_ = 0.0;
  std::int64_t task_ = -1;
  std::int32_t attempt_ = 0;
  int exceptions_at_entry_ = 0;
  bool retry_ = false;
  bool speculative_ = false;
};

/// Renders spans as a Chrome trace_event JSON document ("X" complete
/// events plus process_name metadata), loadable by chrome://tracing and
/// Perfetto.  Events are sorted by (pid, track, start) so timestamps are
/// monotonic within every track.
std::string write_chrome_trace(std::span<const Span> spans);

/// Writes write_chrome_trace(spans) to `path`; returns false on I/O error.
bool write_chrome_trace_file(const std::string& path,
                             std::span<const Span> spans);

}  // namespace gpf::trace
