// Local indel realignment (GATK IndelRealigner equivalent): two passes —
// RealignerTargetCreator finds intervals around observed/known indels,
// then reads overlapping each interval are re-aligned against the local
// reference window with a wider band, accepting the new alignment when it
// scores better.  This cleans up alignment artifacts around indels before
// calling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/smith_waterman.hpp"
#include "formats/fasta.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::cleaner {

/// A genomic interval targeted for realignment.
struct RealignTarget {
  std::int32_t contig_id = -1;
  std::int64_t start = 0;
  std::int64_t end = 0;  // exclusive

  bool overlaps(std::int32_t contig, std::int64_t lo, std::int64_t hi) const {
    return contig == contig_id && lo < end && hi > start;
  }
};

struct RealignOptions {
  /// Targets closer than this are merged.
  std::int64_t merge_window = 50;
  /// Reference flank added around each target when re-aligning.
  std::int64_t window_flank = 60;
  /// Band half-width for the realignment DP (wider than the aligner's so
  /// shifted indels can be recovered).
  int band = 24;
  align::ScoringScheme scoring;
};

/// Pass 1: derive sorted, merged target intervals from reads whose CIGAR
/// contains indels plus known indel sites.
std::vector<RealignTarget> find_realign_targets(
    std::span<const SamRecord> records,
    std::span<const VcfRecord> known_sites, const RealignOptions& options);

struct RealignStats {
  std::size_t targets = 0;
  std::size_t reads_considered = 0;
  std::size_t reads_realigned = 0;
};

/// Pass 2: realigns reads overlapping the targets in place.
RealignStats realign_reads(std::vector<SamRecord>& records,
                           const Reference& reference,
                           std::span<const RealignTarget> targets,
                           const RealignOptions& options);

}  // namespace gpf::cleaner
