#include "cleaner/markdup.hpp"

#include <unordered_map>

namespace gpf::cleaner {
namespace {

struct SignatureHash {
  std::size_t operator()(const FragmentSignature& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mixin = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mixin(static_cast<std::uint64_t>(s.contig_id));
    mixin(static_cast<std::uint64_t>(s.unclipped_start));
    mixin(s.reverse ? 1 : 0);
    mixin(static_cast<std::uint64_t>(s.mate_contig_id));
    mixin(static_cast<std::uint64_t>(s.mate_pos));
    mixin(s.mate_reverse ? 2 : 0);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

FragmentSignature fragment_signature(const SamRecord& record) {
  FragmentSignature sig;
  sig.contig_id = record.contig_id;
  sig.unclipped_start = record.unclipped_start();
  sig.reverse = record.is_reverse();
  if (record.is_paired() && !(record.flag & SamFlags::kMateUnmapped)) {
    sig.mate_contig_id = record.mate_contig_id;
    sig.mate_pos = record.mate_pos;
    sig.mate_reverse = (record.flag & SamFlags::kMateReverse) != 0;
  }
  // Canonicalize so both mates of a pair produce the same signature: order
  // the two (contig, pos, strand) endpoints.
  const bool swap =
      sig.mate_contig_id >= 0 &&
      (sig.mate_contig_id < sig.contig_id ||
       (sig.mate_contig_id == sig.contig_id &&
        sig.mate_pos < sig.unclipped_start));
  if (swap) {
    std::swap(sig.contig_id, sig.mate_contig_id);
    std::swap(sig.unclipped_start, sig.mate_pos);
    std::swap(sig.reverse, sig.mate_reverse);
  }
  return sig;
}

std::int64_t base_quality_score(const SamRecord& record) {
  std::int64_t score = 0;
  for (const char q : record.quality) {
    const int phred = q - 33;
    if (phred >= 15) score += phred;  // Picard counts qualities >= 15
  }
  return score;
}

MarkDuplicatesStats mark_duplicates(std::vector<SamRecord>& records) {
  MarkDuplicatesStats stats;
  stats.records = records.size();

  // Group record indices by signature, remembering the best representative.
  struct Group {
    std::vector<std::size_t> members;
    std::size_t best_index = 0;
    std::int64_t best_score = -1;
  };
  std::unordered_map<FragmentSignature, Group, SignatureHash> groups;
  groups.reserve(records.size());

  for (std::size_t i = 0; i < records.size(); ++i) {
    auto& rec = records[i];
    rec.flag &= static_cast<std::uint16_t>(~SamFlags::kDuplicate);
    if (rec.is_unmapped() || rec.is_secondary()) continue;
    Group& g = groups[fragment_signature(rec)];
    g.members.push_back(i);
    const std::int64_t score = base_quality_score(rec);
    if (score > g.best_score) {
      g.best_score = score;
      g.best_index = i;
    }
  }

  stats.signature_groups = groups.size();
  for (const auto& [sig, g] : groups) {
    // Pairs contribute two records per fragment; keep both records of the
    // best fragment.  Our representative selection is per-record: keep the
    // best-scoring record and its mate (same qname).
    const std::string& keep_name = records[g.best_index].qname;
    for (const std::size_t i : g.members) {
      if (records[i].qname == keep_name) continue;
      records[i].flag |= SamFlags::kDuplicate;
      ++stats.duplicates_marked;
    }
  }
  return stats;
}

}  // namespace gpf::cleaner
