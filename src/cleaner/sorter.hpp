// Coordinate sorting of alignment records (the Cleaner stage's
// sort/index step, samtools-sort equivalent).
#pragma once

#include <cstdint>
#include <vector>

#include "formats/sam.hpp"

namespace gpf::cleaner {

/// Sorts records by (contig, pos, strand, name); unmapped records go last.
void coordinate_sort(std::vector<SamRecord>& records);

/// Verifies coordinate order (used as a pipeline invariant check).
bool is_coordinate_sorted(const std::vector<SamRecord>& records);

/// Merges already-sorted runs into one sorted vector (the reduce side of a
/// distributed sort).
std::vector<SamRecord> merge_sorted_runs(
    std::vector<std::vector<SamRecord>> runs);

/// A BAM-style linear index: for each 16kb window of each contig, the
/// index of the first overlapping record in a coordinate-sorted vector.
class LinearIndex {
 public:
  static constexpr std::int64_t kWindow = 16384;

  LinearIndex(const std::vector<SamRecord>& sorted_records,
              std::size_t contig_count);

  /// First record index whose start is >= the window containing `pos`
  /// (callers then scan forward).  Returns records.size() when past the
  /// end.
  std::size_t first_candidate(std::int32_t contig_id, std::int64_t pos) const;

 private:
  std::vector<std::vector<std::size_t>> windows_;  // per contig
  std::size_t record_count_;
};

}  // namespace gpf::cleaner
