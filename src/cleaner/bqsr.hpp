// Base quality score recalibration (GATK BQSR equivalent), the paper's
// BaseRecalibrationProcess.
//
// Two passes, exactly the structure that makes BQSR expensive on a
// cluster:
//  1. CollectCovariates: every aligned base that does not overlap a known
//     variant site contributes an (observation, mismatch?) event to a
//     covariate table keyed by (read group) x reported quality x machine
//     cycle x dinucleotide context.  Tables from all partitions are merged
//     (the "Collect" action whose broadcast the paper blames for BQSR's
//     serial step).
//  2. Apply: each base's quality is replaced by the empirical quality of
//     its covariate bin, expressed as hierarchical deltas off the global
//     empirical quality, GATK-style.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "formats/fasta.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf::cleaner {

/// Fast membership test for known variant positions.
class KnownSites {
 public:
  KnownSites() = default;
  explicit KnownSites(std::span<const VcfRecord> sites);

  bool contains(std::int32_t contig_id, std::int64_t pos) const;
  std::size_t size() const { return sites_.size(); }

 private:
  std::unordered_set<std::uint64_t> sites_;
};

/// Mismatch/observation counts per covariate bin.
class RecalTable {
 public:
  static constexpr int kMaxQuality = 94;   // Phred 0..93
  static constexpr int kMaxCycle = 512;    // machine cycle bins
  static constexpr int kContexts = 16;     // dinucleotide (4x4)

  RecalTable();

  /// Records one base observation.
  void observe(int reported_quality, int cycle, int context, bool mismatch);

  /// Merges another table (the distributed Collect step).
  void merge(const RecalTable& other);

  /// Empirical quality of a bin with +1/+2 smoothing; falls back through
  /// the hierarchy for empty bins.
  double empirical_quality(int reported_quality, int cycle,
                           int context) const;
  double global_empirical_quality() const;

  std::uint64_t total_observations() const { return total_obs_; }
  std::uint64_t total_mismatches() const { return total_mismatch_; }

  /// Serialized size in bytes (the broadcast payload the paper measures).
  std::size_t byte_size() const;

 private:
  struct Cell {
    std::uint64_t observations = 0;
    std::uint64_t mismatches = 0;
  };

  static double phred(double error_rate);

  // Marginal tables, GATK's additive-delta model.
  std::vector<Cell> by_quality_;             // [kMaxQuality]
  std::vector<Cell> by_quality_cycle_;       // [kMaxQuality][kMaxCycle]
  std::vector<Cell> by_quality_context_;     // [kMaxQuality][kContexts]
  std::uint64_t total_obs_ = 0;
  std::uint64_t total_mismatch_ = 0;
};

/// Dinucleotide context code for (previous base, current base); -1 when
/// either is N.
int dinucleotide_context(char prev, char cur);

/// Pass 1 over a batch of records.
RecalTable collect_covariates(std::span<const SamRecord> records,
                              const Reference& reference,
                              const KnownSites& known);

struct ApplyStats {
  std::uint64_t bases_adjusted = 0;
  std::uint64_t bases_seen = 0;
};

/// Pass 2: rewrites the quality strings in place.
ApplyStats apply_recalibration(std::vector<SamRecord>& records,
                               const RecalTable& table);

}  // namespace gpf::cleaner
