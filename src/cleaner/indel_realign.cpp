#include "cleaner/indel_realign.hpp"

#include <algorithm>

namespace gpf::cleaner {
namespace {

/// Alignment score of a record against the reference under `scoring`,
/// derived from its CIGAR and sequence (soft clips cost nothing but also
/// score nothing).
std::int32_t current_alignment_score(const SamRecord& rec,
                                     const Reference& reference,
                                     const align::ScoringScheme& scoring) {
  std::int32_t score = 0;
  std::int64_t ref_pos = rec.pos;
  std::size_t read_pos = 0;
  for (const auto& el : rec.cigar) {
    switch (el.op) {
      case CigarOp::kMatch:
      case CigarOp::kEqual:
      case CigarOp::kDiff: {
        const std::string_view ref_span =
            reference.slice(rec.contig_id, ref_pos, el.length);
        for (std::size_t i = 0; i < ref_span.size(); ++i) {
          const char rb = ref_span[i];
          const char qb = rec.sequence[read_pos + i];
          if (rb == 'N' || qb == 'N') {
            score += scoring.n_score;
          } else {
            score += rb == qb ? scoring.match : scoring.mismatch;
          }
        }
        ref_pos += el.length;
        read_pos += el.length;
        break;
      }
      case CigarOp::kInsertion:
        score += scoring.gap_open +
                 scoring.gap_extend * static_cast<std::int32_t>(el.length - 1);
        read_pos += el.length;
        break;
      case CigarOp::kDeletion:
      case CigarOp::kSkip:
        score += scoring.gap_open +
                 scoring.gap_extend * static_cast<std::int32_t>(el.length - 1);
        ref_pos += el.length;
        break;
      case CigarOp::kSoftClip:
        read_pos += el.length;
        break;
      default:
        break;
    }
  }
  return score;
}

bool cigar_has_indel(const Cigar& cigar) {
  for (const auto& el : cigar) {
    if (el.op == CigarOp::kInsertion || el.op == CigarOp::kDeletion) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<RealignTarget> find_realign_targets(
    std::span<const SamRecord> records,
    std::span<const VcfRecord> known_sites, const RealignOptions& options) {
  std::vector<RealignTarget> raw;

  // Observed indels from read CIGARs.
  for (const auto& rec : records) {
    if (rec.is_unmapped() || !cigar_has_indel(rec.cigar)) continue;
    std::int64_t ref_pos = rec.pos;
    for (const auto& el : rec.cigar) {
      if (el.op == CigarOp::kInsertion) {
        raw.push_back({rec.contig_id, ref_pos, ref_pos + 1});
      } else if (el.op == CigarOp::kDeletion) {
        raw.push_back({rec.contig_id, ref_pos, ref_pos + el.length});
      }
      if (consumes_reference(el.op)) ref_pos += el.length;
    }
  }
  // Known indel sites.
  for (const auto& v : known_sites) {
    if (v.is_snp()) continue;
    const auto span =
        static_cast<std::int64_t>(std::max(v.ref.size(), v.alt.size()));
    raw.push_back({v.contig_id, v.pos, v.pos + span});
  }

  std::sort(raw.begin(), raw.end(),
            [](const RealignTarget& a, const RealignTarget& b) {
              if (a.contig_id != b.contig_id) return a.contig_id < b.contig_id;
              return a.start < b.start;
            });

  // Merge targets within merge_window.
  std::vector<RealignTarget> merged;
  for (const auto& t : raw) {
    if (!merged.empty() && merged.back().contig_id == t.contig_id &&
        t.start <= merged.back().end + options.merge_window) {
      merged.back().end = std::max(merged.back().end, t.end);
    } else {
      merged.push_back(t);
    }
  }
  return merged;
}

RealignStats realign_reads(std::vector<SamRecord>& records,
                           const Reference& reference,
                           std::span<const RealignTarget> targets,
                           const RealignOptions& options) {
  RealignStats stats;
  stats.targets = targets.size();
  if (targets.empty()) return stats;

  for (auto& rec : records) {
    if (rec.is_unmapped() || rec.is_secondary()) continue;
    const std::int64_t lo = rec.pos;
    const std::int64_t hi = rec.end_pos();
    // Binary search the first target that could overlap.
    auto it = std::lower_bound(
        targets.begin(), targets.end(), rec,
        [](const RealignTarget& t, const SamRecord& r) {
          if (t.contig_id != r.contig_id) return t.contig_id < r.contig_id;
          return t.end <= r.pos;
        });
    if (it == targets.end() || !it->overlaps(rec.contig_id, lo, hi)) continue;
    ++stats.reads_considered;

    // Re-align the read against a window spanning read + target + flanks.
    const std::int64_t win_lo =
        std::min(lo, it->start) - options.window_flank;
    const std::int64_t win_hi = std::max(hi, it->end) + options.window_flank;
    const std::string_view window =
        reference.slice(rec.contig_id, win_lo, win_hi - win_lo);
    if (window.size() < rec.sequence.size()) continue;
    const std::int64_t effective_lo = std::max<std::int64_t>(0, win_lo);

    const align::AlignmentResult r =
        align::glocal(rec.sequence, window, options.scoring, options.band);
    if (r.cigar.empty()) continue;
    const std::int32_t old_score =
        current_alignment_score(rec, reference, options.scoring);
    if (r.score <= old_score) continue;

    // Accept: rebuild position and CIGAR (with soft clips).
    Cigar cigar;
    if (r.query_start > 0) {
      cigar.push_back({CigarOp::kSoftClip,
                       static_cast<std::uint32_t>(r.query_start)});
    }
    cigar.insert(cigar.end(), r.cigar.begin(), r.cigar.end());
    const auto tail =
        static_cast<std::int32_t>(rec.sequence.size()) - r.query_end;
    if (tail > 0) {
      cigar.push_back({CigarOp::kSoftClip, static_cast<std::uint32_t>(tail)});
    }
    rec.cigar = std::move(cigar);
    rec.pos = effective_lo + r.ref_start;
    ++stats.reads_realigned;
  }
  return stats;
}

}  // namespace gpf::cleaner
