// Duplicate marking (Picard MarkDuplicates algorithm): reads sharing the
// same library signature — unclipped 5' positions and orientations of both
// fragment ends — are PCR/optical duplicates; the highest-base-quality
// representative stays, the rest get FLAG 0x400.
//
// This is the paper's first Cleaner application ("marks reads with
// identical position and orientation").
#pragma once

#include <cstdint>
#include <vector>

#include "formats/sam.hpp"

namespace gpf::cleaner {

struct MarkDuplicatesStats {
  std::size_t records = 0;
  std::size_t duplicates_marked = 0;
  std::size_t signature_groups = 0;

  double duplicate_fraction() const {
    return records == 0
               ? 0.0
               : static_cast<double>(duplicates_marked) /
                     static_cast<double>(records);
  }
};

/// Marks duplicates in place.  Works on any subset of records that is
/// closed under signature groups (i.e. all reads with the same fragment
/// signature are in the same call) — the GPF pipeline guarantees this by
/// partitioning on position.
MarkDuplicatesStats mark_duplicates(std::vector<SamRecord>& records);

/// The signature key used for grouping; exposed for the partitioner (reads
/// must be routed so equal signatures land in one partition) and tests.
struct FragmentSignature {
  std::int32_t contig_id = -1;
  std::int64_t unclipped_start = -1;
  bool reverse = false;
  std::int32_t mate_contig_id = -1;
  std::int64_t mate_pos = -1;
  bool mate_reverse = false;

  bool operator==(const FragmentSignature&) const = default;
};
FragmentSignature fragment_signature(const SamRecord& record);

/// Total base quality, Picard's representative-selection score.
std::int64_t base_quality_score(const SamRecord& record);

}  // namespace gpf::cleaner
