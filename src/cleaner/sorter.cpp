#include "cleaner/sorter.hpp"

#include <algorithm>
#include <queue>

namespace gpf::cleaner {

void coordinate_sort(std::vector<SamRecord>& records) {
  std::stable_sort(records.begin(), records.end(), coordinate_less);
}

bool is_coordinate_sorted(const std::vector<SamRecord>& records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (coordinate_less(records[i], records[i - 1])) return false;
  }
  return true;
}

std::vector<SamRecord> merge_sorted_runs(
    std::vector<std::vector<SamRecord>> runs) {
  // K-way merge with a heap of (run, index) cursors.
  struct Cursor {
    std::size_t run;
    std::size_t index;
  };
  auto greater = [&runs](const Cursor& a, const Cursor& b) {
    return coordinate_less(runs[b.run][b.index], runs[a.run][a.index]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push({r, 0});
  }
  std::vector<SamRecord> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back(std::move(runs[c.run][c.index]));
    if (++c.index < runs[c.run].size()) heap.push(c);
  }
  return out;
}

LinearIndex::LinearIndex(const std::vector<SamRecord>& sorted_records,
                         std::size_t contig_count)
    : record_count_(sorted_records.size()) {
  windows_.resize(contig_count);
  for (std::size_t i = 0; i < sorted_records.size(); ++i) {
    const auto& rec = sorted_records[i];
    if (rec.contig_id < 0 || rec.is_unmapped()) continue;
    auto& wins = windows_[static_cast<std::size_t>(rec.contig_id)];
    const auto win = static_cast<std::size_t>(rec.pos / kWindow);
    if (wins.size() <= win) wins.resize(win + 1, record_count_);
    if (wins[win] == record_count_) wins[win] = i;
  }
  // Back-fill empty windows with the next populated one so lookups can
  // always scan forward.
  for (auto& wins : windows_) {
    std::size_t next = record_count_;
    for (std::size_t w = wins.size(); w-- > 0;) {
      if (wins[w] == record_count_) {
        wins[w] = next;
      } else {
        next = wins[w];
      }
    }
  }
}

std::size_t LinearIndex::first_candidate(std::int32_t contig_id,
                                         std::int64_t pos) const {
  if (contig_id < 0 ||
      static_cast<std::size_t>(contig_id) >= windows_.size()) {
    return record_count_;
  }
  const auto& wins = windows_[static_cast<std::size_t>(contig_id)];
  const auto win = static_cast<std::size_t>(std::max<std::int64_t>(0, pos) /
                                            kWindow);
  if (win >= wins.size()) return record_count_;
  return wins[win];
}

}  // namespace gpf::cleaner
