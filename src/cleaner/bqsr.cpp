#include "cleaner/bqsr.hpp"

#include <algorithm>
#include <cmath>

namespace gpf::cleaner {
namespace {

int base_index(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return -1;
  }
}

}  // namespace

KnownSites::KnownSites(std::span<const VcfRecord> sites) {
  sites_.reserve(sites.size() * 2);
  for (const auto& v : sites) {
    // Cover the whole REF span so deletions shield every affected base.
    for (std::size_t i = 0; i < v.ref.size(); ++i) {
      sites_.insert((static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(v.contig_id))
                     << 40) |
                    static_cast<std::uint64_t>(v.pos + static_cast<std::int64_t>(i)));
    }
  }
}

bool KnownSites::contains(std::int32_t contig_id, std::int64_t pos) const {
  return sites_.contains(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(contig_id))
       << 40) |
      static_cast<std::uint64_t>(pos));
}

RecalTable::RecalTable()
    : by_quality_(kMaxQuality),
      by_quality_cycle_(static_cast<std::size_t>(kMaxQuality) * kMaxCycle),
      by_quality_context_(static_cast<std::size_t>(kMaxQuality) * kContexts) {}

void RecalTable::observe(int reported_quality, int cycle, int context,
                         bool mismatch) {
  reported_quality = std::clamp(reported_quality, 0, kMaxQuality - 1);
  cycle = std::clamp(cycle, 0, kMaxCycle - 1);
  auto bump = [mismatch](Cell& cell) {
    ++cell.observations;
    if (mismatch) ++cell.mismatches;
  };
  bump(by_quality_[static_cast<std::size_t>(reported_quality)]);
  bump(by_quality_cycle_[static_cast<std::size_t>(reported_quality) *
                             kMaxCycle +
                         static_cast<std::size_t>(cycle)]);
  if (context >= 0 && context < kContexts) {
    bump(by_quality_context_[static_cast<std::size_t>(reported_quality) *
                                 kContexts +
                             static_cast<std::size_t>(context)]);
  }
  ++total_obs_;
  if (mismatch) ++total_mismatch_;
}

void RecalTable::merge(const RecalTable& other) {
  auto merge_vec = [](std::vector<Cell>& dst, const std::vector<Cell>& src) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].observations += src[i].observations;
      dst[i].mismatches += src[i].mismatches;
    }
  };
  merge_vec(by_quality_, other.by_quality_);
  merge_vec(by_quality_cycle_, other.by_quality_cycle_);
  merge_vec(by_quality_context_, other.by_quality_context_);
  total_obs_ += other.total_obs_;
  total_mismatch_ += other.total_mismatch_;
}

double RecalTable::phred(double error_rate) {
  error_rate = std::clamp(error_rate, 1e-10, 1.0);
  return -10.0 * std::log10(error_rate);
}

double RecalTable::global_empirical_quality() const {
  return phred((static_cast<double>(total_mismatch_) + 1.0) /
               (static_cast<double>(total_obs_) + 2.0));
}

double RecalTable::empirical_quality(int reported_quality, int cycle,
                                     int context) const {
  reported_quality = std::clamp(reported_quality, 0, kMaxQuality - 1);
  cycle = std::clamp(cycle, 0, kMaxCycle - 1);

  auto emp = [](const Cell& cell) {
    return phred((static_cast<double>(cell.mismatches) + 1.0) /
                 (static_cast<double>(cell.observations) + 2.0));
  };

  // GATK's hierarchical model: global + deltaQ + deltaCycle + deltaContext.
  const double global = global_empirical_quality();
  const Cell& q_cell = by_quality_[static_cast<std::size_t>(reported_quality)];
  if (q_cell.observations == 0) return global;
  const double q_emp = emp(q_cell);
  double result = q_emp;

  const Cell& qc_cell =
      by_quality_cycle_[static_cast<std::size_t>(reported_quality) *
                            kMaxCycle +
                        static_cast<std::size_t>(cycle)];
  if (qc_cell.observations > 0) result += emp(qc_cell) - q_emp;

  if (context >= 0 && context < kContexts) {
    const Cell& qx_cell =
        by_quality_context_[static_cast<std::size_t>(reported_quality) *
                                kContexts +
                            static_cast<std::size_t>(context)];
    if (qx_cell.observations > 0) result += emp(qx_cell) - q_emp;
  }
  return std::clamp(result, 1.0, 93.0);
}

std::size_t RecalTable::byte_size() const {
  return (by_quality_.size() + by_quality_cycle_.size() +
          by_quality_context_.size()) *
             sizeof(Cell) +
         2 * sizeof(std::uint64_t);
}

int dinucleotide_context(char prev, char cur) {
  const int p = base_index(prev);
  const int c = base_index(cur);
  if (p < 0 || c < 0) return -1;
  return p * 4 + c;
}

RecalTable collect_covariates(std::span<const SamRecord> records,
                              const Reference& reference,
                              const KnownSites& known) {
  RecalTable table;
  for (const auto& rec : records) {
    if (rec.is_unmapped() || rec.is_duplicate() || rec.is_secondary()) {
      continue;
    }
    std::int64_t ref_pos = rec.pos;
    std::size_t read_pos = 0;
    for (const auto& el : rec.cigar) {
      if (el.op == CigarOp::kMatch || el.op == CigarOp::kEqual ||
          el.op == CigarOp::kDiff) {
        const std::string_view ref_span =
            reference.slice(rec.contig_id, ref_pos, el.length);
        for (std::size_t i = 0; i < ref_span.size(); ++i) {
          const std::int64_t pos = ref_pos + static_cast<std::int64_t>(i);
          const char rb = ref_span[i];
          const char qb = rec.sequence[read_pos + i];
          if (rb == 'N' || qb == 'N') continue;
          if (known.contains(rec.contig_id, pos)) continue;
          const int quality = rec.quality[read_pos + i] - 33;
          const int cycle = static_cast<int>(read_pos + i);
          const char prev =
              read_pos + i > 0 ? rec.sequence[read_pos + i - 1] : 'N';
          table.observe(quality, cycle, dinucleotide_context(prev, qb),
                        rb != qb);
        }
        ref_pos += el.length;
        read_pos += el.length;
      } else {
        if (consumes_reference(el.op)) ref_pos += el.length;
        if (consumes_read(el.op)) read_pos += el.length;
      }
    }
  }
  return table;
}

ApplyStats apply_recalibration(std::vector<SamRecord>& records,
                               const RecalTable& table) {
  ApplyStats stats;
  for (auto& rec : records) {
    if (rec.is_unmapped()) continue;
    for (std::size_t i = 0; i < rec.quality.size(); ++i) {
      ++stats.bases_seen;
      const int reported = rec.quality[i] - 33;
      const char prev = i > 0 ? rec.sequence[i - 1] : 'N';
      const int context = dinucleotide_context(prev, rec.sequence[i]);
      const double emp =
          table.empirical_quality(reported, static_cast<int>(i), context);
      const int recal = static_cast<int>(std::lround(emp));
      const char out = static_cast<char>(std::clamp(recal, 1, 93) + 33);
      if (out != rec.quality[i]) {
        rec.quality[i] = out;
        ++stats.bases_adjusted;
      }
    }
  }
  return stats;
}

}  // namespace gpf::cleaner
