// gpf_worker — the worker process of the distributed runtime.
//
//   gpf_worker [--port=N] [--id=K] [--trace-out=FILE]
//
// Binds 127.0.0.1:<port> (0 = kernel-assigned), prints
// "GPF_WORKER_READY port=<bound port>" on stdout (the driver's spawn
// handshake), then serves until a kShutdown frame arrives.  With
// --trace-out, the worker's task spans are exported as Chrome trace JSON
// on exit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/trace.hpp"
#include "runtime/worker.hpp"

namespace {

bool parse_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  value = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gpf::runtime::WorkerConfig config;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--port", value)) {
      config.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (parse_flag(argv[i], "--id", value)) {
      config.worker_id = std::atoi(value.c_str());
    } else if (parse_flag(argv[i], "--trace-out", value)) {
      trace_out = value;
    } else {
      std::fprintf(stderr, "gpf_worker: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  gpf::runtime::register_builtin_tasks();
  if (!trace_out.empty()) gpf::trace::TraceRecorder::global().enable();

  try {
    gpf::runtime::WorkerServer server(config);
    std::printf("GPF_WORKER_READY port=%u\n", server.port());
    std::fflush(stdout);
    server.serve();
    if (!trace_out.empty()) {
      const auto spans = gpf::trace::TraceRecorder::global().drain();
      gpf::trace::write_chrome_trace_file(trace_out, spans);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpf_worker: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
