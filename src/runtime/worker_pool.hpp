// Driver-side view of the worker fleet.
//
// The pool spawns gpf_worker processes on loopback ports (fork/exec with a
// ready handshake over a pipe), keeps one dispatch channel and one control
// channel per worker, and runs a heartbeat monitor thread that marks
// workers dead after consecutive missed pings.  Task dispatch rotates over
// live workers; a transport failure marks the worker dead and surfaces as
// WorkerLost, which the fault-tolerant stage executor treats like any
// failed task attempt — retry, or finish via an already-running
// speculative copy.  That is the whole point of the design: process death
// re-uses the engine's existing recovery machinery instead of adding a
// second one.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "net/channel.hpp"
#include "runtime/protocol.hpp"

namespace gpf::runtime {

/// The targeted worker died (or its channel did); retriable by the stage
/// executor on another worker.
class WorkerLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Every worker is dead; not retriable.
class NoLiveWorkers : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The worker executed the task and reported a failure (kTaskError).
class RemoteTaskError : public std::runtime_error {
 public:
  RemoteTaskError(TaskError error, const std::string& message)
      : std::runtime_error(message), error_(std::move(error)) {}
  const TaskError& error() const { return error_; }

 private:
  TaskError error_;
};

struct WorkerPoolConfig {
  /// Path to the gpf_worker binary (spawn_local).
  std::string worker_binary;
  int heartbeat_interval_ms = 100;
  int heartbeat_timeout_ms = 300;
  int max_missed_heartbeats = 3;
  /// Spawn handshake deadline (worker prints its ready line).
  int spawn_timeout_ms = 10000;
  net::ChannelConfig dispatch_channel{.call_timeout_ms = 30000,
                                      .retry = {.max_attempts = 2},
                                      .limits = {}};
  net::ChannelConfig control_channel{.connect_timeout_ms = 500,
                                     .call_timeout_ms = 300,
                                     .retry = {.max_attempts = 1},
                                     .limits = {}};
};

struct WorkerInfo {
  int id = -1;
  pid_t pid = -1;
  std::uint16_t port = 0;
  bool alive = false;
};

class WorkerPool {
 public:
  explicit WorkerPool(WorkerPoolConfig config);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns `count` local worker processes and starts the heartbeat
  /// monitor.  Throws on any spawn failure.
  void spawn_local(int count);

  std::size_t size() const;
  std::size_t alive_count() const;
  bool alive(int w) const;
  WorkerInfo info(int w) const;

  /// Sends `req` to a live worker (round-robin).  Returns the worker index
  /// and the response frame (kTaskOk or kTaskError).  Throws WorkerLost on
  /// transport failure (after marking the worker dead) and NoLiveWorkers
  /// when nobody is left.  `scratch` recycles the request encode buffer.
  std::pair<int, net::Frame> dispatch(const TaskRequest& req,
                                      BufferPool* scratch = nullptr);

  /// Like dispatch() but targets one specific worker.
  std::pair<int, net::Frame> dispatch_to(int w, const TaskRequest& req,
                                         BufferPool* scratch = nullptr);

  /// Convenience: dispatch and unwrap — returns the kTaskOk payload or
  /// throws RemoteTaskError for kTaskError responses.  The worker index
  /// that executed the task is stored in *worker when non-null.
  std::vector<std::uint8_t> run_task(const TaskRequest& req,
                                     BufferPool* scratch = nullptr,
                                     int* worker = nullptr);

  /// Marks a worker dead and drops its channels (idempotent).
  void mark_dead(int w);

  /// Test hook: signal a worker process (e.g. SIGKILL for chaos tests).
  void kill_worker(int w, int sig);

  /// Graceful shutdown of every live worker, then reaps all processes.
  void shutdown_all();

 private:
  struct Worker {
    WorkerInfo info;
    std::unique_ptr<net::RetriableChannel> dispatch;
    std::unique_ptr<net::RetriableChannel> control;
    std::atomic<bool> alive{false};
    int missed_heartbeats = 0;
  };

  void heartbeat_loop();
  void reap(Worker& w, bool force_kill);

  WorkerPoolConfig config_;
  mutable std::mutex mu_;  // guards workers_ vector growth + info
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_worker_{0};
  std::thread heartbeat_thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace gpf::runtime
