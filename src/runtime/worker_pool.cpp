#include "runtime/worker_pool.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace gpf::runtime {
namespace {

/// Reads the worker's ready line ("GPF_WORKER_READY port=N\n") from its
/// stdout pipe within the deadline; returns the port.
std::uint16_t read_ready_line(int fd, int timeout_ms, pid_t pid) {
  std::string line;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      throw std::runtime_error("worker (pid " + std::to_string(pid) +
                               ") did not report ready in time");
    }
    struct pollfd p{fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(left));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) continue;
    char buf[128];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) {
      throw std::runtime_error("worker (pid " + std::to_string(pid) +
                               ") exited before reporting ready");
    }
    line.append(buf, static_cast<std::size_t>(n));
    const auto nl = line.find('\n');
    if (nl == std::string::npos) continue;
    unsigned port = 0;
    if (std::sscanf(line.c_str(), "GPF_WORKER_READY port=%u", &port) != 1 ||
        port == 0 || port > 65535) {
      throw std::runtime_error("worker (pid " + std::to_string(pid) +
                               ") printed a malformed ready line: " + line);
    }
    return static_cast<std::uint16_t>(port);
  }
}

}  // namespace

WorkerPool::WorkerPool(WorkerPoolConfig config)
    : config_(std::move(config)) {}

WorkerPool::~WorkerPool() {
  shutdown_all();
  stop_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void WorkerPool::spawn_local(int count) {
  if (config_.worker_binary.empty()) {
    throw std::invalid_argument("WorkerPool: worker_binary not set");
  }
  for (int k = 0; k < count; ++k) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
    }
    const int next_id = static_cast<int>(size());
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: wire stdout to the handshake pipe, die with the driver
      // (no orphaned workers if the driver crashes), exec the worker.
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      const std::string id_arg = "--id=" + std::to_string(next_id);
      ::execl(config_.worker_binary.c_str(), config_.worker_binary.c_str(),
              "--port=0", id_arg.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s: %s\n", config_.worker_binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    std::uint16_t port = 0;
    try {
      port = read_ready_line(pipe_fds[0], config_.spawn_timeout_ms, pid);
    } catch (...) {
      ::close(pipe_fds[0]);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      throw;
    }
    ::close(pipe_fds[0]);

    auto w = std::make_unique<Worker>();
    w->info = {next_id, pid, port, true};
    w->dispatch = std::make_unique<net::RetriableChannel>(
        "127.0.0.1", port, config_.dispatch_channel);
    w->control = std::make_unique<net::RetriableChannel>(
        "127.0.0.1", port, config_.control_channel);
    w->alive.store(true);
    std::lock_guard lock(mu_);
    workers_.push_back(std::move(w));
  }
  if (!heartbeat_thread_.joinable()) {
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  }
}

std::size_t WorkerPool::size() const {
  std::lock_guard lock(mu_);
  return workers_.size();
}

std::size_t WorkerPool::alive_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& w : workers_) n += w->alive.load() ? 1 : 0;
  return n;
}

bool WorkerPool::alive(int w) const {
  std::lock_guard lock(mu_);
  return w >= 0 && w < static_cast<int>(workers_.size()) &&
         workers_[w]->alive.load();
}

WorkerInfo WorkerPool::info(int w) const {
  std::lock_guard lock(mu_);
  WorkerInfo i = workers_.at(w)->info;
  i.alive = workers_.at(w)->alive.load();
  return i;
}

std::pair<int, net::Frame> WorkerPool::dispatch(const TaskRequest& req,
                                                BufferPool* scratch) {
  const std::size_t n = size();
  const std::size_t start = next_worker_.fetch_add(1);
  for (std::size_t k = 0; k < n; ++k) {
    const int w = static_cast<int>((start + k) % n);
    if (!alive(w)) continue;
    return dispatch_to(w, req, scratch);
  }
  throw NoLiveWorkers("dispatch of task " + std::to_string(req.task) +
                      " (stage '" + req.stage + "'): no live workers");
}

std::pair<int, net::Frame> WorkerPool::dispatch_to(int w,
                                                   const TaskRequest& req,
                                                   BufferPool* scratch) {
  net::RetriableChannel* channel = nullptr;
  {
    std::lock_guard lock(mu_);
    channel = workers_.at(w)->dispatch.get();
  }
  ByteWriter enc(scratch != nullptr ? scratch->acquire()
                                    : std::vector<std::uint8_t>{});
  encode_task_request(enc, req);
  std::vector<std::uint8_t> buf = enc.take();
  net::Frame resp;
  try {
    resp = channel->call(
        kRunTask, std::span<const std::uint8_t>(buf.data(), buf.size()));
  } catch (const net::ChannelError& e) {
    if (scratch != nullptr) scratch->release(std::move(buf));
    mark_dead(w);
    throw WorkerLost("worker " + std::to_string(w) + " lost while running "
                     "task " + std::to_string(req.task) + " of stage '" +
                     req.stage + "': " + e.what());
  }
  if (scratch != nullptr) scratch->release(std::move(buf));
  return {w, std::move(resp)};
}

std::vector<std::uint8_t> WorkerPool::run_task(const TaskRequest& req,
                                               BufferPool* scratch,
                                               int* worker) {
  auto [w, resp] = dispatch(req, scratch);
  if (worker != nullptr) *worker = w;
  if (resp.type == kTaskOk) return std::move(resp.payload);
  if (resp.type == kTaskError) {
    ByteReader r(std::span<const std::uint8_t>(resp.payload.data(),
                                               resp.payload.size()));
    TaskError err = decode_task_error(r);
    const std::string message = "task " + std::to_string(req.task) +
                                " of stage '" + req.stage +
                                "' failed on worker " + std::to_string(w) +
                                ": " + err.message;
    throw RemoteTaskError(std::move(err), message);
  }
  throw std::runtime_error("unexpected response type " +
                           std::to_string(resp.type));
}

void WorkerPool::mark_dead(int w) {
  std::lock_guard lock(mu_);
  if (w < 0 || w >= static_cast<int>(workers_.size())) return;
  Worker& worker = *workers_[w];
  if (!worker.alive.exchange(false)) return;
  worker.dispatch->disconnect();
  worker.control->disconnect();
}

void WorkerPool::kill_worker(int w, int sig) {
  pid_t pid = -1;
  {
    std::lock_guard lock(mu_);
    pid = workers_.at(w)->info.pid;
  }
  if (pid > 0) ::kill(pid, sig);
  if (sig == SIGKILL) {
    // Reap promptly so the test can assert on liveness without racing the
    // heartbeat monitor; the dead socket is noticed by the next dispatch.
    ::waitpid(pid, nullptr, 0);
    mark_dead(w);
  }
}

void WorkerPool::shutdown_all() {
  std::vector<Worker*> workers;
  {
    std::lock_guard lock(mu_);
    for (auto& w : workers_) workers.push_back(w.get());
  }
  for (Worker* w : workers) {
    if (!w->alive.load()) continue;
    try {
      w->control->call(kShutdown, {}, /*timeout_ms=*/1000,
                       /*max_attempts=*/1);
    } catch (const std::runtime_error&) {
      // Already dead or unresponsive; force-reaped below.
    }
  }
  for (Worker* w : workers) reap(*w, /*force_kill=*/true);
}

void WorkerPool::reap(Worker& w, bool force_kill) {
  if (w.info.pid <= 0) return;
  // Give a gracefully-shut-down worker a moment, then force.
  for (int i = 0; i < 20; ++i) {
    const pid_t rc = ::waitpid(w.info.pid, nullptr, WNOHANG);
    if (rc == w.info.pid || (rc < 0 && errno == ECHILD)) {
      w.info.pid = -1;
      w.alive.store(false);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (force_kill) {
    ::kill(w.info.pid, SIGKILL);
    ::waitpid(w.info.pid, nullptr, 0);
  }
  w.info.pid = -1;
  w.alive.store(false);
}

void WorkerPool::heartbeat_loop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.heartbeat_interval_ms));
    std::vector<Worker*> workers;
    {
      std::lock_guard lock(mu_);
      for (auto& w : workers_) workers.push_back(w.get());
    }
    for (Worker* w : workers) {
      if (stop_.load()) return;
      if (!w->alive.load()) continue;
      try {
        w->control->call(kPing, {}, config_.heartbeat_timeout_ms,
                         /*max_attempts=*/1);
        w->missed_heartbeats = 0;
      } catch (const std::runtime_error&) {
        if (++w->missed_heartbeats >= config_.max_missed_heartbeats) {
          mark_dead(w->info.id);
        }
      }
    }
  }
}

}  // namespace gpf::runtime
