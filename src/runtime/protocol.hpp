// Wire protocol of the driver/worker runtime.
//
// Message payloads are ByteWriter/ByteReader streams (the same primitives
// every record codec in the repo uses), carried inside net::Frame frames.
// Records cross the wire as length-prefixed byte strings; a "block" is the
// encoded form of one map task's bucket for one reduce partition, guarded
// by the engine's shuffle_block_checksum exactly like the in-process
// shuffle path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace gpf::runtime {

/// Frame types.  Requests are even-numbered spiritually but kept simple:
/// each request names its success and error responses.
enum MessageType : std::uint32_t {
  kPing = 1,
  kPong = 2,
  kRunTask = 3,
  kTaskOk = 4,
  kTaskError = 5,
  kFetchBlock = 6,
  kBlockData = 7,
  kBlockError = 8,
  kShutdown = 9,
  kShutdownOk = 10,
};

/// Machine-readable reason inside a kTaskError payload.
enum class TaskErrorCode : std::uint8_t {
  kUnknownKind = 1,   // no registered handler for the task kind
  kExecution = 2,     // the handler threw
  kMissingBlock = 3,  // a shuffle input block is gone (peer dead/evicted)
};

/// One task dispatched to a worker: a registered handler name plus an
/// opaque payload the handler parses.  `task` and `attempt` mirror the
/// stage executor's identifiers so worker-side trace spans line up with
/// driver-side ones.
struct TaskRequest {
  std::string kind;
  std::string stage;
  std::uint64_t task = 0;
  std::int32_t attempt = 0;
  std::vector<std::uint8_t> payload;
};

struct TaskError {
  TaskErrorCode code = TaskErrorCode::kExecution;
  /// For kMissingBlock: the map task whose block could not be fetched.
  std::uint64_t detail = 0;
  std::string message;
};

/// Identifies one shuffle block: (stage, map task, reduce partition).
struct BlockId {
  std::string stage;
  std::uint64_t map_task = 0;
  std::uint64_t reduce_part = 0;

  std::string key() const {
    return stage + "/" + std::to_string(map_task) + "/" +
           std::to_string(reduce_part);
  }
};

/// Where a block lives and what it must contain (checksummed like the
/// in-process shuffle's BlockMeta).
struct BlockRef {
  std::uint16_t port = 0;  // owning worker's loopback port
  std::uint64_t checksum = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

void encode_task_request(ByteWriter& w, const TaskRequest& req);
TaskRequest decode_task_request(ByteReader& r);

void encode_task_error(ByteWriter& w, const TaskError& err);
TaskError decode_task_error(ByteReader& r);

void encode_block_id(ByteWriter& w, const BlockId& id);
BlockId decode_block_id(ByteReader& r);

/// Encodes records as a stream: uvarint count, then length-prefixed bytes.
void encode_records(ByteWriter& w,
                    std::span<const std::vector<std::uint8_t>> records);
std::vector<std::vector<std::uint8_t>> decode_records(ByteReader& r);

}  // namespace gpf::runtime
