// The worker side of the distributed runtime.
//
// A WorkerServer is one process's serving loop: it accepts framed
// connections from the driver and from peer workers, answers heartbeats,
// executes registered task handlers, and serves shuffle blocks out of its
// BlockStore.  Connections get one handler thread each (blocking I/O),
// so a long-running task on one connection never starves heartbeats
// arriving on another — that separation is what makes driver-side
// liveness tracking meaningful.
//
// Task handlers are looked up in a process-global TaskRegistry by name:
// C++ closures cannot cross a process boundary, so the driver names a
// handler compiled into the worker binary and ships only data.  The
// builtin handlers (shuffle_map / shuffle_reduce / pipeline_stage /
// release_blocks / sleep_echo) cover the runtime's own needs; embedders
// register more.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "net/channel.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "runtime/block_store.hpp"
#include "runtime/protocol.hpp"

namespace gpf::runtime {

class WorkerServer;

/// Thrown by task handlers when a shuffle input block cannot be obtained
/// (dead peer, missing key, or checksum mismatch on fetch); surfaces to
/// the driver as kTaskError/kMissingBlock naming the map task so the
/// driver can recompute it from lineage.
class MissingBlockError : public std::runtime_error {
 public:
  MissingBlockError(std::uint64_t map_task, const std::string& message)
      : std::runtime_error(message), map_task_(map_task) {}
  std::uint64_t map_task() const { return map_task_; }

 private:
  std::uint64_t map_task_;
};

/// What a task handler gets to work with.
struct WorkerContext {
  WorkerServer& server;
  BlockStore& blocks;
  BufferPool& buffer_pool;

  /// Fetches a block from the worker listening on `port` (loopback),
  /// short-circuiting to the local store when it is this worker's own
  /// port.  Throws MissingBlockError when the block cannot be obtained
  /// or fails its checksum.
  StoredBlock fetch_block(std::uint16_t port, const BlockId& id) const;
};

using TaskHandler = std::function<std::vector<std::uint8_t>(
    WorkerContext&, const TaskRequest&)>;

/// Fetches one block from the worker listening on loopback `port` over a
/// fresh channel and validates it against its shipped checksum — the
/// wire path shared by worker-side reduce tasks (WorkerContext::
/// fetch_block) and the driver-side distributed shuffle transport.
/// Throws MissingBlockError when the peer is unreachable, lacks the
/// block, or the bytes fail their checksum.
StoredBlock fetch_block_over_wire(std::uint16_t port, const BlockId& id,
                                  const net::ChannelConfig& config);

/// Process-global name -> handler table.
class TaskRegistry {
 public:
  static TaskRegistry& global();

  void add(const std::string& kind, TaskHandler handler);
  const TaskHandler* find(const std::string& kind) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TaskHandler> handlers_;
};

/// Registers the builtin shuffle_map / shuffle_reduce / pipeline_stage /
/// release_blocks / sleep_echo handlers (idempotent).
void register_builtin_tasks();

struct WorkerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned
  int worker_id = 0;
  /// Idle receive window per connection poll; also the stop-flag latency.
  int poll_interval_ms = 200;
  /// Deadline for reading/writing one frame once transfer has started.
  int io_timeout_ms = 15000;
  /// Deadline for fetching one block from a peer worker.
  int peer_timeout_ms = 5000;
  net::FrameLimits limits;
};

class WorkerServer {
 public:
  explicit WorkerServer(WorkerConfig config);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  int worker_id() const { return config_.worker_id; }
  const WorkerConfig& config() const { return config_; }
  BlockStore& blocks() { return blocks_; }
  BufferPool& buffer_pool() { return buffer_pool_; }
  std::uint64_t tasks_executed() const { return tasks_executed_.load(); }

  /// Accept loop; returns after request_stop() (or a kShutdown frame).
  void serve();

  void request_stop() { stop_.store(true); }

 private:
  void handle_connection(net::Socket sock);
  net::Frame handle_message(const net::Frame& request);

  WorkerConfig config_;
  net::Listener listener_;
  BlockStore blocks_;
  BufferPool buffer_pool_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace gpf::runtime
