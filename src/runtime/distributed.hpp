// Driver-side distributed stage execution.
//
// distributed_shuffle() runs the engine's wide-dependency pattern across
// real worker processes: map tasks ship their partition's records to a
// worker, which buckets and deposits checksummed blocks in its local
// store; reduce tasks run on any worker and pull their blocks from the
// owners over sockets.  Scheduling, retries, speculation and metrics all
// come from the SAME fault-tolerant executor the in-process engine uses
// (engine/stage_executor.hpp): a worker dying mid-task surfaces as a
// thrown WorkerLost, which the executor retries on the next live worker —
// and a map block lost with its worker is recomputed from the driver-held
// input partition, the lineage story of the paper's Sec 4.4 made literal.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "engine/dataset.hpp"
#include "runtime/worker_pool.hpp"

namespace gpf::runtime {

/// One partition of opaque records (each record one byte string).
using RecordPartition = std::vector<std::vector<std::uint8_t>>;

struct DistributedShuffleOptions {
  /// Named partitioner evaluated worker-side: "bytes_fnv" (FNV-1a of the
  /// record bytes) or "key_u64" (leading 8 bytes, little-endian).
  std::string partitioner = "bytes_fnv";
  /// Chaos aid: stretches every map task on the worker by this long so
  /// tests can SIGKILL a worker deterministically mid-stage.
  std::uint32_t map_delay_ms = 0;
  /// Chaos aid: runs on the driver after the map stage commits its block
  /// locations and before any reduce task dispatches — the exact window
  /// where killing a worker loses finished blocks (not in-flight tasks),
  /// forcing the reduce side through the lineage-recompute path.
  std::function<void()> on_map_complete;
};

/// Shuffles `inputs` into `num_out` partitions across the pool's workers.
/// Stage metrics (shuffle bytes, retries, speculative launches) are
/// recorded into `engine.metrics()` exactly like an in-process shuffle;
/// the engine's FaultInjector, if attached, injects into dispatch attempts
/// (so chaos seeds drive real processes).  Output record order is
/// deterministic: blocks concatenate in map-task order.
std::vector<RecordPartition> distributed_shuffle(
    engine::Engine& engine, WorkerPool& pool, const std::string& stage_name,
    const std::vector<RecordPartition>& inputs, std::size_t num_out,
    const DistributedShuffleOptions& options = {});

/// Encodes u64 values as 8-byte little-endian records (the "key_u64"
/// partitioner's native shape).
inline RecordPartition u64_records(const std::vector<std::uint64_t>& xs) {
  RecordPartition out;
  out.reserve(xs.size());
  for (const std::uint64_t x : xs) {
    std::vector<std::uint8_t> rec(8);
    std::memcpy(rec.data(), &x, 8);
    out.push_back(std::move(rec));
  }
  return out;
}

inline std::vector<std::uint64_t> u64_values(const RecordPartition& records) {
  std::vector<std::uint64_t> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    std::uint64_t x = 0;
    std::memcpy(&x, rec.data(), rec.size() < 8 ? rec.size() : 8);
    out.push_back(x);
  }
  return out;
}

}  // namespace gpf::runtime
