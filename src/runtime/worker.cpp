#include "runtime/worker.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/trace.hpp"
#include "engine/fault_injector.hpp"
#include "net/channel.hpp"

namespace gpf::runtime {
namespace {

/// Partitions a record to [0, num_out) by the named scheme.  Names travel
/// on the wire because closures cannot; both schemes are deterministic so
/// recomputed map tasks rebuild bit-identical blocks.
std::size_t route_record(const std::string& partitioner,
                         std::span<const std::uint8_t> record,
                         std::size_t num_out) {
  if (partitioner == "key_u64") {
    if (record.size() < 8) {
      throw std::invalid_argument(
          "key_u64 partitioner: record shorter than 8 bytes");
    }
    std::uint64_t key;
    std::memcpy(&key, record.data(), 8);
    return key % num_out;
  }
  if (partitioner == "bytes_fnv") {
    return engine::shuffle_block_checksum(record) % num_out;
  }
  throw std::invalid_argument("unknown partitioner '" + partitioner + "'");
}

/// shuffle_map: bucket the shipped records, encode each bucket into a
/// pooled buffer, deposit the blocks locally, return the block metas.
std::vector<std::uint8_t> shuffle_map_task(WorkerContext& ctx,
                                           const TaskRequest& req) {
  ByteReader r(std::span<const std::uint8_t>(req.payload.data(),
                                             req.payload.size()));
  const std::string partitioner = r.str();
  const std::uint64_t num_out = r.uvarint();
  const std::uint32_t delay_ms = r.u32();
  auto records = decode_records(r);
  if (num_out == 0) throw std::invalid_argument("shuffle_map: num_out == 0");
  if (delay_ms > 0) {
    // Chaos aid: stretches the task so tests can SIGKILL this worker
    // mid-stage deterministically.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }

  std::vector<std::vector<std::size_t>> buckets(num_out);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[route_record(partitioner,
                         std::span<const std::uint8_t>(records[i].data(),
                                                       records[i].size()),
                         num_out)]
        .push_back(i);
  }

  ByteWriter reply;
  reply.uvarint(num_out);
  for (std::uint64_t b = 0; b < num_out; ++b) {
    // Encode the bucket's record stream into a recycled buffer (the same
    // BufferPool discipline the in-process shuffle uses).
    ByteWriter block(ctx.buffer_pool.acquire());
    block.uvarint(buckets[b].size());
    for (const std::size_t idx : buckets[b]) {
      block.uvarint(records[idx].size());
      block.raw(std::span<const std::uint8_t>(records[idx].data(),
                                              records[idx].size()));
    }
    auto bytes = std::make_shared<std::vector<std::uint8_t>>(block.take());
    StoredBlock stored;
    stored.checksum = engine::shuffle_block_checksum(
        std::span<const std::uint8_t>(bytes->data(), bytes->size()));
    stored.records = buckets[b].size();
    stored.bytes = bytes;
    ctx.blocks.put(BlockId{req.stage, req.task, b}.key(), stored);
    reply.u64(stored.checksum);
    reply.uvarint(stored.records);
    reply.uvarint(bytes->size());
  }
  return reply.take();
}

/// shuffle_reduce: gather one output partition's blocks from their owning
/// workers (in map-task order, so output is deterministic), validate each
/// against its checksum and record count, and return the merged stream.
std::vector<std::uint8_t> shuffle_reduce_task(WorkerContext& ctx,
                                              const TaskRequest& req) {
  ByteReader r(std::span<const std::uint8_t>(req.payload.data(),
                                             req.payload.size()));
  const std::uint64_t reduce_part = r.uvarint();
  const std::uint64_t n_in = r.uvarint();

  struct Ref {
    std::uint16_t port;
    std::uint64_t checksum;
    std::uint64_t records;
  };
  std::vector<Ref> refs(n_in);
  for (std::uint64_t i = 0; i < n_in; ++i) {
    refs[i].port = r.u16();
    refs[i].checksum = r.u64();
    refs[i].records = r.uvarint();
  }

  std::vector<std::vector<std::uint8_t>> out;
  for (std::uint64_t i = 0; i < n_in; ++i) {
    const BlockId id{req.stage, i, reduce_part};
    StoredBlock block = ctx.fetch_block(refs[i].port, id);
    if (block.checksum != refs[i].checksum) {
      throw MissingBlockError(
          i, "block " + id.key() + " failed its checksum");
    }
    ByteReader br(std::span<const std::uint8_t>(block.bytes->data(),
                                                block.bytes->size()));
    auto records = decode_records(br);
    if (records.size() != refs[i].records) {
      throw MissingBlockError(
          i, "block " + id.key() + " decoded to " +
                 std::to_string(records.size()) + " records, expected " +
                 std::to_string(refs[i].records));
    }
    for (auto& rec : records) out.push_back(std::move(rec));
  }

  ByteWriter reply(ctx.buffer_pool.acquire());
  encode_records(reply, out);
  return reply.take();
}

/// pipeline_stage: deposit driver-pushed shuffle blocks for one map task
/// of a lowered pipeline stage.  Payload: uvarint num_out, then per
/// block u64 checksum, uvarint records, uvarint nbytes, raw bytes.
/// Blocks are validated against their checksum on arrival and stored
/// under BlockId{req.stage, req.task, b}; a re-push (map retry or
/// driver-side lineage repair) overwrites with bit-identical bytes, so
/// last-write-wins is correct.  Replies with u64 total bytes deposited.
std::vector<std::uint8_t> pipeline_stage_task(WorkerContext& ctx,
                                              const TaskRequest& req) {
  ByteReader r(std::span<const std::uint8_t>(req.payload.data(),
                                             req.payload.size()));
  const std::uint64_t num_out = r.uvarint();
  std::uint64_t total_bytes = 0;
  for (std::uint64_t b = 0; b < num_out; ++b) {
    StoredBlock stored;
    stored.checksum = r.u64();
    stored.records = r.uvarint();
    const std::uint64_t n = r.uvarint();
    const auto bytes = r.raw(n);
    auto owned = std::make_shared<std::vector<std::uint8_t>>(bytes.begin(),
                                                             bytes.end());
    if (engine::shuffle_block_checksum(std::span<const std::uint8_t>(
            owned->data(), owned->size())) != stored.checksum) {
      throw MissingBlockError(
          req.task, "pushed block " + BlockId{req.stage, req.task, b}.key() +
                        " corrupted in transit");
    }
    stored.bytes = std::move(owned);
    total_bytes += n;
    ctx.blocks.put(BlockId{req.stage, req.task, b}.key(), stored);
  }
  ByteWriter reply;
  reply.u64(total_bytes);
  return reply.take();
}

/// release_blocks: drop every block of the named shuffle's namespace from
/// this worker's store (the driver broadcasts this once a shuffle
/// succeeds, so completed jobs stop pinning worker memory).  Replies with
/// the bytes released and the store's remaining total, which is what the
/// retention tests assert returns to zero.
std::vector<std::uint8_t> release_blocks_task(WorkerContext& ctx,
                                              const TaskRequest& req) {
  ByteReader r(std::span<const std::uint8_t>(req.payload.data(),
                                             req.payload.size()));
  const std::string stage = r.str();
  const std::uint64_t released = ctx.blocks.release_namespace(stage);
  ByteWriter reply;
  reply.u64(released);
  reply.u64(ctx.blocks.total_bytes());
  return reply.take();
}

/// sleep_echo: test aid — sleep, then echo the bytes back.
std::vector<std::uint8_t> sleep_echo_task(WorkerContext&,
                                          const TaskRequest& req) {
  ByteReader r(std::span<const std::uint8_t>(req.payload.data(),
                                             req.payload.size()));
  const std::uint32_t sleep_ms = r.u32();
  const auto rest = r.raw(r.remaining());
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return std::vector<std::uint8_t>(rest.begin(), rest.end());
}

}  // namespace

TaskRegistry& TaskRegistry::global() {
  static TaskRegistry* registry = new TaskRegistry();
  return *registry;
}

void TaskRegistry::add(const std::string& kind, TaskHandler handler) {
  std::lock_guard lock(mu_);
  handlers_[kind] = std::move(handler);
}

const TaskHandler* TaskRegistry::find(const std::string& kind) const {
  std::lock_guard lock(mu_);
  const auto it = handlers_.find(kind);
  return it == handlers_.end() ? nullptr : &it->second;
}

void register_builtin_tasks() {
  TaskRegistry& reg = TaskRegistry::global();
  reg.add("shuffle_map", shuffle_map_task);
  reg.add("shuffle_reduce", shuffle_reduce_task);
  reg.add("pipeline_stage", pipeline_stage_task);
  reg.add("release_blocks", release_blocks_task);
  reg.add("sleep_echo", sleep_echo_task);
}

StoredBlock fetch_block_over_wire(std::uint16_t port, const BlockId& id,
                                  const net::ChannelConfig& config) {
  ByteWriter w;
  encode_block_id(w, id);
  net::RetriableChannel peer("127.0.0.1", port, config);
  net::Frame resp;
  try {
    resp = peer.call(kFetchBlock, std::span<const std::uint8_t>(
                                      w.bytes().data(), w.bytes().size()));
  } catch (const net::ChannelError& e) {
    throw MissingBlockError(id.map_task, "fetching block " + id.key() +
                                             " from port " +
                                             std::to_string(port) +
                                             " failed: " + e.what());
  }
  if (resp.type != kBlockData) {
    ByteReader br(std::span<const std::uint8_t>(resp.payload.data(),
                                                resp.payload.size()));
    throw MissingBlockError(id.map_task, "peer at port " +
                                             std::to_string(port) +
                                             " has no block " + id.key() +
                                             ": " + br.str());
  }
  ByteReader br(std::span<const std::uint8_t>(resp.payload.data(),
                                              resp.payload.size()));
  StoredBlock block;
  block.checksum = br.u64();
  block.records = br.uvarint();
  const std::uint64_t n = br.uvarint();
  const auto bytes = br.raw(n);
  auto owned = std::make_shared<std::vector<std::uint8_t>>(bytes.begin(),
                                                           bytes.end());
  // Validate on arrival: the frame checksum already guards the transport,
  // but the block checksum is the shuffle's end-to-end integrity contract.
  if (engine::shuffle_block_checksum(std::span<const std::uint8_t>(
          owned->data(), owned->size())) != block.checksum) {
    throw MissingBlockError(id.map_task, "block " + id.key() +
                                             " corrupted in transit from "
                                             "port " +
                                             std::to_string(port));
  }
  block.bytes = std::move(owned);
  return block;
}

StoredBlock WorkerContext::fetch_block(std::uint16_t port,
                                       const BlockId& id) const {
  if (port == server.port()) {
    auto local = blocks.get(id.key());
    if (!local) {
      throw MissingBlockError(id.map_task,
                              "block " + id.key() + " not in local store");
    }
    return *local;
  }
  net::ChannelConfig cfg;
  cfg.connect_timeout_ms = server.config().peer_timeout_ms;
  cfg.call_timeout_ms = server.config().peer_timeout_ms;
  cfg.retry.max_attempts = 2;
  cfg.limits = server.config().limits;
  return fetch_block_over_wire(port, id, cfg);
}

WorkerServer::WorkerServer(WorkerConfig config)
    : config_(config),
      listener_(net::Listener::bind_loopback(config.port)) {}

WorkerServer::~WorkerServer() {
  request_stop();
  std::lock_guard lock(threads_mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerServer::serve() {
  while (!stop_.load()) {
    net::Socket sock = listener_.accept(config_.poll_interval_ms);
    if (!sock.valid()) continue;
    std::lock_guard lock(threads_mu_);
    threads_.emplace_back(
        [this, s = std::move(sock)]() mutable { handle_connection(std::move(s)); });
  }
}

void WorkerServer::handle_connection(net::Socket sock) {
  while (!stop_.load()) {
    if (!sock.wait_readable(config_.poll_interval_ms)) continue;
    net::Frame request;
    try {
      request = net::read_frame(sock, config_.limits, config_.io_timeout_ms);
    } catch (const net::FrameEof&) {
      return;
    } catch (const std::runtime_error&) {
      return;  // malformed or dead connection: drop it
    }
    net::Frame response = handle_message(request);
    response.request_id = request.request_id;
    try {
      net::write_frame(sock, response, config_.io_timeout_ms);
    } catch (const std::runtime_error&) {
      return;
    }
    if (request.type == kShutdown) {
      request_stop();
      return;
    }
  }
}

net::Frame WorkerServer::handle_message(const net::Frame& request) {
  net::Frame response;
  switch (request.type) {
    case kPing: {
      ByteWriter w;
      w.i32(config_.worker_id);
      w.u64(blocks_.count());
      w.u64(blocks_.total_bytes());
      w.u64(tasks_executed_.load());
      response.type = kPong;
      response.payload = w.take();
      return response;
    }
    case kShutdown: {
      response.type = kShutdownOk;
      return response;
    }
    case kFetchBlock: {
      ByteReader r(std::span<const std::uint8_t>(request.payload.data(),
                                                 request.payload.size()));
      BlockId id;
      try {
        id = decode_block_id(r);
      } catch (const std::exception& e) {
        ByteWriter w;
        w.str(std::string("bad fetch request: ") + e.what());
        response.type = kBlockError;
        response.payload = w.take();
        return response;
      }
      const auto block = blocks_.get(id.key());
      if (!block) {
        ByteWriter w;
        w.str("no such block: " + id.key());
        response.type = kBlockError;
        response.payload = w.take();
        return response;
      }
      ByteWriter w;
      w.u64(block->checksum);
      w.uvarint(block->records);
      w.uvarint(block->bytes->size());
      w.raw(std::span<const std::uint8_t>(block->bytes->data(),
                                          block->bytes->size()));
      response.type = kBlockData;
      response.payload = w.take();
      return response;
    }
    case kRunTask: {
      TaskRequest req;
      try {
        ByteReader r(std::span<const std::uint8_t>(request.payload.data(),
                                                   request.payload.size()));
        req = decode_task_request(r);
      } catch (const std::exception& e) {
        ByteWriter w;
        encode_task_error(w, {TaskErrorCode::kExecution, 0,
                              std::string("bad task request: ") + e.what()});
        response.type = kTaskError;
        response.payload = w.take();
        return response;
      }
      const TaskHandler* handler = TaskRegistry::global().find(req.kind);
      if (handler == nullptr) {
        ByteWriter w;
        encode_task_error(w, {TaskErrorCode::kUnknownKind, 0,
                              "no handler for task kind '" + req.kind + "'"});
        response.type = kTaskError;
        response.payload = w.take();
        return response;
      }
      WorkerContext ctx{*this, blocks_, buffer_pool_};
      try {
        // The span mirrors the driver-side task span: worker traces (when
        // enabled) show the same (stage, task, attempt) identity.
        trace::ScopedSpan span(req.stage, trace::SpanKind::kTask,
                               static_cast<std::int64_t>(req.task),
                               req.attempt);
        std::vector<std::uint8_t> result = (*handler)(ctx, req);
        tasks_executed_.fetch_add(1);
        response.type = kTaskOk;
        response.payload = std::move(result);
        return response;
      } catch (const MissingBlockError& e) {
        ByteWriter w;
        encode_task_error(
            w, {TaskErrorCode::kMissingBlock, e.map_task(), e.what()});
        response.type = kTaskError;
        response.payload = w.take();
        return response;
      } catch (const std::exception& e) {
        ByteWriter w;
        encode_task_error(w, {TaskErrorCode::kExecution, 0, e.what()});
        response.type = kTaskError;
        response.payload = w.take();
        return response;
      }
    }
    default: {
      ByteWriter w;
      encode_task_error(w, {TaskErrorCode::kExecution, 0,
                            "unknown message type " +
                                std::to_string(request.type)});
      response.type = kTaskError;
      response.payload = w.take();
      return response;
    }
  }
}

}  // namespace gpf::runtime
