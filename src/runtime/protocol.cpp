#include "runtime/protocol.hpp"

namespace gpf::runtime {

void encode_task_request(ByteWriter& w, const TaskRequest& req) {
  w.str(req.kind);
  w.str(req.stage);
  w.u64(req.task);
  w.i32(req.attempt);
  w.raw(std::span<const std::uint8_t>(req.payload.data(),
                                      req.payload.size()));
}

TaskRequest decode_task_request(ByteReader& r) {
  TaskRequest req;
  req.kind = r.str();
  req.stage = r.str();
  req.task = r.u64();
  req.attempt = r.i32();
  const auto rest = r.raw(r.remaining());
  req.payload.assign(rest.begin(), rest.end());
  return req;
}

void encode_task_error(ByteWriter& w, const TaskError& err) {
  w.u8(static_cast<std::uint8_t>(err.code));
  w.u64(err.detail);
  w.str(err.message);
}

TaskError decode_task_error(ByteReader& r) {
  TaskError err;
  err.code = static_cast<TaskErrorCode>(r.u8());
  err.detail = r.u64();
  err.message = r.str();
  return err;
}

void encode_block_id(ByteWriter& w, const BlockId& id) {
  w.str(id.stage);
  w.u64(id.map_task);
  w.u64(id.reduce_part);
}

BlockId decode_block_id(ByteReader& r) {
  BlockId id;
  id.stage = r.str();
  id.map_task = r.u64();
  id.reduce_part = r.u64();
  return id;
}

void encode_records(ByteWriter& w,
                    std::span<const std::vector<std::uint8_t>> records) {
  w.uvarint(records.size());
  for (const auto& rec : records) {
    w.uvarint(rec.size());
    w.raw(std::span<const std::uint8_t>(rec.data(), rec.size()));
  }
}

std::vector<std::vector<std::uint8_t>> decode_records(ByteReader& r) {
  const std::uint64_t count = r.uvarint();
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t n = r.uvarint();
    const auto bytes = r.raw(n);
    out.emplace_back(bytes.begin(), bytes.end());
  }
  return out;
}

}  // namespace gpf::runtime
