#include "runtime/distributed.hpp"

#include <mutex>
#include <span>
#include <utility>

#include "common/timer.hpp"
#include "common/trace.hpp"
#include "engine/stage_executor.hpp"

namespace gpf::runtime {
namespace {

/// Where one map task's blocks currently live.
struct MapBlocks {
  int worker = -1;
  std::uint16_t port = 0;
  std::vector<BlockRef> blocks;
};

/// Stamps wall time and files the stage — the distributed twin of
/// Dataset::record_stage, kept byte-compatible so simcluster replays and
/// trace tooling treat both kinds of stage identically.
void record_stage(engine::Engine& engine, engine::StageMetrics&& stage,
                  const Timer& wall, bool failed) {
  stage.wall_seconds = wall.seconds();
  stage.failed = failed;
  trace::TraceRecorder& recorder = trace::TraceRecorder::global();
  if (recorder.enabled()) {
    trace::Span span;
    span.name = stage.name;
    span.kind = trace::SpanKind::kStage;
    span.dur_us = stage.wall_seconds * 1e6;
    span.start_us = recorder.now_us() - span.dur_us;
    span.failed = stage.failed;
    recorder.record(std::move(span));
  }
  engine.metrics().add_stage(std::move(stage));
}

}  // namespace

std::vector<RecordPartition> distributed_shuffle(
    engine::Engine& engine, WorkerPool& pool, const std::string& stage_name,
    const std::vector<RecordPartition>& inputs, std::size_t num_out,
    const DistributedShuffleOptions& options) {
  if (num_out == 0) {
    throw std::invalid_argument("distributed_shuffle: num_out == 0");
  }
  const std::size_t n_in = inputs.size();

  engine::StageMetrics stage;
  stage.name = stage_name;
  stage.task_count = n_in + num_out;
  stage.task_seconds.assign(n_in + num_out, 0.0);
  stage.wide = true;
  stage.map_task_count = n_in;

  engine::FaultInjector* injector = engine.fault_injector();
  const std::size_t ordinal =
      injector != nullptr ? injector->begin_stage(stage_name) : 0;
  const engine::StageExecPolicy policy = engine.exec_policy();

  // Current block locations, written by the map stage and patched by
  // reduce-side lineage recomputes when an owner dies.
  std::vector<MapBlocks> locations(n_in);
  std::mutex loc_mu;

  // Ships input partition `i` to a live worker and returns where its
  // blocks landed.  Pure function of the immutable input partition, so
  // the executor may run it for retries, speculative copies, and
  // reduce-side recomputes alike.
  auto run_map_task = [&](std::size_t i, int attempt) -> MapBlocks {
    ByteWriter w(engine.buffer_pool().acquire());
    w.str(options.partitioner);
    w.uvarint(num_out);
    w.u32(options.map_delay_ms);
    encode_records(w, inputs[i]);
    TaskRequest req;
    req.kind = "shuffle_map";
    req.stage = stage_name;
    req.task = i;
    req.attempt = attempt;
    req.payload = w.take();
    int worker = -1;
    std::vector<std::uint8_t> reply =
        pool.run_task(req, &engine.buffer_pool(), &worker);
    engine.buffer_pool().release(std::move(req.payload));

    ByteReader r(std::span<const std::uint8_t>(reply.data(), reply.size()));
    MapBlocks out;
    out.worker = worker;
    out.port = pool.info(worker).port;
    const std::uint64_t blocks = r.uvarint();
    if (blocks != num_out) {
      throw std::runtime_error("shuffle_map returned " +
                               std::to_string(blocks) + " blocks, expected " +
                               std::to_string(num_out));
    }
    out.blocks.resize(num_out);
    for (std::size_t b = 0; b < num_out; ++b) {
      out.blocks[b].port = out.port;
      out.blocks[b].checksum = r.u64();
      out.blocks[b].records = r.uvarint();
      out.blocks[b].bytes = r.uvarint();
    }
    return out;
  };

  Timer wall;
  try {
    auto map_results = engine::execute_stage<MapBlocks>(
        engine.pool(), policy, injector, stage, ordinal, n_in,
        /*task_offset=*/0, run_map_task);
    std::lock_guard lock(loc_mu);
    locations = std::move(map_results);
  } catch (...) {
    record_stage(engine, std::move(stage), wall, /*failed=*/true);
    throw;
  }
  for (const auto& m : locations) {
    for (const auto& b : m.blocks) {
      stage.shuffle_write_bytes += b.bytes;
      stage.shuffle_records += b.records;
    }
  }
  if (options.on_map_complete) options.on_map_complete();

  // Recomputes every map task whose blocks died with their worker and
  // patches the location table.  Runs inside a failing reduce attempt;
  // concurrent repairs of the same task are harmless (bit-identical
  // blocks, last write wins under the lock).
  auto repair_lost_blocks = [&](int attempt) {
    std::vector<std::size_t> lost;
    {
      std::lock_guard lock(loc_mu);
      for (std::size_t i = 0; i < n_in; ++i) {
        if (!pool.alive(locations[i].worker)) lost.push_back(i);
      }
    }
    for (const std::size_t i : lost) {
      MapBlocks fresh = run_map_task(i, attempt);
      std::lock_guard lock(loc_mu);
      locations[i] = std::move(fresh);
    }
    return lost.size();
  };

  auto run_reduce_task = [&](std::size_t b, int attempt) -> RecordPartition {
    std::vector<BlockRef> refs(n_in);
    {
      std::lock_guard lock(loc_mu);
      for (std::size_t i = 0; i < n_in; ++i) {
        refs[i] = locations[i].blocks[b];
      }
    }
    ByteWriter w(engine.buffer_pool().acquire());
    w.uvarint(b);
    w.uvarint(n_in);
    for (const auto& ref : refs) {
      w.u16(ref.port);
      w.u64(ref.checksum);
      w.uvarint(ref.records);
    }
    TaskRequest req;
    req.kind = "shuffle_reduce";
    req.stage = stage_name;
    req.task = n_in + b;
    req.attempt = attempt;
    req.payload = w.take();
    std::vector<std::uint8_t> reply;
    try {
      reply = pool.run_task(req, &engine.buffer_pool());
    } catch (const RemoteTaskError& e) {
      engine.buffer_pool().release(std::move(req.payload));
      if (e.error().code == TaskErrorCode::kMissingBlock) {
        // A block owner died between map and fetch: recompute the dead
        // workers' map tasks from lineage, then fail this attempt so the
        // executor retries the reduce against the fresh locations.
        repair_lost_blocks(attempt);
        throw engine::ShuffleBlockError(
            "reduce partition " + std::to_string(b) + " of stage '" +
            stage_name + "' lost block of map task " +
            std::to_string(e.error().detail) + "; recomputed from lineage");
      }
      throw;
    }
    engine.buffer_pool().release(std::move(req.payload));

    ByteReader r(std::span<const std::uint8_t>(reply.data(), reply.size()));
    return decode_records(r);
  };

  std::vector<RecordPartition> result;
  try {
    result = engine::execute_stage<RecordPartition>(
        engine.pool(), policy, injector, stage, ordinal, num_out,
        /*task_offset=*/n_in, run_reduce_task);
  } catch (...) {
    record_stage(engine, std::move(stage), wall, /*failed=*/true);
    throw;
  }
  {
    std::lock_guard lock(loc_mu);
    for (const auto& m : locations) {
      for (const auto& b : m.blocks) stage.shuffle_read_bytes += b.bytes;
    }
  }

  // The shuffle succeeded, so its blocks are dead weight: release the
  // stage's namespace on every live worker.  Best effort — a worker dying
  // right here must not fail a job whose results are already in hand (its
  // store dies with the process anyway).
  {
    TaskRequest release;
    release.kind = "release_blocks";
    release.stage = stage_name;
    ByteWriter w;
    w.str(stage_name);
    release.payload = w.take();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const int w_id = static_cast<int>(i);
      if (!pool.alive(w_id)) continue;
      try {
        pool.dispatch_to(w_id, release, &engine.buffer_pool());
      } catch (const WorkerLost&) {
      } catch (const NoLiveWorkers&) {
      }
    }
  }
  record_stage(engine, std::move(stage), wall, /*failed=*/false);
  return result;
}

}  // namespace gpf::runtime
