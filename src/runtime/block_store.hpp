// In-memory shuffle block store held by each worker process.
//
// The map side of a distributed shuffle deposits encoded buckets here;
// reduce tasks (running on any worker) fetch them locally or over the
// wire.  Blocks are immutable once stored — fetches hand out shared
// pointers, so a concurrent overwrite (a speculative map copy landing
// twice) can never mutate bytes a reader is streaming.
//
// Keys are namespaced "stage/map_task/reduce_part" (BlockId::key), and the
// stage prefix doubles as the block generation: when a shuffle completes,
// the driver releases its whole namespace so blocks from finished jobs do
// not accumulate across a worker's lifetime and grow its RSS without
// bound.  Release only erases the map entries — bytes stay alive for any
// reader still holding a fetched shared pointer.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpf::runtime {

/// One stored block: the encoded bytes plus the integrity metadata the
/// in-process shuffle tracks per block (engine's BlockMeta equivalent).
struct StoredBlock {
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  std::uint64_t checksum = 0;
  std::uint64_t records = 0;
};

class BlockStore {
 public:
  void put(const std::string& key, StoredBlock block) {
    std::lock_guard lock(mu_);
    blocks_[key] = std::move(block);
  }

  std::optional<StoredBlock> get(const std::string& key) const {
    std::lock_guard lock(mu_);
    const auto it = blocks_.find(key);
    if (it == blocks_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return blocks_.size();
  }

  std::uint64_t total_bytes() const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [k, b] : blocks_) n += b.bytes ? b.bytes->size() : 0;
    return n;
  }

  void clear() {
    std::lock_guard lock(mu_);
    blocks_.clear();
  }

  /// Erases every block whose key lives under `stage`'s namespace (the
  /// "stage/" key prefix) and returns the bytes released.  Invoked by
  /// distributed_shuffle on success so completed shuffles stop pinning
  /// worker memory; safe to call repeatedly (idempotent).
  std::uint64_t release_namespace(const std::string& stage) {
    const std::string prefix = stage + "/";
    std::lock_guard lock(mu_);
    std::uint64_t released = 0;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        released += it->second.bytes ? it->second.bytes->size() : 0;
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
    return released;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, StoredBlock> blocks_;
};

}  // namespace gpf::runtime
