// In-memory shuffle block store held by each worker process.
//
// The map side of a distributed shuffle deposits encoded buckets here;
// reduce tasks (running on any worker) fetch them locally or over the
// wire.  Blocks are immutable once stored — fetches hand out shared
// pointers, so a concurrent overwrite (a speculative map copy landing
// twice) can never mutate bytes a reader is streaming.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpf::runtime {

/// One stored block: the encoded bytes plus the integrity metadata the
/// in-process shuffle tracks per block (engine's BlockMeta equivalent).
struct StoredBlock {
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
  std::uint64_t checksum = 0;
  std::uint64_t records = 0;
};

class BlockStore {
 public:
  void put(const std::string& key, StoredBlock block) {
    std::lock_guard lock(mu_);
    blocks_[key] = std::move(block);
  }

  std::optional<StoredBlock> get(const std::string& key) const {
    std::lock_guard lock(mu_);
    const auto it = blocks_.find(key);
    if (it == blocks_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return blocks_.size();
  }

  std::uint64_t total_bytes() const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [k, b] : blocks_) n += b.bytes ? b.bytes->size() : 0;
    return n;
  }

  void clear() {
    std::lock_guard lock(mu_);
    blocks_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, StoredBlock> blocks_;
};

}  // namespace gpf::runtime
