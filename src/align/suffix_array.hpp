// Suffix array construction over the packed reference text.
//
// Prefix-doubling with counting-sort passes: O(n log n), deterministic,
// and fast enough for the multi-megabase synthetic genomes the benches
// index.  The text alphabet is the 2-bit base code plus a unique sentinel
// (rank 0) appended by the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gpf::align {

/// Builds the suffix array of `text` (values are arbitrary unsigned bytes;
/// the caller must ensure text ends with a unique smallest byte, typically
/// 0).  Returns sa with sa[i] = start of the i-th smallest suffix.
std::vector<std::uint32_t> build_suffix_array(
    std::span<const std::uint8_t> text);

/// Computes the Burrows-Wheeler transform from a suffix array:
/// bwt[i] = text[sa[i] - 1] (wrapping to the last character).
std::vector<std::uint8_t> bwt_from_suffix_array(
    std::span<const std::uint8_t> text, std::span<const std::uint32_t> sa);

}  // namespace gpf::align
