// Seed-and-extend read aligner in the BWA-MEM family (the paper's Aligner
// stage runs bwa-0.7.12): exact-match seeds from FM-index backward search,
// chained by diagonal, extended with banded Smith-Waterman, with
// paired-end scoring and mate rescue.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "align/fm_index.hpp"
#include "align/smith_waterman.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"

namespace gpf::align {

struct AlignerOptions {
  int seed_length = 19;
  /// Sample a seed every `seed_stride` query bases.
  int seed_stride = 11;
  /// Seeds with more FM hits than this are considered repetitive and
  /// skipped.
  std::uint32_t max_seed_hits = 24;
  /// How many seed clusters to extend per strand.
  int max_extensions = 4;
  int band = 16;
  /// Extra reference bases on each side of the projected read span.
  int ref_flank = 24;
  ScoringScheme scoring;
  /// Alignments scoring below this are reported unmapped.
  std::int32_t min_score = 30;
  /// Paired-end insert model used for pairing and rescue.
  double insert_mean = 350.0;
  double insert_sd = 40.0;
};

/// One scored alignment candidate for a read.
struct AlignmentCandidate {
  std::int32_t contig_id = -1;
  std::int64_t pos = -1;  // 0-based reference start
  bool reverse = false;
  std::int32_t score = 0;
  std::int32_t mismatches = 0;
  Cigar cigar;  // includes soft clips
};

/// The Aligner-stage engine.  Thread-safe: alignment is const over the
/// shared index.
class ReadAligner {
 public:
  ReadAligner(const FmIndex& index, AlignerOptions options = {});

  /// Aligns one read; returns an unmapped record when no candidate clears
  /// min_score.
  SamRecord align_single(const FastqRecord& read) const;

  /// Aligns a mate pair with pairing score and mate rescue; returns
  /// (first, second) records with pairing flags set.
  std::pair<SamRecord, SamRecord> align_pair(const FastqPair& pair) const;

  /// All extension candidates for a read sequence, best first.  Exposed
  /// for tests and for the SNAP-comparison bench.
  std::vector<AlignmentCandidate> candidates(const std::string& seq) const;

  const AlignerOptions& options() const { return options_; }

 private:
  struct SeedHit {
    std::int32_t contig_id;
    std::int64_t diag;  // ref_pos - query_offset
    bool reverse;
  };

  void collect_seeds(const std::string& seq, bool reverse,
                     std::vector<SeedHit>& hits) const;
  AlignmentCandidate extend_cluster(const std::string& seq,
                                    const SeedHit& anchor) const;
  SamRecord to_record(const FastqRecord& read,
                      const AlignmentCandidate& cand) const;
  /// Tries to place `read` near `anchor_pos` on `contig` with direct SW.
  AlignmentCandidate rescue(const std::string& seq, std::int32_t contig_id,
                            std::int64_t anchor_pos, bool reverse) const;
  static std::uint8_t mapq_from_scores(std::int32_t best,
                                       std::int32_t second,
                                       std::int32_t max_possible);

  const FmIndex* index_;
  AlignerOptions options_;
};

}  // namespace gpf::align
