// FM-index over a concatenated multi-contig reference: BWT, occurrence
// checkpoints and a sampled suffix array.  This is the paper's "BWT
// algorithm [15] to index genome sequences" substrate for the Aligner
// stage (bwa-style backward search).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "formats/fasta.hpp"

namespace gpf::align {

/// Half-open range of BWT rows matching a query (SA interval).
struct SaInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;  // exclusive
  std::uint32_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

/// A reference position resolved from an SA row.
struct RefPosition {
  std::int32_t contig_id = -1;
  std::int64_t offset = -1;
};

/// FM-index with rank checkpoints every 64 rows.  Alphabet: $=0, A=1, C=2,
/// G=3, T=4 (N in the reference is mapped to 'A' for indexing; gaps rarely
/// attract seeds because reads never contain long A-runs from gaps).
///
/// The suffix array is kept whole rather than sampled: at the multi-
/// megabase scale of the synthetic genomes, a sampled SA with row markers
/// costs the same 4 bytes/position as the full array, so sampling would
/// add LF-walk latency for zero memory win.
class FmIndex {
 public:
  /// Builds the index over all contigs of `reference`.
  explicit FmIndex(const Reference& reference);

  /// Backward-search extension: narrows `interval` by prepending `base`
  /// (one of A/C/G/T).  Returns an empty interval when no match survives.
  SaInterval extend(const SaInterval& interval, char base) const;

  /// Full backward search for `pattern`; empty interval if absent.
  SaInterval search(std::string_view pattern) const;

  /// The interval covering every suffix (the search start state).
  SaInterval whole() const {
    return {0, static_cast<std::uint32_t>(bwt_.size())};
  }

  /// Resolves the reference position of SA row `row`.  Rows landing on a
  /// contig separator return a RefPosition with contig_id == -1.
  RefPosition locate(std::uint32_t row) const;

  /// Total indexed length (including per-contig sentinels).
  std::size_t text_length() const { return bwt_.size(); }

  const Reference& reference() const { return *reference_; }

 private:
  std::uint8_t rank_code(char base) const;
  /// occ(c, i): occurrences of code c in bwt[0, i).
  std::uint32_t occ(std::uint8_t code, std::uint32_t i) const;

  static constexpr int kAlphabet = 5;
  static constexpr std::uint32_t kOccSample = 64;

  const Reference* reference_;
  std::vector<std::uint8_t> bwt_;
  std::uint32_t c_[kAlphabet + 1] = {};  // C array: rows starting with < c
  // Checkpointed occurrence counts: occ_checkpoints_[block*kAlphabet + c].
  std::vector<std::uint32_t> occ_checkpoints_;
  // Full suffix array (see class comment for the sampling tradeoff).
  std::vector<std::uint32_t> sa_;
  // Contig boundaries in the concatenated text: cumulative start offsets.
  std::vector<std::uint64_t> contig_starts_;
};

}  // namespace gpf::align
