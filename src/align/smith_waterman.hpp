// Banded pairwise alignment with affine gap penalties and CIGAR traceback —
// the extension kernel behind the BWA-MEM-like aligner and the indel
// realigner.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "formats/cigar.hpp"

namespace gpf::align {

struct ScoringScheme {
  std::int32_t match = 1;
  std::int32_t mismatch = -4;
  std::int32_t gap_open = -6;
  std::int32_t gap_extend = -1;
  /// Score for aligning anything against N (no information).
  std::int32_t n_score = -1;
};

struct AlignmentResult {
  std::int32_t score = 0;
  /// Offsets of the aligned span within query and reference.
  std::int32_t query_start = 0;
  std::int32_t query_end = 0;  // exclusive
  std::int32_t ref_start = 0;
  std::int32_t ref_end = 0;  // exclusive
  Cigar cigar;               // covers [query_start, query_end)
  /// Number of mismatching aligned bases (the NM-tag ingredient).
  std::int32_t mismatches = 0;
};

/// Global alignment of `query` against `ref` within a diagonal band of
/// half-width `band`.  Both sequences are aligned end-to-end; use this when
/// the query is expected to span the window (realignment, haplotype
/// scoring).
AlignmentResult banded_global(std::string_view query, std::string_view ref,
                              const ScoringScheme& scoring, int band);

/// Local ("glocal") alignment: the whole query against any substring of
/// `ref`, with soft-clipping of low-scoring query ends.  Used by the read
/// aligner to extend seeds.
AlignmentResult glocal(std::string_view query, std::string_view ref,
                       const ScoringScheme& scoring, int band);

namespace detail {

/// Unoptimized reference kernels: the original full-matrix Gotoh DP that
/// allocates six (m+1)x(n+1) matrices per call.  The production kernels
/// above use a reusable per-thread workspace with banded row-pair storage;
/// these stay behind so the equivalence tests and the perf-regression
/// harness can check the fast path cell-for-cell against the textbook one.
AlignmentResult banded_global_reference(std::string_view query,
                                        std::string_view ref,
                                        const ScoringScheme& scoring,
                                        int band);
AlignmentResult glocal_reference(std::string_view query, std::string_view ref,
                                 const ScoringScheme& scoring, int band);

}  // namespace detail

}  // namespace gpf::align
