// SNAP-style hash-seed aligner: a flat k-mer hash of the reference with
// single-end seed-and-check alignment.  This is the comparator engine for
// the Persona baseline (the paper notes Persona integrates SNAP and uses
// single-end reads; Fig 11(d)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/smith_waterman.hpp"
#include "formats/fasta.hpp"
#include "formats/fastq.hpp"
#include "formats/sam.hpp"

namespace gpf::align {

struct HashAlignerOptions {
  int kmer_length = 20;
  /// Index every `index_stride`-th reference position (SNAP indexes every
  /// position; raising this trades recall for memory).
  int index_stride = 1;
  /// Seeds sampled from the read.
  int seeds_per_read = 8;
  /// Locations with more hits than this are treated as repetitive.
  std::uint32_t max_hits = 32;
  ScoringScheme scoring;
  std::int32_t min_score = 30;
  int band = 12;
};

/// Hash-based single-end aligner.
class HashAligner {
 public:
  HashAligner(const Reference& reference, HashAlignerOptions options = {});

  SamRecord align(const FastqRecord& read) const;

  /// Index memory footprint in bytes (reported by the Persona bench).
  std::size_t index_bytes() const;

 private:
  struct Location {
    std::int32_t contig_id;
    std::int64_t pos;
  };

  std::uint64_t kmer_at(std::string_view seq, std::size_t offset) const;
  std::vector<Location> lookup(std::uint64_t kmer) const;

  const Reference* reference_;
  HashAlignerOptions options_;
  // Open-addressing table: keys_ holds the kmer (or kEmpty), buckets_
  // holds the index range into locations_.
  static constexpr std::uint64_t kEmpty = ~0ULL;
  std::vector<std::uint64_t> keys_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> buckets_;
  std::vector<Location> locations_;
};

}  // namespace gpf::align
