#include "align/suffix_array.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gpf::align {

std::vector<std::uint32_t> build_suffix_array(
    std::span<const std::uint8_t> text) {
  const std::size_t n = text.size();
  if (n == 0) return {};
  if (n > 0xffffffffULL) {
    throw std::invalid_argument("suffix array: text too large for u32");
  }

  std::vector<std::uint32_t> sa(n), rank(n), tmp(n), count;
  // Initial ranks are the byte values; initial sort by counting sort.
  count.assign(257, 0);
  for (std::size_t i = 0; i < n; ++i) ++count[text[i] + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());
  for (std::size_t i = 0; i < n; ++i) {
    sa[count[text[i]]++] = static_cast<std::uint32_t>(i);
  }
  rank[sa[0]] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    rank[sa[i]] = rank[sa[i - 1]] + (text[sa[i]] != text[sa[i - 1]] ? 1 : 0);
  }

  for (std::size_t k = 1; k < n; k <<= 1) {
    // Sort by (rank[i], rank[i+k]) using two stable counting-sort passes.
    const std::uint32_t classes = rank[sa[n - 1]] + 1;
    if (classes == n) break;  // all suffixes distinct

    // Pass 1 (secondary key): suffixes i ordered by rank of i+k.  A suffix
    // with i+k >= n has the smallest secondary key; exploiting the current
    // sa order: sa sorted by rank gives the order of the secondary key by
    // shifting indices left by k.
    std::vector<std::uint32_t> order(n);
    std::size_t at = 0;
    for (std::size_t i = n - k; i < n; ++i) {
      order[at++] = static_cast<std::uint32_t>(i);  // no secondary key
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (sa[i] >= k) order[at++] = sa[i] - static_cast<std::uint32_t>(k);
    }

    // Pass 2 (primary key): stable counting sort of `order` by rank.
    count.assign(classes + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++count[rank[i] + 1];
    std::partial_sum(count.begin(), count.end(), count.begin());
    for (std::size_t i = 0; i < n; ++i) {
      sa[count[rank[order[i]]]++] = order[i];
    }

    // Recompute ranks.
    tmp[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t a = sa[i - 1];
      const std::uint32_t b = sa[i];
      const bool same =
          rank[a] == rank[b] &&
          ((a + k < n && b + k < n) ? rank[a + k] == rank[b + k]
                                    : (a + k >= n && b + k >= n));
      tmp[b] = tmp[a] + (same ? 0 : 1);
    }
    rank.swap(tmp);
  }
  return sa;
}

std::vector<std::uint8_t> bwt_from_suffix_array(
    std::span<const std::uint8_t> text, std::span<const std::uint32_t> sa) {
  std::vector<std::uint8_t> bwt(text.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    bwt[i] = sa[i] == 0 ? text[text.size() - 1] : text[sa[i] - 1];
  }
  return bwt;
}

}  // namespace gpf::align
