#include "align/fm_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "align/suffix_array.hpp"

namespace gpf::align {
namespace {

std::uint8_t base_to_code(char base) {
  switch (base) {
    case 'A':
      return 1;
    case 'C':
      return 2;
    case 'G':
      return 3;
    case 'T':
      return 4;
    default:
      return 1;  // N indexed as A; see header comment
  }
}

}  // namespace

FmIndex::FmIndex(const Reference& reference) : reference_(&reference) {
  // Concatenate contigs with a 0 separator after each (the final one doubles
  // as terminator).
  std::vector<std::uint8_t> text;
  text.reserve(reference.total_length() + reference.contig_count());
  contig_starts_.reserve(reference.contig_count());
  for (std::size_t cid = 0; cid < reference.contig_count(); ++cid) {
    contig_starts_.push_back(text.size());
    for (const char b :
         reference.contig(static_cast<std::int32_t>(cid)).sequence) {
      text.push_back(base_to_code(b));
    }
    text.push_back(0);
  }
  if (text.empty()) throw std::invalid_argument("FmIndex: empty reference");

  sa_ = build_suffix_array(text);
  bwt_ = bwt_from_suffix_array(text, sa_);

  // C array.
  std::uint32_t counts[kAlphabet] = {};
  for (const std::uint8_t c : text) ++counts[c];
  c_[0] = 0;
  for (int c = 0; c < kAlphabet; ++c) c_[c + 1] = c_[c] + counts[c];

  // Occurrence checkpoints.
  const std::size_t blocks = bwt_.size() / kOccSample + 1;
  occ_checkpoints_.assign(blocks * kAlphabet, 0);
  std::uint32_t running[kAlphabet] = {};
  for (std::size_t i = 0; i < bwt_.size(); ++i) {
    if (i % kOccSample == 0) {
      for (int c = 0; c < kAlphabet; ++c) {
        occ_checkpoints_[(i / kOccSample) * kAlphabet + c] = running[c];
      }
    }
    ++running[bwt_[i]];
  }
}

std::uint8_t FmIndex::rank_code(char base) const { return base_to_code(base); }

std::uint32_t FmIndex::occ(std::uint8_t code, std::uint32_t i) const {
  const std::uint32_t block = i / kOccSample;
  std::uint32_t count = occ_checkpoints_[block * kAlphabet + code];
  for (std::uint32_t j = block * kOccSample; j < i; ++j) {
    if (bwt_[j] == code) ++count;
  }
  return count;
}

SaInterval FmIndex::extend(const SaInterval& interval, char base) const {
  if (base != 'A' && base != 'C' && base != 'G' && base != 'T') {
    return {0, 0};  // N never matches
  }
  const std::uint8_t c = rank_code(base);
  return {c_[c] + occ(c, interval.lo), c_[c] + occ(c, interval.hi)};
}

SaInterval FmIndex::search(std::string_view pattern) const {
  SaInterval iv = whole();
  for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
    iv = extend(iv, *it);
    if (iv.empty()) return {0, 0};
  }
  return iv;
}

RefPosition FmIndex::locate(std::uint32_t row) const {
  const std::uint64_t text_pos = sa_.at(row);

  // Map into contig coordinates.
  auto it = std::upper_bound(contig_starts_.begin(), contig_starts_.end(),
                             text_pos);
  const auto cid = static_cast<std::int32_t>(
      std::distance(contig_starts_.begin(), it) - 1);
  RefPosition pos;
  pos.contig_id = cid;
  pos.offset =
      static_cast<std::int64_t>(text_pos - contig_starts_[cid]);
  // Positions landing on a separator belong to no contig.
  const auto len = static_cast<std::int64_t>(
      reference_->contig(cid).sequence.size());
  if (pos.offset >= len) return {};  // separator row
  return pos;
}

}  // namespace gpf::align
