#include "align/bwamem.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace gpf::align {
namespace {

/// Reverse-complement helper local to the aligner (simdata provides the
/// canonical implementation; we keep alignment self-contained).
std::string revcomp(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    switch (seq[seq.size() - 1 - i]) {
      case 'A':
        out[i] = 'T';
        break;
      case 'T':
        out[i] = 'A';
        break;
      case 'C':
        out[i] = 'G';
        break;
      case 'G':
        out[i] = 'C';
        break;
      default:
        out[i] = 'N';
    }
  }
  return out;
}

}  // namespace

ReadAligner::ReadAligner(const FmIndex& index, AlignerOptions options)
    : index_(&index), options_(options) {}

void ReadAligner::collect_seeds(const std::string& seq, bool reverse,
                                std::vector<SeedHit>& hits) const {
  const int len = static_cast<int>(seq.size());
  if (len < options_.seed_length) return;
  for (int offset = 0; offset + options_.seed_length <= len;
       offset += options_.seed_stride) {
    const std::string_view seed(seq.data() + offset,
                                static_cast<std::size_t>(
                                    options_.seed_length));
    const SaInterval iv = index_->search(seed);
    if (iv.empty() || iv.size() > options_.max_seed_hits) continue;
    for (std::uint32_t row = iv.lo; row < iv.hi; ++row) {
      const RefPosition rp = index_->locate(row);
      if (rp.contig_id < 0) continue;
      hits.push_back({rp.contig_id, rp.offset - offset, reverse});
    }
  }
}

AlignmentCandidate ReadAligner::extend_cluster(const std::string& seq,
                                               const SeedHit& anchor) const {
  const Reference& ref = index_->reference();
  const auto read_len = static_cast<std::int64_t>(seq.size());
  const std::int64_t win_start = anchor.diag - options_.ref_flank;
  const std::int64_t win_len = read_len + 2 * options_.ref_flank;
  const std::string_view window =
      ref.slice(anchor.contig_id, win_start, win_len);
  if (window.size() < static_cast<std::size_t>(options_.seed_length)) {
    return {};
  }
  const std::int64_t effective_start = std::max<std::int64_t>(0, win_start);

  const AlignmentResult r =
      glocal(seq, window, options_.scoring, options_.band);
  if (r.cigar.empty()) return {};

  AlignmentCandidate cand;
  cand.contig_id = anchor.contig_id;
  cand.reverse = anchor.reverse;
  cand.score = r.score;
  cand.mismatches = r.mismatches;
  cand.pos = effective_start + r.ref_start;
  // Add soft clips for the unaligned query ends.
  Cigar cigar;
  if (r.query_start > 0) {
    cigar.push_back({CigarOp::kSoftClip,
                     static_cast<std::uint32_t>(r.query_start)});
  }
  cigar.insert(cigar.end(), r.cigar.begin(), r.cigar.end());
  const auto tail = static_cast<std::int32_t>(seq.size()) - r.query_end;
  if (tail > 0) {
    cigar.push_back({CigarOp::kSoftClip, static_cast<std::uint32_t>(tail)});
  }
  cand.cigar = std::move(cigar);
  return cand;
}

std::vector<AlignmentCandidate> ReadAligner::candidates(
    const std::string& seq) const {
  std::vector<SeedHit> hits;
  collect_seeds(seq, /*reverse=*/false, hits);
  const std::string rc = revcomp(seq);
  collect_seeds(rc, /*reverse=*/true, hits);

  // Cluster hits by (strand, contig, coarse diagonal) and count votes.
  struct ClusterKey {
    bool reverse;
    std::int32_t contig_id;
    std::int64_t diag_bucket;
    bool operator<(const ClusterKey& o) const {
      if (reverse != o.reverse) return reverse < o.reverse;
      if (contig_id != o.contig_id) return contig_id < o.contig_id;
      return diag_bucket < o.diag_bucket;
    }
  };
  std::map<ClusterKey, std::pair<int, SeedHit>> clusters;
  for (const auto& h : hits) {
    const ClusterKey key{h.reverse, h.contig_id, h.diag / 8};
    auto [it, inserted] = clusters.emplace(key, std::make_pair(0, h));
    ++it->second.first;
  }
  // Extend the most-voted clusters.
  std::vector<std::pair<int, SeedHit>> ranked;
  ranked.reserve(clusters.size());
  for (const auto& [key, v] : clusters) ranked.push_back(v);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  if (ranked.size() > static_cast<std::size_t>(options_.max_extensions)) {
    ranked.resize(static_cast<std::size_t>(options_.max_extensions));
  }

  std::vector<AlignmentCandidate> cands;
  for (const auto& [votes, anchor] : ranked) {
    const std::string& oriented = anchor.reverse ? rc : seq;
    AlignmentCandidate c = extend_cluster(oriented, anchor);
    if (c.contig_id >= 0 && c.score >= options_.min_score) {
      cands.push_back(std::move(c));
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const AlignmentCandidate& a,
                      const AlignmentCandidate& b) {
                     return a.score > b.score;
                   });
  return cands;
}

std::uint8_t ReadAligner::mapq_from_scores(std::int32_t best,
                                           std::int32_t second,
                                           std::int32_t max_possible) {
  if (best <= 0) return 0;
  if (second <= 0) {
    // Unique hit: scale by how close to a perfect score it is.
    const double frac =
        static_cast<double>(best) / static_cast<double>(max_possible);
    return static_cast<std::uint8_t>(std::clamp(60.0 * frac, 20.0, 60.0));
  }
  const double gap = static_cast<double>(best - second) /
                     static_cast<double>(best);
  return static_cast<std::uint8_t>(std::clamp(80.0 * gap, 0.0, 60.0));
}

SamRecord ReadAligner::to_record(const FastqRecord& read,
                                 const AlignmentCandidate& cand) const {
  SamRecord rec;
  rec.qname = read.name;
  if (cand.contig_id < 0) {
    rec.flag = SamFlags::kUnmapped;
    rec.sequence = read.sequence;
    rec.quality = read.quality;
    return rec;
  }
  rec.contig_id = cand.contig_id;
  rec.pos = cand.pos;
  rec.cigar = cand.cigar;
  if (cand.reverse) {
    rec.flag |= SamFlags::kReverse;
    rec.sequence = revcomp(read.sequence);
    rec.quality.assign(read.quality.rbegin(), read.quality.rend());
  } else {
    rec.sequence = read.sequence;
    rec.quality = read.quality;
  }
  return rec;
}

SamRecord ReadAligner::align_single(const FastqRecord& read) const {
  const auto cands = candidates(read.sequence);
  if (cands.empty()) {
    AlignmentCandidate none;
    return to_record(read, none);
  }
  SamRecord rec = to_record(read, cands[0]);
  const std::int32_t second = cands.size() > 1 ? cands[1].score : 0;
  rec.mapq = mapq_from_scores(
      cands[0].score, second,
      static_cast<std::int32_t>(read.sequence.size()) *
          options_.scoring.match);
  return rec;
}

AlignmentCandidate ReadAligner::rescue(const std::string& seq,
                                       std::int32_t contig_id,
                                       std::int64_t anchor_pos,
                                       bool reverse) const {
  const Reference& ref = index_->reference();
  const auto window_half = static_cast<std::int64_t>(
      options_.insert_mean + 4.0 * options_.insert_sd);
  const std::int64_t start = anchor_pos - window_half;
  const std::string_view window =
      ref.slice(contig_id, start, 2 * window_half);
  if (window.size() < seq.size()) return {};
  const std::string oriented = reverse ? revcomp(seq) : seq;
  const AlignmentResult r =
      glocal(oriented, window, options_.scoring, options_.band);
  if (r.cigar.empty() || r.score < options_.min_score) return {};
  AlignmentCandidate cand;
  cand.contig_id = contig_id;
  cand.reverse = reverse;
  cand.score = r.score;
  cand.mismatches = r.mismatches;
  cand.pos = std::max<std::int64_t>(0, start) + r.ref_start;
  Cigar cigar;
  if (r.query_start > 0) {
    cigar.push_back({CigarOp::kSoftClip,
                     static_cast<std::uint32_t>(r.query_start)});
  }
  cigar.insert(cigar.end(), r.cigar.begin(), r.cigar.end());
  const auto tail = static_cast<std::int32_t>(oriented.size()) - r.query_end;
  if (tail > 0) {
    cigar.push_back({CigarOp::kSoftClip, static_cast<std::uint32_t>(tail)});
  }
  cand.cigar = std::move(cigar);
  return cand;
}

std::pair<SamRecord, SamRecord> ReadAligner::align_pair(
    const FastqPair& pair) const {
  auto cands1 = candidates(pair.first.sequence);
  auto cands2 = candidates(pair.second.sequence);

  // Score all cross-combinations with an insert-size prior; proper pairs
  // are forward/reverse on the same contig within the insert window.
  const double max_insert = options_.insert_mean + 6.0 * options_.insert_sd;
  double best_pair_score = -1.0;
  int best_i = -1, best_j = -1;
  for (std::size_t i = 0; i < cands1.size(); ++i) {
    for (std::size_t j = 0; j < cands2.size(); ++j) {
      const auto& a = cands1[i];
      const auto& b = cands2[j];
      if (a.contig_id != b.contig_id || a.reverse == b.reverse) continue;
      const std::int64_t insert = std::abs(a.pos - b.pos) +
                                  static_cast<std::int64_t>(
                                      pair.first.sequence.size());
      if (static_cast<double>(insert) > max_insert) continue;
      const double z = (static_cast<double>(insert) - options_.insert_mean) /
                       options_.insert_sd;
      const double score =
          static_cast<double>(a.score + b.score) - 0.5 * z * z;
      if (score > best_pair_score) {
        best_pair_score = score;
        best_i = static_cast<int>(i);
        best_j = static_cast<int>(j);
      }
    }
  }

  AlignmentCandidate c1 = cands1.empty() ? AlignmentCandidate{} : cands1[0];
  AlignmentCandidate c2 = cands2.empty() ? AlignmentCandidate{} : cands2[0];
  bool proper = false;
  if (best_i >= 0) {
    c1 = cands1[static_cast<std::size_t>(best_i)];
    c2 = cands2[static_cast<std::size_t>(best_j)];
    proper = true;
  } else {
    // Mate rescue: anchor on whichever mate aligned and search the insert
    // window for the other.
    if (c1.contig_id >= 0 && c2.contig_id < 0) {
      const AlignmentCandidate r =
          rescue(pair.second.sequence, c1.contig_id, c1.pos, !c1.reverse);
      if (r.contig_id >= 0) {
        c2 = r;
        proper = true;
      }
    } else if (c2.contig_id >= 0 && c1.contig_id < 0) {
      const AlignmentCandidate r =
          rescue(pair.first.sequence, c2.contig_id, c2.pos, !c2.reverse);
      if (r.contig_id >= 0) {
        c1 = r;
        proper = true;
      }
    }
  }

  SamRecord r1 = to_record(pair.first, c1);
  SamRecord r2 = to_record(pair.second, c2);
  const auto perfect1 = static_cast<std::int32_t>(
      pair.first.sequence.size() * options_.scoring.match);
  const auto perfect2 = static_cast<std::int32_t>(
      pair.second.sequence.size() * options_.scoring.match);
  r1.mapq = mapq_from_scores(
      c1.score, cands1.size() > 1 ? cands1[1].score : 0, perfect1);
  r2.mapq = mapq_from_scores(
      c2.score, cands2.size() > 1 ? cands2[1].score : 0, perfect2);

  // Pairing flags and mate info.
  r1.flag |= SamFlags::kPaired | SamFlags::kFirstOfPair;
  r2.flag |= SamFlags::kPaired | SamFlags::kSecondOfPair;
  if (r2.is_unmapped()) r1.flag |= SamFlags::kMateUnmapped;
  if (r1.is_unmapped()) r2.flag |= SamFlags::kMateUnmapped;
  if (r2.is_reverse()) r1.flag |= SamFlags::kMateReverse;
  if (r1.is_reverse()) r2.flag |= SamFlags::kMateReverse;
  if (proper && !r1.is_unmapped() && !r2.is_unmapped()) {
    r1.flag |= SamFlags::kProperPair;
    r2.flag |= SamFlags::kProperPair;
  }
  r1.mate_contig_id = r2.contig_id;
  r1.mate_pos = r2.pos;
  r2.mate_contig_id = r1.contig_id;
  r2.mate_pos = r1.pos;
  if (!r1.is_unmapped() && !r2.is_unmapped() &&
      r1.contig_id == r2.contig_id) {
    const std::int64_t lo = std::min(r1.pos, r2.pos);
    const std::int64_t hi = std::max(r1.end_pos(), r2.end_pos());
    const std::int64_t span = hi - lo;
    r1.tlen = r1.pos <= r2.pos ? span : -span;
    r2.tlen = -r1.tlen;
  }
  return {std::move(r1), std::move(r2)};
}

}  // namespace gpf::align
