#include "align/hash_aligner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace gpf::align {
namespace {

constexpr std::uint64_t kNoKmer = ~0ULL;

std::uint64_t encode_base(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'T':
      return 3;
    default:
      return kNoKmer;
  }
}

std::string revcomp(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    switch (seq[seq.size() - 1 - i]) {
      case 'A':
        out[i] = 'T';
        break;
      case 'T':
        out[i] = 'A';
        break;
      case 'C':
        out[i] = 'G';
        break;
      case 'G':
        out[i] = 'C';
        break;
      default:
        out[i] = 'N';
    }
  }
  return out;
}

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint64_t HashAligner::kmer_at(std::string_view seq,
                                   std::size_t offset) const {
  if (offset + static_cast<std::size_t>(options_.kmer_length) > seq.size()) {
    return kNoKmer;
  }
  std::uint64_t k = 0;
  for (int i = 0; i < options_.kmer_length; ++i) {
    const std::uint64_t b = encode_base(seq[offset + i]);
    if (b == kNoKmer) return kNoKmer;
    k = (k << 2) | b;
  }
  return k;
}

HashAligner::HashAligner(const Reference& reference,
                         HashAlignerOptions options)
    : reference_(&reference), options_(options) {
  if (options_.kmer_length < 8 || options_.kmer_length > 31) {
    throw std::invalid_argument("kmer_length must be in [8, 31]");
  }
  // Pass 1: collect (kmer, location) for every stride-th position.
  struct Entry {
    std::uint64_t kmer;
    Location loc;
  };
  std::vector<Entry> entries;
  for (std::size_t cid = 0; cid < reference.contig_count(); ++cid) {
    const std::string& seq =
        reference.contig(static_cast<std::int32_t>(cid)).sequence;
    for (std::size_t pos = 0;
         pos + static_cast<std::size_t>(options_.kmer_length) <= seq.size();
         pos += static_cast<std::size_t>(options_.index_stride)) {
      const std::uint64_t k = kmer_at(seq, pos);
      if (k == kNoKmer) continue;
      entries.push_back({k, {static_cast<std::int32_t>(cid),
                             static_cast<std::int64_t>(pos)}});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.kmer < b.kmer; });

  // Pass 2: open-addressing table over distinct kmers.
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].kmer != entries[i - 1].kmer) ++distinct;
  }
  std::size_t table = 16;
  while (table < distinct * 2) table <<= 1;
  keys_.assign(table, kEmpty);
  buckets_.assign(table, {0, 0});
  locations_.reserve(entries.size());

  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    while (j < entries.size() && entries[j].kmer == entries[i].kmer) ++j;
    const auto begin = static_cast<std::uint32_t>(locations_.size());
    // Repetitive kmers are dropped entirely (SNAP's overflow policy).
    if (j - i <= options_.max_hits) {
      for (std::size_t e = i; e < j; ++e) {
        locations_.push_back(entries[e].loc);
      }
      const auto end = static_cast<std::uint32_t>(locations_.size());
      std::size_t slot = mix(entries[i].kmer) & (table - 1);
      while (keys_[slot] != kEmpty) slot = (slot + 1) & (table - 1);
      keys_[slot] = entries[i].kmer;
      buckets_[slot] = {begin, end};
    }
    i = j;
  }
}

std::vector<HashAligner::Location> HashAligner::lookup(
    std::uint64_t kmer) const {
  std::vector<Location> out;
  if (kmer == kNoKmer || keys_.empty()) return out;
  std::size_t slot = mix(kmer) & (keys_.size() - 1);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == kmer) {
      const auto [b, e] = buckets_[slot];
      out.assign(locations_.begin() + b, locations_.begin() + e);
      return out;
    }
    slot = (slot + 1) & (keys_.size() - 1);
  }
  return out;
}

std::size_t HashAligner::index_bytes() const {
  return keys_.size() * sizeof(std::uint64_t) +
         buckets_.size() * sizeof(buckets_[0]) +
         locations_.size() * sizeof(Location);
}

SamRecord HashAligner::align(const FastqRecord& read) const {
  struct Vote {
    int count = 0;
  };
  // diagonal voting per (strand, contig, diag bucket)
  std::map<std::tuple<bool, std::int32_t, std::int64_t>, Vote> votes;

  const std::string rc = revcomp(read.sequence);
  const int len = static_cast<int>(read.sequence.size());
  // Odd stride so consecutive seeds alternate position parity — with a
  // strided index an even stride would make whole reads invisible.
  const int stride = std::max(
      1,
      ((len - options_.kmer_length) / std::max(1, options_.seeds_per_read)) |
          1);
  for (int strand = 0; strand < 2; ++strand) {
    const std::string& seq = strand == 0 ? read.sequence : rc;
    for (int off = 0; off + options_.kmer_length <= len; off += stride) {
      const auto locs =
          lookup(kmer_at(seq, static_cast<std::size_t>(off)));
      if (locs.size() > options_.max_hits) continue;
      for (const auto& loc : locs) {
        const std::int64_t diag = loc.pos - off;
        ++votes[{strand == 1, loc.contig_id, diag / 8}].count;
      }
    }
  }

  // Extend the top-voted diagonal.
  int best_votes = 0;
  std::tuple<bool, std::int32_t, std::int64_t> best_key{};
  for (const auto& [key, v] : votes) {
    if (v.count > best_votes) {
      best_votes = v.count;
      best_key = key;
    }
  }

  SamRecord rec;
  rec.qname = read.name;
  rec.sequence = read.sequence;
  rec.quality = read.quality;
  if (best_votes == 0) {
    rec.flag = SamFlags::kUnmapped;
    return rec;
  }
  const auto [reverse, contig_id, diag_bucket] = best_key;
  const std::int64_t diag = diag_bucket * 8;
  constexpr int kFlank = 24;
  const std::string_view window = reference_->slice(
      contig_id, diag - kFlank, len + 2 * kFlank + 8);
  const std::string& oriented = reverse ? rc : read.sequence;
  const AlignmentResult r =
      glocal(oriented, window, options_.scoring, options_.band);
  if (r.cigar.empty() || r.score < options_.min_score) {
    rec.flag = SamFlags::kUnmapped;
    return rec;
  }
  rec.contig_id = contig_id;
  rec.pos = std::max<std::int64_t>(0, diag - kFlank) + r.ref_start;
  Cigar cigar;
  if (r.query_start > 0) {
    cigar.push_back({CigarOp::kSoftClip,
                     static_cast<std::uint32_t>(r.query_start)});
  }
  cigar.insert(cigar.end(), r.cigar.begin(), r.cigar.end());
  const auto tail = static_cast<std::int32_t>(oriented.size()) - r.query_end;
  if (tail > 0) {
    cigar.push_back({CigarOp::kSoftClip, static_cast<std::uint32_t>(tail)});
  }
  rec.cigar = std::move(cigar);
  if (reverse) {
    rec.flag |= SamFlags::kReverse;
    rec.sequence = rc;
    rec.quality.assign(read.quality.rbegin(), read.quality.rend());
  }
  rec.mapq = static_cast<std::uint8_t>(
      std::clamp(best_votes * 10, 10, 60));
  return rec;
}

}  // namespace gpf::align
