#include "align/smith_waterman.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gpf::align {
namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

std::int32_t substitution(char a, char b, const ScoringScheme& s) {
  if (a == 'N' || b == 'N') return s.n_score;
  return a == b ? s.match : s.mismatch;
}

/// Traceback direction codes for the H matrix.
enum : std::uint8_t {
  kStop = 0,
  kDiag = 1,
  kFromE = 2,  // deletion run ends here
  kFromF = 3,  // insertion run ends here
};

// --- production kernel ------------------------------------------------------
//
// Banded Gotoh DP with O(band * (m + n)) memory instead of six full
// (m+1) x (n+1) matrices: H/E/F live in row pairs, and the traceback state
// (direction + gap-extension flags) is packed into one byte per banded cell.
// All row and cell buffers come from a per-thread workspace whose capacity
// survives across calls, so the steady-state kernel performs no heap
// allocation.

/// Packed traceback cell: direction in the low 2 bits, gap-extension flags
/// above.  Zero means "stop, no extensions", matching the reference DP's
/// initialization, so out-of-band cells read as kStop.
constexpr std::uint8_t kDirMask = 0x3;
constexpr std::uint8_t kEExtBit = 0x4;
constexpr std::uint8_t kFExtBit = 0x8;

struct SwWorkspace {
  std::vector<std::int32_t> h_a, h_b;  // H row pair
  std::vector<std::int32_t> f_a, f_b;  // F row pair
  std::vector<std::int32_t> e_row;     // E needs only the current row
  std::vector<std::uint8_t> cells;     // banded packed traceback cells
};

thread_local SwWorkspace tls_sw_workspace;

struct BandedDp {
  std::string_view query, ref;
  ScoringScheme scoring;
  bool local = false;

  std::size_t m = 0, n = 0;
  std::int64_t lo_w = 0, hi_w = 0;  // band half-widths (see run())
  std::size_t width = 0;            // banded cells per row
  SwWorkspace& ws;

  // Best cell tracking for local mode (same scan order as the reference
  // full-matrix sweep: i ascending, then j ascending, strict improvement).
  std::int32_t best = 0;
  std::size_t best_i = 0, best_j = 0;
  std::int32_t h_mn = kNegInf;  // H(m, n) for the global traceback

  BandedDp(std::string_view q, std::string_view r, const ScoringScheme& s,
           int band, bool local_mode)
      : query(q), ref(r), scoring(s), local(local_mode),
        ws(tls_sw_workspace) {
    m = query.size();
    n = ref.size();
    // Band bounds: keep |j - i| within band, widened by the length
    // difference so a global path always fits.
    const std::int64_t diff =
        static_cast<std::int64_t>(n) - static_cast<std::int64_t>(m);
    lo_w = band + std::max<std::int64_t>(0, -diff);
    hi_w = band + std::max<std::int64_t>(0, diff);
    width = static_cast<std::size_t>(lo_w + hi_w + 1);
  }

  std::size_t jlo(std::size_t i) const {
    return static_cast<std::size_t>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(i) - lo_w));
  }
  std::size_t jhi(std::size_t i) const {
    return static_cast<std::size_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(n), static_cast<std::int64_t>(i) + hi_w));
  }
  /// First ref column stored for row i's banded cells.
  std::size_t origin(std::size_t i) const {
    const std::int64_t o = static_cast<std::int64_t>(i) - lo_w;
    return o > 0 ? static_cast<std::size_t>(o) : 0;
  }

  /// Traceback view of cell (i, j): boundary rows/columns are synthesized
  /// (their direction pattern is fixed by the DP initialization), in-band
  /// cells come from storage, anything else reads as kStop — exactly the
  /// reference DP's untouched-cell state.
  std::uint8_t cell(std::size_t i, std::size_t j) const {
    if (i == 0 || j == 0) {
      if (local || (i == 0 && j == 0)) return kStop;
      if (i == 0) return kFromE | kEExtBit;
      return kFromF | kFExtBit;
    }
    if (j < jlo(i) || j > jhi(i)) return kStop;
    return ws.cells[(i - 1) * width + (j - origin(i))];
  }

  void run() {
    // Row buffers are indexed 0..n+1: one extra slot holds the right-hand
    // kNegInf sentinel the next row reads just past this row's band.
    ws.h_a.assign(n + 2, kNegInf);
    ws.h_b.assign(n + 2, kNegInf);
    ws.f_a.assign(n + 2, kNegInf);
    ws.f_b.assign(n + 2, kNegInf);
    ws.e_row.assign(n + 2, kNegInf);
    ws.cells.assign(m * width, 0);

    std::int32_t* h_prev = ws.h_a.data();
    std::int32_t* h_cur = ws.h_b.data();
    std::int32_t* f_prev = ws.f_a.data();
    std::int32_t* f_cur = ws.f_b.data();
    std::int32_t* e_cur = ws.e_row.data();

    // Row 0 boundary.
    h_prev[0] = 0;
    if (!local) {
      for (std::size_t j = 1; j <= n; ++j) {
        h_prev[j] = scoring.gap_open +
                    scoring.gap_extend * static_cast<std::int32_t>(j - 1);
      }
    } else {
      for (std::size_t j = 1; j <= n; ++j) h_prev[j] = 0;
    }

    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t jl = jlo(i);
      const std::size_t jh = jhi(i);
      // Left boundary of this row: column 0 carries the gap-initialized
      // (global) or zero (local) value; a band edge past column 0 reads as
      // kNegInf, like the reference DP's untouched cells.
      if (jl == 1) {
        h_cur[0] = local ? 0
                         : scoring.gap_open +
                               scoring.gap_extend *
                                   static_cast<std::int32_t>(i - 1);
        f_cur[0] = local ? kNegInf : h_cur[0];
        e_cur[0] = kNegInf;
      } else {
        h_cur[jl - 1] = kNegInf;
        f_cur[jl - 1] = kNegInf;
        e_cur[jl - 1] = kNegInf;
      }

      const char qc = query[i - 1];
      const std::size_t org = origin(i);
      std::uint8_t* row_cells = ws.cells.data() + (i - 1) * width;
      for (std::size_t j = jl; j <= jh; ++j) {
        // E: gap in query (deletion), consumes ref.
        const std::int32_t e_open = h_cur[j - 1] + scoring.gap_open;
        const std::int32_t e_extend = e_cur[j - 1] + scoring.gap_extend;
        const std::int32_t e_val = std::max(e_open, e_extend);
        e_cur[j] = e_val;
        // F: gap in ref (insertion), consumes query.
        const std::int32_t f_open = h_prev[j] + scoring.gap_open;
        const std::int32_t f_extend = f_prev[j] + scoring.gap_extend;
        const std::int32_t f_val = std::max(f_open, f_extend);
        f_cur[j] = f_val;
        // H.
        const std::int32_t diag =
            h_prev[j - 1] + substitution(qc, ref[j - 1], scoring);
        std::int32_t best_h = diag;
        std::uint8_t dir = kDiag;
        if (e_val > best_h) {
          best_h = e_val;
          dir = kFromE;
        }
        if (f_val > best_h) {
          best_h = f_val;
          dir = kFromF;
        }
        if (local && best_h <= 0) {
          best_h = 0;
          dir = kStop;
        }
        h_cur[j] = best_h;
        row_cells[j - org] = static_cast<std::uint8_t>(
            dir | (e_extend > e_open ? kEExtBit : 0) |
            (f_extend > f_open ? kFExtBit : 0));
        if (local && best_h > best) {
          best = best_h;
          best_i = i;
          best_j = j;
        }
      }
      // Right sentinel: the next row may read one column past this band.
      h_cur[jh + 1] = kNegInf;
      f_cur[jh + 1] = kNegInf;
      std::swap(h_prev, h_cur);
      std::swap(f_prev, f_cur);
    }
    // After the final swap h_prev holds row m.
    if (n >= jlo(m) && n <= jhi(m)) h_mn = h_prev[n];
  }

  AlignmentResult traceback(std::size_t i, std::size_t j,
                            std::int32_t score) const {
    AlignmentResult out;
    out.score = score;
    out.query_end = static_cast<std::int32_t>(i);
    out.ref_end = static_cast<std::int32_t>(j);

    Cigar reversed;
    auto push = [&reversed](CigarOp op, std::uint32_t len) {
      if (!reversed.empty() && reversed.back().op == op) {
        reversed.back().length += len;
      } else {
        reversed.push_back({op, len});
      }
    };

    while (i > 0 || j > 0) {
      const std::uint8_t dir = cell(i, j) & kDirMask;
      if (dir == kStop) break;
      if (dir == kDiag) {
        push(CigarOp::kMatch, 1);
        if (query[i - 1] != ref[j - 1]) ++out.mismatches;
        --i;
        --j;
      } else if (dir == kFromE) {
        // Walk the deletion run.
        while (j > 0) {
          push(CigarOp::kDeletion, 1);
          const bool extended = (cell(i, j) & kEExtBit) != 0;
          --j;
          if (!extended) break;
        }
      } else {  // kFromF
        while (i > 0) {
          push(CigarOp::kInsertion, 1);
          const bool extended = (cell(i, j) & kFExtBit) != 0;
          --i;
          if (!extended) break;
        }
      }
    }
    out.query_start = static_cast<std::int32_t>(i);
    out.ref_start = static_cast<std::int32_t>(j);
    out.cigar.assign(reversed.rbegin(), reversed.rend());
    return out;
  }
};

// --- reference kernel -------------------------------------------------------
//
// The original full-matrix Gotoh DP, kept verbatim so tests can assert the
// banded-workspace kernel above is result-identical (see
// detail::banded_global_reference / detail::glocal_reference).

/// Gotoh DP shared by both reference entry points.  `local` toggles the
/// 0-floor and free ends; for global mode, boundaries are gap-initialized
/// and the traceback starts at (m, n).
struct Dp {
  std::string_view query, ref;
  ScoringScheme scoring;
  int band;
  bool local;

  std::size_t m, n;
  // Row-major (m+1) x (n+1).
  std::vector<std::int32_t> h, e, f;
  std::vector<std::uint8_t> h_dir;
  std::vector<std::uint8_t> e_ext, f_ext;  // 1 = came from gap extension

  std::size_t idx(std::size_t i, std::size_t j) const {
    return i * (n + 1) + j;
  }

  void run() {
    m = query.size();
    n = ref.size();
    const std::size_t cells = (m + 1) * (n + 1);
    h.assign(cells, kNegInf);
    e.assign(cells, kNegInf);
    f.assign(cells, kNegInf);
    h_dir.assign(cells, kStop);
    e_ext.assign(cells, 0);
    f_ext.assign(cells, 0);

    h[idx(0, 0)] = 0;
    if (!local) {
      for (std::size_t j = 1; j <= n; ++j) {
        h[idx(0, j)] = scoring.gap_open +
                       scoring.gap_extend * static_cast<std::int32_t>(j - 1);
        h_dir[idx(0, j)] = kFromE;
        e[idx(0, j)] = h[idx(0, j)];
        e_ext[idx(0, j)] = 1;
      }
      for (std::size_t i = 1; i <= m; ++i) {
        h[idx(i, 0)] = scoring.gap_open +
                       scoring.gap_extend * static_cast<std::int32_t>(i - 1);
        h_dir[idx(i, 0)] = kFromF;
        f[idx(i, 0)] = h[idx(i, 0)];
        f_ext[idx(i, 0)] = 1;
      }
    } else {
      for (std::size_t j = 1; j <= n; ++j) h[idx(0, j)] = 0;
      for (std::size_t i = 1; i <= m; ++i) h[idx(i, 0)] = 0;
    }

    // Band bounds: keep |j - i| within band, widened by the length
    // difference so a global path always fits.
    const std::int64_t diff = static_cast<std::int64_t>(n) -
                              static_cast<std::int64_t>(m);
    const std::int64_t lo_w = band + std::max<std::int64_t>(0, -diff);
    const std::int64_t hi_w = band + std::max<std::int64_t>(0, diff);

    for (std::size_t i = 1; i <= m; ++i) {
      const auto jlo = static_cast<std::size_t>(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(i) - lo_w));
      const auto jhi = static_cast<std::size_t>(std::min<std::int64_t>(
          static_cast<std::int64_t>(n), static_cast<std::int64_t>(i) + hi_w));
      for (std::size_t j = jlo; j <= jhi; ++j) {
        const std::size_t c = idx(i, j);
        // E: gap in query (deletion), consumes ref.
        const std::int32_t e_open = h[idx(i, j - 1)] + scoring.gap_open;
        const std::int32_t e_extend = e[idx(i, j - 1)] + scoring.gap_extend;
        e[c] = std::max(e_open, e_extend);
        e_ext[c] = e_extend > e_open ? 1 : 0;
        // F: gap in ref (insertion), consumes query.
        const std::int32_t f_open = h[idx(i - 1, j)] + scoring.gap_open;
        const std::int32_t f_extend = f[idx(i - 1, j)] + scoring.gap_extend;
        f[c] = std::max(f_open, f_extend);
        f_ext[c] = f_extend > f_open ? 1 : 0;
        // H.
        const std::int32_t diag =
            h[idx(i - 1, j - 1)] +
            substitution(query[i - 1], ref[j - 1], scoring);
        std::int32_t best = diag;
        std::uint8_t dir = kDiag;
        if (e[c] > best) {
          best = e[c];
          dir = kFromE;
        }
        if (f[c] > best) {
          best = f[c];
          dir = kFromF;
        }
        if (local && best <= 0) {
          best = 0;
          dir = kStop;
        }
        h[c] = best;
        h_dir[c] = dir;
      }
    }
  }

  AlignmentResult traceback(std::size_t i, std::size_t j) const {
    AlignmentResult out;
    out.score = h[idx(i, j)];
    out.query_end = static_cast<std::int32_t>(i);
    out.ref_end = static_cast<std::int32_t>(j);

    Cigar reversed;
    auto push = [&reversed](CigarOp op, std::uint32_t len) {
      if (!reversed.empty() && reversed.back().op == op) {
        reversed.back().length += len;
      } else {
        reversed.push_back({op, len});
      }
    };

    while (i > 0 || j > 0) {
      const std::size_t c = idx(i, j);
      const std::uint8_t dir = h_dir[c];
      if (dir == kStop) break;
      if (dir == kDiag) {
        push(CigarOp::kMatch, 1);
        if (query[i - 1] != ref[j - 1]) ++out.mismatches;
        --i;
        --j;
      } else if (dir == kFromE) {
        // Walk the deletion run.
        while (j > 0) {
          push(CigarOp::kDeletion, 1);
          const bool extended = e_ext[idx(i, j)] != 0;
          --j;
          if (!extended) break;
        }
      } else {  // kFromF
        while (i > 0) {
          push(CigarOp::kInsertion, 1);
          const bool extended = f_ext[idx(i, j)] != 0;
          --i;
          if (!extended) break;
        }
      }
    }
    out.query_start = static_cast<std::int32_t>(i);
    out.ref_start = static_cast<std::int32_t>(j);
    out.cigar.assign(reversed.rbegin(), reversed.rend());
    return out;
  }
};

}  // namespace

AlignmentResult banded_global(std::string_view query, std::string_view ref,
                              const ScoringScheme& scoring, int band) {
  if (query.empty() || ref.empty()) {
    throw std::invalid_argument("banded_global: empty input");
  }
  BandedDp dp(query, ref, scoring, band, /*local=*/false);
  dp.run();
  return dp.traceback(dp.m, dp.n, dp.h_mn);
}

AlignmentResult glocal(std::string_view query, std::string_view ref,
                       const ScoringScheme& scoring, int band) {
  if (query.empty() || ref.empty()) return {};
  BandedDp dp(query, ref, scoring, band, /*local=*/true);
  dp.run();
  if (dp.best <= 0) return {};
  return dp.traceback(dp.best_i, dp.best_j, dp.best);
}

namespace detail {

AlignmentResult banded_global_reference(std::string_view query,
                                        std::string_view ref,
                                        const ScoringScheme& scoring,
                                        int band) {
  if (query.empty() || ref.empty()) {
    throw std::invalid_argument("banded_global: empty input");
  }
  Dp dp{query, ref, scoring, band, /*local=*/false, 0, 0, {}, {}, {}, {}, {},
        {}};
  dp.run();
  return dp.traceback(dp.m, dp.n);
}

AlignmentResult glocal_reference(std::string_view query, std::string_view ref,
                                 const ScoringScheme& scoring, int band) {
  if (query.empty() || ref.empty()) return {};
  Dp dp{query, ref, scoring, band, /*local=*/true, 0, 0, {}, {}, {}, {}, {},
        {}};
  dp.run();
  // Find the best cell anywhere (true local optimum).
  std::int32_t best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= dp.m; ++i) {
    for (std::size_t j = 1; j <= dp.n; ++j) {
      if (dp.h[dp.idx(i, j)] > best) {
        best = dp.h[dp.idx(i, j)];
        bi = i;
        bj = j;
      }
    }
  }
  if (best <= 0) return {};
  return dp.traceback(bi, bj);
}

}  // namespace detail

}  // namespace gpf::align
