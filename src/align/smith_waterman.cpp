#include "align/smith_waterman.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gpf::align {
namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

std::int32_t substitution(char a, char b, const ScoringScheme& s) {
  if (a == 'N' || b == 'N') return s.n_score;
  return a == b ? s.match : s.mismatch;
}

/// Traceback direction codes for the H matrix.
enum : std::uint8_t {
  kStop = 0,
  kDiag = 1,
  kFromE = 2,  // deletion run ends here
  kFromF = 3,  // insertion run ends here
};

/// Gotoh DP shared by both entry points.  `local` toggles the 0-floor and
/// free ends; for global mode, boundaries are gap-initialized and the
/// traceback starts at (m, n).
struct Dp {
  std::string_view query, ref;
  ScoringScheme scoring;
  int band;
  bool local;

  std::size_t m, n;
  // Row-major (m+1) x (n+1).
  std::vector<std::int32_t> h, e, f;
  std::vector<std::uint8_t> h_dir;
  std::vector<std::uint8_t> e_ext, f_ext;  // 1 = came from gap extension

  std::size_t idx(std::size_t i, std::size_t j) const {
    return i * (n + 1) + j;
  }

  void run() {
    m = query.size();
    n = ref.size();
    const std::size_t cells = (m + 1) * (n + 1);
    h.assign(cells, kNegInf);
    e.assign(cells, kNegInf);
    f.assign(cells, kNegInf);
    h_dir.assign(cells, kStop);
    e_ext.assign(cells, 0);
    f_ext.assign(cells, 0);

    h[idx(0, 0)] = 0;
    if (!local) {
      for (std::size_t j = 1; j <= n; ++j) {
        h[idx(0, j)] = scoring.gap_open +
                       scoring.gap_extend * static_cast<std::int32_t>(j - 1);
        h_dir[idx(0, j)] = kFromE;
        e[idx(0, j)] = h[idx(0, j)];
        e_ext[idx(0, j)] = 1;
      }
      for (std::size_t i = 1; i <= m; ++i) {
        h[idx(i, 0)] = scoring.gap_open +
                       scoring.gap_extend * static_cast<std::int32_t>(i - 1);
        h_dir[idx(i, 0)] = kFromF;
        f[idx(i, 0)] = h[idx(i, 0)];
        f_ext[idx(i, 0)] = 1;
      }
    } else {
      for (std::size_t j = 1; j <= n; ++j) h[idx(0, j)] = 0;
      for (std::size_t i = 1; i <= m; ++i) h[idx(i, 0)] = 0;
    }

    // Band bounds: keep |j - i| within band, widened by the length
    // difference so a global path always fits.
    const std::int64_t diff = static_cast<std::int64_t>(n) -
                              static_cast<std::int64_t>(m);
    const std::int64_t lo_w = band + std::max<std::int64_t>(0, -diff);
    const std::int64_t hi_w = band + std::max<std::int64_t>(0, diff);

    for (std::size_t i = 1; i <= m; ++i) {
      const auto jlo = static_cast<std::size_t>(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(i) - lo_w));
      const auto jhi = static_cast<std::size_t>(std::min<std::int64_t>(
          static_cast<std::int64_t>(n), static_cast<std::int64_t>(i) + hi_w));
      for (std::size_t j = jlo; j <= jhi; ++j) {
        const std::size_t c = idx(i, j);
        // E: gap in query (deletion), consumes ref.
        const std::int32_t e_open = h[idx(i, j - 1)] + scoring.gap_open;
        const std::int32_t e_extend = e[idx(i, j - 1)] + scoring.gap_extend;
        e[c] = std::max(e_open, e_extend);
        e_ext[c] = e_extend > e_open ? 1 : 0;
        // F: gap in ref (insertion), consumes query.
        const std::int32_t f_open = h[idx(i - 1, j)] + scoring.gap_open;
        const std::int32_t f_extend = f[idx(i - 1, j)] + scoring.gap_extend;
        f[c] = std::max(f_open, f_extend);
        f_ext[c] = f_extend > f_open ? 1 : 0;
        // H.
        const std::int32_t diag =
            h[idx(i - 1, j - 1)] +
            substitution(query[i - 1], ref[j - 1], scoring);
        std::int32_t best = diag;
        std::uint8_t dir = kDiag;
        if (e[c] > best) {
          best = e[c];
          dir = kFromE;
        }
        if (f[c] > best) {
          best = f[c];
          dir = kFromF;
        }
        if (local && best <= 0) {
          best = 0;
          dir = kStop;
        }
        h[c] = best;
        h_dir[c] = dir;
      }
    }
  }

  AlignmentResult traceback(std::size_t i, std::size_t j) const {
    AlignmentResult out;
    out.score = h[idx(i, j)];
    out.query_end = static_cast<std::int32_t>(i);
    out.ref_end = static_cast<std::int32_t>(j);

    Cigar reversed;
    auto push = [&reversed](CigarOp op, std::uint32_t len) {
      if (!reversed.empty() && reversed.back().op == op) {
        reversed.back().length += len;
      } else {
        reversed.push_back({op, len});
      }
    };

    while (i > 0 || j > 0) {
      const std::size_t c = idx(i, j);
      const std::uint8_t dir = h_dir[c];
      if (dir == kStop) break;
      if (dir == kDiag) {
        push(CigarOp::kMatch, 1);
        if (query[i - 1] != ref[j - 1]) ++out.mismatches;
        --i;
        --j;
      } else if (dir == kFromE) {
        // Walk the deletion run.
        while (j > 0) {
          push(CigarOp::kDeletion, 1);
          const bool extended = e_ext[idx(i, j)] != 0;
          --j;
          if (!extended) break;
        }
      } else {  // kFromF
        while (i > 0) {
          push(CigarOp::kInsertion, 1);
          const bool extended = f_ext[idx(i, j)] != 0;
          --i;
          if (!extended) break;
        }
      }
    }
    out.query_start = static_cast<std::int32_t>(i);
    out.ref_start = static_cast<std::int32_t>(j);
    out.cigar.assign(reversed.rbegin(), reversed.rend());
    return out;
  }
};

}  // namespace

AlignmentResult banded_global(std::string_view query, std::string_view ref,
                              const ScoringScheme& scoring, int band) {
  if (query.empty() || ref.empty()) {
    throw std::invalid_argument("banded_global: empty input");
  }
  Dp dp{query, ref, scoring, band, /*local=*/false, 0, 0, {}, {}, {}, {}, {},
        {}};
  dp.run();
  return dp.traceback(dp.m, dp.n);
}

AlignmentResult glocal(std::string_view query, std::string_view ref,
                       const ScoringScheme& scoring, int band) {
  if (query.empty() || ref.empty()) return {};
  Dp dp{query, ref, scoring, band, /*local=*/true, 0, 0, {}, {}, {}, {}, {},
        {}};
  dp.run();
  // Find the best cell anywhere (true local optimum).
  std::int32_t best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= dp.m; ++i) {
    for (std::size_t j = 1; j <= dp.n; ++j) {
      if (dp.h[dp.idx(i, j)] > best) {
        best = dp.h[dp.idx(i, j)];
        bi = i;
        bj = j;
      }
    }
  }
  if (best <= 0) return {};
  return dp.traceback(bi, bj);
}

}  // namespace gpf::align
