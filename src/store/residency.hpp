// Memory-budgeted chunk residency: the eviction layer between scans and
// the on-disk chunks.
//
// Every open chunk charges its mapped size against a byte budget.  When
// an acquire would push the total over budget, unpinned chunks are
// evicted in LRU order until it fits (or nothing evictable remains — the
// budget bounds what the MANAGER retains, it never deadlocks a scan that
// legitimately needs more than the budget pinned at once).  Pinning is
// implicit: a chunk is pinned exactly while a caller holds the
// shared_ptr handle acquire() returned, so an in-flight column scan can
// never have its mapping unmapped underneath it — eviction only drops
// the manager's reference, and the last handle standing frees the bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "store/chunk.hpp"

namespace gpf::store {

struct ResidencyStats {
  std::size_t resident_chunks = 0;
  std::size_t resident_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class ResidencyManager {
 public:
  explicit ResidencyManager(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  /// Returns a pinned handle to the chunk at `path`, opening (mmap +
  /// footer validation) on miss.  Typed ChunkError exceptions from a bad
  /// chunk propagate; nothing is cached for a failed open.  May evict
  /// other, unpinned chunks to respect the budget.
  std::shared_ptr<const MappedChunk> acquire(const std::string& path);

  /// Forgets the cached mapping for `path` (e.g. after rewriting the
  /// file).  Outstanding handles stay valid; the next acquire re-opens.
  void drop(const std::string& path);

  std::size_t budget_bytes() const { return budget_bytes_; }
  ResidencyStats stats() const;

 private:
  /// Evicts unpinned chunks, LRU first, until resident bytes fit the
  /// budget.  Caller holds mu_.
  void evict_to_budget();

  mutable std::mutex mu_;
  std::size_t budget_bytes_;
  /// LRU order: front = least recently used.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<const MappedChunk> chunk;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gpf::store
