// The out-of-core chunk store: a directory of chunk files plus a
// memory-budgeted residency cache over them.
//
// Writing is atomic (temp file + rename + fsync via fs::atomic_write_file)
// so a crash mid-spill leaves either the previous chunk or the new one —
// never a torn file.  Torn files still occur in two sanctioned ways
// (write_torn_for_testing, and fault-injected spills that bypass the
// atomic path on purpose); the chunk trailer catches both at open time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "store/chunk.hpp"
#include "store/residency.hpp"

namespace gpf::store {

struct ChunkStoreConfig {
  /// Directory chunk files live in; created if absent.
  std::string directory;
  /// Byte budget for resident (mmap'd) chunks.
  std::size_t memory_budget = std::size_t{256} << 20;
};

/// Handle to one written chunk — enough to find and sanity-check it later
/// without opening the file.
struct ChunkRef {
  std::string path;
  std::uint64_t records = 0;
  std::size_t bytes = 0;
};

class ChunkStore {
 public:
  explicit ChunkStore(ChunkStoreConfig config);

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Encodes and atomically writes `data` as `<directory>/<name>.gpc`.
  ChunkRef write(const std::string& name, const ChunkData& data);

  /// Atomically writes an already-encoded chunk image.  `records` is
  /// carried into the returned ref for bookkeeping only — the file's own
  /// footer remains the source of truth.
  ChunkRef write_encoded(const std::string& name,
                         std::span<const std::uint8_t> encoded,
                         std::uint64_t records);

  /// Deliberately writes only the first `prefix_bytes` of the encoded
  /// image, in place and non-atomically — simulates a torn write for
  /// fault tests.  Returns the ref the full write WOULD have produced.
  ChunkRef write_torn_for_testing(const std::string& name,
                                  std::span<const std::uint8_t> encoded,
                                  std::uint64_t records,
                                  std::size_t prefix_bytes);

  /// Opens (or returns the resident mapping of) a chunk.  The handle pins
  /// the mapping for as long as the caller holds it.
  std::shared_ptr<const MappedChunk> open(const std::string& path) {
    return residency_.acquire(path);
  }

  /// The path write() would use for `name`.
  std::string chunk_path(const std::string& name) const;

  ResidencyManager& residency() { return residency_; }
  const ChunkStoreConfig& config() const { return config_; }

 private:
  ChunkStoreConfig config_;
  ResidencyManager residency_;
};

}  // namespace gpf::store
