// Read-only memory-mapped file: the zero-copy read edge of the chunk
// store.  Column scans hand out spans into the mapping, so reading a
// chunk costs page faults, not a read()+copy of the whole file — and the
// kernel's page cache, not the process heap, holds the cold bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace gpf::store {

/// RAII read-only mapping of a whole file.  Move-only; unmapped on
/// destruction.  Zero-length files map to an empty span.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only; throws ChunkIoError with the path and errno
  /// on any failure.
  static MappedFile open(const std::string& path);

  std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }
  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gpf::store
