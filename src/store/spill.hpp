// Out-of-core datasets: spill partitions to the chunk store under a
// memory budget and reload them on demand.
//
// SpilledDataset is the disk-backed sibling of SerializedDataset: spill()
// writes one chunk file per partition (an eager "<name>.spill" stage) and
// drops the live records; materialize() maps the chunks back and decodes
// ("<name>.load"), with the ResidencyManager keeping at most the memory
// budget's worth of chunk bytes mapped.  Both stages run on the
// fault-tolerant executor, so the failure story is lineage-shaped:
//
//  * Spill-side torn writes (injected kTornWrite/kTruncateFooter rules, or
//    a genuine crash under a non-atomic writer) are caught by the
//    post-write footer validation; the failed attempt is retried and the
//    retry REWRITES the chunk from the still-live input partition — a
//    literal lineage recompute.
//  * Load-side corruption (injected per-column bit flips, or real at-rest
//    damage) fails the column checksum with ChunkCorruptionError; the
//    retry re-reads the pristine mmap bytes.  Damage that persists across
//    the retry budget surfaces as a typed StageFailure — never a silently
//    short or wrong decode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/checksum.hpp"
#include "engine/dataset.hpp"
#include "store/chunk_store.hpp"

namespace gpf::store {

/// A chunk's columns resolved to byte spans — validated (and possibly
/// fault-injected) before a ChunkCodec sees them.
struct ChunkColumns {
  struct Column {
    std::string name;
    std::uint8_t encoding = 0;
    std::span<const std::uint8_t> bytes;
  };

  std::uint64_t records = 0;
  std::vector<Column> columns;

  std::span<const std::uint8_t> column(std::string_view name) const {
    for (const Column& c : columns) {
      if (c.name == name) return c.bytes;
    }
    throw ChunkFormatError("chunk has no column '" + std::string(name) + "'");
  }
};

/// Record <-> chunk translation hooks, the store-side analogue of
/// ShuffleCodec.  encode() need not set ChunkData::records; spill()
/// stamps the partition size itself.
template <typename T>
struct ChunkCodec {
  std::function<ChunkData(std::span<const T>)> encode;
  std::function<std::vector<T>(const ChunkColumns&)> decode;

  bool valid() const { return encode != nullptr && decode != nullptr; }
};

template <typename T>
class SpilledDataset {
 public:
  /// One ChunkRef per partition, in the engine's shared partition layout.
  using Chunks = std::vector<std::vector<ChunkRef>>;

  SpilledDataset() = default;

  /// Writes every partition of `dataset` as a chunk in `store`; recorded
  /// as a "<name>.spill" stage.  Each chunk is validated (footer re-opened
  /// and record count checked) before its task succeeds, so a torn write
  /// can never be mistaken for a completed spill.
  static SpilledDataset spill(const engine::Dataset<T>& dataset,
                              ChunkCodec<T> codec, ChunkStore& store,
                              const std::string& name) {
    if (!codec.valid()) {
      throw std::invalid_argument("spill: codec required");
    }
    SpilledDataset out;
    out.engine_ = &dataset.engine();
    out.store_ = &store;
    out.codec_ = std::make_shared<ChunkCodec<T>>(std::move(codec));
    const std::string stage_name = name + ".spill";
    auto refs = dataset.template map_partitions_ctx<ChunkRef>(
        stage_name,
        [codec = out.codec_, store = out.store_, engine = out.engine_,
         stage_name, name](const engine::TaskContext& ctx,
                           const std::vector<T>& part) {
          ChunkData data =
              codec->encode(std::span<const T>(part.data(), part.size()));
          data.records = part.size();
          std::vector<std::uint8_t> buf = engine->buffer_pool().acquire();
          encode_chunk_into(data, buf);

          const std::string chunk_name =
              name + ".part" + std::to_string(ctx.index);
          engine::FaultInjector* injector = engine->fault_injector();
          std::optional<std::size_t> torn;
          if (injector != nullptr) {
            torn = injector->damaged_write_size(stage_name, ctx.ordinal,
                                                ctx.index, ctx.attempt,
                                                buf.size());
          }
          const ChunkRef ref =
              torn ? store->write_torn_for_testing(chunk_name, buf,
                                                   part.size(), *torn)
                   : store->write_encoded(chunk_name, buf, part.size());
          engine->buffer_pool().release(std::move(buf));

          // Post-write validation: re-open through the real read path.  A
          // torn or truncated file fails the trailer/footer checks here,
          // the attempt fails, and the executor's retry rewrites the chunk
          // from the still-live input partition (lineage recompute).
          const auto chunk = store->open(ref.path);
          if (chunk->view().records() != part.size()) {
            throw ChunkCorruptionError(
                ref.path + ": footer records " +
                std::to_string(chunk->view().records()) + ", wrote " +
                std::to_string(part.size()));
          }
          return std::vector<ChunkRef>{ref};
        });
    out.chunks_ = refs.shared_partitions();
    return out;
  }

  std::size_t partition_count() const { return chunks_ ? chunks_->size() : 0; }

  /// Total bytes on disk across all chunks.
  std::size_t disk_bytes() const {
    if (!chunks_) return 0;
    std::size_t total = 0;
    for (const auto& part : *chunks_) {
      for (const ChunkRef& ref : part) total += ref.bytes;
    }
    return total;
  }

  /// The chunk written for partition `i`.
  const ChunkRef& chunk(std::size_t i) const { return (*chunks_)[i].at(0); }

  ChunkStore& chunk_store() const { return *store_; }

  /// Reloads the records as a live Dataset; recorded as a "<name>.load"
  /// stage.  Chunks are mapped through the store's residency manager (so
  /// at most the memory budget stays resident), every column is
  /// checksum-verified before decode, and the decoded record count is
  /// checked against the footer.
  engine::Dataset<T> materialize(const std::string& name) const {
    if (!chunks_) throw std::logic_error("materialize: empty");
    const std::string stage_name = name + ".load";
    engine::Dataset<ChunkRef> refs(engine_, chunks_);
    return refs.template map_partitions_ctx<T>(
        stage_name,
        [codec = codec_, store = store_, engine = engine_, stage_name](
            const engine::TaskContext& ctx,
            const std::vector<ChunkRef>& part) {
          const ChunkRef& ref = part.at(0);
          // The handle pins the mapping for the duration of the decode.
          const auto chunk = store->open(ref.path);
          const ChunkView& view = chunk->view();
          engine::FaultInjector* injector = engine->fault_injector();

          ChunkColumns cols;
          cols.records = view.records();
          // Injected corruption lands on copies; the mmap'd bytes stay
          // pristine so the retry can succeed (same contract as shuffle
          // blocks).  Copies live here until decode is done.
          std::vector<std::vector<std::uint8_t>> corrupted;
          for (std::size_t c = 0; c < view.columns().size(); ++c) {
            const ColumnDesc& desc = view.columns()[c];
            std::span<const std::uint8_t> bytes = view.column_raw(desc);
            if (injector != nullptr) {
              auto damaged = injector->corrupted_copy(
                  stage_name, ctx.ordinal, ctx.index, /*block=*/c,
                  ctx.attempt, bytes);
              if (damaged) {
                corrupted.push_back(std::move(*damaged));
                bytes = std::span<const std::uint8_t>(
                    corrupted.back().data(), corrupted.back().size());
              }
            }
            if (fnv1a64(bytes) != desc.checksum) {
              throw ChunkCorruptionError("column '" + desc.name +
                                         "' of chunk " + ref.path +
                                         " failed its checksum");
            }
            cols.columns.push_back({desc.name, desc.encoding, bytes});
          }

          auto records = codec->decode(cols);
          if (records.size() != view.records()) {
            throw ChunkCorruptionError(
                ref.path + ": decoded " + std::to_string(records.size()) +
                " records, footer says " + std::to_string(view.records()));
          }
          return records;
        });
  }

 private:
  engine::Engine* engine_ = nullptr;
  ChunkStore* store_ = nullptr;
  std::shared_ptr<ChunkCodec<T>> codec_;
  std::shared_ptr<Chunks> chunks_;
};

}  // namespace gpf::store
