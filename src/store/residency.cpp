#include "store/residency.hpp"

namespace gpf::store {

std::shared_ptr<const MappedChunk> ResidencyManager::acquire(
    const std::string& path) {
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
      // Touch: move to the MRU end.
      lru_.splice(lru_.end(), lru_, it->second.lru_it);
      ++hits_;
      return it->second.chunk;
    }
  }
  // Open outside the lock: mmap + footer parse can be slow, and a typed
  // failure must not poison the cache.
  std::shared_ptr<const MappedChunk> chunk = MappedChunk::open(path);
  std::lock_guard lock(mu_);
  ++misses_;
  const auto it = entries_.find(path);
  if (it != entries_.end()) {
    // A concurrent acquire won the race; use its entry and let ours die.
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
    return it->second.chunk;
  }
  lru_.push_back(path);
  entries_[path] = Entry{chunk, std::prev(lru_.end())};
  resident_bytes_ += chunk->bytes();
  evict_to_budget();
  return chunk;
}

void ResidencyManager::drop(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.chunk->bytes();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ResidencyManager::evict_to_budget() {
  auto it = lru_.begin();
  while (resident_bytes_ > budget_bytes_ && it != lru_.end()) {
    const auto entry = entries_.find(*it);
    // Pinned chunks (a caller still holds the handle) are skipped: the
    // budget governs retention, it cannot revoke an in-flight scan.
    if (entry->second.chunk.use_count() > 1) {
      ++it;
      continue;
    }
    resident_bytes_ -= entry->second.chunk->bytes();
    entries_.erase(entry);
    it = lru_.erase(it);
    ++evictions_;
  }
}

ResidencyStats ResidencyManager::stats() const {
  std::lock_guard lock(mu_);
  ResidencyStats s;
  s.resident_chunks = entries_.size();
  s.resident_bytes = resident_bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

}  // namespace gpf::store
