#include "store/fastq_chunk.hpp"

#include <stdexcept>
#include <utility>

namespace gpf::store {

ChunkData encode_fastq_chunk(std::span<const FastqRecord> records) {
  FastqColumns cols = encode_fastq_columns(records);
  ChunkData data;
  data.records = cols.records;
  data.columns.reserve(4);
  data.columns.push_back(
      {"name", kColumnEncodingRaw, std::move(cols.names)});
  data.columns.push_back({"len", kColumnEncodingRaw, std::move(cols.lens)});
  data.columns.push_back(
      {"seq", kColumnEncodingPacked2, std::move(cols.seq)});
  data.columns.push_back(
      {"qual", kColumnEncodingQualHuff, std::move(cols.qual)});
  return data;
}

std::vector<FastqRecord> decode_fastq_chunk(const ChunkColumns& columns) {
  FastqColumnsView view;
  view.records = columns.records;
  view.names = columns.column("name");
  view.lens = columns.column("len");
  view.seq = columns.column("seq");
  view.qual = columns.column("qual");
  try {
    return decode_fastq_columns(view);
  } catch (const std::out_of_range& e) {
    // Checksums passed but the columns disagree with each other — the
    // writer produced an inconsistent chunk.
    throw ChunkCorruptionError(std::string("FASTQ chunk columns are "
                                           "mutually inconsistent: ") +
                               e.what());
  }
}

ChunkCodec<FastqRecord> fastq_chunk_codec() {
  ChunkCodec<FastqRecord> codec;
  codec.encode = [](std::span<const FastqRecord> records) {
    return encode_fastq_chunk(records);
  };
  codec.decode = [](const ChunkColumns& columns) {
    return decode_fastq_chunk(columns);
  };
  return codec;
}

}  // namespace gpf::store
