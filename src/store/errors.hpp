// Typed error surface of the out-of-core chunk store.
//
// Every way a chunk can be bad maps to a distinct exception type, so
// callers (and tests) can tell "the disk/OS failed" from "the file is
// torn or not a chunk" from "the bytes are there but damaged".  The
// explicit contract, mirrored by the format tests: a torn write,
// truncated footer, or flipped byte is ALWAYS a typed error — never a
// silently-short decode.
#pragma once

#include <stdexcept>
#include <string>

namespace gpf::store {

/// Base of every chunk-store error.
class ChunkError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The OS said no: open/stat/mmap/write failures, with errno context.
class ChunkIoError : public ChunkError {
 public:
  using ChunkError::ChunkError;
};

/// The bytes do not parse as a chunk: missing/mismatched end magic (torn
/// write or foreign file), truncated footer, out-of-range column extents.
class ChunkFormatError : public ChunkError {
 public:
  using ChunkError::ChunkError;
};

/// The chunk parses but its content is damaged: a footer or column block
/// whose checksum does not match, or a column that decodes to the wrong
/// record count.
class ChunkCorruptionError : public ChunkError {
 public:
  using ChunkError::ChunkError;
};

}  // namespace gpf::store
