#include "store/shuffle_chunk.hpp"

namespace gpf::store {

std::string shuffle_block_column(std::size_t reduce_part) {
  return "b" + std::to_string(reduce_part);
}

std::string shuffle_chunk_name(std::uint64_t shuffle, std::size_t map_task) {
  return "shuffle" + std::to_string(shuffle) + ".m" +
         std::to_string(map_task);
}

ChunkData make_shuffle_chunk(
    std::vector<std::vector<std::uint8_t>> blocks,
    const std::vector<engine::ShuffleBlockMeta>& meta) {
  ChunkData data;
  data.columns.reserve(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (b < meta.size()) data.records += meta[b].records;
    ColumnSpec col;
    col.name = shuffle_block_column(b);
    col.bytes = std::move(blocks[b]);
    data.columns.push_back(std::move(col));
  }
  return data;
}

}  // namespace gpf::store
