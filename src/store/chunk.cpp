#include "store/chunk.hpp"

#include <utility>

#include "common/bytes.hpp"
#include "common/checksum.hpp"

namespace gpf::store {

void encode_chunk_into(const ChunkData& data, std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  std::vector<ColumnDesc> descs;
  descs.reserve(data.columns.size());
  for (const ColumnSpec& col : data.columns) {
    ColumnDesc d;
    d.name = col.name;
    d.encoding = col.encoding;
    d.offset = w.size();
    d.size = col.bytes.size();
    d.checksum = fnv1a64(
        std::span<const std::uint8_t>(col.bytes.data(), col.bytes.size()));
    w.raw(std::span<const std::uint8_t>(col.bytes.data(), col.bytes.size()));
    descs.push_back(std::move(d));
  }

  ByteWriter footer;
  footer.u32(kChunkVersion);
  footer.uvarint(data.records);
  footer.uvarint(descs.size());
  for (const ColumnDesc& d : descs) {
    footer.str(d.name);
    footer.u8(d.encoding);
    footer.uvarint(d.offset);
    footer.uvarint(d.size);
    footer.u64(d.checksum);
  }
  const std::vector<std::uint8_t>& blob = footer.bytes();
  w.raw(std::span<const std::uint8_t>(blob.data(), blob.size()));
  w.u64(fnv1a64(std::span<const std::uint8_t>(blob.data(), blob.size())));
  w.u32(static_cast<std::uint32_t>(blob.size()));
  w.u64(kChunkMagic);
  out = w.take();
}

std::vector<std::uint8_t> encode_chunk(const ChunkData& data) {
  std::vector<std::uint8_t> out;
  encode_chunk_into(data, out);
  return out;
}

ChunkView ChunkView::parse(std::span<const std::uint8_t> file_bytes) {
  if (file_bytes.size() < kChunkTrailerBytes) {
    throw ChunkFormatError(
        "chunk truncated: " + std::to_string(file_bytes.size()) +
        " bytes, smaller than the trailer — torn write or not a chunk");
  }
  ByteReader trailer(file_bytes.subspan(file_bytes.size() -
                                        kChunkTrailerBytes));
  const std::uint64_t footer_checksum = trailer.u64();
  const std::uint32_t footer_size = trailer.u32();
  const std::uint64_t magic = trailer.u64();
  if (magic != kChunkMagic) {
    throw ChunkFormatError(
        "chunk end magic missing — torn write or not a chunk");
  }
  if (footer_size + kChunkTrailerBytes > file_bytes.size()) {
    throw ChunkFormatError(
        "chunk footer extends past the file (footer_size " +
        std::to_string(footer_size) + ", file " +
        std::to_string(file_bytes.size()) + " bytes)");
  }
  const std::span<const std::uint8_t> blob = file_bytes.subspan(
      file_bytes.size() - kChunkTrailerBytes - footer_size, footer_size);
  if (fnv1a64(blob) != footer_checksum) {
    throw ChunkCorruptionError("chunk footer failed its checksum");
  }

  ChunkView view;
  view.file_ = file_bytes;
  try {
    ByteReader r(blob);
    const std::uint32_t version = r.u32();
    if (version != kChunkVersion) {
      throw ChunkFormatError("unsupported chunk version " +
                             std::to_string(version));
    }
    view.records_ = r.uvarint();
    const std::uint64_t count = r.uvarint();
    view.columns_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ColumnDesc d;
      d.name = r.str();
      d.encoding = r.u8();
      d.offset = r.uvarint();
      d.size = r.uvarint();
      d.checksum = r.u64();
      if (d.offset + d.size >
          file_bytes.size() - kChunkTrailerBytes - footer_size) {
        throw ChunkFormatError("column '" + d.name +
                               "' extends past the chunk's column region");
      }
      view.columns_.push_back(std::move(d));
    }
  } catch (const std::out_of_range&) {
    // The footer checksum matched, so a short read here means the writer
    // produced an inconsistent footer — a format bug, not bit rot.
    throw ChunkFormatError("chunk footer blob is truncated");
  }
  return view;
}

const ColumnDesc* ChunkView::find(std::string_view name) const {
  for (const ColumnDesc& d : columns_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::span<const std::uint8_t> ChunkView::column_raw(
    const ColumnDesc& desc) const {
  return file_.subspan(desc.offset, desc.size);
}

std::span<const std::uint8_t> ChunkView::column(std::string_view name) const {
  const ColumnDesc* desc = find(name);
  if (desc == nullptr) {
    throw ChunkFormatError("chunk has no column '" + std::string(name) + "'");
  }
  const std::span<const std::uint8_t> bytes = column_raw(*desc);
  if (fnv1a64(bytes) != desc->checksum) {
    throw ChunkCorruptionError("column '" + std::string(name) +
                               "' failed its checksum");
  }
  return bytes;
}

std::shared_ptr<const MappedChunk> MappedChunk::open(const std::string& path) {
  auto chunk = std::make_shared<MappedChunk>();
  chunk->path_ = path;
  chunk->file_ = MappedFile::open(path);
  // Re-throw parse errors with the path prepended, preserving the type so
  // callers can still distinguish torn/format damage from corruption.
  try {
    chunk->view_ = ChunkView::parse(chunk->file_.bytes());
  } catch (const ChunkCorruptionError& e) {
    throw ChunkCorruptionError(path + ": " + e.what());
  } catch (const ChunkFormatError& e) {
    throw ChunkFormatError(path + ": " + e.what());
  }
  return chunk;
}

}  // namespace gpf::store
