#include "store/chunk_store.hpp"

#include <filesystem>

#include "common/fsio.hpp"

namespace gpf::store {

ChunkStore::ChunkStore(ChunkStoreConfig config)
    : config_(std::move(config)), residency_(config_.memory_budget) {
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) {
    throw ChunkIoError("cannot create chunk directory " + config_.directory +
                       ": " + ec.message());
  }
}

std::string ChunkStore::chunk_path(const std::string& name) const {
  return config_.directory + "/" + name + ".gpc";
}

ChunkRef ChunkStore::write(const std::string& name, const ChunkData& data) {
  return write_encoded(name, encode_chunk(data), data.records);
}

ChunkRef ChunkStore::write_encoded(const std::string& name,
                                   std::span<const std::uint8_t> encoded,
                                   std::uint64_t records) {
  ChunkRef ref{chunk_path(name), records, encoded.size()};
  try {
    fs::atomic_write_file(ref.path, encoded);
  } catch (const std::exception& e) {
    throw ChunkIoError(e.what());
  }
  // A rewrite must not leave a stale mapping of the old file resident.
  residency_.drop(ref.path);
  return ref;
}

ChunkRef ChunkStore::write_torn_for_testing(
    const std::string& name, std::span<const std::uint8_t> encoded,
    std::uint64_t records, std::size_t prefix_bytes) {
  ChunkRef ref{chunk_path(name), records, encoded.size()};
  fs::write_file_prefix_for_testing(ref.path, encoded, prefix_bytes);
  residency_.drop(ref.path);
  return ref;
}

}  // namespace gpf::store
