// Shuffle blocks as chunks: the codec the spilling backend uses to park
// one map task's shuffle output in the chunk store.
//
// One map task -> one chunk file; one reduce partition -> one column
// ("b0", "b1", ...).  Reusing the chunk format buys the shuffle path
// everything the store already guarantees: atomic writes, torn-write
// detection at open, and per-column FNV-1a fingerprints so a corrupted
// spill surfaces as a typed ChunkCorruptionError instead of a silently
// wrong decode.  (Dataset::shuffle still validates its own block
// checksum on top — the transport is never trusted.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/shuffle_transport.hpp"
#include "store/chunk.hpp"

namespace gpf::store {

/// Column name carrying the block for `reduce_part` ("b<reduce_part>").
std::string shuffle_block_column(std::size_t reduce_part);

/// Chunk name for one map task of one shuffle ("shuffle<id>.m<map>").
std::string shuffle_chunk_name(std::uint64_t shuffle, std::size_t map_task);

/// Packs one map task's encoded blocks (reduce-partition order) into a
/// writable chunk.  Blocks are moved in, not copied; `meta[i].records`
/// feeds the chunk's record count.
ChunkData make_shuffle_chunk(std::vector<std::vector<std::uint8_t>> blocks,
                             const std::vector<engine::ShuffleBlockMeta>& meta);

}  // namespace gpf::store
