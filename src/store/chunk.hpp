// The on-disk chunk format: fixed batches of records stored as named
// per-column blocks (AGD-style — seq, qual, name, len... each its own
// block) followed by a checksummed footer.
//
// Layout (all integers via ByteWriter, little-endian / LEB128):
//
//   [column 0 bytes][column 1 bytes]...[footer blob][trailer]
//
//   trailer (20 bytes, fixed, at EOF):
//     u64  footer_checksum      FNV-1a of the footer blob
//     u32  footer_size          bytes in the footer blob
//     u64  end_magic            kChunkMagic
//
//   footer blob:
//     u32      version (kChunkVersion)
//     uvarint  record_count
//     uvarint  column_count
//     per column: str name, u8 encoding, uvarint offset, uvarint size,
//                 u64 checksum (FNV-1a of the column bytes)
//
// The footer lives at the END of the file on purpose: a torn write (crash
// mid-write under a non-atomic writer, or an injected fault) produces a
// prefix of the file, which cannot contain a valid trailer — so tearing
// of ANY length is detected by the cheapest possible check, before any
// column byte is trusted.  Every block is additionally fingerprinted so a
// flipped byte anywhere surfaces as ChunkCorruptionError, never as a
// silently-wrong decode.  Writes go through fs::atomic_write_file, so a
// real crash leaves either the old chunk or the new one.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "store/errors.hpp"
#include "store/mmap_file.hpp"

namespace gpf::store {

/// "GPFCHNK1" interpreted as a little-endian u64.
inline constexpr std::uint64_t kChunkMagic = 0x314b4e4843465047ULL;
inline constexpr std::uint32_t kChunkVersion = 1;
/// Fixed trailer size: u64 checksum + u32 footer size + u64 magic.
inline constexpr std::size_t kChunkTrailerBytes = 20;

/// One column block to be written: name, an opaque encoding tag (the
/// codec's business, the format just round-trips it), and the bytes.
struct ColumnSpec {
  std::string name;
  std::uint8_t encoding = 0;
  std::vector<std::uint8_t> bytes;
};

/// Everything needed to write one chunk.
struct ChunkData {
  std::uint64_t records = 0;
  std::vector<ColumnSpec> columns;
};

/// Footer-side description of one stored column.
struct ColumnDesc {
  std::string name;
  std::uint8_t encoding = 0;
  std::size_t offset = 0;
  std::size_t size = 0;
  std::uint64_t checksum = 0;
};

/// Serializes a chunk to its complete file image.
std::vector<std::uint8_t> encode_chunk(const ChunkData& data);

/// encode_chunk into `out` (cleared, capacity reused) so spill stages can
/// recycle encode buffers through the engine's BufferPool.
void encode_chunk_into(const ChunkData& data, std::vector<std::uint8_t>& out);

/// A validated, zero-copy view over a chunk's file image.  parse()
/// verifies the trailer and the footer checksum; column bytes are
/// verified on access.  The view does not own the underlying bytes.
class ChunkView {
 public:
  /// Parses the footer.  Throws ChunkFormatError for anything that is not
  /// a structurally complete chunk (truncated/torn file, bad magic,
  /// out-of-range extents) and ChunkCorruptionError when the footer blob
  /// fails its checksum.
  static ChunkView parse(std::span<const std::uint8_t> file_bytes);

  std::uint64_t records() const { return records_; }
  const std::vector<ColumnDesc>& columns() const { return columns_; }

  /// Finds a column by name (nullptr when absent).
  const ColumnDesc* find(std::string_view name) const;

  /// The column's raw bytes without checksum validation — for callers
  /// that validate themselves (e.g. after applying injected corruption).
  std::span<const std::uint8_t> column_raw(const ColumnDesc& desc) const;

  /// The column's bytes, checksum-validated on every call.  Throws
  /// ChunkFormatError when `name` is absent and ChunkCorruptionError when
  /// the stored bytes no longer match the footer's fingerprint.
  std::span<const std::uint8_t> column(std::string_view name) const;

 private:
  std::span<const std::uint8_t> file_;
  std::uint64_t records_ = 0;
  std::vector<ColumnDesc> columns_;
};

/// A chunk mmap'd from disk with its parsed (and validated) view: what
/// the residency layer caches and pins.
class MappedChunk {
 public:
  /// mmaps `path` and parses the footer; throws the same typed errors as
  /// MappedFile::open / ChunkView::parse.
  static std::shared_ptr<const MappedChunk> open(const std::string& path);

  const std::string& path() const { return path_; }
  const ChunkView& view() const { return view_; }
  /// Mapped size — what this chunk charges against a residency budget.
  std::size_t bytes() const { return file_.size(); }

 private:
  std::string path_;
  MappedFile file_;
  ChunkView view_;
};

}  // namespace gpf::store
