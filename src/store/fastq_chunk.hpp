// FASTQ <-> chunk adaptation: maps the column codec's byte columns onto
// named chunk columns (name/len/seq/qual) and packages the pair as a
// ChunkCodec for SpilledDataset.
#pragma once

#include <span>
#include <vector>

#include "compress/column_codec.hpp"
#include "formats/fastq.hpp"
#include "store/spill.hpp"

namespace gpf::store {

/// Encodes a FASTQ batch as chunk columns.
ChunkData encode_fastq_chunk(std::span<const FastqRecord> records);

/// Decodes records from resolved (already validated) column spans.
/// Throws ChunkCorruptionError when the columns are mutually inconsistent.
std::vector<FastqRecord> decode_fastq_chunk(const ChunkColumns& columns);

/// The spill/materialize wiring for FASTQ datasets.
ChunkCodec<FastqRecord> fastq_chunk_codec();

}  // namespace gpf::store
