#include "store/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/errors.hpp"

namespace gpf::store {
namespace {

[[noreturn]] void fail(const std::string& path, const char* step) {
  throw ChunkIoError("mmap of " + path + " failed at " + step + ": " +
                     std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "fstat");
  }
  MappedFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ > 0) {
    void* p = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      fail(path, "mmap");
    }
    out.data_ = p;
  }
  ::close(fd);
  return out;
}

}  // namespace gpf::store
