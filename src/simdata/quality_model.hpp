// Empirical Illumina quality-score model.
//
// The paper's Fig 5 shows two properties the compressor exploits: raw
// quality scores cluster in a narrow high band (peaks near char 70 for
// SRR622461), and *adjacent* score differences are tightly concentrated
// around zero.  We model per-read quality as a mean curve that decays
// toward the 3' end plus a small-step random walk, which reproduces both
// distributions.
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/rng.hpp"

namespace gpf::simdata {

struct QualityProfile {
  /// Quality (Phred+33 char value) at cycle 0.
  double start_quality = 70.0;
  /// Linear decay per cycle toward the read end.
  double decay_per_cycle = 0.08;
  /// Random-walk step scale (most steps are 0 or +-1).
  double walk_sigma = 1.2;
  /// Probability of a quality "dropout" (a burst of low scores, modeling
  /// a bad cycle).
  double dropout_rate = 0.002;
  char min_quality = 35;
  char max_quality = 74;
  /// Quantize scores to Illumina's RTA 8-bin set (NovaSeq-style).  Binned
  /// qualities have far lower delta entropy, which is why modern
  /// instruments bin: compression (paper Sec 4.2) gets dramatically
  /// easier.
  bool bin_qualities = false;

  /// HiSeq-2000-like profile (the paper's SRR622461 sample).
  static QualityProfile srr622461();
  /// GA-IIx-like profile with a broader distribution (SRR504516).
  static QualityProfile srr504516();
  /// NovaSeq-like profile with RTA 8-bin quantization.
  static QualityProfile novaseq_binned();

  /// Maps a raw quality char to its RTA bin representative.
  static char bin_quality(char q);

  /// Draws a full quality string of `read_length` characters.
  std::string sample_read(Rng& rng, int read_length) const;
};

/// Distribution pair used by the Fig 5 bench.
struct QualityDistributions {
  Histogram scores;  // raw char values
  Histogram deltas;  // adjacent differences
};

/// Samples `reads` reads of `read_length` and collects both histograms.
QualityDistributions collect_distributions(const QualityProfile& profile,
                                           std::size_t reads, int read_length,
                                           std::uint64_t seed);

}  // namespace gpf::simdata
