#include "simdata/read_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "simdata/reference_gen.hpp"

namespace gpf::simdata {
namespace {

/// Phred error probability for a quality char.
double error_prob(char qual_char) {
  const int q = qual_char - kPhredBase;
  return std::pow(10.0, -q / 10.0);
}

/// Weighted region table for hotspot-skewed fragment sampling.
struct RegionTable {
  struct Region {
    std::int32_t contig_id;
    std::int64_t start;
    std::int64_t length;
    double cumulative_weight;  // upper bound of this region's weight band
  };
  std::vector<Region> regions;
  double total_weight = 0.0;

  /// Picks a (contig, position) weighted by region weight.
  std::pair<std::int32_t, std::int64_t> sample(Rng& rng) const {
    const double r = rng.uniform() * total_weight;
    // Binary search the cumulative weight bands.
    auto it = std::lower_bound(
        regions.begin(), regions.end(), r,
        [](const Region& reg, double v) { return reg.cumulative_weight < v; });
    if (it == regions.end()) it = std::prev(regions.end());
    const std::int64_t offset =
        static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(std::max<std::int64_t>(1, it->length))));
    return {it->contig_id, it->start + offset};
  }
};

RegionTable build_region_table(const Reference& reference,
                               const ReadSimSpec& spec, Rng& rng) {
  RegionTable table;
  constexpr std::int64_t kRegion = 10'000;
  // First pass: flat regions.
  for (std::size_t cid = 0; cid < reference.contig_count(); ++cid) {
    const auto len = static_cast<std::int64_t>(
        reference.contig(static_cast<std::int32_t>(cid)).sequence.size());
    for (std::int64_t start = 0; start < len; start += kRegion) {
      table.regions.push_back(
          {static_cast<std::int32_t>(cid), start,
           std::min(kRegion, len - start), 0.0});
    }
  }
  // Capture-target weighting (exome/panel mode): on-target regions share
  // on_target_fraction of the sampling mass; everything else is capture
  // leakage.
  const IntervalSet target_set(spec.targets);
  // Promote an exact share of regions to hotspots (at least one when a
  // multiplier is requested), so small genomes still get the skew the
  // spec asked for.
  std::vector<double> weights(table.regions.size());
  for (std::size_t i = 0; i < table.regions.size(); ++i) {
    weights[i] = static_cast<double>(table.regions[i].length);
  }
  if (!target_set.empty()) {
    double on = 0.0, off = 0.0;
    std::vector<bool> on_target(table.regions.size());
    for (std::size_t i = 0; i < table.regions.size(); ++i) {
      const auto& r = table.regions[i];
      on_target[i] = target_set.overlaps(r.contig_id, r.start,
                                         r.start + r.length);
      (on_target[i] ? on : off) += weights[i];
    }
    if (on > 0.0) {
      for (std::size_t i = 0; i < table.regions.size(); ++i) {
        weights[i] *= on_target[i]
                          ? spec.on_target_fraction / on
                          : (off > 0.0
                                 ? (1.0 - spec.on_target_fraction) / off
                                 : 0.0);
      }
    }
  }
  if (spec.hotspot_multiplier > 1.0 && spec.hotspot_fraction > 0.0) {
    const auto hotspots = std::max<std::size_t>(
        1, static_cast<std::size_t>(spec.hotspot_fraction *
                                    static_cast<double>(
                                        table.regions.size())));
    for (std::size_t h = 0; h < hotspots; ++h) {
      weights[rng.below(weights.size())] *= spec.hotspot_multiplier;
    }
  }
  double cumulative = 0.0;
  for (std::size_t i = 0; i < table.regions.size(); ++i) {
    cumulative += weights[i];
    table.regions[i].cumulative_weight = cumulative;
  }
  table.total_weight = cumulative;
  return table;
}

/// Applies sequencing errors in place, guided by the quality string.
void apply_errors(std::string& seq, const std::string& qual, Rng& rng) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == 'N') continue;
    if (rng.uniform() < error_prob(qual[i])) {
      char c;
      do {
        c = kBases[rng.below(4)];
      } while (c == seq[i]);
      seq[i] = c;
    }
  }
}

struct Fragment {
  std::int32_t contig_id;
  std::int64_t donor_start;
  std::int64_t ref_start;
  int hap;
  std::int64_t length;
};

}  // namespace

SimulatedSample simulate_reads(const Reference& reference, const Donor& donor,
                               const ReadSimSpec& spec) {
  if (spec.read_length <= 0) throw std::invalid_argument("read_length <= 0");
  Rng rng(spec.seed);
  const RegionTable table = build_region_table(reference, spec, rng);

  const double genome_len = static_cast<double>(reference.total_length());
  const auto pair_target = static_cast<std::size_t>(
      genome_len * spec.coverage /
      (2.0 * static_cast<double>(spec.read_length)));

  SimulatedSample out;
  out.pairs.reserve(pair_target);

  std::vector<Fragment> recent;  // duplicate pool
  std::size_t serial = 0;

  auto emit_pair = [&](const Fragment& frag, bool is_duplicate) {
    const std::string& hap_seq = donor.haplotype(frag.contig_id, frag.hap);
    const std::string fragment =
        hap_seq.substr(static_cast<std::size_t>(frag.donor_start),
                       static_cast<std::size_t>(frag.length));
    const int rl = spec.read_length;
    std::string r1 = fragment.substr(0, static_cast<std::size_t>(rl));
    std::string r2 = reverse_complement(
        fragment.substr(fragment.size() - static_cast<std::size_t>(rl)));
    std::string q1 = spec.quality.sample_read(rng, rl);
    std::string q2 = spec.quality.sample_read(rng, rl);
    apply_errors(r1, q1, rng);
    apply_errors(r2, q2, rng);
    const std::string name =
        "sim:" + reference.contig(frag.contig_id).name + ":" +
        std::to_string(frag.ref_start) + ":" + std::to_string(serial++) +
        (is_duplicate ? ":dup" : "");
    out.pairs.push_back({{name + "/1", std::move(r1), std::move(q1)},
                         {name + "/2", std::move(r2), std::move(q2)}});
    if (is_duplicate) ++out.duplicate_pairs;
  };

  while (out.pairs.size() < pair_target) {
    if (!recent.empty() && rng.chance(spec.duplicate_fraction)) {
      emit_pair(recent[rng.below(recent.size())], /*is_duplicate=*/true);
      continue;
    }
    const int hap = static_cast<int>(rng.below(2));
    const auto [contig_id, ref_pos] = table.sample(rng);
    const auto frag_len = static_cast<std::int64_t>(std::max(
        static_cast<double>(spec.read_length) + 2.0,
        spec.fragment_mean + rng.normal() * spec.fragment_sd));
    const std::string& hap_seq = donor.haplotype(contig_id, hap);
    // Approximate the donor coordinate with the reference one; indel shift
    // is tiny compared to contig length, and we clamp to bounds.
    std::int64_t start = std::min(
        ref_pos,
        static_cast<std::int64_t>(hap_seq.size()) - frag_len - 1);
    if (start < 0) continue;  // contig shorter than the fragment
    const std::string_view window(hap_seq.data() +
                                      static_cast<std::size_t>(start),
                                  static_cast<std::size_t>(frag_len));
    if (window.find('N') != std::string_view::npos) continue;  // gap
    Fragment frag{contig_id, start,
                  donor.to_reference(contig_id, hap, start), hap, frag_len};
    emit_pair(frag, /*is_duplicate=*/false);
    if (recent.size() < 4096) {
      recent.push_back(frag);
    } else {
      recent[rng.below(recent.size())] = frag;
    }
  }
  return out;
}

Workload make_workload(std::int64_t genome_length, int contigs,
                       const ReadSimSpec& spec, const VariantSpec& variants) {
  Workload w;
  w.reference = generate_reference(
      ReferenceSpec::genome(genome_length, contigs, spec.seed ^ 0xabcdef));
  w.truth = spawn_variants(w.reference, variants);
  const Donor donor(w.reference, w.truth);
  w.sample = simulate_reads(w.reference, donor, spec);
  return w;
}

}  // namespace gpf::simdata
