#include "simdata/quality_model.hpp"

#include <algorithm>
#include <cmath>

namespace gpf::simdata {

QualityProfile QualityProfile::srr622461() {
  QualityProfile p;
  p.start_quality = 70.0;
  p.decay_per_cycle = 0.06;
  p.walk_sigma = 1.0;
  p.dropout_rate = 0.0015;
  return p;
}

QualityProfile QualityProfile::srr504516() {
  QualityProfile p;
  p.start_quality = 66.0;
  p.decay_per_cycle = 0.12;
  p.walk_sigma = 2.2;
  p.dropout_rate = 0.004;
  p.min_quality = 35;
  p.max_quality = 72;
  return p;
}

QualityProfile QualityProfile::novaseq_binned() {
  QualityProfile p;
  p.start_quality = 69.0;
  p.decay_per_cycle = 0.05;
  p.walk_sigma = 1.6;
  p.dropout_rate = 0.002;
  p.bin_qualities = true;
  return p;
}

char QualityProfile::bin_quality(char q) {
  // RTA bin representatives (Phred): 2, 12, 23, 27, 32, 37, 41 — plus a
  // top bin for anything higher.  Char space = Phred + 33.
  static constexpr int kBins[] = {2, 12, 23, 27, 32, 37, 41, 45};
  const int phred = q - 33;
  int best = kBins[0];
  for (const int b : kBins) {
    if (std::abs(phred - b) < std::abs(phred - best)) best = b;
  }
  return static_cast<char>(best + 33);
}

std::string QualityProfile::sample_read(Rng& rng, int read_length) const {
  std::string qual(static_cast<std::size_t>(read_length), '\0');
  double level = start_quality + rng.normal() * 1.5;
  for (int i = 0; i < read_length; ++i) {
    if (rng.chance(dropout_rate)) {
      // Bad-cycle burst: quality plummets for a few bases then recovers.
      const int burst = static_cast<int>(rng.range(2, 6));
      const double low = static_cast<double>(min_quality) + rng.uniform() * 4;
      for (int j = 0; j < burst && i < read_length; ++j, ++i) {
        qual[static_cast<std::size_t>(i)] = static_cast<char>(low);
      }
      --i;  // loop increment compensates
      continue;
    }
    // Mean curve + small-step walk.
    const double target =
        start_quality - decay_per_cycle * static_cast<double>(i);
    level += 0.25 * (target - level) + rng.normal() * walk_sigma * 0.5;
    const double clamped =
        std::clamp(level, static_cast<double>(min_quality),
                   static_cast<double>(max_quality));
    qual[static_cast<std::size_t>(i)] =
        static_cast<char>(std::lround(clamped));
  }
  if (bin_qualities) {
    for (auto& c : qual) c = bin_quality(c);
  }
  return qual;
}

QualityDistributions collect_distributions(const QualityProfile& profile,
                                           std::size_t reads, int read_length,
                                           std::uint64_t seed) {
  Rng rng(seed);
  QualityDistributions dist;
  for (std::size_t r = 0; r < reads; ++r) {
    const std::string q = profile.sample_read(rng, read_length);
    char prev = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      dist.scores.add(q[i]);
      if (i > 0) dist.deltas.add(static_cast<int>(q[i]) - prev);
      prev = q[i];
    }
  }
  return dist;
}

}  // namespace gpf::simdata
