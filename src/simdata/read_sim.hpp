// Illumina-like paired-end read simulator.
//
// Fragments are drawn from a diploid donor genome (truth variants applied)
// with an optionally skewed coverage landscape: a configurable fraction of
// the genome is covered at `hotspot_multiplier` times the base depth.
// That skew is the load-imbalance driver behind the paper's dynamic
// repartition mechanism (Sec 4.4: "the depth of coverage of a targeted
// base is beyond 10,000x").
//
// Read names encode the truth origin ("sim:<contig>:<refpos>:<serial>"),
// which the aligner tests use to score mapping accuracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "formats/bed.hpp"
#include "formats/fastq.hpp"
#include "formats/fasta.hpp"
#include "formats/vcf.hpp"
#include "simdata/quality_model.hpp"
#include "simdata/variant_gen.hpp"

namespace gpf::simdata {

struct ReadSimSpec {
  int read_length = 100;
  double coverage = 30.0;
  /// Mean / stddev of the sequenced fragment (insert) length.
  double fragment_mean = 350.0;
  double fragment_sd = 40.0;
  /// Fraction of emitted pairs that are PCR duplicates of a previous
  /// fragment (re-sequenced with fresh errors).
  double duplicate_fraction = 0.05;
  /// Fraction of the genome designated as coverage hotspots, and the
  /// multiplier applied to their sampling weight.
  double hotspot_fraction = 0.01;
  double hotspot_multiplier = 1.0;  // 1.0 = uniform coverage
  /// Capture targets (exome/panel mode): fragments are drawn only from
  /// regions overlapping these intervals (plus on_target_fraction of
  /// off-target noise, as real hybrid capture leaks).  Empty = WGS.
  std::vector<BedInterval> targets;
  double on_target_fraction = 0.95;
  QualityProfile quality = QualityProfile::srr622461();
  std::uint64_t seed = 1234;
};

struct SimulatedSample {
  std::vector<FastqPair> pairs;
  /// Number of pairs that are PCR duplicates (ground truth for the
  /// MarkDuplicate tests).
  std::size_t duplicate_pairs = 0;
};

/// Simulates a whole sample against `donor`.  Pair count is derived from
/// coverage: coverage * genome_length / (2 * read_length).
SimulatedSample simulate_reads(const Reference& reference, const Donor& donor,
                               const ReadSimSpec& spec);

/// Convenience: builds reference + truth + donor + reads in one call.
struct Workload {
  Reference reference;
  std::vector<VcfRecord> truth;
  SimulatedSample sample;
};
Workload make_workload(std::int64_t genome_length, int contigs,
                       const ReadSimSpec& spec,
                       const VariantSpec& variants = {});

}  // namespace gpf::simdata
