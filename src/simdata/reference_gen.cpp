#include "simdata/reference_gen.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace gpf::simdata {

ReferenceSpec ReferenceSpec::single(std::int64_t length, std::uint64_t seed) {
  ReferenceSpec spec;
  spec.contigs = {{"chr1", length}};
  spec.seed = seed;
  return spec;
}

ReferenceSpec ReferenceSpec::genome(std::int64_t total_length, int k,
                                    std::uint64_t seed) {
  ReferenceSpec spec;
  spec.contigs.clear();
  spec.seed = seed;
  // hg19-like size decay: chr(i) length proportional to 1/(i+2) — the
  // largest chromosome is several times the smallest.
  double weight_sum = 0.0;
  for (int i = 0; i < k; ++i) weight_sum += 1.0 / static_cast<double>(i + 2);
  for (int i = 0; i < k; ++i) {
    const double w = (1.0 / static_cast<double>(i + 2)) / weight_sum;
    spec.contigs.emplace_back(
        "chr" + std::to_string(i + 1),
        std::max<std::int64_t>(
            1000, static_cast<std::int64_t>(w *
                                            static_cast<double>(total_length))));
  }
  return spec;
}

Reference generate_reference(const ReferenceSpec& spec) {
  Rng rng(spec.seed);
  std::vector<FastaContig> contigs;
  contigs.reserve(spec.contigs.size());
  const double at = (1.0 - spec.gc_content) / 2.0;
  const double gc = spec.gc_content / 2.0;

  for (const auto& [name, length] : spec.contigs) {
    std::string seq;
    seq.reserve(static_cast<std::size_t>(length));
    while (static_cast<std::int64_t>(seq.size()) < length) {
      const double r = rng.uniform();
      if (r < spec.gap_rate) {
        // Assembly gap: run of N, 50-500 bases.
        const auto run = static_cast<std::size_t>(rng.range(50, 500));
        seq.append(std::min<std::size_t>(
                       run, static_cast<std::size_t>(length) - seq.size()),
                   'N');
        continue;
      }
      if (r < spec.gap_rate + spec.repeat_rate && seq.size() >= 4) {
        // Short tandem repeat: repeat the last 2-6 bases 3-12 times.
        const auto unit_len =
            std::min<std::size_t>(seq.size(),
                                  static_cast<std::size_t>(rng.range(2, 6)));
        const std::string unit = seq.substr(seq.size() - unit_len);
        const int copies = static_cast<int>(rng.range(3, 12));
        for (int c = 0; c < copies &&
                        static_cast<std::int64_t>(seq.size()) < length;
             ++c) {
          seq.append(unit.substr(
              0, std::min<std::size_t>(unit.size(),
                                       static_cast<std::size_t>(length) -
                                           seq.size())));
        }
        continue;
      }
      // Plain base with the configured GC content.
      const double b = rng.uniform();
      if (b < at) {
        seq.push_back('A');
      } else if (b < 2 * at) {
        seq.push_back('T');
      } else if (b < 2 * at + gc) {
        seq.push_back('G');
      } else {
        seq.push_back('C');
      }
    }
    contigs.push_back({name, std::move(seq)});
  }
  return Reference(std::move(contigs));
}

std::string reverse_complement(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    char c = 'N';
    switch (seq[seq.size() - 1 - i]) {
      case 'A':
        c = 'T';
        break;
      case 'T':
        c = 'A';
        break;
      case 'C':
        c = 'G';
        break;
      case 'G':
        c = 'C';
        break;
      default:
        c = 'N';
    }
    out[i] = c;
  }
  return out;
}

}  // namespace gpf::simdata
