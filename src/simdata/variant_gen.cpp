#include "simdata/variant_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace gpf::simdata {
namespace {

const char kBases[] = {'A', 'C', 'G', 'T'};

char random_base(Rng& rng) { return kBases[rng.below(4)]; }

char random_other_base(Rng& rng, char not_this) {
  for (;;) {
    const char c = random_base(rng);
    if (c != not_this) return c;
  }
}

std::string random_insertion(Rng& rng, int max_len) {
  const auto len = static_cast<std::size_t>(rng.range(1, max_len));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) s.push_back(random_base(rng));
  return s;
}

}  // namespace

std::vector<VcfRecord> spawn_variants(const Reference& reference,
                                      const VariantSpec& spec) {
  Rng rng(spec.seed);
  std::vector<VcfRecord> truth;
  for (std::size_t cid = 0; cid < reference.contig_count(); ++cid) {
    const std::string& seq =
        reference.contig(static_cast<std::int32_t>(cid)).sequence;
    std::int64_t pos = 1;  // skip position 0 so indel anchors always exist
    while (pos < static_cast<std::int64_t>(seq.size()) - 1) {
      const char ref_base = seq[static_cast<std::size_t>(pos)];
      if (ref_base == 'N') {
        ++pos;
        continue;
      }
      const double r = rng.uniform();
      VcfRecord rec;
      rec.contig_id = static_cast<std::int32_t>(cid);
      rec.pos = pos;
      rec.genotype =
          rng.chance(spec.het_fraction) ? Genotype::kHet : Genotype::kHomAlt;
      rec.qual = 50.0;
      if (r < spec.snp_rate) {
        rec.ref = std::string(1, ref_base);
        rec.alt = std::string(1, random_other_base(rng, ref_base));
        truth.push_back(std::move(rec));
        pos += 1;
      } else if (r < spec.snp_rate + spec.indel_rate / 2) {
        // Insertion after this base.
        rec.ref = std::string(1, ref_base);
        rec.alt = std::string(1, ref_base) +
                  random_insertion(rng, spec.max_indel_length);
        truth.push_back(std::move(rec));
        pos += 2;
      } else if (r < spec.snp_rate + spec.indel_rate) {
        // Deletion of up to max_indel_length bases after this anchor.
        const auto del_len = static_cast<std::int64_t>(
            rng.range(1, spec.max_indel_length));
        const std::int64_t avail =
            static_cast<std::int64_t>(seq.size()) - pos - 1;
        const std::int64_t take = std::min(del_len, avail);
        if (take < 1) {
          ++pos;
          continue;
        }
        const std::string span =
            seq.substr(static_cast<std::size_t>(pos),
                       static_cast<std::size_t>(take) + 1);
        if (span.find('N') != std::string::npos) {
          ++pos;
          continue;
        }
        rec.ref = span;
        rec.alt = std::string(1, ref_base);
        truth.push_back(std::move(rec));
        pos += take + 1;
      } else {
        ++pos;
      }
    }
  }
  return truth;
}

Donor::Donor(const Reference& reference,
             const std::vector<VcfRecord>& variants) {
  for (int hap = 0; hap < 2; ++hap) {
    haplotypes_[hap].resize(reference.contig_count());
    shifts_[hap].resize(reference.contig_count());
  }
  // Variants must be coordinate sorted per contig.
  for (std::size_t cid = 0; cid < reference.contig_count(); ++cid) {
    const std::string& ref_seq =
        reference.contig(static_cast<std::int32_t>(cid)).sequence;
    for (int hap = 0; hap < 2; ++hap) {
      std::string donor;
      donor.reserve(ref_seq.size() + ref_seq.size() / 500);
      auto& shift_map = shifts_[hap][cid];
      std::int64_t ref_pos = 0;
      for (const auto& v : variants) {
        if (v.contig_id != static_cast<std::int32_t>(cid)) continue;
        // Haplotype 1 carries only homozygous variants.
        if (hap == 1 && v.genotype == Genotype::kHet) continue;
        if (v.pos < ref_pos) continue;  // overlapped by a previous deletion
        donor.append(ref_seq, static_cast<std::size_t>(ref_pos),
                     static_cast<std::size_t>(v.pos - ref_pos));
        donor.append(v.alt);
        ref_pos = v.pos + static_cast<std::int64_t>(v.ref.size());
        const std::int64_t shift =
            static_cast<std::int64_t>(donor.size()) - ref_pos;
        if (shift_map.empty() || shift_map.back().second != shift) {
          shift_map.emplace_back(static_cast<std::int64_t>(donor.size()),
                                 shift);
        }
      }
      donor.append(ref_seq, static_cast<std::size_t>(ref_pos),
                   ref_seq.size() - static_cast<std::size_t>(ref_pos));
      haplotypes_[hap][cid] = std::move(donor);
    }
  }
}

const std::string& Donor::haplotype(std::int32_t contig_id, int hap) const {
  return haplotypes_[hap].at(static_cast<std::size_t>(contig_id));
}

std::int64_t Donor::to_reference(std::int32_t contig_id, int hap,
                                 std::int64_t pos) const {
  const auto& shift_map = shifts_[hap].at(static_cast<std::size_t>(contig_id));
  // Find the last checkpoint at or before `pos`.
  std::int64_t shift = 0;
  auto it = std::upper_bound(
      shift_map.begin(), shift_map.end(), pos,
      [](std::int64_t p, const auto& entry) { return p < entry.first; });
  if (it != shift_map.begin()) shift = std::prev(it)->second;
  return pos - shift;
}

}  // namespace gpf::simdata
