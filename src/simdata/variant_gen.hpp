// Spawns germline variants (SNPs and short indels) on a reference and
// materializes donor haplotypes.  The truth set doubles as the "known
// sites" database (the paper's dbsnp_138 input to BQSR) and as ground
// truth for caller accuracy tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "formats/fasta.hpp"
#include "formats/vcf.hpp"

namespace gpf::simdata {

struct VariantSpec {
  /// Per-base probability of a SNP (human germline rate ~1e-3).
  double snp_rate = 0.001;
  /// Per-base probability of a short indel.
  double indel_rate = 0.0001;
  int max_indel_length = 8;
  /// Fraction of variants that are heterozygous.
  double het_fraction = 0.67;
  std::uint64_t seed = 7;
};

/// Generates a coordinate-sorted truth set over the reference.  N-gap
/// positions are skipped.
std::vector<VcfRecord> spawn_variants(const Reference& reference,
                                      const VariantSpec& spec);

/// A diploid donor genome: two haplotype sequences per contig with the
/// truth variants applied (haplotype 0 carries het+hom variants,
/// haplotype 1 only hom variants).
class Donor {
 public:
  Donor(const Reference& reference, const std::vector<VcfRecord>& variants);

  /// Haplotype sequence for contig `contig_id`, haplotype in {0, 1}.
  const std::string& haplotype(std::int32_t contig_id, int hap) const;

  /// Maps a donor-haplotype coordinate back to the reference coordinate
  /// (for truth-aware read naming).  Approximate for positions inside
  /// indels.
  std::int64_t to_reference(std::int32_t contig_id, int hap,
                            std::int64_t pos) const;

  std::size_t contig_count() const { return haplotypes_[0].size(); }

 private:
  // haplotypes_[hap][contig] = sequence
  std::vector<std::string> haplotypes_[2];
  // Offset maps: sorted (donor_pos, cumulative_shift) checkpoints.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> shifts_[2];
};

}  // namespace gpf::simdata
