// Synthetic reference genomes.
//
// The paper aligns against hg19; we generate references with realistic
// base composition (GC content ~41%), short tandem repeats and occasional
// N-runs (assembly gaps), which is what the aligner's seeding and the
// partitioner's contig tables care about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "formats/fasta.hpp"

namespace gpf::simdata {

struct ReferenceSpec {
  /// Contig names and lengths.  Defaults mimic a small multi-chromosome
  /// genome; benches scale lengths up.
  std::vector<std::pair<std::string, std::int64_t>> contigs = {
      {"chr1", 1'000'000}, {"chr2", 800'000}, {"chr3", 600'000}};
  double gc_content = 0.41;
  /// Probability per base of starting a short tandem repeat.
  double repeat_rate = 0.0005;
  /// Probability per base of starting an N-gap.
  double gap_rate = 0.00001;
  std::uint64_t seed = 42;

  /// Convenience constructor for a single-contig genome.
  static ReferenceSpec single(std::int64_t length, std::uint64_t seed = 42);
  /// A `k`-contig genome totalling roughly `total_length` bases with
  /// hg19-like decreasing chromosome sizes.
  static ReferenceSpec genome(std::int64_t total_length, int k,
                              std::uint64_t seed = 42);
};

Reference generate_reference(const ReferenceSpec& spec);

/// Reverse-complements a DNA string (N maps to N).
std::string reverse_complement(std::string_view seq);

}  // namespace gpf::simdata
