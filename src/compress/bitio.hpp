// Bit-granular I/O on top of byte buffers, used by the Huffman and 2-bit
// codecs.  Bits are packed MSB-first within each byte.  Both directions
// run through a 64-bit accumulator so multi-bit writes/reads cost O(1)
// amortized rather than a loop per bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace gpf {

/// Appends bits MSB-first; finish() pads the final byte with zeros.
class BitWriter {
 public:
  void bit(bool b) { bits(b ? 1u : 0u, 1); }

  /// Writes the low `count` bits of `value`, most significant first.
  /// `count` must be <= 32.
  void bits(std::uint32_t value, int count) {
    acc_ = (acc_ << count) | (static_cast<std::uint64_t>(value) &
                              ((count == 32 ? 0xffffffffULL
                                            : ((1ULL << count) - 1))));
    nbits_ += count;
    while (nbits_ >= 8) {
      nbits_ -= 8;
      buf_.push_back(static_cast<std::uint8_t>(acc_ >> nbits_));
    }
  }

  /// Pads to a byte boundary and returns the buffer.
  std::vector<std::uint8_t> finish() {
    if (nbits_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ << (8 - nbits_)));
      acc_ = 0;
      nbits_ = 0;
    }
    return std::move(buf_);
  }

  /// Bits written so far.
  std::size_t bit_count() const {
    return buf_.size() * 8 + static_cast<std::size_t>(nbits_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Reads bits MSB-first; throws std::out_of_range past the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool bit() { return bits(1) != 0; }

  std::uint32_t bits(int count) {
    fill(count);
    if (nbits_ < count) throw std::out_of_range("BitReader: past end");
    nbits_ -= count;
    const std::uint64_t mask =
        count == 32 ? 0xffffffffULL : ((1ULL << count) - 1);
    return static_cast<std::uint32_t>((acc_ >> nbits_) & mask);
  }

  /// Returns up to `count` bits without consuming them, left-aligned to
  /// `count` (missing trailing bits read as zero — callers must bound how
  /// many they rely on via bits_left()).
  std::uint32_t peek(int count) {
    fill(count);
    const int have = std::min(count, nbits_);
    const std::uint64_t mask =
        count == 32 ? 0xffffffffULL : ((1ULL << count) - 1);
    return static_cast<std::uint32_t>(
        ((acc_ << (count - have)) >> (nbits_ - have)) & mask);
  }

  /// Consumes `count` bits previously peeked.
  void skip(int count) {
    if (nbits_ < count) throw std::out_of_range("BitReader: past end");
    nbits_ -= count;
  }

  /// Bits remaining in the stream.
  std::size_t bits_left() const {
    return (data_.size() - pos_) * 8 + static_cast<std::size_t>(nbits_);
  }

  std::size_t position() const { return pos_ * 8 - nbits_; }

 private:
  void fill(int want) {
    while (nbits_ < want && pos_ < data_.size() && nbits_ <= 56) {
      acc_ = (acc_ << 8) | data_[pos_++];
      nbits_ += 8;
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace gpf
