// Batch serializers for genomic records: the engine stores partitions and
// shuffle blocks as byte arrays produced by one of three codecs.
//
//  * kJavaLike — emulates java.io serialization: per-stream class
//    descriptors, per-object headers, UTF-16 string payloads.  The
//    reference point the paper calls "Java serialization".
//  * kKryoLike — compact generic binary (varints + raw byte strings), no
//    domain knowledge.  The paper's "Kryo" baseline ("often as much as 10x"
//    smaller than Java, but inefficient on complex genomic objects).
//  * kGpf — the paper's codec: 2-bit sequence field + delta/Huffman
//    quality field, varint numeric fields, uncompressed remaining fields.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "formats/fastq.hpp"
#include "formats/sam.hpp"
#include "formats/vcf.hpp"

namespace gpf {

enum class Codec : std::uint8_t {
  kJavaLike = 0,
  kKryoLike = 1,
  kGpf = 2,
};

const char* codec_name(Codec codec);

/// FASTQ batches -------------------------------------------------------

std::vector<std::uint8_t> encode_fastq_batch(
    std::span<const FastqRecord> records, Codec codec);
std::vector<FastqRecord> decode_fastq_batch(
    std::span<const std::uint8_t> bytes, Codec codec);

/// In-place encode variants: `out` is cleared and refilled, reusing its
/// capacity.  Output bytes are identical to the allocating overloads;
/// these back ShuffleCodec::encode_into so pooled buffers can be reused
/// across shuffle blocks.
void encode_fastq_batch_into(std::span<const FastqRecord> records, Codec codec,
                             std::vector<std::uint8_t>& out);
void encode_fastq_pair_batch_into(std::span<const FastqPair> pairs,
                                  Codec codec, std::vector<std::uint8_t>& out);
void encode_sam_batch_into(std::span<const SamRecord> records, Codec codec,
                           std::vector<std::uint8_t>& out);
void encode_vcf_batch_into(std::span<const VcfRecord> records, Codec codec,
                           std::vector<std::uint8_t>& out);

/// Paired FASTQ batches ------------------------------------------------

std::vector<std::uint8_t> encode_fastq_pair_batch(
    std::span<const FastqPair> pairs, Codec codec);
std::vector<FastqPair> decode_fastq_pair_batch(
    std::span<const std::uint8_t> bytes, Codec codec);

/// SAM batches ---------------------------------------------------------

std::vector<std::uint8_t> encode_sam_batch(std::span<const SamRecord> records,
                                           Codec codec);
std::vector<SamRecord> decode_sam_batch(std::span<const std::uint8_t> bytes,
                                        Codec codec);

/// VCF batches ---------------------------------------------------------

std::vector<std::uint8_t> encode_vcf_batch(std::span<const VcfRecord> records,
                                           Codec codec);
std::vector<VcfRecord> decode_vcf_batch(std::span<const std::uint8_t> bytes,
                                        Codec codec);

/// In-memory footprint estimators: the "Origin" column of the paper's
/// Table 3 (live object sizes before serialization).
std::size_t live_size(const FastqRecord& r);
std::size_t live_size(const FastqPair& p);
std::size_t live_size(const SamRecord& r);
std::size_t live_size(const VcfRecord& r);

template <typename Record>
std::size_t live_batch_size(std::span<const Record> records) {
  std::size_t total = 0;
  for (const auto& r : records) total += live_size(r);
  return total;
}

}  // namespace gpf
