#include "compress/gbam.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/bytes.hpp"

namespace gpf {
namespace {

constexpr char kMagic[5] = {'G', 'B', 'A', 'M', '1'};

}  // namespace

std::vector<std::uint8_t> write_gbam(const SamHeader& header,
                                     std::span<const SamRecord> records,
                                     const GbamWriteOptions& options) {
  if (options.block_records == 0) {
    throw std::invalid_argument("gbam: block_records must be positive");
  }
  ByteWriter w;
  w.raw(std::span(reinterpret_cast<const std::uint8_t*>(kMagic),
                  sizeof kMagic));
  w.u8(static_cast<std::uint8_t>(options.codec));
  w.u8(header.coordinate_sorted ? 1 : 0);
  w.uvarint(header.contigs.size());
  for (const auto& c : header.contigs) {
    w.str(c.name);
    w.uvarint(static_cast<std::uint64_t>(c.length));
  }
  const std::size_t blocks =
      (records.size() + options.block_records - 1) / options.block_records;
  w.uvarint(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * options.block_records;
    const std::size_t hi =
        std::min(records.size(), lo + options.block_records);
    const auto payload =
        encode_sam_batch(records.subspan(lo, hi - lo), options.codec);
    w.uvarint(hi - lo);
    w.uvarint(payload.size());
    w.raw(std::span(payload.data(), payload.size()));
  }
  return w.take();
}

GbamReader::GbamReader(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const auto magic = r.raw(sizeof kMagic);
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    throw std::invalid_argument("gbam: bad magic");
  }
  codec_ = static_cast<Codec>(r.u8());
  header_.coordinate_sorted = r.u8() != 0;
  const std::uint64_t contigs = r.uvarint();
  for (std::uint64_t i = 0; i < contigs; ++i) {
    SamHeader::ContigInfo info;
    info.name = r.str();
    info.length = static_cast<std::int64_t>(r.uvarint());
    header_.contigs.push_back(std::move(info));
  }
  const std::uint64_t blocks = r.uvarint();
  blocks_.reserve(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    BlockRef ref;
    ref.record_count = r.uvarint();
    const std::size_t payload_size = r.uvarint();
    ref.payload = r.raw(payload_size);
    blocks_.push_back(ref);
  }
  if (!r.done()) throw std::invalid_argument("gbam: trailing bytes");
}

std::size_t GbamReader::record_count() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.record_count;
  return n;
}

std::vector<SamRecord> GbamReader::read_block(std::size_t index) const {
  const auto& block = blocks_.at(index);
  auto records = decode_sam_batch(block.payload, codec_);
  if (records.size() != block.record_count) {
    throw std::runtime_error("gbam: block record count mismatch");
  }
  return records;
}

SamFile read_gbam(std::span<const std::uint8_t> bytes) {
  const GbamReader reader(bytes);
  SamFile file;
  file.header = reader.header();
  file.records.reserve(reader.record_count());
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    auto block = reader.read_block(b);
    file.records.insert(file.records.end(),
                        std::make_move_iterator(block.begin()),
                        std::make_move_iterator(block.end()));
  }
  return file;
}

void save_gbam_file(const std::string& path, const SamHeader& header,
                    std::span<const SamRecord> records,
                    const GbamWriteOptions& options) {
  const auto bytes = write_gbam(header, records, options);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

SamFile load_gbam_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return read_gbam(bytes);
}

}  // namespace gpf
