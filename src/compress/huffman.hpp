// Canonical Huffman coding over a small integer alphabet with an explicit
// end-of-stream symbol, as used by the paper's quality-field compressor
// ("compress the delta sequence using Huffman coding with the end symbol of
// EOF", Fig 6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.hpp"

namespace gpf {

/// Huffman coder for symbols in [0, alphabet_size).  Code lengths are
/// capped at 32 bits, which is unreachable for the byte-sized alphabets we
/// use.  The table itself is serializable (code lengths only — canonical
/// codes are reconstructed), so an encoded block is self-describing.
class HuffmanCoder {
 public:
  /// Builds codes from symbol frequencies; zero-frequency symbols get no
  /// code.  At least one symbol must have non-zero frequency.
  static HuffmanCoder from_frequencies(
      std::span<const std::uint64_t> frequencies);

  /// Reconstructs a coder from serialized code lengths.
  static HuffmanCoder from_code_lengths(
      std::span<const std::uint8_t> lengths);

  /// Per-symbol code length in bits (0 = symbol has no code).
  const std::vector<std::uint8_t>& code_lengths() const { return lengths_; }

  /// Appends the code for `symbol` to `out`.  Symbol must have a code.
  void encode(std::uint32_t symbol, BitWriter& out) const {
    const std::uint8_t len = lengths_[symbol];
    if (len == 0) throw std::invalid_argument("Huffman: symbol has no code");
    out.bits(codes_[symbol], len);
  }

  /// Decodes one symbol from `in`.  Short codes (the common case) resolve
  /// through a single prefix-table lookup.
  std::uint32_t decode(BitReader& in) const {
    const std::uint32_t window = in.peek(kTableBits);
    const TableEntry entry = table_[window];
    if (entry.length != 0) {
      in.skip(entry.length);
      return entry.symbol;
    }
    return decode_long(in);
  }

  std::size_t alphabet_size() const { return lengths_.size(); }

  static constexpr int kTableBits = 11;
  static constexpr int kMultiSymbols = 4;

  /// One probe of the multi-symbol decode table: every symbol whose code
  /// lies entirely inside a kTableBits-wide window, up to kMultiSymbols per
  /// probe.  `count == 0` means the first code is longer than the window
  /// (fall back to decode()).  bit_ends[k] is the cumulative bit count
  /// consumed after symbols[0..k], so a caller that stops early (e.g. at an
  /// EOF symbol) can skip exactly the bits it used.
  struct MultiEntry {
    std::uint16_t symbols[kMultiSymbols];
    std::uint8_t bit_ends[kMultiSymbols];
    std::uint8_t count = 0;
  };

  /// Looks up the multi-symbol entry for a kTableBits-wide window.  The
  /// caller must ensure at least kTableBits real bits back the window
  /// (BitReader::peek zero-pads past the end, which would fabricate
  /// symbols).
  const MultiEntry& multi_entry(std::uint32_t window) const {
    return multi_[window];
  }

 private:
  struct TableEntry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;  // 0 = code longer than kTableBits
  };

  HuffmanCoder() = default;
  void build_canonical();
  std::uint32_t decode_long(BitReader& in) const;

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;  // canonical code per symbol
  // Canonical decode metadata per code length (1..32): first canonical
  // code of that length, index of its first symbol in sorted_symbols_.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint16_t> count_per_length_;
  std::vector<std::uint32_t> sorted_symbols_;
  // Prefix table for codes of length <= kTableBits.
  std::vector<TableEntry> table_;
  // Multi-symbol decode table (same windows as table_).
  std::vector<MultiEntry> multi_;
};

}  // namespace gpf
