#include "compress/record_codec.hpp"

#include <stdexcept>

#include "common/bytes.hpp"
#include "compress/qual_codec.hpp"
#include "compress/seq_codec.hpp"

namespace gpf {
namespace {

// --- Java-like emulation ------------------------------------------------
//
// java.io writes a class descriptor (fully-qualified name, serialVersionUID,
// per-field name+type descriptor) once per stream, then for each object an
// object header plus per-field data; String payloads are written through
// writeUTF-style records with their own headers and Java's char-oriented
// layout costs roughly two bytes per character once object overhead and
// handles are amortized.  We reproduce those costs structurally rather than
// byte-for-byte.

constexpr std::uint16_t kJavaStreamMagic = 0xaced;
constexpr std::uint8_t kJavaObjectMarker = 0x73;

void java_class_descriptor(ByteWriter& w, std::string_view class_name,
                           std::span<const std::string_view> fields) {
  w.u16(kJavaStreamMagic);
  w.str(class_name);
  w.u64(0x1122334455667788ULL);  // serialVersionUID
  w.u16(static_cast<std::uint16_t>(fields.size()));
  for (const auto f : fields) {
    w.u8('L');  // object-typed field
    w.str(f);
    w.str("Ljava/lang/String;");
  }
}

void java_string(ByteWriter& w, std::string_view s) {
  w.u8(kJavaObjectMarker);
  w.u32(static_cast<std::uint32_t>(s.size()));
  // UTF-16 payload: two bytes per char.
  for (const char c : s) {
    w.u8(0);
    w.u8(static_cast<std::uint8_t>(c));
  }
}

std::string java_read_string(ByteReader& r) {
  if (r.u8() != kJavaObjectMarker) {
    throw std::invalid_argument("java codec: bad string marker");
  }
  const std::uint32_t n = r.u32();
  std::string s(n, '\0');
  for (std::uint32_t i = 0; i < n; ++i) {
    r.u8();
    s[i] = static_cast<char>(r.u8());
  }
  return s;
}

void java_long(ByteWriter& w, std::int64_t v) {
  w.u8(kJavaObjectMarker);  // boxed
  w.i64(v);
}

std::int64_t java_read_long(ByteReader& r) {
  if (r.u8() != kJavaObjectMarker) {
    throw std::invalid_argument("java codec: bad long marker");
  }
  return r.i64();
}

// --- shared helpers ------------------------------------------------------

constexpr std::uint32_t kBatchMagic = 0x47504642;  // "GPFB"

void batch_header(ByteWriter& w, Codec codec, std::uint64_t count) {
  w.u32(kBatchMagic);
  w.u8(static_cast<std::uint8_t>(codec));
  w.uvarint(count);
}

std::uint64_t check_batch_header(ByteReader& r, Codec codec) {
  if (r.u32() != kBatchMagic) {
    throw std::invalid_argument("record batch: bad magic");
  }
  if (r.u8() != static_cast<std::uint8_t>(codec)) {
    throw std::invalid_argument("record batch: codec mismatch");
  }
  return r.uvarint();
}

// --- GPF FASTQ payload ----------------------------------------------------

/// Original quality characters overwritten by the Deorowicz N-escape, so
/// decoding is lossless even when an N base carries an unusual quality
/// (real Illumina data assigns N bases '#', making the paper's scheme
/// lossless in practice; synthetic data may not).
struct EscapeFixups {
  std::vector<std::pair<std::uint32_t, char>> entries;  // (position, qual)

  static EscapeFixups collect(std::string_view sequence,
                              std::string_view quality) {
    EscapeFixups f;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const char c = sequence[i];
      if (c != 'A' && c != 'C' && c != 'G' && c != 'T') {
        f.entries.emplace_back(static_cast<std::uint32_t>(i), quality[i]);
      }
    }
    return f;
  }

  void write(ByteWriter& w) const {
    w.uvarint(entries.size());
    for (const auto& [pos, q] : entries) {
      w.uvarint(pos);
      w.u8(static_cast<std::uint8_t>(q));
    }
  }

  static void read_and_apply(ByteReader& r, std::string& quality) {
    const std::uint64_t n = r.uvarint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::size_t pos = r.uvarint();
      quality.at(pos) = static_cast<char>(r.u8());
    }
  }
};

/// GPF keeps the original record structure and compresses only the
/// Sequence and Quality fields (paper: those two fields are 80-90% of a
/// FASTQ record).  The quality Huffman table is trained per batch and
/// stored once.
void gpf_encode_fastq_records(ByteWriter& w,
                              std::span<const FastqRecord> records) {
  std::vector<std::string> qualities;
  qualities.reserve(records.size());
  // Escape sentinels must be applied before training so the table covers
  // the rewritten quality strings.
  std::vector<CompressedSequence> seqs;
  std::vector<EscapeFixups> fixups;
  seqs.reserve(records.size());
  fixups.reserve(records.size());
  for (const auto& rec : records) {
    fixups.push_back(EscapeFixups::collect(rec.sequence, rec.quality));
    std::string qual = rec.quality;
    seqs.push_back(compress_sequence(rec.sequence, qual));
    qualities.push_back(std::move(qual));
  }
  const QualityCodec codec = QualityCodec::train(qualities);
  const auto table = codec.serialize_table();
  w.uvarint(table.size());
  w.raw(std::span(table.data(), table.size()));

  BitWriter quals;
  for (const auto& q : qualities) codec.encode(q, quals);
  const auto qual_bits = quals.finish();

  for (std::size_t i = 0; i < records.size(); ++i) {
    w.str(records[i].name);
    w.uvarint(seqs[i].length);
    w.raw(std::span(seqs[i].packed.data(), seqs[i].packed.size()));
    fixups[i].write(w);
  }
  w.uvarint(qual_bits.size());
  w.raw(std::span(qual_bits.data(), qual_bits.size()));
}

std::vector<FastqRecord> gpf_decode_fastq_records(ByteReader& r,
                                                  std::uint64_t count) {
  const std::size_t table_size = r.uvarint();
  const auto table = r.raw(table_size);
  const QualityCodec codec = QualityCodec::from_table(table);

  struct Pending {
    std::string name;
    CompressedSequence seq;
    std::vector<std::uint8_t> fixup_bytes;
  };
  std::vector<Pending> pending;
  pending.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Pending p;
    p.name = r.str();
    p.seq.length = static_cast<std::uint32_t>(r.uvarint());
    const auto raw = r.raw(packed_size(p.seq.length));
    p.seq.packed.assign(raw.begin(), raw.end());
    // Defer fixups: re-encode the span so it can be replayed after the
    // quality stream is decoded.
    ByteWriter fw;
    const std::uint64_t n = r.uvarint();
    fw.uvarint(n);
    for (std::uint64_t f = 0; f < n; ++f) {
      fw.uvarint(r.uvarint());
      fw.u8(r.u8());
    }
    p.fixup_bytes = fw.take();
    pending.push_back(std::move(p));
  }
  const std::size_t qual_bytes = r.uvarint();
  const auto qual_raw = r.raw(qual_bytes);
  BitReader bits(qual_raw);

  std::vector<FastqRecord> records;
  records.reserve(count);
  for (auto& p : pending) {
    std::string qual = codec.decode(bits);
    std::string seq = decompress_sequence(p.seq, qual);
    ByteReader fr(std::span(p.fixup_bytes.data(), p.fixup_bytes.size()));
    EscapeFixups::read_and_apply(fr, qual);
    records.push_back({std::move(p.name), std::move(seq), std::move(qual)});
  }
  return records;
}

}  // namespace

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kJavaLike:
      return "java";
    case Codec::kKryoLike:
      return "kryo";
    case Codec::kGpf:
      return "gpf";
  }
  return "?";
}

// --- FASTQ ----------------------------------------------------------------

namespace {

void write_fastq_batch(ByteWriter& w, std::span<const FastqRecord> records,
                       Codec codec) {
  batch_header(w, codec, records.size());
  switch (codec) {
    case Codec::kJavaLike: {
      static constexpr std::string_view kFields[] = {"name", "sequence",
                                                     "quality"};
      java_class_descriptor(w, "org.gpf.formats.FastqRecord", kFields);
      for (const auto& rec : records) {
        w.u8(kJavaObjectMarker);
        java_string(w, rec.name);
        java_string(w, rec.sequence);
        java_string(w, rec.quality);
      }
      break;
    }
    case Codec::kKryoLike:
      for (const auto& rec : records) {
        w.str(rec.name);
        w.str(rec.sequence);
        w.str(rec.quality);
      }
      break;
    case Codec::kGpf:
      gpf_encode_fastq_records(w, records);
      break;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_fastq_batch(
    std::span<const FastqRecord> records, Codec codec) {
  ByteWriter w;
  write_fastq_batch(w, records, codec);
  return w.take();
}

void encode_fastq_batch_into(std::span<const FastqRecord> records, Codec codec,
                             std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  write_fastq_batch(w, records, codec);
  out = w.take();
}

std::vector<FastqRecord> decode_fastq_batch(
    std::span<const std::uint8_t> bytes, Codec codec) {
  ByteReader r(bytes);
  const std::uint64_t count = check_batch_header(r, codec);
  std::vector<FastqRecord> records;
  records.reserve(count);
  switch (codec) {
    case Codec::kJavaLike: {
      // Skip the class descriptor.
      r.u16();
      r.str();
      r.u64();
      const std::uint16_t nfields = r.u16();
      for (std::uint16_t f = 0; f < nfields; ++f) {
        r.u8();
        r.str();
        r.str();
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        r.u8();
        FastqRecord rec;
        rec.name = java_read_string(r);
        rec.sequence = java_read_string(r);
        rec.quality = java_read_string(r);
        records.push_back(std::move(rec));
      }
      break;
    }
    case Codec::kKryoLike:
      for (std::uint64_t i = 0; i < count; ++i) {
        FastqRecord rec;
        rec.name = r.str();
        rec.sequence = r.str();
        rec.quality = r.str();
        records.push_back(std::move(rec));
      }
      break;
    case Codec::kGpf:
      records = gpf_decode_fastq_records(r, count);
      break;
  }
  return records;
}

// --- paired FASTQ -----------------------------------------------------------

namespace {

std::vector<FastqRecord> flatten_pairs(std::span<const FastqPair> pairs) {
  // Flatten mates into one record stream: first mates then second mates,
  // so the GPF codec trains one quality table over both.
  std::vector<FastqRecord> flat;
  flat.reserve(pairs.size() * 2);
  for (const auto& p : pairs) {
    flat.push_back(p.first);
    flat.push_back(p.second);
  }
  return flat;
}

}  // namespace

std::vector<std::uint8_t> encode_fastq_pair_batch(
    std::span<const FastqPair> pairs, Codec codec) {
  return encode_fastq_batch(flatten_pairs(pairs), codec);
}

void encode_fastq_pair_batch_into(std::span<const FastqPair> pairs,
                                  Codec codec,
                                  std::vector<std::uint8_t>& out) {
  encode_fastq_batch_into(flatten_pairs(pairs), codec, out);
}

std::vector<FastqPair> decode_fastq_pair_batch(
    std::span<const std::uint8_t> bytes, Codec codec) {
  auto flat = decode_fastq_batch(bytes, codec);
  if (flat.size() % 2 != 0) {
    throw std::invalid_argument("pair batch: odd record count");
  }
  std::vector<FastqPair> pairs;
  pairs.reserve(flat.size() / 2);
  for (std::size_t i = 0; i < flat.size(); i += 2) {
    pairs.push_back({std::move(flat[i]), std::move(flat[i + 1])});
  }
  return pairs;
}

// --- SAM --------------------------------------------------------------------

namespace {

void kryo_sam_record(ByteWriter& w, const SamRecord& rec) {
  w.str(rec.qname);
  w.uvarint(rec.flag);
  w.svarint(rec.contig_id);
  w.svarint(rec.pos);
  w.u8(rec.mapq);
  w.uvarint(rec.cigar.size());
  for (const auto& el : rec.cigar) {
    w.u8(static_cast<std::uint8_t>(el.op));
    w.uvarint(el.length);
  }
  w.svarint(rec.mate_contig_id);
  w.svarint(rec.mate_pos);
  w.svarint(rec.tlen);
  w.str(rec.sequence);
  w.str(rec.quality);
}

SamRecord kryo_read_sam_record(ByteReader& r) {
  SamRecord rec;
  rec.qname = r.str();
  rec.flag = static_cast<std::uint16_t>(r.uvarint());
  rec.contig_id = static_cast<std::int32_t>(r.svarint());
  rec.pos = r.svarint();
  rec.mapq = r.u8();
  const std::size_t ncigar = r.uvarint();
  rec.cigar.reserve(ncigar);
  for (std::size_t i = 0; i < ncigar; ++i) {
    const auto op = static_cast<CigarOp>(r.u8());
    rec.cigar.push_back({op, static_cast<std::uint32_t>(r.uvarint())});
  }
  rec.mate_contig_id = static_cast<std::int32_t>(r.svarint());
  rec.mate_pos = r.svarint();
  rec.tlen = r.svarint();
  rec.sequence = r.str();
  rec.quality = r.str();
  return rec;
}

/// GPF SAM layout: like Kryo for the "various fields" (which the paper
/// leaves uncompressed), but the sequence/quality pair goes through the
/// genomic codecs.
void gpf_sam_fixed_fields(ByteWriter& w, const SamRecord& rec) {
  w.str(rec.qname);
  w.uvarint(rec.flag);
  w.svarint(rec.contig_id);
  w.svarint(rec.pos);
  w.u8(rec.mapq);
  w.uvarint(rec.cigar.size());
  for (const auto& el : rec.cigar) {
    w.u8(static_cast<std::uint8_t>(el.op));
    w.uvarint(el.length);
  }
  w.svarint(rec.mate_contig_id);
  w.svarint(rec.mate_pos);
  w.svarint(rec.tlen);
}

SamRecord gpf_read_sam_fixed_fields(ByteReader& r) {
  SamRecord rec;
  rec.qname = r.str();
  rec.flag = static_cast<std::uint16_t>(r.uvarint());
  rec.contig_id = static_cast<std::int32_t>(r.svarint());
  rec.pos = r.svarint();
  rec.mapq = r.u8();
  const std::size_t ncigar = r.uvarint();
  rec.cigar.reserve(ncigar);
  for (std::size_t i = 0; i < ncigar; ++i) {
    const auto op = static_cast<CigarOp>(r.u8());
    rec.cigar.push_back({op, static_cast<std::uint32_t>(r.uvarint())});
  }
  rec.mate_contig_id = static_cast<std::int32_t>(r.svarint());
  rec.mate_pos = r.svarint();
  rec.tlen = r.svarint();
  return rec;
}

}  // namespace

namespace {

void write_sam_batch(ByteWriter& w, std::span<const SamRecord> records,
                     Codec codec) {
  batch_header(w, codec, records.size());
  switch (codec) {
    case Codec::kJavaLike: {
      static constexpr std::string_view kFields[] = {
          "qname", "flag", "contig", "pos",  "mapq", "cigar",
          "rnext", "pnext", "tlen",  "seq",  "qual"};
      java_class_descriptor(w, "org.gpf.formats.SamRecord", kFields);
      for (const auto& rec : records) {
        w.u8(kJavaObjectMarker);
        java_string(w, rec.qname);
        java_long(w, rec.flag);
        java_long(w, rec.contig_id);
        java_long(w, rec.pos);
        java_long(w, rec.mapq);
        java_string(w, cigar_to_string(rec.cigar));
        java_long(w, rec.mate_contig_id);
        java_long(w, rec.mate_pos);
        java_long(w, rec.tlen);
        java_string(w, rec.sequence);
        java_string(w, rec.quality);
      }
      break;
    }
    case Codec::kKryoLike:
      for (const auto& rec : records) kryo_sam_record(w, rec);
      break;
    case Codec::kGpf: {
      std::vector<std::string> qualities;
      std::vector<CompressedSequence> seqs;
      std::vector<EscapeFixups> fixups;
      qualities.reserve(records.size());
      seqs.reserve(records.size());
      fixups.reserve(records.size());
      for (const auto& rec : records) {
        fixups.push_back(EscapeFixups::collect(rec.sequence, rec.quality));
        std::string qual = rec.quality;
        seqs.push_back(compress_sequence(rec.sequence, qual));
        qualities.push_back(std::move(qual));
      }
      const QualityCodec qcodec = QualityCodec::train(qualities);
      const auto table = qcodec.serialize_table();
      w.uvarint(table.size());
      w.raw(std::span(table.data(), table.size()));
      BitWriter quals;
      for (const auto& q : qualities) qcodec.encode(q, quals);
      const auto qual_bits = quals.finish();
      for (std::size_t i = 0; i < records.size(); ++i) {
        gpf_sam_fixed_fields(w, records[i]);
        w.uvarint(seqs[i].length);
        w.raw(std::span(seqs[i].packed.data(), seqs[i].packed.size()));
        fixups[i].write(w);
      }
      w.uvarint(qual_bits.size());
      w.raw(std::span(qual_bits.data(), qual_bits.size()));
      break;
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_sam_batch(std::span<const SamRecord> records,
                                           Codec codec) {
  ByteWriter w;
  write_sam_batch(w, records, codec);
  return w.take();
}

void encode_sam_batch_into(std::span<const SamRecord> records, Codec codec,
                           std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  write_sam_batch(w, records, codec);
  out = w.take();
}

std::vector<SamRecord> decode_sam_batch(std::span<const std::uint8_t> bytes,
                                        Codec codec) {
  ByteReader r(bytes);
  const std::uint64_t count = check_batch_header(r, codec);
  std::vector<SamRecord> records;
  records.reserve(count);
  switch (codec) {
    case Codec::kJavaLike: {
      r.u16();
      r.str();
      r.u64();
      const std::uint16_t nfields = r.u16();
      for (std::uint16_t f = 0; f < nfields; ++f) {
        r.u8();
        r.str();
        r.str();
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        r.u8();
        SamRecord rec;
        rec.qname = java_read_string(r);
        rec.flag = static_cast<std::uint16_t>(java_read_long(r));
        rec.contig_id = static_cast<std::int32_t>(java_read_long(r));
        rec.pos = java_read_long(r);
        rec.mapq = static_cast<std::uint8_t>(java_read_long(r));
        rec.cigar = parse_cigar(java_read_string(r));
        rec.mate_contig_id = static_cast<std::int32_t>(java_read_long(r));
        rec.mate_pos = java_read_long(r);
        rec.tlen = java_read_long(r);
        rec.sequence = java_read_string(r);
        rec.quality = java_read_string(r);
        records.push_back(std::move(rec));
      }
      break;
    }
    case Codec::kKryoLike:
      for (std::uint64_t i = 0; i < count; ++i) {
        records.push_back(kryo_read_sam_record(r));
      }
      break;
    case Codec::kGpf: {
      const std::size_t table_size = r.uvarint();
      const auto table = r.raw(table_size);
      const QualityCodec qcodec = QualityCodec::from_table(table);
      struct Pending {
        SamRecord rec;
        CompressedSequence seq;
        std::vector<std::uint8_t> fixup_bytes;
      };
      std::vector<Pending> pending;
      pending.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        Pending p;
        p.rec = gpf_read_sam_fixed_fields(r);
        p.seq.length = static_cast<std::uint32_t>(r.uvarint());
        const auto raw = r.raw(packed_size(p.seq.length));
        p.seq.packed.assign(raw.begin(), raw.end());
        ByteWriter fw;
        const std::uint64_t n = r.uvarint();
        fw.uvarint(n);
        for (std::uint64_t f = 0; f < n; ++f) {
          fw.uvarint(r.uvarint());
          fw.u8(r.u8());
        }
        p.fixup_bytes = fw.take();
        pending.push_back(std::move(p));
      }
      const std::size_t qual_bytes = r.uvarint();
      BitReader bits(r.raw(qual_bytes));
      for (auto& p : pending) {
        std::string qual = qcodec.decode(bits);
        p.rec.sequence = decompress_sequence(p.seq, qual);
        ByteReader fr(std::span(p.fixup_bytes.data(), p.fixup_bytes.size()));
        EscapeFixups::read_and_apply(fr, qual);
        p.rec.quality = std::move(qual);
        records.push_back(std::move(p.rec));
      }
      break;
    }
  }
  return records;
}

// --- VCF --------------------------------------------------------------------

namespace {

void write_vcf_batch(ByteWriter& w, std::span<const VcfRecord> records,
                     Codec codec) {
  batch_header(w, codec, records.size());
  switch (codec) {
    case Codec::kJavaLike: {
      static constexpr std::string_view kFields[] = {"contig", "pos", "id",
                                                     "ref",    "alt", "qual"};
      java_class_descriptor(w, "org.gpf.formats.VcfRecord", kFields);
      for (const auto& rec : records) {
        w.u8(kJavaObjectMarker);
        java_long(w, rec.contig_id);
        java_long(w, rec.pos);
        java_string(w, rec.id);
        java_string(w, rec.ref);
        java_string(w, rec.alt);
        java_long(w, static_cast<std::int64_t>(rec.qual * 100.0));
        java_long(w, static_cast<std::int64_t>(rec.genotype));
      }
      break;
    }
    case Codec::kKryoLike:
    case Codec::kGpf:
      // VCF is the small result file; GPF leaves it in the compact generic
      // layout (the paper compresses only FASTQ/SAM payload fields).
      for (const auto& rec : records) {
        w.svarint(rec.contig_id);
        w.svarint(rec.pos);
        w.str(rec.id);
        w.str(rec.ref);
        w.str(rec.alt);
        w.f64(rec.qual);
        w.u8(static_cast<std::uint8_t>(rec.genotype));
      }
      break;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_vcf_batch(std::span<const VcfRecord> records,
                                           Codec codec) {
  ByteWriter w;
  write_vcf_batch(w, records, codec);
  return w.take();
}

void encode_vcf_batch_into(std::span<const VcfRecord> records, Codec codec,
                           std::vector<std::uint8_t>& out) {
  ByteWriter w(std::move(out));
  write_vcf_batch(w, records, codec);
  out = w.take();
}

std::vector<VcfRecord> decode_vcf_batch(std::span<const std::uint8_t> bytes,
                                        Codec codec) {
  ByteReader r(bytes);
  const std::uint64_t count = check_batch_header(r, codec);
  std::vector<VcfRecord> records;
  records.reserve(count);
  switch (codec) {
    case Codec::kJavaLike: {
      r.u16();
      r.str();
      r.u64();
      const std::uint16_t nfields = r.u16();
      for (std::uint16_t f = 0; f < nfields; ++f) {
        r.u8();
        r.str();
        r.str();
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        r.u8();
        VcfRecord rec;
        rec.contig_id = static_cast<std::int32_t>(java_read_long(r));
        rec.pos = java_read_long(r);
        rec.id = java_read_string(r);
        rec.ref = java_read_string(r);
        rec.alt = java_read_string(r);
        rec.qual = static_cast<double>(java_read_long(r)) / 100.0;
        rec.genotype = static_cast<Genotype>(java_read_long(r));
        records.push_back(std::move(rec));
      }
      break;
    }
    case Codec::kKryoLike:
    case Codec::kGpf:
      for (std::uint64_t i = 0; i < count; ++i) {
        VcfRecord rec;
        rec.contig_id = static_cast<std::int32_t>(r.svarint());
        rec.pos = r.svarint();
        rec.id = r.str();
        rec.ref = r.str();
        rec.alt = r.str();
        rec.qual = r.f64();
        rec.genotype = static_cast<Genotype>(r.u8());
        records.push_back(std::move(rec));
      }
      break;
  }
  return records;
}

// --- live size estimators ----------------------------------------------------

namespace {

/// Approximate heap footprint of a std::string (object + allocation).
std::size_t string_footprint(const std::string& s) {
  // SSO strings cost only the object; longer ones add a heap block.
  constexpr std::size_t kSso = 15;
  return sizeof(std::string) + (s.size() > kSso ? s.capacity() : 0);
}

}  // namespace

std::size_t live_size(const FastqRecord& r) {
  return string_footprint(r.name) + string_footprint(r.sequence) +
         string_footprint(r.quality);
}

std::size_t live_size(const FastqPair& p) {
  return live_size(p.first) + live_size(p.second);
}

std::size_t live_size(const SamRecord& r) {
  return string_footprint(r.qname) + string_footprint(r.sequence) +
         string_footprint(r.quality) + sizeof(SamRecord) -
         3 * sizeof(std::string) + r.cigar.capacity() * sizeof(CigarElement);
}

std::size_t live_size(const VcfRecord& r) {
  return string_footprint(r.id) + string_footprint(r.ref) +
         string_footprint(r.alt) + sizeof(VcfRecord) - 3 * sizeof(std::string);
}

}  // namespace gpf
