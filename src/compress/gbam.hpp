// GBAM: a BAM-like binary alignment container (lives in compress/ because
// it is an application of the record codecs).
//
// The paper's pipelines read and write SAM/BAM files at their boundaries
// (Fig 1's storage subsystem).  GBAM is this library's block-structured
// binary equivalent: a header with the contig dictionary followed by
// independently-decodable record blocks, each serialized with one of the
// record codecs (the GPF codec by default, so a GBAM file enjoys the
// same 2-bit/delta-Huffman compression as in-memory partitions).
// Blocks are independently decodable so a distributed reader can assign
// block ranges to tasks, the property BAM's BGZF blocking exists for.
//
// Layout (little endian):
//   magic "GBAM1"            5 bytes
//   codec                    u8
//   coordinate_sorted        u8
//   contig_count             uvarint
//     per contig: name (str) length (uvarint)
//   block_count              uvarint
//     per block: record_count (uvarint), payload_size (uvarint),
//                payload bytes (encode_sam_batch output)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/record_codec.hpp"
#include "formats/sam.hpp"

namespace gpf {

struct GbamWriteOptions {
  Codec codec = Codec::kGpf;
  /// Records per block; blocks are the unit of distributed reading.
  std::size_t block_records = 4096;
};

/// Serializes header + records into a GBAM byte buffer.
std::vector<std::uint8_t> write_gbam(const SamHeader& header,
                                     std::span<const SamRecord> records,
                                     const GbamWriteOptions& options = {});

/// Parses an entire GBAM buffer.
SamFile read_gbam(std::span<const std::uint8_t> bytes);

/// Block-granular access for distributed readers.
class GbamReader {
 public:
  explicit GbamReader(std::span<const std::uint8_t> bytes);

  const SamHeader& header() const { return header_; }
  Codec codec() const { return codec_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t record_count() const;

  /// Decodes one block.
  std::vector<SamRecord> read_block(std::size_t index) const;

 private:
  struct BlockRef {
    std::size_t record_count;
    std::span<const std::uint8_t> payload;
  };

  SamHeader header_;
  Codec codec_ = Codec::kGpf;
  std::vector<BlockRef> blocks_;
};

/// File helpers.
void save_gbam_file(const std::string& path, const SamHeader& header,
                    std::span<const SamRecord> records,
                    const GbamWriteOptions& options = {});
SamFile load_gbam_file(const std::string& path);

}  // namespace gpf
