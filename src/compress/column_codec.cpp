#include "compress/column_codec.hpp"

#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "compress/bitio.hpp"
#include "compress/qual_codec.hpp"
#include "compress/seq_codec.hpp"

namespace gpf {

FastqColumns encode_fastq_columns(std::span<const FastqRecord> records) {
  FastqColumns cols;
  cols.records = records.size();

  ByteWriter names;
  ByteWriter lens;
  ByteWriter seq;
  // compress_sequence rewrites the quality string wherever it escapes a
  // special base, so the escaped qualities — not the originals — are what
  // the quality codec trains on and encodes.
  std::vector<std::string> escaped_quals;
  escaped_quals.reserve(records.size());
  for (const FastqRecord& rec : records) {
    names.str(rec.name);
    lens.uvarint(rec.sequence.size());
    std::string quality = rec.quality;
    const CompressedSequence packed = compress_sequence(rec.sequence, quality);
    seq.raw(std::span<const std::uint8_t>(packed.packed.data(),
                                          packed.packed.size()));
    escaped_quals.push_back(std::move(quality));
  }

  const QualityCodec codec = QualityCodec::train(escaped_quals);
  BitWriter qual_bits;
  for (const std::string& q : escaped_quals) codec.encode(q, qual_bits);
  const std::vector<std::uint8_t> table = codec.serialize_table();
  const std::vector<std::uint8_t> stream = qual_bits.finish();
  ByteWriter qual;
  qual.uvarint(table.size());
  qual.raw(std::span<const std::uint8_t>(table.data(), table.size()));
  qual.raw(std::span<const std::uint8_t>(stream.data(), stream.size()));

  cols.names = names.take();
  cols.lens = lens.take();
  cols.seq = seq.take();
  cols.qual = qual.take();
  return cols;
}

std::vector<FastqRecord> decode_fastq_columns(const FastqColumns& columns) {
  FastqColumnsView view;
  view.records = columns.records;
  view.names = {columns.names.data(), columns.names.size()};
  view.lens = {columns.lens.data(), columns.lens.size()};
  view.seq = {columns.seq.data(), columns.seq.size()};
  view.qual = {columns.qual.data(), columns.qual.size()};
  return decode_fastq_columns(view);
}

std::vector<FastqRecord> decode_fastq_columns(const FastqColumnsView& columns) {
  std::vector<FastqRecord> out;
  out.reserve(columns.records);

  ByteReader names(columns.names);
  ByteReader lens(columns.lens);
  ByteReader seq(columns.seq);
  ByteReader qual(columns.qual);
  const std::size_t table_size = qual.uvarint();
  const QualityCodec codec = QualityCodec::from_table(qual.raw(table_size));
  BitReader qual_bits(qual.raw(qual.remaining()));

  for (std::uint64_t i = 0; i < columns.records; ++i) {
    FastqRecord rec;
    rec.name = names.str();
    const std::uint64_t length = lens.uvarint();
    CompressedSequence packed;
    packed.length = static_cast<std::uint32_t>(length);
    const std::span<const std::uint8_t> bytes = seq.raw(packed_size(length));
    packed.packed.assign(bytes.begin(), bytes.end());
    // Quality first: decompress_sequence needs the escaped quality bytes
    // to restore 'N' bases, and repairs them to '#' as it goes.
    rec.quality = codec.decode(qual_bits);
    if (rec.quality.size() != length) {
      throw std::out_of_range("quality/length column disagreement");
    }
    rec.sequence = decompress_sequence(packed, rec.quality);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace gpf
