#include "compress/seq_codec.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/simd.hpp"

namespace gpf {
namespace {

/// Paper encoding: A:00 G:01 C:10 T:11.
constexpr std::uint8_t kA = 0b00;
constexpr std::uint8_t kG = 0b01;
constexpr std::uint8_t kC = 0b10;
constexpr std::uint8_t kT = 0b11;

constexpr char kCodeToBase[4] = {'A', 'G', 'C', 'T'};

/// Quality char restored for escaped bases on decompression ('#' = Phred 2,
/// Illumina's conventional "no-call" quality).
constexpr char kRestoredQuality = '#';

/// Per-byte code table: base char -> 2-bit code, 0xff for special bases.
constexpr std::array<std::uint8_t, 256> kBaseCode = [] {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = 0xff;
  t['A'] = kA;
  t['G'] = kG;
  t['C'] = kC;
  t['T'] = kT;
  return t;
}();

/// Packed byte -> four base chars, little-endian (base i in byte i).
constexpr std::array<std::uint32_t, 256> kUnpackTable = [] {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(kCodeToBase[(b >> (2 * k)) & 3]))
           << (8 * k);
    }
    t[b] = v;
  }
  return t;
}();

/// Scalar packer for [begin, end): handles special bases (Deorowicz escape)
/// and unaligned tails.  `packed` must be zero-initialized.
void compress_block_scalar(const char* seq, char* qual, std::size_t begin,
                           std::size_t end, std::uint8_t* packed) {
  for (std::size_t i = begin; i < end; ++i) {
    std::uint8_t code = kBaseCode[static_cast<std::uint8_t>(seq[i])];
    if (code == 0xff) {
      // Deorowicz escape: store 'A' and mark via the quality sentinel.
      code = kA;
      qual[i] = kEscapeQuality;
    }
    packed[i >> 2] |= static_cast<std::uint8_t>(code << ((i & 3) * 2));
  }
}

/// True when all eight lanes of `w` are plain A/C/G/T.
bool all_acgt8(std::uint64_t w) {
  const std::uint64_t m = simd::eq_lanes(w, 'A') | simd::eq_lanes(w, 'C') |
                          simd::eq_lanes(w, 'G') | simd::eq_lanes(w, 'T');
  return m == simd::kLaneMsb;
}

/// SWAR 2-bit codes for eight validated bases.  The paper code of base c is
/// derivable from its ASCII bits: low = bit2, high = bit1 ^ bit2 (checks:
/// A=0x41 -> 00, G=0x47 -> 01, C=0x43 -> 10, T=0x54 -> 11).
std::uint16_t swar_pack8(std::uint64_t w) {
  const std::uint64_t low = (w >> 2) & simd::kLaneLsb;
  const std::uint64_t high = ((w >> 1) ^ (w >> 2)) & simd::kLaneLsb;
  std::uint64_t codes = (high << 1) | low;
  // Fold the eight 2-bit lane codes into two packed bytes (little-endian
  // nibble gather: 8 lanes -> 4-bit pairs -> bytes 0 and 4).
  codes |= codes >> 6;
  codes &= 0x000f000f000f000fULL;
  codes |= codes >> 12;
  return static_cast<std::uint16_t>((codes & 0xff) |
                                    (((codes >> 32) & 0xff) << 8));
}

#if defined(GPF_SIMD_X86)

/// Packs full 16-base blocks with SSE; returns the first unprocessed index.
/// Blocks containing special bases fall back to the scalar escape path.
__attribute__((target("sse4.2,ssse3"))) std::size_t compress_sse4(
    const char* seq, char* qual, std::size_t n, std::uint8_t* packed) {
  const __m128i va = _mm_set1_epi8('A');
  const __m128i vc = _mm_set1_epi8('C');
  const __m128i vg = _mm_set1_epi8('G');
  const __m128i vt = _mm_set1_epi8('T');
  const __m128i ones = _mm_set1_epi8(1);
  const __m128i pair_w = _mm_set1_epi16(0x0401);
  const __m128i quad_w = _mm_set1_epi32(0x00100001);
  const __m128i gather = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1,
                                       -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i w =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(seq + i));
    const __m128i valid =
        _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(w, va), _mm_cmpeq_epi8(w, vc)),
                     _mm_or_si128(_mm_cmpeq_epi8(w, vg), _mm_cmpeq_epi8(w, vt)));
    if (_mm_movemask_epi8(valid) != 0xffff) {
      compress_block_scalar(seq, qual, i, i + 16, packed);
      continue;
    }
    const __m128i s1 = _mm_srli_epi64(w, 1);
    const __m128i s2 = _mm_srli_epi64(w, 2);
    const __m128i low = _mm_and_si128(s2, ones);
    const __m128i high = _mm_and_si128(_mm_xor_si128(s1, s2), ones);
    const __m128i codes = _mm_or_si128(_mm_add_epi8(high, high), low);
    const __m128i pair = _mm_maddubs_epi16(codes, pair_w);
    const __m128i quad = _mm_madd_epi16(pair, quad_w);
    const std::uint32_t out = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi8(quad, gather)));
    std::memcpy(packed + (i >> 2), &out, 4);
  }
  return i;
}

/// Packs full 32-base blocks with AVX2; returns the first unprocessed index.
__attribute__((target("avx2"))) std::size_t compress_avx2(
    const char* seq, char* qual, std::size_t n, std::uint8_t* packed) {
  const __m256i va = _mm256_set1_epi8('A');
  const __m256i vc = _mm256_set1_epi8('C');
  const __m256i vg = _mm256_set1_epi8('G');
  const __m256i vt = _mm256_set1_epi8('T');
  const __m256i ones = _mm256_set1_epi8(1);
  const __m256i pair_w = _mm256_set1_epi16(0x0401);
  const __m256i quad_w = _mm256_set1_epi32(0x00100001);
  const __m256i gather = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 4, 8,
      12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seq + i));
    const __m256i valid = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(w, va), _mm256_cmpeq_epi8(w, vc)),
        _mm256_or_si256(_mm256_cmpeq_epi8(w, vg), _mm256_cmpeq_epi8(w, vt)));
    if (static_cast<std::uint32_t>(_mm256_movemask_epi8(valid)) !=
        0xffffffffu) {
      compress_block_scalar(seq, qual, i, i + 32, packed);
      continue;
    }
    const __m256i s1 = _mm256_srli_epi64(w, 1);
    const __m256i s2 = _mm256_srli_epi64(w, 2);
    const __m256i low = _mm256_and_si256(s2, ones);
    const __m256i high = _mm256_and_si256(_mm256_xor_si256(s1, s2), ones);
    const __m256i codes = _mm256_or_si256(_mm256_add_epi8(high, high), low);
    const __m256i pair = _mm256_maddubs_epi16(codes, pair_w);
    const __m256i quad = _mm256_madd_epi16(pair, quad_w);
    const __m256i bytes = _mm256_shuffle_epi8(quad, gather);
    const std::uint32_t lo = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm256_castsi256_si128(bytes)));
    const std::uint32_t hi = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm256_extracti128_si256(bytes, 1)));
    std::memcpy(packed + (i >> 2), &lo, 4);
    std::memcpy(packed + (i >> 2) + 4, &hi, 4);
  }
  return i;
}

#endif  // GPF_SIMD_X86

}  // namespace

std::size_t packed_size(std::size_t bases) { return (bases + 3) / 4; }

namespace detail {

CompressedSequence compress_sequence_at(simd::Level level,
                                        std::string_view sequence,
                                        std::string& quality) {
  if (quality.size() != sequence.size()) {
    throw std::invalid_argument("sequence/quality length mismatch");
  }
  CompressedSequence out;
  out.length = static_cast<std::uint32_t>(sequence.size());
  out.packed.assign(packed_size(sequence.size()), 0);
  const char* seq = sequence.data();
  char* qual = quality.data();
  std::uint8_t* packed = out.packed.data();
  const std::size_t n = sequence.size();

  if (level == simd::Level::kScalar) {
    compress_block_scalar(seq, qual, 0, n, packed);
    return out;
  }

  std::size_t i = 0;
#if defined(GPF_SIMD_X86)
  if (level >= simd::Level::kAvx2) {
    i = compress_avx2(seq, qual, n, packed);
  } else if (level >= simd::Level::kSse4) {
    i = compress_sse4(seq, qual, n, packed);
  }
#endif
  // SWAR path: eight bases per step.  Also covers the 8..31 base tail left
  // by the wider intrinsic loops (their strides are multiples of 8, so the
  // packed output stays byte-aligned).
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = simd::load_u64(seq + i);
    if (!all_acgt8(w)) {
      compress_block_scalar(seq, qual, i, i + 8, packed);
      continue;
    }
    const std::uint16_t p = swar_pack8(w);
    std::memcpy(packed + (i >> 2), &p, 2);
  }
  compress_block_scalar(seq, qual, i, n, packed);
  return out;
}

std::string decompress_sequence_at(simd::Level level,
                                   const CompressedSequence& compressed,
                                   std::string& quality) {
  if (quality.size() != compressed.length) {
    throw std::invalid_argument("quality length mismatch on decompress");
  }
  const std::size_t n = compressed.length;
  // Bounds check hoisted out of the per-base loop: one size test up front
  // replaces the per-iteration .at() the scalar loop used to pay.
  if (compressed.packed.size() < packed_size(n)) {
    throw std::out_of_range("decompress_sequence: packed buffer too small");
  }
  std::string seq(n, 'A');
  const std::uint8_t* packed = compressed.packed.data();
  char* sp = seq.data();
  char* qp = quality.data();

  if (level == simd::Level::kScalar) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t code = (packed[i >> 2] >> ((i & 3) * 2)) & 0b11;
      if (qp[i] == kEscapeQuality) {
        // An escaped special base: the stored code is 'A' by construction.
        sp[i] = 'N';
        qp[i] = kRestoredQuality;
      } else {
        sp[i] = kCodeToBase[code];
      }
    }
    return seq;
  }

  // Table-driven bulk unpack: one 256-entry lookup expands four bases.
  const std::size_t full = n / 4;
  for (std::size_t g = 0; g < full; ++g) {
    std::memcpy(sp + 4 * g, &kUnpackTable[packed[g]], 4);
  }
  for (std::size_t i = full * 4; i < n; ++i) {
    sp[i] = kCodeToBase[(packed[i >> 2] >> ((i & 3) * 2)) & 0b11];
  }
  // Escape fixups are rare: SWAR-scan the quality string for the sentinel
  // eight bytes at a time and patch only matching lanes.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t hits = simd::eq_lanes(
        simd::load_u64(qp + i), static_cast<std::uint8_t>(kEscapeQuality));
    while (hits != 0) {
      const std::size_t lane =
          static_cast<std::size_t>(std::countr_zero(hits)) >> 3;
      sp[i + lane] = 'N';
      qp[i + lane] = kRestoredQuality;
      hits &= hits - 1;
    }
  }
  for (; i < n; ++i) {
    if (qp[i] == kEscapeQuality) {
      sp[i] = 'N';
      qp[i] = kRestoredQuality;
    }
  }
  return seq;
}

}  // namespace detail

CompressedSequence compress_sequence(std::string_view sequence,
                                     std::string& quality) {
  return detail::compress_sequence_at(simd::active_level(), sequence, quality);
}

std::string decompress_sequence(const CompressedSequence& compressed,
                                std::string& quality) {
  return detail::decompress_sequence_at(simd::active_level(), compressed,
                                        quality);
}

}  // namespace gpf
