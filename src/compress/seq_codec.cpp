#include "compress/seq_codec.hpp"

#include <stdexcept>

namespace gpf {
namespace {

/// Paper encoding: A:00 G:01 C:10 T:11.
constexpr std::uint8_t kA = 0b00;
constexpr std::uint8_t kG = 0b01;
constexpr std::uint8_t kC = 0b10;
constexpr std::uint8_t kT = 0b11;

std::uint8_t base_code(char c) {
  switch (c) {
    case 'A':
      return kA;
    case 'G':
      return kG;
    case 'C':
      return kC;
    case 'T':
      return kT;
    default:
      return 0xff;  // special character, caller escapes it
  }
}

constexpr char kCodeToBase[4] = {'A', 'G', 'C', 'T'};

/// Quality char restored for escaped bases on decompression ('#' = Phred 2,
/// Illumina's conventional "no-call" quality).
constexpr char kRestoredQuality = '#';

}  // namespace

std::size_t packed_size(std::size_t bases) { return (bases + 3) / 4; }

CompressedSequence compress_sequence(std::string_view sequence,
                                     std::string& quality) {
  if (quality.size() != sequence.size()) {
    throw std::invalid_argument("sequence/quality length mismatch");
  }
  CompressedSequence out;
  out.length = static_cast<std::uint32_t>(sequence.size());
  out.packed.assign(packed_size(sequence.size()), 0);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    std::uint8_t code = base_code(sequence[i]);
    if (code == 0xff) {
      // Deorowicz escape: store 'A' and mark via the quality sentinel.
      code = kA;
      quality[i] = kEscapeQuality;
    }
    out.packed[i >> 2] |= static_cast<std::uint8_t>(code << ((i & 3) * 2));
  }
  return out;
}

std::string decompress_sequence(const CompressedSequence& compressed,
                                std::string& quality) {
  if (quality.size() != compressed.length) {
    throw std::invalid_argument("quality length mismatch on decompress");
  }
  std::string seq(compressed.length, 'A');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::uint8_t code =
        (compressed.packed.at(i >> 2) >> ((i & 3) * 2)) & 0b11;
    if (quality[i] == kEscapeQuality) {
      // An escaped special base: the stored code is 'A' by construction.
      seq[i] = 'N';
      quality[i] = kRestoredQuality;
    } else {
      seq[i] = kCodeToBase[code];
    }
  }
  return seq;
}

}  // namespace gpf
