#include "compress/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace gpf {
namespace {

constexpr int kMaxBits = 32;

struct Node {
  std::uint64_t freq;
  std::uint32_t tiebreak;  // deterministic ordering across runs
  int left = -1;
  int right = -1;
  std::int32_t symbol = -1;
};

}  // namespace

HuffmanCoder HuffmanCoder::from_frequencies(
    std::span<const std::uint64_t> frequencies) {
  HuffmanCoder coder;
  coder.lengths_.assign(frequencies.size(), 0);

  // Build the Huffman tree with a min-heap.  Ties are broken by node
  // creation order so the table is deterministic.
  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) {
    if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
    return nodes[a].tiebreak > nodes[b].tiebreak;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (std::size_t s = 0; s < frequencies.size(); ++s) {
    if (frequencies[s] == 0) continue;
    nodes.push_back({frequencies[s], static_cast<std::uint32_t>(nodes.size()),
                     -1, -1, static_cast<std::int32_t>(s)});
    heap.push(static_cast<int>(nodes.size() - 1));
  }
  if (nodes.empty()) {
    throw std::invalid_argument("Huffman: all frequencies zero");
  }
  if (nodes.size() == 1) {
    // Degenerate single-symbol alphabet: assign a 1-bit code.
    coder.lengths_[nodes[0].symbol] = 1;
    coder.build_canonical();
    return coder;
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[a].freq + nodes[b].freq,
                     static_cast<std::uint32_t>(nodes.size()), a, b, -1});
    heap.push(static_cast<int>(nodes.size() - 1));
  }

  // Depth-first walk to collect code lengths.
  struct Frame {
    int node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[f.node];
    if (n.symbol >= 0) {
      coder.lengths_[n.symbol] = std::max<std::uint8_t>(1, f.depth);
    } else {
      if (f.depth + 1 > kMaxBits) {
        throw std::runtime_error("Huffman: code length overflow");
      }
      stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
      stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  coder.build_canonical();
  return coder;
}

HuffmanCoder HuffmanCoder::from_code_lengths(
    std::span<const std::uint8_t> lengths) {
  HuffmanCoder coder;
  coder.lengths_.assign(lengths.begin(), lengths.end());
  coder.build_canonical();
  return coder;
}

void HuffmanCoder::build_canonical() {
  // Canonical code assignment: symbols sorted by (length, symbol).
  sorted_symbols_.clear();
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) sorted_symbols_.push_back(s);
  }
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
              return a < b;
            });

  count_per_length_.assign(kMaxBits + 1, 0);
  for (const std::uint32_t s : sorted_symbols_) ++count_per_length_[lengths_[s]];

  first_code_.assign(kMaxBits + 1, 0);
  first_index_.assign(kMaxBits + 1, 0);
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_per_length_[len];
    code = (code + count_per_length_[len]) << 1;
  }

  codes_.assign(lengths_.size(), 0);
  std::vector<std::uint32_t> next = first_code_;
  for (const std::uint32_t s : sorted_symbols_) {
    codes_[s] = next[lengths_[s]]++;
  }

  // Prefix table: every kTableBits-wide window starting with a short code
  // maps directly to (symbol, length).
  table_.assign(1u << kTableBits, TableEntry{});
  for (const std::uint32_t s : sorted_symbols_) {
    const std::uint8_t len = lengths_[s];
    if (len > kTableBits) continue;
    const std::uint32_t base = codes_[s] << (kTableBits - len);
    const std::uint32_t span = 1u << (kTableBits - len);
    for (std::uint32_t i = 0; i < span; ++i) {
      table_[base + i] = {static_cast<std::uint16_t>(s), len};
    }
  }

  // Multi-symbol table: greedily re-decode each window through table_ and
  // record every symbol whose code fits entirely in the known bits.  One
  // probe of this table then yields several symbols (short codes dominate
  // for the skewed genomic alphabets), amortizing the per-symbol
  // peek/skip bookkeeping.
  multi_.assign(1u << kTableBits, MultiEntry{});
  constexpr std::uint32_t kWindowMask = (1u << kTableBits) - 1;
  for (std::uint32_t w = 0; w <= kWindowMask; ++w) {
    MultiEntry& e = multi_[w];
    std::uint8_t used = 0;
    while (e.count < kMultiSymbols) {
      const std::uint32_t sub = (w << used) & kWindowMask;
      const TableEntry t = table_[sub];
      if (t.length == 0 || used + t.length > kTableBits) break;
      used = static_cast<std::uint8_t>(used + t.length);
      e.symbols[e.count] = t.symbol;
      e.bit_ends[e.count] = used;
      ++e.count;
    }
  }
}

std::uint32_t HuffmanCoder::decode_long(BitReader& in) const {
  // Rare path: codes longer than kTableBits, resolved canonically from a
  // 32-bit peek.
  const std::uint32_t window = in.peek(32);
  for (int len = kTableBits + 1; len <= kMaxBits; ++len) {
    const std::uint32_t code = window >> (32 - len);
    const std::uint32_t count = count_per_length_[len];
    if (count != 0 && code >= first_code_[len] &&
        code < first_code_[len] + count) {
      in.skip(len);
      return sorted_symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw std::runtime_error("Huffman: invalid code");
}

}  // namespace gpf
