// Quality-field compression (paper Sec 4.2, Figs 5/6): quality strings are
// converted to a delta sequence (difference between adjacent quality
// characters, range [-127, 127]; the first character is its raw value) and
// the deltas are Huffman coded with an explicit EOF terminator per record.
//
// Adjacent quality scores are strongly correlated (paper Fig 5b shows the
// delta distribution concentrated around 0), so the delta alphabet has far
// lower entropy than the raw scores.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "compress/bitio.hpp"
#include "compress/huffman.hpp"

namespace gpf {

/// Trained delta+Huffman coder for quality strings.
class QualityCodec {
 public:
  /// Builds the Huffman table from a training sample of quality strings.
  /// Every possible delta gets a minimum frequency of 1 so that records
  /// outside the training set still encode.
  static QualityCodec train(std::span<const std::string> qualities);

  /// Reconstructs a codec from a serialized table (see serialize_table).
  static QualityCodec from_table(std::span<const std::uint8_t> table);

  /// Code lengths for the 257-symbol alphabet (256 delta values + EOF).
  std::vector<std::uint8_t> serialize_table() const;

  /// Appends the delta-coded record plus EOF to `out`.
  void encode(std::string_view quality, BitWriter& out) const;

  /// Decodes one record (up to EOF).
  std::string decode(BitReader& in) const;

  /// decode() with an explicit dispatch level: kScalar takes the
  /// symbol-at-a-time path, anything higher the multi-symbol table loop.
  /// Exposed for the equivalence tests and the perf-regression harness.
  std::string decode_at(simd::Level level, BitReader& in) const;

 private:
  explicit QualityCodec(HuffmanCoder coder) : coder_(std::move(coder)) {}

  HuffmanCoder coder_;
};

/// Delta alphabet layout: symbol = delta + 128 for delta in [-128, 127];
/// EOF is symbol 256.
inline constexpr std::uint32_t kQualityAlphabet = 257;
inline constexpr std::uint32_t kQualityEof = 256;

}  // namespace gpf
