#include "compress/qual_codec.hpp"

#include <stdexcept>

namespace gpf {
namespace {

std::uint32_t delta_symbol(char prev, char cur) {
  const int delta = static_cast<int>(cur) - static_cast<int>(prev);
  return static_cast<std::uint32_t>(delta + 128);
}

char apply_delta(char prev, std::uint32_t symbol) {
  const int delta = static_cast<int>(symbol) - 128;
  return static_cast<char>(static_cast<int>(prev) + delta);
}

}  // namespace

QualityCodec QualityCodec::train(std::span<const std::string> qualities) {
  std::vector<std::uint64_t> freq(kQualityAlphabet, 1);
  for (const auto& q : qualities) {
    char prev = 0;
    for (const char c : q) {
      ++freq[delta_symbol(prev, c)];
      prev = c;
    }
    freq[kQualityEof] += 4;  // EOF is frequent: once per record
  }
  return QualityCodec(HuffmanCoder::from_frequencies(freq));
}

QualityCodec QualityCodec::from_table(std::span<const std::uint8_t> table) {
  if (table.size() != kQualityAlphabet) {
    throw std::invalid_argument("quality codec table size mismatch");
  }
  return QualityCodec(HuffmanCoder::from_code_lengths(table));
}

std::vector<std::uint8_t> QualityCodec::serialize_table() const {
  return coder_.code_lengths();
}

void QualityCodec::encode(std::string_view quality, BitWriter& out) const {
  char prev = 0;
  for (const char c : quality) {
    coder_.encode(delta_symbol(prev, c), out);
    prev = c;
  }
  coder_.encode(kQualityEof, out);
}

std::string QualityCodec::decode(BitReader& in) const {
  return decode_at(simd::active_level(), in);
}

std::string QualityCodec::decode_at(simd::Level level, BitReader& in) const {
  std::string out;
  char prev = 0;
  if (level != simd::Level::kScalar) {
    for (;;) {
      // Fast loop: one table probe yields up to kMultiSymbols symbols.
      // Only valid while the window is backed by real bits (peek zero-pads
      // past the end of the stream).
      while (in.bits_left() >=
             static_cast<std::size_t>(HuffmanCoder::kTableBits)) {
        const HuffmanCoder::MultiEntry& e =
            coder_.multi_entry(in.peek(HuffmanCoder::kTableBits));
        if (e.count == 0) break;  // long code: take the slow path below
        for (int k = 0; k < e.count; ++k) {
          if (e.symbols[k] == kQualityEof) {
            in.skip(e.bit_ends[k]);
            return out;
          }
          prev = apply_delta(prev, e.symbols[k]);
          out.push_back(prev);
        }
        in.skip(e.bit_ends[e.count - 1]);
      }
      const std::uint32_t symbol = coder_.decode(in);
      if (symbol == kQualityEof) return out;
      prev = apply_delta(prev, symbol);
      out.push_back(prev);
    }
  }
  for (;;) {
    const std::uint32_t symbol = coder_.decode(in);
    if (symbol == kQualityEof) return out;
    prev = apply_delta(prev, symbol);
    out.push_back(prev);
  }
}

}  // namespace gpf
