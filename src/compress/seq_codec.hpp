// 2-bit base-sequence compression with the Deorowicz N-escape (paper
// Sec 4.2, Fig 4).
//
// The stored base sequence uses A:00 G:01 C:10 T:11.  A special character
// (N or any non-ACGT letter) is rewritten to 'A' in the sequence and its
// quality score is set to 0 (character SOH, Phred+33 value 33 is quality 0
// — the paper uses "quality score 0" as the sentinel, which is below the
// legal range [33,126] of normal reads).  Decompression recognizes an 'A'
// whose quality char is the sentinel and restores 'N'.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"

namespace gpf {

/// Quality character reserved for escaped special bases.  SOH (0x01), as
/// in the paper's example ("changes the corresponding quality score to 0...
/// CCCB(SOH)FFFF").
inline constexpr char kEscapeQuality = 0x01;

/// Result of compressing one sequence: the packed 2-bit payload and the
/// possibly-rewritten quality string (escape sentinels inserted).
struct CompressedSequence {
  std::uint32_t length = 0;  // bases before compression
  std::vector<std::uint8_t> packed;
};

/// Packs `sequence` (A/C/G/T/N...) into 2-bit codes.  `quality` must be the
/// same length; sentinel characters are written into it wherever a special
/// base was escaped.
CompressedSequence compress_sequence(std::string_view sequence,
                                     std::string& quality);

/// Unpacks; wherever `quality[i]` equals the sentinel, the base is restored
/// to 'N' and the quality char to '#' (Phred 2, matching the paper's
/// example sequence "CCCB#FFFF").
std::string decompress_sequence(const CompressedSequence& compressed,
                                std::string& quality);

/// Encoded size in bytes for `bases` bases: ceil(bases/4).
std::size_t packed_size(std::size_t bases);

namespace detail {

/// Entry points with an explicit dispatch level.  The public functions call
/// these with simd::active_level(); tests and the perf harness call them
/// directly to assert the SWAR/SSE4/AVX2 paths are byte-identical to the
/// scalar path and to measure each path on the same machine.
CompressedSequence compress_sequence_at(simd::Level level,
                                        std::string_view sequence,
                                        std::string& quality);
std::string decompress_sequence_at(simd::Level level,
                                   const CompressedSequence& compressed,
                                   std::string& quality);

}  // namespace detail

}  // namespace gpf
